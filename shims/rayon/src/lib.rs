//! Offline stand-in for [rayon](https://docs.rs/rayon) exposing exactly the
//! subset of its API this workspace uses (see `shims/README.md` for why the
//! shim layer exists: the build container has no network access and no
//! crates-io cache, so external dependencies are patched to local crates).
//!
//! The shim is a real data-parallel executor, not a sequential fake: work is
//! split into `min(threads, items)` contiguous blocks and each block runs on
//! a `std::thread::scope` thread. Results are collected in input order, so
//! the semantics match rayon's indexed parallel iterators. Two deliberate
//! simplifications:
//!
//! * threads are spawned per top-level call instead of pooled — call sites in
//!   this workspace are coarse-grained (one call per FFT axis, per pair
//!   batch, per shell loop), so spawn overhead is noise;
//! * nested parallelism runs sequentially on the worker thread (rayon would
//!   work-steal); this keeps the pair-parallel exchange loops free of
//!   oversubscription, which is also what we want from real rayon.
//!
//! `ThreadPoolBuilder::num_threads(n)` is honored by `ThreadPool::install`
//! via a thread-local override, which is how the node-threading experiment
//! sweeps 1..64 "hardware threads".

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    /// Set inside worker threads: nested parallel calls degrade to
    /// sequential execution instead of oversubscribing.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by `ThreadPool::install`.
    static THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn pool_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    THREADS_OVERRIDE.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Split `n` items into at most `pool_threads()` contiguous block ranges.
fn blocks(n: usize) -> Vec<Range<usize>> {
    let threads = pool_threads().max(1).min(n.max(1));
    let chunk = n.div_ceil(threads.max(1)).max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Run one closure per block on scoped threads and collect per-block results
/// in block order. The engine every adapter funnels into.
fn run_blocks<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let blocks = blocks(n);
    if blocks.len() <= 1 {
        return blocks.into_iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = blocks.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|range| {
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    f(range)
                })
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out.into_iter().map(|o| o.unwrap()).collect()
}

/// `collect()` target abstraction (rayon's `FromParallelIterator`, reduced
/// to the one collection the workspace collects into).
pub trait FromParVec<T> {
    fn from_par_vec(v: Vec<T>) -> Self;
}

impl<T> FromParVec<T> for Vec<T> {
    fn from_par_vec(v: Vec<T>) -> Self {
        v
    }
}

// ---------------------------------------------------------------------------
// Borrowed-slice iterators: `.par_iter()`
// ---------------------------------------------------------------------------

pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    pub fn zip<U: Sync>(self, other: &'a [U]) -> ParZip<'a, T, U> {
        ParZip {
            a: self.slice,
            b: other,
        }
    }
}

pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    pub fn sum<S>(self) -> S
    where
        F: Fn(&'a T) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let f = &self.f;
        run_blocks(self.slice.len(), |r| self.slice[r].iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromParVec<R>,
    {
        let f = &self.f;
        let parts = run_blocks(self.slice.len(), |r| {
            self.slice[r].iter().map(f).collect::<Vec<R>>()
        });
        C::from_par_vec(parts.into_iter().flatten().collect())
    }
}

pub struct ParZip<'a, T, U> {
    a: &'a [T],
    b: &'a [U],
}

impl<'a, T: Sync, U: Sync> ParZip<'a, T, U> {
    pub fn map<R, F>(self, f: F) -> ParZipMap<'a, T, U, F>
    where
        F: Fn((&'a T, &'a U)) -> R + Sync,
    {
        ParZipMap {
            a: self.a,
            b: self.b,
            f,
        }
    }
}

pub struct ParZipMap<'a, T, U, F> {
    a: &'a [T],
    b: &'a [U],
    f: F,
}

impl<'a, T: Sync, U: Sync, F> ParZipMap<'a, T, U, F> {
    pub fn sum<S>(self) -> S
    where
        F: Fn((&'a T, &'a U)) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let n = self.a.len().min(self.b.len());
        let f = &self.f;
        run_blocks(n, |r| {
            self.a[r.clone()]
                .iter()
                .zip(self.b[r].iter())
                .map(f)
                .sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

// ---------------------------------------------------------------------------
// Mutable chunk iterators: `.par_chunks_mut(n)`
// ---------------------------------------------------------------------------

pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.for_each_init(|| (), |(), c| f(c));
    }

    pub fn for_each_init<S, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &mut [T]) + Sync,
    {
        let chunks: Vec<&mut [T]> = self.slice.chunks_mut(self.chunk).collect();
        par_for_each_owned(chunks, init, |s, c| f(s, c));
    }

    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            slice: self.slice,
            chunk: self.chunk,
        }
    }
}

pub struct ParChunksMutEnumerate<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.slice.chunks_mut(self.chunk).enumerate().collect();
        par_for_each_owned(chunks, || (), |(), pair| f(pair));
    }
}

// ---------------------------------------------------------------------------
// Borrowed chunk iterators: `.par_chunks(n)`
// ---------------------------------------------------------------------------

pub struct ParChunks<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParChunksMap<'a, T, F>
    where
        F: Fn(&'a [T]) -> R + Sync,
    {
        ParChunksMap {
            slice: self.slice,
            chunk: self.chunk,
            f,
        }
    }

    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParChunksMapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a [T]) -> R + Sync,
    {
        ParChunksMapInit {
            slice: self.slice,
            chunk: self.chunk,
            init,
            f,
        }
    }
}

pub struct ParChunksMap<'a, T, F> {
    slice: &'a [T],
    chunk: usize,
    f: F,
}

impl<'a, T: Sync, F> ParChunksMap<'a, T, F> {
    pub fn sum<S>(self) -> S
    where
        F: Fn(&'a [T]) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let nchunks = self.slice.len().div_ceil(self.chunk.max(1));
        let f = &self.f;
        run_blocks(nchunks, |r| {
            self.slice
                .chunks(self.chunk)
                .skip(r.start)
                .take(r.len())
                .map(f)
                .sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

pub struct ParChunksMapInit<'a, T, INIT, F> {
    slice: &'a [T],
    chunk: usize,
    init: INIT,
    f: F,
}

impl<'a, T: Sync, INIT, F> ParChunksMapInit<'a, T, INIT, F> {
    pub fn sum<S, ST>(self) -> S
    where
        INIT: Fn() -> ST + Sync,
        F: Fn(&mut ST, &'a [T]) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let nchunks = self.slice.len().div_ceil(self.chunk.max(1));
        let init = &self.init;
        let f = &self.f;
        run_blocks(nchunks, |r| {
            let mut state = init();
            self.slice
                .chunks(self.chunk)
                .skip(r.start)
                .take(r.len())
                .map(|c| f(&mut state, c))
                .sum::<S>()
        })
        .into_iter()
        .sum()
    }
}

// ---------------------------------------------------------------------------
// Owned-item engine (used by chunk iterators and range flat-maps)
// ---------------------------------------------------------------------------

/// Distribute owned items over worker threads with one `init()` state per
/// block, preserving nothing (for_each).
fn par_for_each_owned<T, S, INIT, F>(items: Vec<T>, init: INIT, f: F)
where
    T: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) + Sync,
{
    let _ = par_map_owned(items, init, |s, item| f(s, item));
}

/// Distribute owned items over worker threads, mapping each through `f` with
/// per-block state; results come back in input order.
fn par_map_owned<T, S, R, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let ranges = blocks(n);
    if ranges.len() <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    // Carve the Vec into per-block sub-vecs (cheap pointer moves).
    let mut items = items;
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    for range in ranges.iter().rev() {
        parts.push(items.split_off(range.start));
    }
    parts.push(items);
    parts.reverse();
    parts.remove(0); // the now-empty head
    let results = run_blocks_owned(parts, |part| {
        let mut state = init();
        part.into_iter()
            .map(|x| f(&mut state, x))
            .collect::<Vec<R>>()
    });
    results.into_iter().flatten().collect()
}

/// As [`run_blocks`] but the work arrives as owned per-block payloads.
fn run_blocks_owned<T, R, F>(parts: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let mut out: Vec<Option<R>> = parts.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    f(part)
                })
            })
            .collect();
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out.into_iter().map(|o| o.unwrap()).collect()
}

// ---------------------------------------------------------------------------
// Range iterators: `(0..n).into_par_iter()`
// ---------------------------------------------------------------------------

pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParRangeMapInit<INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        ParRangeMapInit {
            range: self.range,
            init,
            f,
        }
    }

    /// rayon's `flat_map_iter`: expand each index through a serial iterator.
    /// The shim materializes the expansion (index generation is cheap at
    /// every call site in this workspace) and hands the owned items to the
    /// block engine.
    pub fn flat_map_iter<I, F>(self, f: F) -> ParVec<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(usize) -> I,
    {
        ParVec {
            items: self.range.flat_map(f).collect(),
        }
    }
}

pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromParVec<R>,
    {
        let f = &self.f;
        let start = self.range.start;
        let parts = run_blocks(self.range.len(), |r| {
            (start + r.start..start + r.end).map(f).collect::<Vec<R>>()
        });
        C::from_par_vec(parts.into_iter().flatten().collect())
    }

    pub fn sum<S>(self) -> S
    where
        F: Fn(usize) -> S + Sync,
        S: Send + std::iter::Sum<S>,
    {
        let f = &self.f;
        let start = self.range.start;
        run_blocks(self.range.len(), |r| {
            (start + r.start..start + r.end).map(f).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = &self.f;
        let start = self.range.start;
        let parts = run_blocks(self.range.len(), |r| {
            (start + r.start..start + r.end)
                .map(f)
                .fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), op)
    }
}

pub struct ParRangeMapInit<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> ParRangeMapInit<INIT, F> {
    pub fn collect<S, R, C>(self) -> C
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
        R: Send,
        C: FromParVec<R>,
    {
        let f = &self.f;
        let init = &self.init;
        let start = self.range.start;
        let parts = run_blocks(self.range.len(), |r| {
            let mut state = init();
            (start + r.start..start + r.end)
                .map(|i| f(&mut state, i))
                .collect::<Vec<R>>()
        });
        C::from_par_vec(parts.into_iter().flatten().collect())
    }

    pub fn reduce<S, R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
        R: Send,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let f = &self.f;
        let init = &self.init;
        let start = self.range.start;
        let parts = run_blocks(self.range.len(), |r| {
            let mut state = init();
            (start + r.start..start + r.end)
                .map(|i| f(&mut state, i))
                .fold(identity(), &op)
        });
        parts.into_iter().fold(identity(), op)
    }
}

/// Owned items awaiting parallel consumption (product of `flat_map_iter`).
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParVecMapInit<T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParVecMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

pub struct ParVecMapInit<T, INIT, F> {
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T: Send, INIT, F> ParVecMapInit<T, INIT, F> {
    pub fn collect<S, R, C>(self) -> C
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
        R: Send,
        C: FromParVec<R>,
    {
        C::from_par_vec(par_map_owned(self.items, self.init, self.f))
    }
}

// ---------------------------------------------------------------------------
// Entry-point extension traits (rayon's prelude surface)
// ---------------------------------------------------------------------------

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> ParSlice<'_, T>;
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T>;
}

pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSlice<'_, T> {
        ParSlice { slice: self }
    }
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunks { slice: self, chunk }
    }
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut { slice: self, chunk }
    }
}

impl<T> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> ParSlice<'_, T> {
        self.as_slice().par_iter()
    }
    fn par_chunks(&self, chunk: usize) -> ParChunks<'_, T> {
        self.as_slice().par_chunks(chunk)
    }
}

impl<T> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        self.as_mut_slice().par_chunks_mut(chunk)
    }
}

pub trait IntoParallelIterator {
    type ParIter;
    fn into_par_iter(self) -> Self::ParIter;
}

impl IntoParallelIterator for Range<usize> {
    type ParIter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

// ---------------------------------------------------------------------------
// Thread pools
// ---------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder` for explicit thread counts.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override; workers are still spawned
/// per parallel call.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    pub fn install<R, F: FnOnce() -> R>(&self, f: F) -> R {
        let prev = THREADS_OVERRIDE.with(|t| t.replace(self.num_threads));
        let out = f();
        THREADS_OVERRIDE.with(|t| t.set(prev));
        out
    }
}

/// `rayon::join`: run both closures, in parallel when worthwhile.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon-shim join worker panicked"))
    })
}

/// Current effective parallelism (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    pool_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_map_sum_matches_serial() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let par: f64 = v.par_iter().map(|&x| x * 2.0).sum();
        let ser: f64 = v.iter().map(|&x| x * 2.0).sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks_in_order() {
        let mut v = vec![0usize; 1000];
        v.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 7);
        }
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..997).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out.len(), 997);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i * 3);
        }
    }

    #[test]
    fn map_init_reduce_matches_serial() {
        let total: f64 = (0..1000)
            .into_par_iter()
            .map_init(|| 0u32, |_state, i| i as f64)
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(total, (0..1000).sum::<usize>() as f64);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn nested_parallelism_degrades_to_sequential() {
        let out: Vec<usize> = (0..8)
            .into_par_iter()
            .map(|_| current_num_threads())
            .collect();
        // Inside workers the effective parallelism is 1 (no oversubscription)
        // unless the whole call ran inline on the caller.
        assert!(out.iter().all(|&n| n == 1 || out.len() == 1));
    }
}
