//! Offline stand-in for [crossbeam 0.8](https://docs.rs/crossbeam) (see
//! `shims/README.md`). Only `crossbeam::channel::unbounded` is used by the
//! workspace (the virtual-rank runtime's mailboxes), so that is what the
//! shim provides: an MPMC unbounded channel over `Mutex` + `Condvar` whose
//! `Sender`/`Receiver` are `Clone + Send + Sync` and whose disconnect
//! semantics match crossbeam (send fails once every receiver is gone,
//! recv drains the queue then fails once every sender is gone).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent value is handed back as in crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a deadline, as in crossbeam: drains the
        /// queue first, reports a disconnect only once the queue is empty,
        /// and otherwise waits at most `timeout` for a sender.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, res) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if res.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = unbounded();
            let sender = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..1000 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            sender.join().unwrap();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn recv_timeout_reports_timeout_then_delivers() {
            let (tx, rx) = unbounded();
            let t = std::time::Duration::from_millis(10);
            assert_eq!(rx.recv_timeout(t), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(t), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(t), Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn recv_drains_before_disconnect_error() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
