//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde shim (see `shims/README.md`). The derives exist so type
//! definitions keep their serde annotations compiling; nothing in the
//! workspace serializes at runtime, so the generated impls are honest
//! stubs: `Serialize` emits a unit, `Deserialize` returns an error.
//!
//! Implemented without `syn`/`quote` (no network): the macro scans the raw
//! token stream for the `struct`/`enum` keyword and takes the following
//! identifier as the type name. Generic derived types are rejected with a
//! clear compile error — the workspace has none.

use proc_macro::{TokenStream, TokenTree};

/// Collect every module path named by a `#[serde(with = "...")]` field
/// attribute, so the derive can emit a reference that keeps the helper
/// functions alive (real serde_derive calls them; the shim instantiates
/// them with its `__private` unit serializer/deserializer).
fn with_modules(stream: TokenStream) -> Vec<String> {
    let mut found = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Group(g) => found.extend(with_modules(g.stream())),
            TokenTree::Ident(id) if id.to_string() == "with" => {
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '=' {
                        tokens.next();
                        if let Some(TokenTree::Literal(lit)) = tokens.next() {
                            let s = lit.to_string();
                            found.push(s.trim_matches('"').to_string());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    found
}

/// Extract the type name following the first `struct` or `enum` keyword and
/// reject generics (`<` right after the name).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde_derive shim: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde_derive shim: generic type `{name}` is not supported; \
                             extend shims/serde_derive if the workspace needs it"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("serde_derive shim: no struct/enum found in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let withs = with_modules(input.clone());
    let name = type_name(input);
    let keep_alive: String = withs
        .iter()
        .map(|m| format!("const _: () = {{ let _ = {m}::serialize::<::serde::__private::UnitSerializer>; }};\n"))
        .collect();
    format!(
        "{keep_alive}\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let withs = with_modules(input.clone());
    let name = type_name(input);
    let keep_alive: String = withs
        .iter()
        .map(|m| format!("const _: () = {{ let _ = {m}::deserialize::<'static, ::serde::__private::UnitDeserializer>; }};\n"))
        .collect();
    format!(
        "{keep_alive}\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                     \"offline serde shim cannot deserialize\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl failed to parse")
}
