//! Offline stand-in for [criterion 0.5](https://docs.rs/criterion) (see
//! `shims/README.md`). A real measuring harness with criterion's API
//! shape: each benchmark is warmed up, then timed over `sample_size`
//! batches sized to at least ~2 ms each, and the **median ns/iter** is
//! printed. No statistics machinery, no HTML reports, no saved baselines —
//! comparisons across runs are done by eye or by the `repro` binary's JSON
//! output.
//!
//! A positional CLI argument acts as a substring filter on benchmark ids,
//! matching `cargo bench -- <filter>`; flag arguments (`--bench`, ...) are
//! ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            median_ns: None,
        };
        f(&mut bencher);
        match bencher.median_ns {
            Some(ns) => println!("{id:<48} time: {:>14} /iter", fmt_ns(ns)),
            None => println!("{id:<48} time: (no measurement)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: how many iterations fill ~2 ms?
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = ((2_000_000.0 / once.as_nanos() as f64).ceil() as u64).clamp(1, 1 << 24);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        self.record(samples);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Setup runs outside the timed region, one input per measured call.
        let mut samples = Vec::with_capacity(self.sample_size);
        std::hint::black_box(routine(setup())); // warmup
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = Some(samples[samples.len() / 2]);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_size: 5,
            median_ns: None,
        };
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.median_ns.unwrap() > 0.0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher {
            sample_size: 3,
            median_ns: None,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert!(b.median_ns.unwrap() >= 0.0);
    }
}
