//! Offline stand-in for [rand 0.8](https://docs.rs/rand/0.8) (see
//! `shims/README.md`). The workspace needs seeded determinism and uniform
//! `f64` sampling, nothing more.

/// Core entropy source (mirrors `rand_core::RngCore`, u64-only).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution.
pub trait Standardable: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standardable for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standardable for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`] as in
/// real rand.
pub trait Rng: RngCore {
    fn gen<T: Standardable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small deterministic generator (SplitMix64) so the shim has a
    /// concrete RNG of its own; `rand_chacha`'s shim builds on it too.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn f64_samples_are_uniform_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut mean = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            mean += x;
        }
        mean /= 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
