//! Offline stand-in for [serde](https://docs.rs/serde) (see
//! `shims/README.md`). Provides the trait surface the workspace's type
//! definitions and `with`-modules compile against. Nothing in the
//! workspace serializes at runtime, so implementations are honest stubs:
//! serializing produces a unit value, deserializing returns an error.

use core::fmt::Display;

pub mod de {
    use core::fmt::Display;

    /// Error constructor used by `Deserialize` impls (`serde::de::Error`).
    pub trait Error: Sized + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod ser {
    pub use crate::Serializer;
}

/// Output sink for [`Serialize`]. The only sink the shim knows how to fill
/// is the unit sink — sufficient because no workspace code consumes
/// serialized bytes.
pub trait Serializer: Sized {
    type Ok;
    type Error: de::Error;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// Input source for [`Deserialize`].
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! impl_stub {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_unit()
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
                Err(<D::Error as de::Error>::custom(
                    "offline serde shim cannot deserialize",
                ))
            }
        }
    )*};
}

impl_stub!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "offline serde shim cannot deserialize",
        ))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "offline serde shim cannot deserialize",
        ))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_d: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "offline serde shim cannot deserialize",
        ))
    }
}

// Re-export the no-op derive macros under the trait names, as real serde
// does with the `derive` feature.
#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Support machinery for the derive expansion (mirrors serde's
/// `__private`): concrete serializer/deserializer types the derives use to
/// instantiate `#[serde(with = "...")]` helper functions, so those helpers
/// count as used.
pub mod __private {
    use super::{de, Deserializer, Serializer};
    use core::fmt;

    #[derive(Debug)]
    pub struct ShimError;

    impl fmt::Display for ShimError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("offline serde shim error")
        }
    }

    impl de::Error for ShimError {
        fn custom<T: fmt::Display>(_msg: T) -> Self {
            ShimError
        }
    }

    pub struct UnitSerializer;

    impl Serializer for UnitSerializer {
        type Ok = ();
        type Error = ShimError;
        fn serialize_unit(self) -> Result<(), ShimError> {
            Ok(())
        }
    }

    pub struct UnitDeserializer;

    impl<'de> Deserializer<'de> for UnitDeserializer {
        type Error = ShimError;
    }
}

/// Keep the `Display` import live even without impl users.
#[allow(dead_code)]
fn _assert_display<E: de::Error>(e: &E) -> impl Display + '_ {
    e
}
