//! Offline stand-in for [rand_chacha 0.3](https://docs.rs/rand_chacha/0.3)
//! (see `shims/README.md`). The workspace uses `ChaCha8Rng::seed_from_u64`
//! purely for reproducible Maxwell-Boltzmann sampling — any deterministic
//! stream with good equidistribution works, so the shim runs a SplitMix64
//! core rather than the ChaCha block function.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    inner: SmallRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        ChaCha8Rng {
            inner: SmallRng::seed_from_u64(state),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let (xa, xb, xc): (f64, f64, f64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
