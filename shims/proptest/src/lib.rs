//! Offline stand-in for [proptest 1](https://docs.rs/proptest) (see
//! `shims/README.md`). Supports what the workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, `prop_assert!` /
//! `prop_assert_eq!`, and primitive `Range` strategies (`0u64..1000`,
//! `1e-10f64..1e-2`, ...).
//!
//! Cases are generated deterministically from a per-case SplitMix64 stream
//! seeded by the case index, so failures reproduce exactly. There is no
//! shrinking — the failing values are printed instead.

pub mod test_runner {
    /// Deterministic per-run value source handed to strategies.
    pub struct TestRunner {
        cases: u32,
        state: u64,
    }

    impl TestRunner {
        pub fn new(config: crate::prelude::ProptestConfig) -> Self {
            TestRunner {
                cases: config.cases,
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Reseed for case `case` (called once per generated argument, so
        /// arguments draw distinct values while staying reproducible).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::ops::Range;

    /// Value generator. Real proptest strategies are lazy trees with
    /// shrinking; the shim only needs "draw a uniform value in a range".
    pub trait Strategy {
        type Value;
        fn pick(&self, runner: &mut TestRunner) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn pick(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u128;
                    self.start + (runner.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn pick(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (runner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn pick(&self, runner: &mut TestRunner) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (runner.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Run configuration (`cases` only — the rest of real proptest's knobs
    /// are unused by the workspace).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::prelude::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand each `#[test] fn name(args in strategies) { body }`
/// item into a plain test running `cases` deterministic draws.
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            for _case in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut runner);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest case failed: {}\n  inputs: {}",
                        e,
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Draws respect range bounds and the harness runs cases.
        #[test]
        fn ranges_respected(n in 1usize..10, x in -2.0f64..3.0, s in 5u64..6) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert_eq!(s, 5);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let mut a = TestRunner::new(ProptestConfig::with_cases(4));
        let mut b = TestRunner::new(ProptestConfig::with_cases(4));
        for _ in 0..32 {
            assert_eq!((0u64..100).pick(&mut a), (0u64..100).pick(&mut b));
        }
    }
}
