//! # liair
//!
//! A reproduction of *"Shedding Light on Lithium/Air Batteries Using
//! Millions of Threads on the BG/Q Supercomputer"* (Weber, Bekas, Laino,
//! Curioni, Bertsch, Futral — IPDPS 2014) as a Rust workspace.
//!
//! The umbrella crate re-exports every subsystem:
//!
//! * [`math`] — FFTs, special functions, dense linear algebra;
//! * [`basis`] — molecules, Gaussian basis sets, periodic cells, the
//!   battery-study system builders;
//! * [`integrals`] — McMurchie–Davidson Gaussian integrals;
//! * [`grid`] — real-space grids, FFT Poisson solvers, Foster–Boys
//!   localization, Becke molecular quadrature;
//! * [`xc`] — LDA / PBE / PBE0 functionals;
//! * [`scf`] — RHF / RKS drivers;
//! * [`core`] — **the paper's contribution**: screened, load-balanced,
//!   pair-distributed exact exchange, with real executors and the BG/Q
//!   scale model;
//! * [`bgq`] — the 5-D-torus machine model;
//! * [`runtime`] — the SPMD message-passing runtime;
//! * [`md`] — molecular dynamics for the electrolyte application;
//! * [`serve`] — the multi-tenant batch job service: admission quotas,
//!   priority-aged scheduling, rank-pool leasing, checkpoint/restart
//!   with bit-identical resume, keyed cross-job exchange caches, and
//!   the solvent-screening **campaign driver** that fans a solvents ×
//!   concentrations × seeds × functionals grid across the service into
//!   a deterministic ranked stability report.
//!
//! ## Quickstart
//!
//! ```
//! use liair::prelude::*;
//!
//! // RHF on a water molecule with the embedded STO-3G basis.
//! let mol = systems::water();
//! let basis = Basis::sto3g(&mol);
//! let scf = rhf(&mol, &basis, &ScfOptions::default());
//! assert!(scf.converged);
//! assert!((scf.energy - (-74.96)).abs() < 0.1);
//! ```
//!
//! ## The exchange engine
//!
//! Every exchange build routes through one staged driver, configured with
//! the validated [`EngineBuilder`](prelude::ExchangeEngine::builder). The
//! distributed backend runs over the fault-tolerant [`runtime`] `Comm`
//! layer: hierarchical collectives by default, and an optional seeded
//! fault plan under which the build is still bit-identical (lost ranks'
//! chunks are re-issued on the root through the same kernel).
//!
//! ```
//! use liair::prelude::*;
//! # use liair::core::screening::build_pair_list;
//! # let grid = RealGrid::cubic(Cell::cubic(8.0), 12);
//! # let solver = PoissonSolver::isolated(grid);
//! # let orbitals: Vec<Vec<f64>> = vec![vec![0.01; grid.len()]; 2];
//! # let infos = vec![OrbitalInfo { center: Vec3::splat(4.0), spread: 0.7 }; 2];
//! # let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
//! let engine = ExchangeEngine::builder(&grid, &solver)
//!     .backend(ExecBackend::Comm { nranks: 2, strategy: BalanceStrategy::GreedyLpt })
//!     .collectives(CollectiveMode::Hierarchical)
//!     .fault_plan(FaultPlan::messages_only(7))
//!     .build()
//!     .unwrap();
//! let out = engine.energy(&orbitals, &pairs);
//! assert!(out.energy <= 0.0);
//! ```

pub use liair_basis as basis;
pub use liair_bgq as bgq;
pub use liair_core as core;
pub use liair_grid as grid;
pub use liair_integrals as integrals;
pub use liair_math as math;
pub use liair_md as md;
pub use liair_runtime as runtime;
pub use liair_scf as scf;
pub use liair_serve as serve;
pub use liair_xc as xc;

/// The most common imports in one place.
pub mod prelude {
    pub use liair_basis::{systems, Basis, Cell, Element, Molecule, ANGSTROM};
    pub use liair_bgq::{machine::scaling_series, MachineConfig};
    pub use liair_core::{
        build_pair_list, exchange_energy, simulate_hfx_build, BalanceStrategy, BuildProfile,
        CollectiveMode, EngineBuilder, Error as CoreError, ExchangeEngine, ExecBackend, FaultPlan,
        IncrementalExchange, OrbitalInfo, Result as CoreResult, Scheme, Workload,
    };
    pub use liair_grid::{foster_boys, MolGrid, PoissonSolver, RealGrid};
    pub use liair_math::{Mat, Vec3};
    pub use liair_md::{
        md_seed, CombinedForces, ForceField, HfxDeltaForces, IncrementalGridForces, MdOptions,
        MdState, MtsOptions, SplitForceProvider, Thermostat, XcForces,
    };
    pub use liair_runtime::{
        fit_torus, run_spmd_cfg, Comm, CommConfig, CommError, SeedConfig, SpmdRun, TrafficLog,
    };
    pub use liair_scf::{
        fci_two_electron, functional_energy, harmonic_frequencies, mp2_correlation, optimize_rhf,
        rhf, rks_lda, uhf, ScfOptions, ScfResult, UhfOptions,
    };
    pub use liair_serve::{
        run_and_verify, run_campaign, CampaignReport, CampaignSpec, Disruption, JobKind, JobReport,
        JobSpec, Observables, Service, ServiceConfig, ServiceReport,
    };
    pub use liair_xc::Functional;
}
