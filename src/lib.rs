//! # liair
//!
//! A reproduction of *"Shedding Light on Lithium/Air Batteries Using
//! Millions of Threads on the BG/Q Supercomputer"* (Weber, Bekas, Laino,
//! Curioni, Bertsch, Futral — IPDPS 2014) as a Rust workspace.
//!
//! The umbrella crate re-exports every subsystem:
//!
//! * [`math`] — FFTs, special functions, dense linear algebra;
//! * [`basis`] — molecules, Gaussian basis sets, periodic cells, the
//!   battery-study system builders;
//! * [`integrals`] — McMurchie–Davidson Gaussian integrals;
//! * [`grid`] — real-space grids, FFT Poisson solvers, Foster–Boys
//!   localization, Becke molecular quadrature;
//! * [`xc`] — LDA / PBE / PBE0 functionals;
//! * [`scf`] — RHF / RKS drivers;
//! * [`core`] — **the paper's contribution**: screened, load-balanced,
//!   pair-distributed exact exchange, with real executors and the BG/Q
//!   scale model;
//! * [`bgq`] — the 5-D-torus machine model;
//! * [`runtime`] — the SPMD message-passing runtime;
//! * [`md`] — molecular dynamics for the electrolyte application.
//!
//! ## Quickstart
//!
//! ```
//! use liair::prelude::*;
//!
//! // RHF on a water molecule with the embedded STO-3G basis.
//! let mol = systems::water();
//! let basis = Basis::sto3g(&mol);
//! let scf = rhf(&mol, &basis, &ScfOptions::default());
//! assert!(scf.converged);
//! assert!((scf.energy - (-74.96)).abs() < 0.1);
//! ```

pub use liair_basis as basis;
pub use liair_bgq as bgq;
pub use liair_core as core;
pub use liair_grid as grid;
pub use liair_integrals as integrals;
pub use liair_math as math;
pub use liair_md as md;
pub use liair_runtime as runtime;
pub use liair_scf as scf;
pub use liair_xc as xc;

/// The most common imports in one place.
pub mod prelude {
    pub use liair_basis::{systems, Basis, Cell, Element, Molecule, ANGSTROM};
    pub use liair_bgq::{machine::scaling_series, MachineConfig};
    pub use liair_core::{
        build_pair_list, exchange_energy, simulate_hfx_build, BalanceStrategy, OrbitalInfo, Scheme,
        Workload,
    };
    pub use liair_grid::{foster_boys, MolGrid, PoissonSolver, RealGrid};
    pub use liair_math::{Mat, Vec3};
    pub use liair_md::{ForceField, MdOptions, MdState, Thermostat};
    pub use liair_scf::{
        fci_two_electron, functional_energy, harmonic_frequencies, mp2_correlation, optimize_rhf,
        rhf, rks_lda, uhf, ScfOptions, ScfResult, UhfOptions,
    };
    pub use liair_xc::Functional;
}
