//! Molecular properties from the quantum-chemistry substrate: geometry
//! optimization on analytic gradients, harmonic frequencies, dipole
//! moments, MP2 correlation, and an open-shell (UHF) calculation on the
//! LiO₂ superoxide — the radical intermediate of the lithium/air cell.
//!
//! Run with: `cargo run --release --example molecular_properties`

use liair::prelude::*;
use liair::scf::optimize::{dipole_moment, harmonic_frequencies, optimize_rhf, AU_TO_DEBYE};

fn main() {
    let opts = ScfOptions::default();

    // --- water: optimize, vibrate, polarize, correlate ---
    println!("== H2O / STO-3G ==");
    let mol = systems::water();
    let res = optimize_rhf(&mol, &opts, 3e-4, 30);
    println!(
        "optimized in {} steps: E = {:.6} Ha (grad rms {:.1e})",
        res.steps, res.energy, res.grad_rms
    );
    let r_oh = res.mol.atoms[0].pos.distance(res.mol.atoms[1].pos);
    println!("  r(OH) = {:.4} Bohr = {:.4} A", r_oh, r_oh / ANGSTROM);

    let freqs = harmonic_frequencies(&res.mol, &opts, 5e-3);
    let modes: Vec<f64> = freqs.iter().copied().filter(|f| f.abs() > 500.0).collect();
    println!(
        "  harmonic modes: {:?} cm^-1 (3N-6 = 3 expected)",
        modes.iter().map(|f| f.round()).collect::<Vec<_>>()
    );

    let basis = Basis::sto3g(&res.mol);
    let scf = rhf(&res.mol, &basis, &opts);
    let mu = dipole_moment(&res.mol, &basis, &scf.density);
    println!("  dipole = {:.3} D", mu.norm() * AU_TO_DEBYE);
    let corr = mp2_correlation(&basis, &scf);
    println!(
        "  E(MP2 corr) = {:.6} Ha  ->  E(MP2) = {:.6} Ha",
        corr,
        scf.energy + corr
    );

    // 6-31G comparison.
    let b2 = Basis::b631g(&res.mol);
    let scf2 = rhf(&res.mol, &b2, &opts);
    println!(
        "  6-31G: E(RHF) = {:.6} Ha ({} AOs vs {})",
        scf2.energy,
        b2.nao(),
        basis.nao()
    );

    // --- the superoxide radical (open shell) ---
    println!("\n== LiO2 superoxide (doublet, UHF) ==");
    let mut lio2 = Molecule::new();
    lio2.push(Element::O, Vec3::new(0.0, 1.26, 0.0));
    lio2.push(Element::O, Vec3::new(0.0, -1.26, 0.0));
    lio2.push(Element::Li, Vec3::new(3.1, 0.0, 0.0));
    let b = Basis::sto3g(&lio2);
    let ne = lio2.nelectrons();
    let u = uhf(&lio2, &b, ne / 2 + 1, ne / 2, &UhfOptions::default());
    println!(
        "E(UHF) = {:.6} Ha in {} iterations, <S^2> = {:.4} (exact doublet: 0.75)",
        u.energy, u.iterations, u.s_squared
    );
    println!("the restricted code cannot even represent this species —");
    println!("open-shell intermediates are why Li/air chemistry needs care.");
}
