//! Ab initio molecular dynamics of a water molecule — the Born–Oppenheimer
//! MD the paper runs at scale, here with the full analytic machinery:
//! every step converges an RHF wavefunction and differentiates the energy
//! analytically (McMurchie–Davidson derivative integrals + Pulay terms).
//!
//! Prints the vibrating geometry, the SCF energy, and the NVE conserved
//! quantity along the trajectory.
//!
//! Run with: `cargo run --release --example aimd_water`

use liair::md::qmforce::RhfForces;
use liair::prelude::*;

fn main() {
    println!("== ab initio (RHF/STO-3G) MD of H2O, analytic gradients ==\n");
    let mut mol = systems::water();
    // Kick the symmetric stretch: elongate both OH bonds by 5 %.
    for k in 1..=2 {
        let d = mol.atoms[k].pos - mol.atoms[0].pos;
        mol.atoms[k].pos = mol.atoms[0].pos + d * 1.05;
    }

    let provider = RhfForces::default();
    let mut state = MdState::new(mol, None, &provider);
    let e0 = state.total_energy();
    println!("initial total energy: {:.6} Ha\n", e0);
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "step", "t [fs]", "r(OH) [a0]", "E_pot [Ha]", "drift [uHa]"
    );

    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::None,
        ..Default::default()
    };
    for step in 0..30 {
        state.step(&provider, &opts);
        if step % 3 == 0 {
            let r_oh = state.mol.atoms[0].pos.distance(state.mol.atoms[1].pos);
            println!(
                "{:>5} {:>12.2} {:>12.4} {:>12.6} {:>12.2}",
                step + 1,
                (step + 1) as f64 * 10.0 * liair::basis::AU_TIME_FS,
                r_oh,
                state.potential,
                (state.total_energy() - e0) * 1e6
            );
        }
    }
    println!(
        "\nfinal NVE drift: {:.2e} Ha over 30 steps — the OH bonds vibrate",
        (state.total_energy() - e0).abs()
    );
    println!("around equilibrium on the genuinely quantum potential surface.");
}
