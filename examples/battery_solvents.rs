//! The lithium/air-battery application: electrolyte stability against
//! Li₂O₂ attack.
//!
//! For each candidate solvent this example computes, with the *real*
//! quantum-chemistry stack:
//!
//! * RHF and PBE0 interaction energies of the solvent·Li₂O₂ contact
//!   complex (stronger binding ⇒ stronger peroxide attack on that site);
//!
//! and with the reactive-flavoured classical MD:
//!
//! * the number of solvent bonds broken in a hot (900 K) trajectory of the
//!   complex — the degradation-event count.
//!
//! Propylene carbonate (the incumbent electrolyte) degrades; the ether/
//! sulfoxide candidates survive — the paper's chemistry conclusion.
//!
//! Run with: `cargo run --release --example battery_solvents` (add `--all`
//! for all four solvents; default runs PC and DMSO, ~5 minutes).

use liair::md::analysis::BondEvents;
use liair::prelude::*;

fn scf_opts() -> ScfOptions {
    ScfOptions {
        energy_tol: 1e-7,
        max_iter: 120,
        ..ScfOptions::default()
    }
}

fn rhf_energy(mol: &Molecule) -> (ScfResult, Basis) {
    let basis = Basis::sto3g(mol);
    let res = rhf(mol, &basis, &scf_opts());
    assert!(res.converged, "SCF failed for {}", mol.formula());
    (res, basis)
}

fn main() {
    let all = std::env::args().any(|a| a == "--all");
    let solvents: Vec<systems::Solvent> = if all {
        systems::Solvent::all().to_vec()
    } else {
        vec![systems::Solvent::PropyleneCarbonate, systems::Solvent::Dmso]
    };

    println!("== Li/air electrolyte screening (STO-3G, PBE0 post-SCF) ==\n");
    // Shared fragment: the peroxide cluster.
    let cluster = systems::li2o2();
    let (scf_cluster, basis_cluster) = rhf_energy(&cluster);
    let e_cluster_pbe0 = functional_energy(
        &cluster,
        &basis_cluster,
        &scf_cluster,
        Functional::Pbe0,
        &scf_opts(),
    );
    println!(
        "Li2O2 cluster: E(RHF) = {:.5} Ha, E(PBE0) = {:.5} Ha\n",
        scf_cluster.energy, e_cluster_pbe0
    );

    println!(
        "{:<6} {:>14} {:>14} {:>16} {:>12}",
        "solvent", "E_int RHF (mHa)", "E_int PBE0 (mHa)", "bonds broken@1200K", "verdict"
    );
    for s in solvents {
        // --- quantum interaction energies ---
        let solvent = s.molecule();
        let complex = systems::li2o2_complex(s, 3.6);
        let (scf_s, basis_s) = rhf_energy(&solvent);
        let (scf_c, basis_c) = rhf_energy(&complex);
        let e_int_rhf = scf_c.energy - scf_s.energy - scf_cluster.energy;
        let pbe0_s = functional_energy(&solvent, &basis_s, &scf_s, Functional::Pbe0, &scf_opts());
        let pbe0_c = functional_energy(&complex, &basis_c, &scf_c, Functional::Pbe0, &scf_opts());
        let e_int_pbe0 = pbe0_c - pbe0_s - e_cluster_pbe0;

        // --- hot classical MD of the complex: degradation events ---
        let ff = ForceField::from_molecule(&complex, None);
        let n_solvent_bonds = liair::md::ForceField::from_molecule(&solvent, None)
            .bonds
            .len();
        let mut state = MdState::new(complex.clone(), None, &ff);
        state.thermalize_seeded(1200.0, Some(2014));
        let opts = MdOptions {
            dt: 15.0,
            thermostat: Thermostat::Berendsen {
                t_target: 1200.0,
                tau: 500.0,
            },
            ..Default::default()
        };
        let mut events = BondEvents::default();
        for _ in 0..4000 {
            state.step(&ff, &opts);
            let broken: Vec<usize> = ff
                .broken_bonds(&state.mol, None, 1.5)
                .into_iter()
                .filter(|&b| ff.bonds[b].i < solvent.natoms() && ff.bonds[b].j < solvent.natoms())
                .collect();
            events.record(&broken);
        }
        let _ = n_solvent_bonds;
        let verdict = if events.count() > 0 {
            "DEGRADES"
        } else {
            "stable"
        };
        println!(
            "{:<6} {:>14.1} {:>14.1} {:>16} {:>12}",
            s.name(),
            e_int_rhf * 1e3,
            e_int_pbe0 * 1e3,
            events.count(),
            verdict
        );
    }
    println!("\nMore negative interaction energy = stronger peroxide attack;");
    println!("broken solvent bonds in the hot trajectory = chemical degradation.");
}
