//! Condensed-phase MD of a periodic water box — the workload class whose
//! exact-exchange build the paper scales to 96 racks.
//!
//! Runs a 27-molecule box with the classical force field (equilibration +
//! production), reports energy conservation, temperature, and the O–O
//! radial distribution function, then builds the screened exchange pair
//! list for the *same* box geometry to show how the MD state feeds the HFX
//! workload.
//!
//! Run with: `cargo run --release --example water_box_md`

use liair::md::analysis::{drift_per_step, RdfAccumulator};
use liair::prelude::*;

fn main() {
    println!("== periodic water-box MD (27 H2O) ==\n");
    let (mol, cell) = systems::water_box(3, 42);
    println!(
        "box: {} atoms, edge {:.2} Bohr, density-matched lattice start",
        mol.natoms(),
        cell.lengths.x
    );
    let ff = ForceField::from_molecule(&mol, Some(&cell));
    println!(
        "force field: {} bonds, {} angles",
        ff.bonds.len(),
        ff.angles.len()
    );

    let mut state = MdState::new(mol, Some(cell), &ff);
    state.thermalize_seeded(300.0, Some(7));

    // Equilibrate with a thermostat.
    let eq = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::Berendsen {
            t_target: 300.0,
            tau: 300.0,
        },
        ..Default::default()
    };
    state.run(&ff, &eq, 1500);
    println!("\nafter equilibration: T = {:.0} K", state.temperature());

    // NVE production with RDF accumulation.
    let nve = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::None,
        ..Default::default()
    };
    let mut rdf = RdfAccumulator::new(Element::O, Element::O, 12.0, 48);
    let mut energies = Vec::new();
    for step in 0..2000 {
        state.step(&ff, &nve);
        energies.push(state.total_energy());
        if step % 20 == 0 {
            rdf.add_frame(&state.mol, &state.cell.unwrap());
        }
    }
    let drift = drift_per_step(&energies);
    println!(
        "NVE production: 2000 steps, energy drift {:.2e} Ha/step (total {:.1e} Ha)",
        drift,
        drift * 2000.0
    );

    println!("\nO–O radial distribution function:");
    let g = rdf.finish(&state.mol, &state.cell.unwrap());
    for &(r, gv) in g.iter().step_by(2) {
        let bar = "#".repeat((gv * 12.0).min(60.0) as usize);
        println!("  r = {:5.2} Bohr  g = {:5.2} {}", r, gv, bar);
    }

    // Feed the final frame to the exchange-workload machinery.
    println!("\nscreened exchange pair list for this frame (synthetic orbitals,");
    println!("4 valence orbitals per molecule at the O sites):");
    let orbitals: Vec<OrbitalInfo> = state
        .mol
        .atoms
        .iter()
        .filter(|a| a.element == Element::O)
        .flat_map(|a| {
            (0..4).map(move |_| OrbitalInfo {
                center: a.pos,
                spread: 1.5,
            })
        })
        .collect();
    for eps in [1e-4, 1e-6, 1e-8] {
        let pl = build_pair_list(&orbitals, eps, Some(&state.cell.unwrap()));
        println!(
            "  eps = {eps:>7.0e}: {:>6} of {:>6} pairs survive ({:.1}%)",
            pl.len(),
            pl.n_candidates,
            pl.survival() * 100.0
        );
    }
}
