//! Fault-tolerant distributed exchange: the same build, four ways.
//!
//! One screened exchange build runs serial (the bitwise reference), then
//! over the message-passing runtime with flat and hierarchical
//! collectives, then under a seeded fault plan that drops, delays,
//! duplicates, and stalls — and every energy agrees to the last bit,
//! because retransmission recovers lost messages and the root re-issues a
//! stalled rank's chunks through the identical kernel. Finally the gather
//! pattern is routed on the fitted 5-D torus to show what the hierarchy
//! buys at scale.
//!
//! Run with: `cargo run --release --example fault_tolerant_exchange`

use liair::core::screening::build_pair_list;
use liair::prelude::*;

fn main() {
    println!("== fault-tolerant distributed exchange ==\n");

    // Synthetic localized orbitals: normalized Gaussians in a box.
    let l = 14.0;
    let grid = RealGrid::cubic(Cell::cubic(l), 20);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = liair::math::rng::SplitMix64::new(99);
    let centers: Vec<Vec3> = (0..4)
        .map(|_| {
            Vec3::new(
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
            )
        })
        .collect();
    let orbitals: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            let alpha: f64 = 1.1;
            let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    norm * (-alpha * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
    println!(
        "workload: {} orbitals, {} screened pairs on a {}^3 grid",
        orbitals.len(),
        pairs.len(),
        20
    );

    // The bitwise reference: one worker, canonical order.
    let reference = ExchangeEngine::builder(&grid, &solver)
        .backend(ExecBackend::Serial)
        .no_faults()
        .build()
        .unwrap()
        .energy(&orbitals, &pairs);
    println!(
        "\nserial reference:        E_x = {:.12} Ha",
        reference.energy
    );

    // Distributed, clean wire, both collective families.
    for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
        let out = ExchangeEngine::builder(&grid, &solver)
            .backend(ExecBackend::Comm {
                nranks: 4,
                strategy: BalanceStrategy::GreedyLpt,
            })
            .collectives(mode)
            .no_faults()
            .build()
            .unwrap()
            .energy(&orbitals, &pairs);
        println!(
            "comm x4, {:<13} E_x = {:.12} Ha  (bitwise match: {})",
            format!("{}:", mode.name()),
            out.energy,
            out.energy.to_bits() == reference.energy.to_bits()
        );
    }

    // A hostile wire: 10% drops, 10% delays, 5% duplicates, stalled ranks.
    println!();
    for plan in [FaultPlan::messages_only(7), FaultPlan::with_stalls(13)] {
        let out = ExchangeEngine::builder(&grid, &solver)
            .backend(ExecBackend::Comm {
                nranks: 4,
                strategy: BalanceStrategy::GreedyLpt,
            })
            .fault_plan(plan)
            .build()
            .unwrap()
            .energy(&orbitals, &pairs);
        println!(
            "faulty wire (stall_p = {:.3}): E_x = {:.12} Ha  (bitwise match: {})",
            plan.stall_p,
            out.energy,
            out.energy.to_bits() == reference.energy.to_bits()
        );
        println!(
            "    degradation: {} rank(s) stalled, {} chunk(s) re-issued on the root, {} recv retries",
            out.profile.ranks_stalled, out.profile.chunks_reissued, out.profile.comm_retries
        );
    }

    // Route the gather pattern on the fitted torus: what the tree buys.
    println!("\ngather pattern routed on the fitted torus (32 ranks, 80 B each):");
    for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
        let nranks = 32;
        let cfg = CommConfig {
            mode,
            fault: None,
            torus: Some(fit_torus(nranks)),
        };
        let run = run_spmd_cfg(nranks, cfg, |comm| {
            comm.gather(0, vec![comm.rank() as f64; 10]).unwrap();
        })
        .unwrap();
        let log = run.traffic.unwrap();
        let machine = MachineConfig::bgq_nodes(nranks);
        println!(
            "  {:<13} {} wire messages, mean hops {:.2}, modeled time {:.2} us",
            format!("{}:", mode.name()),
            log.messages(),
            log.mean_hops(),
            log.modeled_comm_time(&machine) * 1e6
        );
    }
    println!(
        "\nat 98,304 nodes the flat gather pays (P-1)*alpha ~ 0.2 s per build;\n\
         the binomial tree pays ceil(log2 P)*alpha ~ 34 us — run\n\
         `repro bench-collectives` for the full modeled series."
    );
}
