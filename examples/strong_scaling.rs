//! Strong scaling of the exact-exchange build on the BG/Q model — the
//! paper's headline figure.
//!
//! The paper-scale workload (4096 localized orbitals, screened at ε=10⁻⁶)
//! is load-balanced with the real LPT balancer and priced on partitions
//! from 1 rack to the full 96-rack, 6,291,456-thread machine, for this
//! work's scheme and the two baselines.
//!
//! Run with: `cargo run --release --example strong_scaling`

use liair::bgq::collectives::CollectiveAlgo;
use liair::core::simulate::parallel_efficiency;
use liair::prelude::*;

fn main() {
    println!("== strong scaling of one HFX build (paper workload) ==\n");
    let w = Workload::paper_water_box();
    println!(
        "workload: {} — {} orbitals, {} of {} candidate pairs survive ε = {:.0e}",
        w.name,
        w.norb,
        w.pairs.len(),
        w.pairs.n_candidates,
        w.pairs.eps
    );

    let algo = CollectiveAlgo::TorusPipelined;
    let series = scaling_series();

    for (label, scheme) in [
        (
            "THIS WORK: pair-distributed, pair-local grids",
            Scheme::ours(),
        ),
        (
            "baseline: full-grid pairs (comparable approach)",
            Scheme::FullGridPairs,
        ),
        (
            "baseline: PW-distributed (prior state of the art)",
            Scheme::PwDistributed,
        ),
    ] {
        println!("\n--- {label} ---");
        println!(
            "{:>6} {:>9} {:>10} {:>12} {:>10} {:>11} {:>6}",
            "racks", "nodes", "threads", "time/build", "speedup", "efficiency", "group"
        );
        let outcomes: Vec<_> = series
            .iter()
            .map(|m| simulate_hfx_build(&w, m, scheme, algo))
            .collect();
        let eff = parallel_efficiency(&outcomes);
        let t0 = outcomes[0].time;
        for (o, e) in outcomes.iter().zip(&eff) {
            println!(
                "{:>6} {:>9} {:>10} {:>10.2} ms {:>9.1}x {:>10.1}% {:>6}",
                o.nodes / 1024,
                o.nodes,
                o.threads,
                o.time * 1e3,
                t0 / o.time,
                e * 100.0,
                o.group_size
            );
        }
    }

    println!("\nThe pair-distributed scheme keeps near-perfect efficiency to 96");
    println!("racks; the PW-distributed baseline stops gaining near ~0.26 M");
    println!("threads (pencil cap) — the >20x scalability gap of the abstract.");
}
