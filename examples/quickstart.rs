//! Quickstart: the full pipeline on one water molecule.
//!
//! 1. Converge restricted Hartree–Fock in the embedded STO-3G basis.
//! 2. Evaluate the PBE0 hybrid energy (25 % exact exchange) post-SCF.
//! 3. Localize the occupied orbitals (Foster–Boys) and recompute the exact
//!    exchange on a real-space grid via the pair-Poisson path — the kernel
//!    the paper distributes over 6.3 M threads — and compare it to the
//!    analytic value.
//!
//! Run with: `cargo run --release --example quickstart`

use liair::core::hfx::{analytic_exchange, analytic_exchange_orbitals, grid_exchange_for_molecule};
use liair::prelude::*;

fn main() {
    println!("== liair quickstart: H2O / STO-3G ==\n");
    let mol = systems::water();
    let basis = Basis::sto3g(&mol);
    println!(
        "molecule: {} ({} atoms, {} AOs)",
        mol.formula(),
        mol.natoms(),
        basis.nao()
    );

    // --- SCF ---
    let opts = ScfOptions::default();
    let scf = rhf(&mol, &basis, &opts);
    println!(
        "\nRHF converged in {} iterations: E = {:.6} Ha",
        scf.iterations, scf.energy
    );
    let b = scf.breakdown;
    println!(
        "  nuclear {:+.4}  core {:+.4}  Coulomb {:+.4}  exchange {:+.4}",
        b.e_nuc, b.e_core, b.e_coulomb, b.e_exchange
    );

    // --- hybrid functional ---
    let e_pbe0 = functional_energy(&mol, &basis, &scf, Functional::Pbe0, &opts);
    let e_pbe = functional_energy(&mol, &basis, &scf, Functional::Pbe, &opts);
    println!("\npost-SCF functionals on the converged density:");
    println!("  PBE   : {:.6} Ha", e_pbe);
    println!(
        "  PBE0  : {:.6} Ha  (the paper's production functional)",
        e_pbe0
    );

    // --- grid exact exchange (the paper's kernel) ---
    let e_x_all = analytic_exchange(&basis, &scf.density, 0.0);
    println!(
        "\nexact exchange, analytic, all orbitals (−¼ Tr DK): {:.6} Ha",
        e_x_all
    );
    println!("valence-only grid pair-Poisson path (O 1s core handled by the");
    println!("pseudopotential in the paper's plane-wave setting, filtered here):");
    let mut want = f64::NAN;
    for n in [48usize, 64, 80] {
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, n, 7.0, 1e-8, 0.4);
        if want.is_nan() {
            want = analytic_exchange_orbitals(&out.basis_centered, &out.c_kept, out.c_kept.ncols());
            println!("  analytic valence reference          : {:.6} Ha", want);
        }
        println!(
            "  grid {n:>3}³                            : {:.6} Ha  (err {:.2e}, {} pairs, {} core skipped)",
            out.result.energy,
            (out.result.energy - want).abs(),
            out.pairs.len(),
            out.n_core_skipped
        );
    }
    println!("\nThe grid path converges to the analytic value — the same pair");
    println!("tasks, screened and load-balanced, are what `liair-core` scales");
    println!("to 6,291,456 threads on the BG/Q model (see `strong_scaling`).");
}
