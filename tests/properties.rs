//! Cross-crate property-based tests (proptest) on the core invariants.

use liair::bgq::Torus5D;
use liair::core::{assign_pairs, build_pair_list, BalanceStrategy, OrbitalInfo};
use liair::grid::{CoulombKernel, PoissonSolver, RealGrid};
use liair::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Screening never drops diagonal pairs and the kept count is monotone
    /// non-increasing in ε.
    #[test]
    fn screening_monotone_in_eps(
        seed in 0u64..1000,
        norb in 2usize..20,
        eps1 in 1e-10f64..1e-2,
        ratio in 1.0f64..1e6,
    ) {
        let mut rng = liair::math::rng::SplitMix64::new(seed);
        let orbitals: Vec<OrbitalInfo> = (0..norb)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, 25.0),
                    rng.range_f64(0.0, 25.0),
                    rng.range_f64(0.0, 25.0),
                ),
                spread: rng.range_f64(0.5, 2.0),
            })
            .collect();
        let eps2 = (eps1 * ratio).min(1.0);
        let loose = build_pair_list(&orbitals, eps1, None);
        let tight = build_pair_list(&orbitals, eps2, None);
        prop_assert!(tight.len() <= loose.len());
        // Diagonals always survive.
        prop_assert!(tight.pairs.iter().filter(|p| p.i == p.j).count() == norb);
    }

    /// LPT makespan obeys the 4/3·OPT-lower-bound witness for arbitrary
    /// positive costs and rank counts.
    #[test]
    fn lpt_within_four_thirds_of_witness(
        seed in 0u64..1000,
        ntasks in 1usize..200,
        nranks in 1usize..32,
    ) {
        let mut rng = liair::math::rng::SplitMix64::new(seed);
        let costs: Vec<f64> = (0..ntasks).map(|_| rng.range_f64(0.01, 10.0)).collect();
        let a = liair::core::balance::assign(&costs, nranks, BalanceStrategy::GreedyLpt);
        let total: f64 = costs.iter().sum();
        let witness = (total / nranks as f64)
            .max(costs.iter().copied().fold(0.0, f64::max));
        prop_assert!(a.makespan() <= 4.0 / 3.0 * witness + 1e-9);
    }

    /// Torus hop distance is a metric and never exceeds the diameter.
    #[test]
    fn torus_metric_properties(
        d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6,
        d3 in 1usize..6, d4 in 1usize..3,
        sa in 0usize..1000, sb in 0usize..1000, sc in 0usize..1000,
    ) {
        let t = Torus5D::new([d0, d1, d2, d3, d4]);
        let n = t.nodes();
        let (a, b, c) = (sa % n, sb % n, sc % n);
        prop_assert_eq!(t.hops(a, a), 0);
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
        prop_assert!(t.hops(a, b) <= t.diameter());
    }

    /// The periodic Poisson solver is linear and produces zero-mean
    /// potentials (G = 0 projected out).
    #[test]
    fn poisson_linearity_and_zero_mean(seed in 0u64..200) {
        let grid = RealGrid::cubic(Cell::cubic(8.0), 8);
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let mut rng = liair::math::rng::SplitMix64::new(seed);
        let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + 2.0 * y).collect();
        let va = solver.solve(&a);
        let vb = solver.solve(&b);
        let vs = solver.solve(&sum);
        for i in (0..grid.len()).step_by(41) {
            prop_assert!((vs[i] - (va[i] + 2.0 * vb[i])).abs() < 1e-10);
        }
        let mean: f64 = va.iter().sum::<f64>() / va.len() as f64;
        prop_assert!(mean.abs() < 1e-10);
    }

    /// Exchange-pair energies are non-negative for any real field
    /// (positive-definiteness of the Coulomb kernel).
    #[test]
    fn pair_energy_nonnegative(seed in 0u64..200) {
        let grid = RealGrid::cubic(Cell::cubic(10.0), 8);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = liair::math::rng::SplitMix64::new(seed);
        let rho: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let (e, _) = solver.exchange_pair(&rho);
        prop_assert!(e >= -1e-10);
    }

    /// Pair assignment is a partition for any strategy.
    #[test]
    fn assignment_is_partition(
        seed in 0u64..500,
        norb in 2usize..16,
        nranks in 1usize..9,
        strat_pick in 0usize..3,
    ) {
        let mut rng = liair::math::rng::SplitMix64::new(seed);
        let orbitals: Vec<OrbitalInfo> = (0..norb)
            .map(|_| OrbitalInfo {
                center: Vec3::new(rng.range_f64(0.0, 10.0), 0.0, 0.0),
                spread: 1.0,
            })
            .collect();
        let pl = build_pair_list(&orbitals, 1e-4, None);
        let strat = [
            BalanceStrategy::RoundRobin,
            BalanceStrategy::Block,
            BalanceStrategy::GreedyLpt,
        ][strat_pick];
        let a = assign_pairs(&pl, nranks, strat);
        let assigned: usize = a.per_rank.iter().map(|v| v.len()).sum();
        prop_assert_eq!(assigned, pl.len());
    }

    /// r-RESPA MTS with `n_inner = 1` is bit-identical (positions,
    /// velocities, conserved quantity) to the plain velocity-Verlet path
    /// driving the combined fast+slow provider — for any geometry seed,
    /// timestep, and thermostat. The guarantee that makes the MTS path a
    /// safe default at `n_inner = 1`.
    #[test]
    fn mts_n_inner_1_bit_identical(
        seed in 0u64..10_000,
        dt in 5.0f64..25.0,
        steps in 1usize..6,
        thermo in 0usize..3,
    ) {
        use liair::md::mts::{CombinedForces, MtsOptions, SplitForceProvider};
        use liair::md::ForceField;
        use liair::basis::Molecule;

        struct TetherSplit {
            ff: ForceField,
            anchors: Vec<Vec3>,
            k: f64,
        }
        impl SplitForceProvider for TetherSplit {
            fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
                self.ff.energy_forces(mol, cell)
            }
            fn slow_correction(
                &self,
                mol: &Molecule,
                _cell: Option<&Cell>,
                _fast: (f64, &[Vec3]),
            ) -> (f64, Vec<Vec3>) {
                let mut e = 0.0;
                let forces = mol
                    .atoms
                    .iter()
                    .zip(&self.anchors)
                    .map(|(a, &r0)| {
                        let d = a.pos - r0;
                        let r2 = d.norm_sqr();
                        e += 0.25 * self.k * r2 * r2;
                        -d * (self.k * r2)
                    })
                    .collect();
                (e, forces)
            }
        }

        let (mol, cell) = systems::water_box(2, seed);
        let split = TetherSplit {
            ff: ForceField::from_molecule(&mol, Some(&cell)),
            anchors: mol.atoms.iter().map(|a| a.pos).collect(),
            k: 1e-4,
        };
        let mut mts = MdState::new_split(mol.clone(), Some(cell), &split);
        let mut plain = MdState::new(mol, Some(cell), &CombinedForces(&split));
        mts.thermalize_seeded(300.0, Some(seed));
        plain.thermalize_seeded(300.0, Some(seed));
        let thermostat = match thermo {
            0 => Thermostat::None,
            1 => Thermostat::Berendsen { t_target: 300.0, tau: 250.0 },
            _ => Thermostat::NoseHoover { t_target: 300.0, tau: 350.0 },
        };
        let opts = MdOptions { dt, thermostat, mts: MtsOptions { n_inner: 1 } };
        for _ in 0..steps {
            mts.step_mts(&split, &opts);
            plain.step(&CombinedForces(&split), &opts);
        }
        prop_assert_eq!(mts.potential.to_bits(), plain.potential.to_bits());
        prop_assert_eq!(mts.total_energy().to_bits(), plain.total_energy().to_bits());
        prop_assert_eq!(mts.nh_xi.to_bits(), plain.nh_xi.to_bits());
        prop_assert_eq!(mts.nh_eta.to_bits(), plain.nh_eta.to_bits());
        for i in 0..mts.mol.natoms() {
            for axis in 0..3 {
                prop_assert!(
                    mts.mol.atoms[i].pos[axis].to_bits()
                        == plain.mol.atoms[i].pos[axis].to_bits(),
                    "position diverged: atom {}, axis {}", i, axis
                );
                prop_assert!(
                    mts.velocities[i][axis].to_bits()
                        == plain.velocities[i][axis].to_bits(),
                    "velocity diverged: atom {}, axis {}", i, axis
                );
            }
        }
    }
}
