//! End-to-end integration: SCF → localization → screening → grid exact
//! exchange → machine-scale simulation, across crate boundaries.

use liair::core::hfx::{analytic_exchange_orbitals, grid_exchange_for_molecule};
use liair::prelude::*;

/// The full molecular pipeline on a hydrogen-molecule dimer: converge RHF,
/// localize, screen, evaluate grid exchange, and match the analytic
/// orbital-pair reference.
#[test]
fn full_pipeline_h2_dimer() {
    let mut mol = systems::h2();
    let mut second = systems::h2();
    second.translate(Vec3::new(0.0, 5.0, 0.0));
    mol.merge(&second);

    let basis = Basis::sto3g(&mol);
    let scf = rhf(&mol, &basis, &ScfOptions::default());
    assert!(scf.converged);
    // Two H2 units: E ≈ 2 × E(H2) plus a small interaction.
    assert!(
        (scf.energy - 2.0 * (-1.1167)).abs() < 0.05,
        "E = {}",
        scf.energy
    );

    let out = grid_exchange_for_molecule(&mol, &basis, &scf, 64, 7.0, 0.0, 0.0);
    let want = analytic_exchange_orbitals(&out.basis_centered, &out.c_kept, out.c_kept.ncols());
    assert!(
        (out.result.energy - want).abs() < 5e-3,
        "grid {} vs analytic {}",
        out.result.energy,
        want
    );
}

/// The PBE0 hybrid total energy is consistent across code paths: the
/// breakdown identity E(PBE0) = E(RHF) − 0.75·E_x^{HF} + E_xc^{PBE0,DFT}
/// holds exactly on the same density.
#[test]
fn pbe0_identity_on_rhf_density() {
    let mol = systems::h2();
    let basis = Basis::sto3g(&mol);
    let opts = ScfOptions::default();
    let scf = rhf(&mol, &basis, &opts);
    let e_pbe0 = functional_energy(&mol, &basis, &scf, Functional::Pbe0, &opts);
    let e_hf = functional_energy(&mol, &basis, &scf, Functional::Hf, &opts);
    // e_hf reproduces the RHF energy on the converged density.
    assert!((e_hf - scf.energy).abs() < 1e-8);
    // The hybrid's DFT-correlation pull puts it below bare HF…
    let e_pbe = functional_energy(&mol, &basis, &scf, Functional::Pbe, &opts);
    assert!(e_pbe0 < e_hf, "PBE0 {e_pbe0} not below HF {e_hf}");
    // …and within the exchange-admixture scale of PBE (25 % of E_x).
    assert!(
        (e_pbe0 - e_pbe).abs() < 0.25 * scf.breakdown.e_exchange.abs() + 1e-6,
        "PBE0 {e_pbe0} vs PBE {e_pbe}, Ex = {}",
        scf.breakdown.e_exchange
    );
}

/// The condensed workload pipeline: screening feeds the balancer feeds the
/// machine model, and the simulated build is deterministic.
#[test]
fn workload_to_simulation_deterministic() {
    use liair::bgq::collectives::CollectiveAlgo;
    let w = Workload::condensed("itest", 512, 30.0, 1.5, 1e-6, 32, 64, 11);
    let m = MachineConfig::bgq_racks(2);
    let a = simulate_hfx_build(&w, &m, Scheme::ours(), CollectiveAlgo::TorusPipelined);
    let b = simulate_hfx_build(&w, &m, Scheme::ours(), CollectiveAlgo::TorusPipelined);
    assert_eq!(a.time, b.time);
    assert_eq!(a.group_size, b.group_size);
    // And the machine threads line up with the partition.
    assert_eq!(a.threads, 2 * 1024 * 64);
}

/// Localization and screening interplay: screened exchange on the paper's
/// own accuracy knob stays within the bound predicted by the screening
/// model.
#[test]
fn screening_knob_controls_error_end_to_end() {
    let mol = liair_bench_chain(4);
    let basis = Basis::sto3g(&mol);
    let scf = rhf(&mol, &basis, &ScfOptions::default());
    let exact = grid_exchange_for_molecule(&mol, &basis, &scf, 48, 6.0, 0.0, 0.0);
    let mut last_err = 0.0;
    for eps in [1e-6, 1e-3, 1e-1] {
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, 48, 6.0, eps, 0.0);
        let err = (out.result.energy - exact.result.energy).abs();
        assert!(err >= last_err - 1e-12, "error not monotone at eps={eps}");
        last_err = err;
    }
    // Even the loosest screening keeps the error far below the total.
    assert!(last_err < 0.05 * exact.result.energy.abs());
}

fn liair_bench_chain(n: usize) -> Molecule {
    let mut all = Molecule::new();
    for k in 0..n {
        let mut m = systems::h2();
        m.translate(Vec3::new(0.0, k as f64 * 4.5, 0.0));
        all.merge(&m);
    }
    all
}
