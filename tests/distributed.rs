//! Integration: the message-passing exchange implementation against the
//! shared-memory executor, with *real* molecular orbitals (not synthetic
//! fields) — crossing scf, grid, runtime and core.

use liair::core::distributed::distributed_exchange;
use liair::core::hfx::exchange_energy;
use liair::grid::orbitals_on_grid;
use liair::prelude::*;

fn setup() -> (
    RealGrid,
    PoissonSolver,
    Vec<Vec<f64>>,
    liair::core::PairList,
) {
    // An H2 trimer: 3 localized orbitals with nontrivial pair structure.
    let mut mol = systems::h2();
    for k in 1..3 {
        let mut m = systems::h2();
        m.translate(Vec3::new(0.0, k as f64 * 4.0, 0.0));
        mol.merge(&m);
    }
    let basis = Basis::sto3g(&mol);
    let scf = rhf(&mol, &basis, &ScfOptions::default());
    assert!(scf.converged);

    // Center in a box and localize.
    let edge = 22.0;
    let shift = Vec3::splat(edge / 2.0) - mol.centroid();
    let mut mol_c = mol.clone();
    mol_c.translate(shift);
    let mut basis_c = basis.clone();
    basis_c.update_centers(&mol_c);
    let loc = foster_boys(&basis_c, &scf.c, scf.nocc, 60);

    let grid = RealGrid::cubic(Cell::cubic(edge), 40);
    let solver = PoissonSolver::isolated(grid);
    let fields = orbitals_on_grid(&basis_c, &loc.c_loc, scf.nocc, &grid);
    let infos: Vec<OrbitalInfo> = loc
        .centers
        .iter()
        .zip(&loc.spreads)
        .map(|(&c, &s)| OrbitalInfo {
            center: c,
            spread: s.max(0.3),
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, None);
    (grid, solver, fields, pairs)
}

#[test]
fn message_passing_matches_shared_memory_on_real_orbitals() {
    let (grid, solver, fields, pairs) = setup();
    let serial = exchange_energy(&grid, &solver, &fields, &pairs);
    assert!(serial.energy < 0.0);
    for nranks in [2, 4] {
        for strat in [BalanceStrategy::RoundRobin, BalanceStrategy::GreedyLpt] {
            let dist = distributed_exchange(&grid, &solver, &fields, &pairs, nranks, strat);
            assert!(
                (dist.energy - serial.energy).abs() < 1e-10,
                "nranks={nranks}: {} vs {}",
                dist.energy,
                serial.energy
            );
        }
    }
}

#[test]
fn partial_sums_cover_every_pair_exactly_once() {
    // The assignment underlying the distributed run partitions the task
    // list — no pair computed twice, none dropped.
    let (_, _, _, pairs) = setup();
    for nranks in [1, 3, 7] {
        let a = liair::core::assign_pairs(&pairs, nranks, BalanceStrategy::GreedyLpt);
        let mut seen = vec![false; pairs.len()];
        for tasks in &a.per_rank {
            for &t in tasks {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
