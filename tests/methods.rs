//! Cross-method integration: the electronic-structure hierarchy and the
//! MD substrate, spanning basis / integrals / scf / md.

use liair::prelude::*;
use liair::scf::fci::fci_two_electron;

/// The variational ladder on one system and two bases:
/// RHF(STO-3G) > RHF(6-31G); FCI < MP2-ish < RHF within each basis.
#[test]
fn method_hierarchy_h2() {
    let mol = systems::h2();
    let opts = ScfOptions::default();
    let mut previous_fci = 0.0;
    for (k, basis) in [Basis::sto3g(&mol), Basis::b631g(&mol)]
        .into_iter()
        .enumerate()
    {
        let scf = rhf(&mol, &basis, &opts);
        assert!(scf.converged);
        let corr = mp2_correlation(&basis, &scf);
        let fci = fci_two_electron(&mol, &basis, &scf);
        assert!(corr < 0.0);
        assert!(fci.energy < scf.energy, "FCI must be below RHF");
        assert!(
            fci.energy <= scf.energy + corr + 5e-3,
            "FCI {} vs MP2 {}",
            fci.energy,
            scf.energy + corr
        );
        if k == 1 {
            assert!(fci.energy < previous_fci, "bigger basis must lower FCI");
        }
        previous_fci = fci.energy;
    }
}

/// Open-shell vs closed-shell bookkeeping: UHF on a closed-shell system
/// reproduces RHF; on the superoxide radical it produces a clean doublet.
#[test]
fn uhf_rhf_consistency_and_radical() {
    let mol = systems::lih();
    let basis = Basis::sto3g(&mol);
    let r = rhf(&mol, &basis, &ScfOptions::default());
    let u = uhf(&mol, &basis, 2, 2, &UhfOptions::default());
    assert!(u.converged);
    assert!(
        (u.energy - r.energy).abs() < 1e-6,
        "{} vs {}",
        u.energy,
        r.energy
    );
    assert!(u.s_squared.abs() < 1e-6);
}

/// Ewald and the DSF force field agree on the *forces* of a weakly-charged
/// molecular configuration at short range better than either agrees with
/// zero — a sanity cross-check between the two electrostatics backends.
#[test]
fn ewald_is_consistent_with_direct_sum_in_big_cell() {
    use liair::md::ewald::{ewald_energy_forces, EwaldParams};
    // Two opposite charges in a huge cell: Ewald → bare Coulomb.
    let cell = Cell::cubic(60.0);
    let r = 3.0;
    let pos = vec![
        Vec3::new(30.0 - r / 2.0, 30.0, 30.0),
        Vec3::new(30.0 + r / 2.0, 30.0, 30.0),
    ];
    let chg = vec![1.0, -1.0];
    let params = EwaldParams {
        alpha: 0.25,
        r_cut: 25.0,
        k_max: 10,
    };
    let (e, f) = ewald_energy_forces(&cell, &pos, &chg, &params);
    // Isolated pair: E = −1/r, attractive forces along ±x.
    assert!((e - (-1.0 / r)).abs() < 1e-3, "E = {e} vs {}", -1.0 / r);
    assert!(f[0].x > 0.0 && f[1].x < 0.0, "not attractive: {f:?}");
    assert!((f[0].x.abs() - 1.0 / (r * r)).abs() < 1e-3);
}

/// The optimizer's minimum is a true stationary point of the analytic
/// gradient AND the finite-difference energy surface.
#[test]
fn optimized_geometry_is_stationary() {
    use liair::scf::optimize::optimize_rhf;
    let res = optimize_rhf(&systems::h2(), &ScfOptions::default(), 1e-6, 60);
    assert!(res.converged);
    // FD check: energy rises in both directions along the bond.
    let e_at = |r: f64| {
        let mut m = res.mol.clone();
        let dir = (m.atoms[1].pos - m.atoms[0].pos).normalized();
        m.atoms[1].pos = m.atoms[0].pos + dir * r;
        let b = Basis::sto3g(&m);
        rhf(&m, &b, &ScfOptions::default()).energy
    };
    let r0 = res.mol.atoms[0].pos.distance(res.mol.atoms[1].pos);
    let e0 = e_at(r0);
    assert!(e_at(r0 + 0.02) > e0);
    assert!(e_at(r0 - 0.02) > e0);
}

/// Pinned NVE energy-conservation baseline for the single-time-step
/// velocity-Verlet integrator on a small periodic box — the reference
/// the bench-mts drift comparison (EXPERIMENTS.md) is judged against.
/// The bound is ~2× the measured max |E(t) − E(0)| of this seeded
/// trajectory, so a regression of the integrator or the force field
/// shows up as a hard failure here before it muddies any MTS result.
#[test]
fn nve_drift_regression_water_box() {
    let (mol, cell) = systems::water_box(2, 11);
    let ff = liair::md::ForceField::from_molecule(&mol, Some(&cell));
    let mut state = MdState::new(mol, Some(cell), &ff);
    state.thermalize_seeded(300.0, Some(11));
    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::None,
        ..Default::default()
    };
    let e0 = state.total_energy();
    let mut max_drift = 0.0f64;
    for _ in 0..400 {
        state.step(&ff, &opts);
        max_drift = max_drift.max((state.total_energy() - e0).abs());
    }
    assert!(
        max_drift < 4e-4,
        "NVE drift regression: max |dE| = {max_drift} Ha over 400 steps (pinned bound 4e-4)"
    );
}

/// Nosé–Hoover NVT and the screened pair workload compose: a thermostatted
/// water box frame feeds a screened pair list whose survival fraction
/// behaves like the lattice-start frame's.
#[test]
fn nvt_frame_feeds_screening() {
    use liair::md::analysis::drift_per_step;
    let (mol, cell) = systems::water_box(2, 17);
    let ff = liair::md::ForceField::from_molecule(&mol, Some(&cell));
    let mut state = MdState::new(mol, Some(cell), &ff);
    state.thermalize_seeded(300.0, Some(3));
    let opts = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::NoseHoover {
            t_target: 300.0,
            tau: 400.0,
        },
        ..Default::default()
    };
    let mut h_series = Vec::new();
    for _ in 0..400 {
        state.step(&ff, &opts);
        h_series.push(state.nose_hoover_conserved(300.0, 400.0));
    }
    assert!(drift_per_step(&h_series).abs() < 1e-5, "NH conserved drift");
    // Screening on the evolved frame.
    let orbitals: Vec<OrbitalInfo> = state
        .mol
        .atoms
        .iter()
        .filter(|a| a.element == Element::O)
        .map(|a| OrbitalInfo {
            center: a.pos,
            spread: 1.5,
        })
        .collect();
    let pl = build_pair_list(&orbitals, 1e-4, Some(&state.cell.unwrap()));
    assert!(pl.survival() > 0.1 && pl.survival() <= 1.0);
}
