//! Property-based tests of the numerical kernels.

use liair_math::fft::{dft_reference, fft, ifft};
use liair_math::fft3::{fft3, to_complex};
use liair_math::linalg::{eigh, try_solve, Mat};
use liair_math::rfft::{half_len, irfft3, irfft3_into, rfft3, rfft3_into};
use liair_math::rng::SplitMix64;
use liair_math::special::{boys, erf};
use liair_math::Complex64;
use proptest::prelude::*;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect()
}

fn random_real(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

/// Mix of power-of-two and odd/mixed grid shapes, indexed so proptest can
/// pick one: both the packed even r2c path and the odd fallback run.
const RFFT_DIMS: [(usize, usize, usize); 8] = [
    (4, 4, 4),
    (8, 8, 8),
    (2, 3, 5),
    (3, 5, 7),
    (8, 4, 6),
    (5, 5, 5),
    (4, 6, 9),
    (16, 2, 8),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT round-trip is the identity for any length (radix-2 and
    /// Bluestein paths both covered).
    #[test]
    fn fft_roundtrip_any_length(n in 1usize..200, seed in 0u64..1000) {
        let x = random_signal(n, seed);
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        let err = x.iter().zip(&y).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-9, "n={n}: err {err}");
    }

    /// Parseval's theorem for arbitrary length.
    #[test]
    fn fft_parseval(n in 2usize..128, seed in 0u64..1000) {
        let x = random_signal(n, seed);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let fe: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-8 * te.max(1.0));
    }

    /// FFT matches the O(n²) reference DFT on awkward (prime) lengths.
    #[test]
    fn fft_matches_reference_on_primes(pick in 0usize..8, seed in 0u64..500) {
        let primes = [3usize, 7, 11, 13, 17, 19, 23, 29];
        let n = primes[pick];
        let x = random_signal(n, seed);
        let want = dft_reference(&x, false);
        let mut got = x;
        fft(&mut got);
        let err = got.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-9, "n={n}: err {err}");
    }

    /// The real-FFT round-trip irfft3(rfft3(x)) is the identity for any
    /// grid shape (even pack-trick and odd fallback paths both covered),
    /// through both the threaded and the serial zero-alloc entry points.
    #[test]
    fn rfft3_roundtrip_is_identity(pick in 0usize..8, seed in 0u64..1000) {
        let dims = RFFT_DIMS[pick];
        let n = dims.0 * dims.1 * dims.2;
        let x = random_real(n, seed);
        let back = irfft3(rfft3(&x, dims), dims);
        let err = x.iter().zip(&back).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-10, "dims {dims:?}: threaded err {err}");
        let mut half = vec![Complex64::ZERO; half_len(dims)];
        rfft3_into(&x, dims, &mut half);
        let mut serial = vec![0.0; n];
        irfft3_into(&mut half, dims, &mut serial);
        let err = x.iter().zip(&serial).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-10, "dims {dims:?}: serial err {err}");
    }

    /// The half-spectrum bins of rfft3 agree exactly with the matching
    /// bins of the complex fft3 on random real fields.
    #[test]
    fn rfft3_matches_fft3(pick in 0usize..8, seed in 0u64..1000) {
        let dims = RFFT_DIMS[pick];
        let (nx, ny, nz) = dims;
        let x = random_real(nx * ny * nz, seed);
        let half = rfft3(&x, dims);
        let mut full = to_complex(&x, dims);
        fft3(&mut full);
        let nzh = nz / 2 + 1;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nzh {
                    let err = (*half.get(ix, iy, iz) - *full.get(ix, iy, iz)).abs();
                    prop_assert!(
                        err < 1e-9 * ((nx * ny * nz) as f64).max(8.0),
                        "dims {dims:?} bin ({ix},{iy},{iz}): err {err}"
                    );
                }
            }
        }
    }

    /// Parseval on the half-spectrum: Σ x² = (1/N)·Σ w_k |X_k|² with
    /// weight 1 on the self-conjugate z-planes and 2 elsewhere.
    #[test]
    fn rfft3_parseval_half_spectrum(pick in 0usize..8, seed in 0u64..1000) {
        let dims = RFFT_DIMS[pick];
        let (nx, ny, nz) = dims;
        let n = nx * ny * nz;
        let x = random_real(n, seed);
        let time: f64 = x.iter().map(|v| v * v).sum();
        let half = rfft3(&x, dims);
        let nzh = nz / 2 + 1;
        let mut freq = 0.0;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nzh {
                    let w = if iz == 0 || (nz % 2 == 0 && iz == nzh - 1) { 1.0 } else { 2.0 };
                    freq += w * half.get(ix, iy, iz).norm_sqr();
                }
            }
        }
        freq /= n as f64;
        prop_assert!((time - freq).abs() < 1e-9 * time.max(1.0), "dims {dims:?}: {time} vs {freq}");
    }

    /// The Jacobi eigensolver reconstructs any symmetric matrix.
    #[test]
    fn eigh_reconstruction(n in 1usize..12, seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.next_f64() * 2.0 - 1.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (vals, vecs) = eigh(&a);
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = vals[i];
        }
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        prop_assert!(rec.sub(&a).fro_norm() < 1e-9 * (1.0 + a.fro_norm()));
        // Eigenvalues ascending.
        for w in vals.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    /// LU solve inverts any well-conditioned random system.
    #[test]
    fn solve_recovers_solution(n in 1usize..15, seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rng.next_f64() - 0.5;
            }
            a[(i, i)] += 3.0; // diagonal dominance → well-conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true);
        let x = try_solve(&a, &b).expect("well-conditioned");
        for (g, w) in x.iter().zip(&x_true) {
            prop_assert!((g - w).abs() < 1e-8);
        }
    }

    /// Boys values are positive, decreasing in m, and satisfy the
    /// downward recursion everywhere.
    #[test]
    fn boys_recursion_everywhere(x in 0.0f64..200.0) {
        let f = boys(8, x);
        for m in 0..8 {
            prop_assert!(f[m] > 0.0);
            prop_assert!(f[m + 1] <= f[m] + 1e-15);
            if x > 1e-10 {
                let rhs = ((2 * m + 1) as f64 * f[m] - (-x).exp()) / (2.0 * x);
                prop_assert!((f[m + 1] - rhs).abs() < 1e-8 * (1.0 + f[m]), "m={m} x={x}");
            }
        }
    }

    /// erf is odd, bounded, and monotone.
    #[test]
    fn erf_properties(x in -6.0f64..6.0, dx in 1e-6f64..0.5) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!(erf(x + dx) >= erf(x));
    }
}
