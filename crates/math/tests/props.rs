//! Property-based tests of the numerical kernels.

use liair_math::fft::{dft_reference, fft, ifft};
use liair_math::linalg::{eigh, try_solve, Mat};
use liair_math::rng::SplitMix64;
use liair_math::special::{boys, erf};
use liair_math::Complex64;
use proptest::prelude::*;

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT round-trip is the identity for any length (radix-2 and
    /// Bluestein paths both covered).
    #[test]
    fn fft_roundtrip_any_length(n in 1usize..200, seed in 0u64..1000) {
        let x = random_signal(n, seed);
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        let err = x.iter().zip(&y).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-9, "n={n}: err {err}");
    }

    /// Parseval's theorem for arbitrary length.
    #[test]
    fn fft_parseval(n in 2usize..128, seed in 0u64..1000) {
        let x = random_signal(n, seed);
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let fe: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-8 * te.max(1.0));
    }

    /// FFT matches the O(n²) reference DFT on awkward (prime) lengths.
    #[test]
    fn fft_matches_reference_on_primes(pick in 0usize..8, seed in 0u64..500) {
        let primes = [3usize, 7, 11, 13, 17, 19, 23, 29];
        let n = primes[pick];
        let x = random_signal(n, seed);
        let want = dft_reference(&x, false);
        let mut got = x;
        fft(&mut got);
        let err = got.iter().zip(&want).map(|(a, b)| (*a - *b).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-9, "n={n}: err {err}");
    }

    /// The Jacobi eigensolver reconstructs any symmetric matrix.
    #[test]
    fn eigh_reconstruction(n in 1usize..12, seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.next_f64() * 2.0 - 1.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (vals, vecs) = eigh(&a);
        let mut lam = Mat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = vals[i];
        }
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        prop_assert!(rec.sub(&a).fro_norm() < 1e-9 * (1.0 + a.fro_norm()));
        // Eigenvalues ascending.
        for w in vals.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    /// LU solve inverts any well-conditioned random system.
    #[test]
    fn solve_recovers_solution(n in 1usize..15, seed in 0u64..500) {
        let mut rng = SplitMix64::new(seed);
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rng.next_f64() - 0.5;
            }
            a[(i, i)] += 3.0; // diagonal dominance → well-conditioned
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true);
        let x = try_solve(&a, &b).expect("well-conditioned");
        for (g, w) in x.iter().zip(&x_true) {
            prop_assert!((g - w).abs() < 1e-8);
        }
    }

    /// Boys values are positive, decreasing in m, and satisfy the
    /// downward recursion everywhere.
    #[test]
    fn boys_recursion_everywhere(x in 0.0f64..200.0) {
        let f = boys(8, x);
        for m in 0..8 {
            prop_assert!(f[m] > 0.0);
            prop_assert!(f[m + 1] <= f[m] + 1e-15);
            if x > 1e-10 {
                let rhs = ((2 * m + 1) as f64 * f[m] - (-x).exp()) / (2.0 * x);
                prop_assert!((f[m + 1] - rhs).abs() < 1e-8 * (1.0 + f[m]), "m={m} x={x}");
            }
        }
    }

    /// erf is odd, bounded, and monotone.
    #[test]
    fn erf_properties(x in -6.0f64..6.0, dx in 1e-6f64..0.5) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-13);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!(erf(x + dx) >= erf(x));
    }
}
