//! Property-based tests of the runtime-dispatched SIMD kernel layer: the
//! elementwise and butterfly primitives are *bit-identical* across every
//! level the host supports, and the reassociating energy contraction is
//! bounded — ≤ 4 ULP between the `scalar` and `avx2` paths (identical lane
//! order, only FMA fusion differs) and O(n·ε) against the sequential `off`
//! baseline.

use liair_math::rfft::{half_len, rfft3_into_with};
use liair_math::rng::SplitMix64;
use liair_math::simd::{self, SimdLevel};
use liair_math::Complex64;
use proptest::prelude::*;

fn random_real(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect()
}

/// ULP distance between two finite doubles via the monotone mapping of
/// the bit patterns onto an unsigned number line.
fn ulp_distance(a: f64, b: f64) -> u64 {
    fn key(x: f64) -> u64 {
        let bits = x.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
    key(a).abs_diff(key(b))
}

/// Shapes covering the packed even r2c path and the odd/Bluestein fallback.
const RFFT_DIMS: [(usize, usize, usize); 6] = [
    (4, 4, 4),
    (8, 8, 8),
    (2, 3, 5),
    (3, 5, 7),
    (8, 4, 6),
    (16, 2, 8),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every elementwise primitive produces bit-identical output at every
    /// available level, for lengths exercising remainders of every lane
    /// count.
    #[test]
    fn elementwise_primitives_bit_identical(n in 0usize..300, seed in 0u64..1000) {
        let a = random_real(n, seed);
        let b = random_real(n, seed ^ 0xb);
        let z = random_signal(n, seed ^ 0x2);
        let table = random_real(n, seed ^ 0x7);
        let mut mul_ref = vec![0.0; n];
        let mut axpy_ref = a.clone();
        let mut sc_ref = z.clone();
        let mut tab_ref = z.clone();
        simd::mul_into_with(SimdLevel::Off, &mut mul_ref, &a, &b);
        simd::axpy_with(SimdLevel::Off, &mut axpy_ref, 0.37, &b);
        simd::scale_complex_with(SimdLevel::Off, &mut sc_ref, 1.0 / 3.0);
        simd::scale_by_table_with(SimdLevel::Off, &mut tab_ref, &table);
        for &level in &simd::available_levels() {
            let mut mul = vec![0.0; n];
            let mut axpy = a.clone();
            let mut sc = z.clone();
            let mut tab = z.clone();
            simd::mul_into_with(level, &mut mul, &a, &b);
            simd::axpy_with(level, &mut axpy, 0.37, &b);
            simd::scale_complex_with(level, &mut sc, 1.0 / 3.0);
            simd::scale_by_table_with(level, &mut tab, &table);
            prop_assert!(mul == mul_ref, "mul_into diverges at {:?}", level);
            prop_assert!(axpy == axpy_ref, "axpy diverges at {:?}", level);
            for i in 0..n {
                prop_assert!(
                    sc[i].re.to_bits() == sc_ref[i].re.to_bits()
                        && sc[i].im.to_bits() == sc_ref[i].im.to_bits(),
                    "scale_complex diverges at {:?} index {}", level, i
                );
                prop_assert!(
                    tab[i].re.to_bits() == tab_ref[i].re.to_bits()
                        && tab[i].im.to_bits() == tab_ref[i].im.to_bits(),
                    "scale_by_table diverges at {:?} index {}", level, i
                );
            }
        }
    }

    /// pack/unpack are bit-identical across levels and invert each other.
    #[test]
    fn pack_unpack_bit_identical(half in 0usize..150, seed in 0u64..1000) {
        let reals = random_real(2 * half, seed);
        let mut packed_ref = vec![Complex64::ZERO; half];
        simd::pack_complex_with(SimdLevel::Off, &mut packed_ref, &reals);
        for &level in &simd::available_levels() {
            let mut packed = vec![Complex64::ZERO; half];
            let mut unpacked = vec![0.0; 2 * half];
            simd::pack_complex_with(level, &mut packed, &reals);
            simd::unpack_complex_with(level, &mut unpacked, &packed);
            for i in 0..half {
                prop_assert!(
                    packed[i].re.to_bits() == packed_ref[i].re.to_bits()
                        && packed[i].im.to_bits() == packed_ref[i].im.to_bits(),
                    "pack diverges at {:?} index {}", level, i
                );
            }
            prop_assert!(unpacked == reals, "pack/unpack roundtrip at {:?}", level);
        }
    }

    /// Radix-2 butterfly passes are bit-identical across levels for every
    /// (len, step) stage of a power-of-two transform.
    #[test]
    fn butterfly_pass_bit_identical(logn in 1u32..7, seed in 0u64..1000) {
        let n = 1usize << logn;
        let data0 = random_signal(n, seed);
        let tw = random_signal(n / 2, seed ^ 0x77);
        let mut len = 2;
        while len <= n {
            let step = n / len;
            let mut reference = data0.clone();
            simd::butterfly_pass_with(SimdLevel::Off, &mut reference, &tw, len, step);
            for &level in &simd::available_levels() {
                let mut data = data0.clone();
                simd::butterfly_pass_with(level, &mut data, &tw, len, step);
                for i in 0..n {
                    prop_assert!(
                        data[i].re.to_bits() == reference[i].re.to_bits()
                            && data[i].im.to_bits() == reference[i].im.to_bits(),
                        "butterfly len={} step={} diverges at {:?} index {}",
                        len, step, level, i
                    );
                }
            }
            len *= 2;
        }
    }

    /// The full 3-D r2c transform — pack, butterflies, twiddles, untangle —
    /// is bit-identical at every level, on even and odd grid shapes.
    #[test]
    fn rfft3_bit_identical_across_levels(pick in 0usize..6, seed in 0u64..1000) {
        let dims = RFFT_DIMS[pick];
        let x = random_real(dims.0 * dims.1 * dims.2, seed);
        let mut reference = vec![Complex64::ZERO; half_len(dims)];
        rfft3_into_with(SimdLevel::Off, &x, dims, &mut reference);
        for &level in &simd::available_levels() {
            let mut half = vec![Complex64::ZERO; half_len(dims)];
            rfft3_into_with(level, &x, dims, &mut half);
            for i in 0..half.len() {
                prop_assert!(
                    half[i].re.to_bits() == reference[i].re.to_bits()
                        && half[i].im.to_bits() == reference[i].im.to_bits(),
                    "rfft3 {:?} diverges at {:?} bin {}", dims, level, i
                );
            }
        }
    }

    /// The energy contraction: scalar and AVX2 share the 16-lane order, so
    /// they agree to ≤ 4 ULP; the sequential `off` baseline reassociates
    /// and is bounded by 4·n·ε relative on these non-negative sums.
    #[test]
    fn weighted_energy_agreement(n in 0usize..2000, seed in 0u64..1000) {
        let z = random_signal(n, seed);
        let wk: Vec<f64> = random_real(n, seed ^ 0x5).iter().map(|v| v + 0.6).collect();
        let e_off = simd::weighted_energy_with(SimdLevel::Off, &z, &wk);
        let e_scalar = simd::weighted_energy_with(SimdLevel::Scalar, &z, &wk);
        let tol = 4.0 * n.max(1) as f64 * f64::EPSILON * e_off.abs().max(1e-300);
        prop_assert!((e_scalar - e_off).abs() <= tol, "off {e_off} vs scalar {e_scalar}");
        if simd::avx2_available() {
            let e_avx2 = simd::weighted_energy_with(SimdLevel::Avx2, &z, &wk);
            let ulp = ulp_distance(e_scalar, e_avx2);
            prop_assert!(ulp <= 4, "scalar {e_scalar} vs avx2 {e_avx2}: {ulp} ulp");
        }
    }
}
