//! 3-vectors and 3×3 matrices for geometry and lattice work.

use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A Cartesian 3-vector (positions, forces, lattice vectors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// All components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Self) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, o: Self) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in the same direction. Panics on the zero vector.
    #[inline]
    pub fn normalized(self) -> Self {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Self) -> Self {
        Self::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Self) -> Self {
        Self::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        Self::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

/// A 3×3 matrix in row-major order (lattice matrices, inertia tensors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [Vec3; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [
            Vec3 {
                x: 1.0,
                y: 0.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 1.0,
                z: 0.0,
            },
            Vec3 {
                x: 0.0,
                y: 0.0,
                z: 1.0,
            },
        ],
    };

    /// Build from three rows.
    #[inline]
    pub const fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Self {
        Self { rows: [r0, r1, r2] }
    }

    /// Diagonal matrix.
    #[inline]
    pub fn diag(d: Vec3) -> Self {
        Self::from_rows(
            Vec3::new(d.x, 0.0, 0.0),
            Vec3::new(0.0, d.y, 0.0),
            Vec3::new(0.0, 0.0, d.z),
        )
    }

    /// Matrix–vector product.
    #[inline]
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.rows[0].dot(v),
            self.rows[1].dot(v),
            self.rows[2].dot(v),
        )
    }

    /// Determinant.
    #[inline]
    pub fn det(&self) -> f64 {
        self.rows[0].dot(self.rows[1].cross(self.rows[2]))
    }

    /// Transpose.
    #[inline]
    pub fn transpose(&self) -> Self {
        Self::from_rows(
            Vec3::new(self.rows[0].x, self.rows[1].x, self.rows[2].x),
            Vec3::new(self.rows[0].y, self.rows[1].y, self.rows[2].y),
            Vec3::new(self.rows[0].z, self.rows[1].z, self.rows[2].z),
        )
    }

    /// Inverse. Panics if singular (|det| < 1e-300).
    pub fn inverse(&self) -> Self {
        let d = self.det();
        assert!(d.abs() > 1e-300, "Mat3::inverse: singular matrix");
        let [a, b, c] = self.rows;
        // Rows of the inverse are cross products of columns / det; using the
        // adjugate expressed through cross products of rows of the transpose.
        let inv_rows = [b.cross(c) / d, c.cross(a) / d, a.cross(b) / d];
        // Those are the columns of the inverse; transpose to get rows.
        Mat3::from_rows(inv_rows[0], inv_rows[1], inv_rows[2]).transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_cross_norm() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), -4.0 + 10.0 + 18.0);
        let c = a.cross(b);
        // Orthogonality of cross product.
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
        assert!(approx_eq(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0, 1e-15));
    }

    #[test]
    fn normalized_is_unit() {
        let v = Vec3::new(2.0, -7.0, 0.5).normalized();
        assert!(approx_eq(v.norm(), 1.0, 1e-14));
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let m = Mat3::from_rows(
            Vec3::new(2.0, 1.0, 0.5),
            Vec3::new(-1.0, 3.0, 1.0),
            Vec3::new(0.0, 0.5, 4.0),
        );
        let inv = m.inverse();
        // m * inv should be the identity.
        let id = Mat3::IDENTITY;
        for i in 0..3 {
            let row = m.rows[i];
            let prod = Vec3::new(
                row.dot(Vec3::new(inv.rows[0].x, inv.rows[1].x, inv.rows[2].x)),
                row.dot(Vec3::new(inv.rows[0].y, inv.rows[1].y, inv.rows[2].y)),
                row.dot(Vec3::new(inv.rows[0].z, inv.rows[1].z, inv.rows[2].z)),
            );
            for k in 0..3 {
                assert!(approx_eq(prod[k], id.rows[i][k], 1e-12), "entry ({i},{k})");
            }
        }
    }

    #[test]
    fn mat3_det_of_diag() {
        let m = Mat3::diag(Vec3::new(2.0, 3.0, 4.0));
        assert!(approx_eq(m.det(), 24.0, 1e-15));
    }

    #[test]
    fn index_roundtrip() {
        let mut v = Vec3::ZERO;
        v[0] = 1.0;
        v[1] = 2.0;
        v[2] = 3.0;
        assert_eq!((v.x, v.y, v.z), (1.0, 2.0, 3.0));
    }
}
