//! Dense real linear algebra sized for quantum-chemistry matrices
//! (basis-set dimensions of up to a few hundred).
//!
//! * [`Mat`] — row-major dense matrix with the handful of BLAS-like
//!   operations the SCF needs (products are rayon-threaded above a cutoff).
//! * [`eigh`] — cyclic Jacobi eigensolver for symmetric matrices: O(n³) per
//!   sweep but unconditionally robust, which matters more than speed at the
//!   basis sizes we run.
//! * [`solve`] — LU with partial pivoting (DIIS systems are tiny).

use rayon::prelude::*;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

/// Below this element count, products run sequentially (threading overhead
/// dominates for tiny SCF matrices).
const PAR_CUTOFF: usize = 64 * 64;

impl Mat {
    /// Zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wrap a flat row-major buffer.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "Mat size mismatch");
        Self { nrows, ncols, data }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other` (rayon-threaded above a size cutoff).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.ncols, other.nrows, "matmul shape mismatch");
        let (n, k, m) = (self.nrows, self.ncols, other.ncols);
        let mut out = Mat::zeros(n, m);
        let body = |(i, orow): (usize, &mut [f64])| {
            let arow = &self.data[i * k..(i + 1) * k];
            for (p, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * m..(p + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        };
        if n * m >= PAR_CUTOFF {
            out.data.par_chunks_mut(m).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(m).enumerate().for_each(body);
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.ncols, v.len());
        (0..self.nrows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// `self + other`.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Mat::from_vec(self.nrows, self.ncols, data)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Mat::from_vec(self.nrows, self.ncols, data)
    }

    /// `self * s` (scalar).
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat::from_vec(self.nrows, self.ncols, data)
    }

    /// In-place `self += s * other` (axpy).
    pub fn axpy(&mut self, s: f64, other: &Mat) {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Trace.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute off-diagonal asymmetry `max |a_ij − a_ji|`.
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        let mut worst = 0.0f64;
        for i in 0..self.nrows {
            for j in (i + 1)..self.ncols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// `Tr(A·B)` without forming the product (both square, same size).
    pub fn trace_product(&self, other: &Mat) -> f64 {
        assert_eq!(self.ncols, other.nrows);
        assert_eq!(self.nrows, other.ncols);
        let mut acc = 0.0;
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                acc += self[(i, j)] * other[(j, i)];
            }
        }
        acc
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

/// Symmetric eigendecomposition by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and the
/// `k`-th *column* of the eigenvector matrix matching `eigenvalues[k]`.
/// Panics if `a` is not square; the strictly-lower triangle is ignored
/// (callers pass symmetric matrices).
pub fn eigh(a: &Mat) -> (Vec<f64>, Mat) {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigh requires a square matrix");
    let mut m = a.clone();
    // Symmetrize defensively against round-off in the caller's assembly.
    for i in 0..n {
        for j in (i + 1)..n {
            let s = 0.5 * (m[(i, j)] + m[(j, i)]);
            m[(i, j)] = s;
            m[(j, i)] = s;
        }
    }
    let mut v = Mat::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius mass.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-14 * (1.0 + m.fro_norm()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p,q,θ) from both sides: M ← GᵀMG.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    // Collect and sort ascending, permuting eigenvector columns alongside.
    let mut order: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| evals[i].partial_cmp(&evals[j]).unwrap());
    let sorted_vals: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    let mut sorted_vecs = Mat::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            sorted_vecs[(r, new_col)] = v[(r, old_col)];
        }
    }
    (sorted_vals, sorted_vecs)
}

/// `S^{-1/2}` of a symmetric positive-definite matrix (Löwdin symmetric
/// orthogonalization). Panics if any eigenvalue ≤ `1e-10` (linearly
/// dependent basis).
pub fn sym_inv_sqrt(s: &Mat) -> Mat {
    let (vals, vecs) = eigh(s);
    let n = s.nrows();
    assert!(
        vals.iter().all(|&v| v > 1e-10),
        "sym_inv_sqrt: matrix not positive definite (min eig {:?})",
        vals.first()
    );
    // V · diag(1/√λ) · Vᵀ
    let mut scaled = vecs.clone();
    for j in 0..n {
        let f = 1.0 / vals[j].sqrt();
        for i in 0..n {
            scaled[(i, j)] *= f;
        }
    }
    scaled.matmul(&vecs.transpose())
}

/// Solve `A x = b` by LU with partial pivoting. Panics on exactly singular
/// pivots; use [`try_solve`] where near-singularity is expected.
pub fn solve(a: &Mat, b: &[f64]) -> Vec<f64> {
    try_solve(a, b).expect("solve: singular matrix")
}

/// Fallible LU solve: `None` when a pivot vanishes (singular system).
pub fn try_solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.nrows();
    assert_eq!(n, a.ncols());
    assert_eq!(n, b.len());
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Pivot selection.
        let mut best = col;
        let mut best_val = lu[(perm[col], col)].abs();
        for row in (col + 1)..n {
            let v = lu[(perm[row], col)].abs();
            if v > best_val {
                best = row;
                best_val = v;
            }
        }
        if best_val <= 1e-300 {
            return None;
        }
        perm.swap(col, best);
        let prow = perm[col];
        let pivot = lu[(prow, col)];
        for row in (col + 1)..n {
            let r = perm[row];
            let f = lu[(r, col)] / pivot;
            if f == 0.0 {
                continue;
            }
            lu[(r, col)] = f;
            for j in (col + 1)..n {
                let delta = f * lu[(prow, j)];
                lu[(r, j)] -= delta;
            }
            x[r] -= f * x[prow];
        }
    }
    // Back substitution.
    let mut out = vec![0.0; n];
    for col in (0..n).rev() {
        let r = perm[col];
        let mut acc = x[r];
        for j in (col + 1)..n {
            acc -= lu[(r, j)] * out[j];
        }
        out[col] = acc / lu[(r, col)];
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::rng::SplitMix64;

    fn random_sym(n: usize, seed: u64) -> Mat {
        let mut rng = SplitMix64::new(seed);
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.next_f64() - 0.5;
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn matmul_against_hand_example() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_sym(5, 3);
        let i = Mat::identity(5);
        assert!(a.matmul(&i).sub(&a).fro_norm() < 1e-14);
        assert!(i.matmul(&a).sub(&a).fro_norm() < 1e-14);
    }

    #[test]
    fn eigh_reconstructs_matrix() {
        let a = random_sym(8, 11);
        let (vals, vecs) = eigh(&a);
        // A = V diag(λ) Vᵀ
        let mut lam = Mat::zeros(8, 8);
        for i in 0..8 {
            lam[(i, i)] = vals[i];
        }
        let rec = vecs.matmul(&lam).matmul(&vecs.transpose());
        assert!(
            rec.sub(&a).fro_norm() < 1e-10,
            "err {}",
            rec.sub(&a).fro_norm()
        );
        // Eigenvalues ascending.
        for k in 1..vals.len() {
            assert!(vals[k] >= vals[k - 1]);
        }
        // Orthonormal eigenvectors.
        let vtv = vecs.transpose().matmul(&vecs);
        assert!(vtv.sub(&Mat::identity(8)).fro_norm() < 1e-10);
    }

    #[test]
    fn eigh_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, _) = eigh(&a);
        assert!(approx_eq(vals[0], 1.0, 1e-12));
        assert!(approx_eq(vals[1], 3.0, 1e-12));
    }

    #[test]
    fn sym_inv_sqrt_property() {
        // X = S^{-1/2} must satisfy X·S·X = I.
        let mut s = random_sym(6, 21);
        // Make SPD: S ← SᵀS + I
        s = s.transpose().matmul(&s);
        for i in 0..6 {
            s[(i, i)] += 1.0;
        }
        let x = sym_inv_sqrt(&s);
        let should_be_identity = x.matmul(&s).matmul(&x);
        assert!(should_be_identity.sub(&Mat::identity(6)).fro_norm() < 1e-9);
    }

    #[test]
    fn solve_roundtrip() {
        let mut rng = SplitMix64::new(77);
        let n = 9;
        let a = Mat::from_fn(n, n, |_, _| rng.next_f64() - 0.5);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!(approx_eq(*got, *want, 1e-9), "{got} vs {want}");
        }
    }

    #[test]
    fn solve_uses_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Mat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[3.0, 4.0]);
        assert!(approx_eq(x[0], 4.0, 1e-14));
        assert!(approx_eq(x[1], 3.0, 1e-14));
    }

    #[test]
    fn trace_and_trace_product_agree() {
        let a = random_sym(5, 1);
        let b = random_sym(5, 2);
        let direct = a.matmul(&b).trace();
        assert!(approx_eq(a.trace_product(&b), direct, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }
}
