//! # liair-math
//!
//! Self-contained numerical kernels used throughout the `liair` workspace:
//!
//! * [`Complex64`] — a minimal complex number type (no external dependency).
//! * [`fft`] — 1-D complex FFTs (iterative radix-2 plus a Bluestein fallback
//!   for arbitrary lengths) and [`fft3`] — threaded 3-D transforms used by the
//!   pair-Poisson exact-exchange kernel. [`plan`] holds the process-wide
//!   FFT plan cache (twiddles, bit-reversal, Bluestein chirp spectra) and
//!   [`rfft`] the real-input r2c/c2r fast path storing only the Hermitian
//!   half-spectrum.
//! * [`linalg`] — dense real linear algebra: symmetric Jacobi eigensolver,
//!   LU solves, and matrix products sized for quantum-chemistry workloads.
//! * [`special`] — the Boys function (the workhorse of Gaussian integral
//!   evaluation), `erf`, incomplete gamma functions and factorial tables.
//! * [`simd`] — runtime-dispatched vector kernels (AVX2+FMA with a chunked
//!   scalar fallback) for the exchange hot loops: butterfly passes, kernel
//!   multiplies, energy contractions, pair-density products and axpy.
//! * [`quadrature`] — Gauss–Legendre nodes/weights.
//! * [`stats`] — small statistics helpers used by the benchmark harness.
//! * [`rng`] — a deterministic SplitMix64 generator for reproducible
//!   workload construction.
//!
//! Everything here is written from scratch (the reproduction environment has
//! no quantum-chemistry or FFT libraries available) and validated against
//! closed forms in the unit/property tests.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod array3;
pub mod codec;
pub mod complex;
pub mod fft;
pub mod fft3;
pub mod linalg;
pub mod plan;
pub mod quadrature;
pub mod rfft;
pub mod rng;
pub mod simd;
pub mod special;
pub mod stats;
pub mod vec3;

pub use array3::Array3;
pub use complex::Complex64;
pub use linalg::Mat;
pub use vec3::Vec3;

/// Machine-tolerance helper: `true` when `a` and `b` agree to `tol`
/// absolutely or relatively (whichever is looser).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-3));
        assert!(approx_eq(0.0, 0.0, 1e-15));
    }
}
