//! Real-input FFTs (r2c / c2r), 1-D and 3-D.
//!
//! The pair densities in the exchange kernel are real fields, so their
//! spectra are Hermitian: `X(-k) = conj(X(k))`. Storing only the
//! non-redundant half — `nz/2 + 1` bins along the contiguous `z` axis —
//! halves both the transform work on that axis and the memory traffic of
//! every later axis, which together buy roughly a 2× speedup of a full
//! pair-Poisson solve versus the complex-to-complex path.
//!
//! * Even lengths use the classic pack-and-untangle trick: the `n` reals
//!   are packed as `z_j = x_{2j} + i·x_{2j+1}`, one `n/2`-point complex FFT
//!   runs, and the even/odd sub-spectra are untangled with a twiddle.
//! * Odd lengths fall back through the complex plan and keep the first
//!   `n/2 + 1` bins (the c2r side reconstructs the rest by symmetry), so
//!   every grid size remains supported.
//!
//! Conventions match [`crate::fft`]: the forward transform is
//! unnormalized — bin `(ix, iy, iz)` of [`rfft3`] equals bin `(ix, iy, iz)`
//! of [`crate::fft3::fft3`] for `iz < nz/2 + 1` — and the inverse is exact
//! (`irfft3(rfft3(x)) == x`).
//!
//! All plans live in a process-wide cache; the `*_into` variants perform
//! zero steady-state heap allocations (scratch is thread-local,
//! grow-only), which is what the per-pair exchange hot loop requires.

use crate::array3::Array3;
use crate::complex::Complex64;
use crate::plan::{plan, FftPlan};
use crate::simd::{self, SimdLevel};
use rayon::prelude::*;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Grow-only pack/untangle scratch for 1-D r2c/c2r rows.
    static PACK_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
    /// Grow-only strided-line scratch for the y/x axes of the 3-D variants.
    static AXIS_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// A planned 1-D real transform of fixed length.
#[derive(Debug)]
pub struct RealFftPlan {
    n: usize,
    /// `n/2` — the packed sub-transform length (even `n`) and the index of
    /// the Nyquist-or-last stored bin.
    h: usize,
    even: bool,
    /// Untangle twiddles `e^{-2πik/n}` for `k ≤ n/2` (even lengths only).
    w: Vec<Complex64>,
    /// Complex sub-plan: length `n/2` when even, length `n` when odd.
    sub: Arc<FftPlan>,
}

impl RealFftPlan {
    fn build(n: usize) -> RealFftPlan {
        assert!(n >= 1, "real FFT length must be positive");
        let even = n.is_multiple_of(2) && n >= 2;
        let h = n / 2;
        let sub = if even { plan(h.max(1)) } else { plan(n) };
        let w = if even {
            let step = -2.0 * std::f64::consts::PI / n as f64;
            (0..=h).map(|k| Complex64::cis(step * k as f64)).collect()
        } else {
            Vec::new()
        };
        RealFftPlan { n, h, even, w, sub }
    }

    /// The real-signal length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Number of stored spectrum bins: `n/2 + 1`.
    pub fn half_len(&self) -> usize {
        self.h + 1
    }

    /// Forward r2c: `out[k] = Σ_j x_j e^{-2πijk/n}` for `k ≤ n/2`
    /// (unnormalized; identical to the first `n/2 + 1` bins of [`crate::fft::fft`]).
    pub fn rfft(&self, input: &[f64], out: &mut [Complex64]) {
        self.rfft_with(simd::level(), input, out);
    }

    /// [`RealFftPlan::rfft`] at an explicit SIMD level.
    pub fn rfft_with(&self, level: SimdLevel, input: &[f64], out: &mut [Complex64]) {
        assert_eq!(input.len(), self.n, "input length does not match plan");
        assert_eq!(out.len(), self.half_len(), "output must hold n/2 + 1 bins");
        if self.n == 1 {
            out[0] = Complex64::real(input[0]);
            return;
        }
        PACK_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            let need = if self.even { self.h } else { self.n };
            if buf.len() < need {
                buf.resize(need, Complex64::ZERO);
            }
            let z = &mut buf[..need];
            if self.even {
                let h = self.h;
                simd::pack_complex_with(level, z, input);
                self.sub.fft_with(level, z);
                // Untangle: E_k + W_k·O_k with Z_h ≡ Z_0 (periodicity).
                for (k, ok) in out.iter_mut().enumerate() {
                    let zk = z[k % h];
                    let zc = z[(h - k) % h].conj();
                    let e = (zk + zc).scale(0.5);
                    let o = (zk - zc) * Complex64::new(0.0, -0.5);
                    *ok = e + self.w[k] * o;
                }
            } else {
                for (zj, &xj) in z.iter_mut().zip(input) {
                    *zj = Complex64::real(xj);
                }
                self.sub.fft_with(level, z);
                out.copy_from_slice(&z[..self.half_len()]);
            }
        });
    }

    /// Inverse c2r: exact inverse of [`Self::rfft`] (the `1/n` lives here).
    /// Only the stored half-spectrum is read; the redundant half is implied
    /// by Hermitian symmetry.
    pub fn irfft(&self, spec: &[Complex64], out: &mut [f64]) {
        self.irfft_with(simd::level(), spec, out);
    }

    /// [`RealFftPlan::irfft`] at an explicit SIMD level.
    pub fn irfft_with(&self, level: SimdLevel, spec: &[Complex64], out: &mut [f64]) {
        assert_eq!(
            spec.len(),
            self.half_len(),
            "spectrum must hold n/2 + 1 bins"
        );
        assert_eq!(out.len(), self.n, "output length does not match plan");
        if self.n == 1 {
            out[0] = spec[0].re;
            return;
        }
        PACK_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            let need = if self.even { self.h } else { self.n };
            if buf.len() < need {
                buf.resize(need, Complex64::ZERO);
            }
            let z = &mut buf[..need];
            if self.even {
                let h = self.h;
                for (k, zk) in z.iter_mut().enumerate() {
                    let xk = spec[k];
                    let xc = spec[h - k].conj();
                    let e = (xk + xc).scale(0.5);
                    let o = (xk - xc).scale(0.5) * self.w[k].conj();
                    *zk = e + Complex64::I * o;
                }
                // The sub-plan's 1/h normalization is exactly the inverse of
                // the packed forward transform — no extra scale.
                self.sub.ifft_with(level, z);
                simd::unpack_complex_with(level, out, z);
            } else {
                let n = self.n;
                z[..spec.len()].copy_from_slice(spec);
                for k in self.half_len()..n {
                    z[k] = spec[n - k].conj();
                }
                self.sub.ifft_with(level, z);
                for (o, zj) in out.iter_mut().zip(z.iter()) {
                    *o = zj.re;
                }
            }
        });
    }
}

static REAL_PLAN_CACHE: OnceLock<Mutex<HashMap<usize, Arc<RealFftPlan>>>> = OnceLock::new();

/// Fetch (or build and cache) the real-transform plan for length `n`.
pub fn real_plan(n: usize) -> Arc<RealFftPlan> {
    let cache = REAL_PLAN_CACHE.get_or_init(Default::default);
    if let Some(p) = cache.lock().unwrap().get(&n) {
        return Arc::clone(p);
    }
    let built = Arc::new(RealFftPlan::build(n));
    Arc::clone(cache.lock().unwrap().entry(n).or_insert(built))
}

/// Dimensions of the stored half-spectrum for a real field of `dims`:
/// `(nx, ny, nz/2 + 1)`, still `z`-contiguous.
pub fn half_dims(dims: (usize, usize, usize)) -> (usize, usize, usize) {
    (dims.0, dims.1, dims.2 / 2 + 1)
}

/// Number of complex bins in the stored half-spectrum.
pub fn half_len(dims: (usize, usize, usize)) -> usize {
    let (hx, hy, hz) = half_dims(dims);
    hx * hy * hz
}

/// Forward 3-D r2c on the calling thread, writing the `(nx, ny, nz/2+1)`
/// half-spectrum into `half`. Zero steady-state heap allocation.
pub fn rfft3_into(real: &[f64], dims: (usize, usize, usize), half: &mut [Complex64]) {
    rfft3_into_with(simd::level(), real, dims, half);
}

/// [`rfft3_into`] at an explicit SIMD level.
pub fn rfft3_into_with(
    level: SimdLevel,
    real: &[f64],
    dims: (usize, usize, usize),
    half: &mut [Complex64],
) {
    let (nx, ny, nz) = dims;
    let nzh = nz / 2 + 1;
    assert_eq!(real.len(), nx * ny * nz, "real field does not match dims");
    assert_eq!(half.len(), nx * ny * nzh, "half buffer does not match dims");

    // z axis: r2c row by row.
    let rp = real_plan(nz);
    for (row_in, row_out) in real.chunks_exact(nz).zip(half.chunks_exact_mut(nzh)) {
        rp.rfft_with(level, row_in, row_out);
    }
    // y and x axes: ordinary complex transforms over the half array.
    complex_axes_serial(level, half, (nx, ny, nzh), false);
}

/// Inverse of [`rfft3_into`]: consumes (destroys) the half-spectrum and
/// writes the recovered real field. Zero steady-state heap allocation.
pub fn irfft3_into(half: &mut [Complex64], dims: (usize, usize, usize), real_out: &mut [f64]) {
    irfft3_into_with(simd::level(), half, dims, real_out);
}

/// [`irfft3_into`] at an explicit SIMD level.
pub fn irfft3_into_with(
    level: SimdLevel,
    half: &mut [Complex64],
    dims: (usize, usize, usize),
    real_out: &mut [f64],
) {
    let (nx, ny, nz) = dims;
    let nzh = nz / 2 + 1;
    assert_eq!(
        real_out.len(),
        nx * ny * nz,
        "real field does not match dims"
    );
    assert_eq!(half.len(), nx * ny * nzh, "half buffer does not match dims");

    complex_axes_serial(level, half, (nx, ny, nzh), true);
    let rp = real_plan(nz);
    for (row_in, row_out) in half.chunks_exact(nzh).zip(real_out.chunks_exact_mut(nz)) {
        rp.irfft_with(level, row_in, row_out);
    }
}

/// Complex transforms along the `y` then `x` axes of a `z`-contiguous
/// array (serial, thread-local scratch). The `z` axis is untouched.
fn complex_axes_serial(
    level: SimdLevel,
    data: &mut [Complex64],
    dims: (usize, usize, usize),
    inverse: bool,
) {
    let (nx, ny, nzc) = dims;
    let (px, py) = (plan(nx), plan(ny));
    AXIS_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let need = nx.max(ny);
        if buf.len() < need {
            buf.resize(need, Complex64::ZERO);
        }
        // y axis: per-x slab, strided by nzc.
        let line = &mut buf[..ny];
        for slab in data.chunks_exact_mut(ny * nzc) {
            for iz in 0..nzc {
                for iy in 0..ny {
                    line[iy] = slab[iy * nzc + iz];
                }
                axis_line(&py, level, inverse, line);
                for iy in 0..ny {
                    slab[iy * nzc + iz] = line[iy];
                }
            }
        }
        // x axis: strided by ny·nzc.
        if nx > 1 {
            let plane = ny * nzc;
            let line = &mut buf[..nx];
            for p in 0..plane {
                for ix in 0..nx {
                    line[ix] = data[ix * plane + p];
                }
                axis_line(&px, level, inverse, line);
                for ix in 0..nx {
                    data[ix * plane + p] = line[ix];
                }
            }
        }
    });
}

#[inline]
fn axis_line(p: &FftPlan, level: SimdLevel, inverse: bool, row: &mut [Complex64]) {
    if inverse {
        p.ifft_with(level, row);
    } else {
        p.fft_with(level, row);
    }
}

/// Threaded forward 3-D r2c: returns the `(nx, ny, nz/2+1)` half-spectrum.
pub fn rfft3(real: &[f64], dims: (usize, usize, usize)) -> Array3<Complex64> {
    let (nx, ny, nz) = dims;
    let nzh = nz / 2 + 1;
    assert_eq!(real.len(), nx * ny * nz, "real field does not match dims");
    let mut half = vec![Complex64::ZERO; nx * ny * nzh];

    // z axis: one r2c per row, parallel over rows.
    {
        let rp = real_plan(nz);
        let rp = &rp;
        half.par_chunks_mut(nzh)
            .enumerate()
            .for_each(|(row, out_row)| rp.rfft(&real[row * nz..row * nz + nz], out_row));
    }
    complex_axes_parallel(&mut half, (nx, ny, nzh), false);
    Array3::from_vec((nx, ny, nzh), half)
}

/// Threaded inverse of [`rfft3`]: consumes the half-spectrum and returns
/// the real field.
pub fn irfft3(mut half: Array3<Complex64>, dims: (usize, usize, usize)) -> Vec<f64> {
    let (nx, ny, nz) = dims;
    let nzh = nz / 2 + 1;
    assert_eq!(
        half.dims(),
        (nx, ny, nzh),
        "half spectrum does not match dims"
    );
    complex_axes_parallel(half.as_mut_slice(), (nx, ny, nzh), true);
    let mut real = vec![0.0; nx * ny * nz];
    {
        let rp = real_plan(nz);
        let rp = &rp;
        let src = half.as_slice();
        real.par_chunks_mut(nz)
            .enumerate()
            .for_each(|(row, out_row)| rp.irfft(&src[row * nzh..row * nzh + nzh], out_row));
    }
    real
}

/// Threaded complex transforms along `y` then `x` of a `z`-contiguous array.
fn complex_axes_parallel(data: &mut [Complex64], dims: (usize, usize, usize), inverse: bool) {
    let (nx, ny, nzc) = dims;
    let (px, py) = (plan(nx), plan(ny));
    // Resolve the process default once, outside the rayon tasks.
    let level = simd::level();
    {
        let py = &py;
        data.par_chunks_mut(ny * nzc).for_each_init(
            || vec![Complex64::ZERO; ny],
            |scratch, slab| {
                for iz in 0..nzc {
                    for iy in 0..ny {
                        scratch[iy] = slab[iy * nzc + iz];
                    }
                    axis_line(py, level, inverse, scratch);
                    for iy in 0..ny {
                        slab[iy * nzc + iz] = scratch[iy];
                    }
                }
            },
        );
    }
    if nx > 1 {
        let plane = ny * nzc;
        let mut t = vec![Complex64::ZERO; nx * plane];
        {
            let src = &data[..];
            t.par_chunks_mut(nx).enumerate().for_each(|(p, row)| {
                for (ix, v) in row.iter_mut().enumerate() {
                    *v = src[ix * plane + p];
                }
            });
        }
        {
            let px = &px;
            t.par_chunks_mut(nx)
                .for_each(|row| axis_line(px, level, inverse, row));
        }
        data.par_chunks_mut(plane)
            .enumerate()
            .for_each(|(ix, slab)| {
                for (p, v) in slab.iter_mut().enumerate() {
                    *v = t[p * nx + ix];
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dft_reference, fft};
    use crate::fft3::{fft3, to_complex};
    use crate::rng::SplitMix64;

    fn random_real(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    #[test]
    fn rfft_matches_complex_fft_1d() {
        for &n in &[1usize, 2, 4, 8, 9, 15, 16, 48, 63, 64, 100] {
            let x = random_real(n, n as u64);
            let rp = real_plan(n);
            let mut half = vec![Complex64::ZERO; rp.half_len()];
            rp.rfft(&x, &mut half);
            let mut full: Vec<Complex64> = x.iter().map(|&r| Complex64::real(r)).collect();
            fft(&mut full);
            for (k, h) in half.iter().enumerate() {
                let err = (*h - full[k]).abs();
                assert!(err < 1e-10 * n.max(8) as f64, "n={n} bin {k}: err {err}");
            }
        }
    }

    #[test]
    fn irfft_is_exact_inverse_1d() {
        for &n in &[1usize, 2, 6, 8, 9, 27, 32, 48, 81, 96] {
            let x = random_real(n, 7 + n as u64);
            let rp = real_plan(n);
            let mut half = vec![Complex64::ZERO; rp.half_len()];
            rp.rfft(&x, &mut half);
            let mut back = vec![0.0; n];
            rp.irfft(&half, &mut back);
            let err = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "n={n}: roundtrip err {err}");
        }
    }

    #[test]
    fn odd_length_fallback_matches_reference() {
        let n = 45;
        let x = random_real(n, 3);
        let rp = real_plan(n);
        let mut half = vec![Complex64::ZERO; rp.half_len()];
        rp.rfft(&x, &mut half);
        let full: Vec<Complex64> = x.iter().map(|&r| Complex64::real(r)).collect();
        let want = dft_reference(&full, false);
        for (k, h) in half.iter().enumerate() {
            assert!((*h - want[k]).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn rfft3_matches_fft3_half_spectrum() {
        for dims in [(4, 4, 4), (2, 3, 5), (8, 4, 6), (3, 5, 7)] {
            let (nx, ny, nz) = dims;
            let x = random_real(nx * ny * nz, 11);
            let half = rfft3(&x, dims);
            let mut full = to_complex(&x, dims);
            fft3(&mut full);
            let nzh = nz / 2 + 1;
            for ix in 0..nx {
                for iy in 0..ny {
                    for iz in 0..nzh {
                        let a = *half.get(ix, iy, iz);
                        let b = *full.get(ix, iy, iz);
                        let err = (a - b).abs();
                        assert!(err < 1e-9, "dims {dims:?} bin ({ix},{iy},{iz}): err {err}");
                    }
                }
            }
        }
    }

    #[test]
    fn irfft3_roundtrip() {
        for dims in [(4, 4, 4), (2, 3, 5), (8, 4, 6), (5, 5, 5)] {
            let (nx, ny, nz) = dims;
            let x = random_real(nx * ny * nz, 13);
            let half = rfft3(&x, dims);
            let back = irfft3(half, dims);
            let err = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {dims:?}: err {err}");
        }
    }

    #[test]
    fn serial_into_matches_threaded() {
        for dims in [(4, 4, 4), (2, 3, 5), (6, 5, 8)] {
            let (nx, ny, nz) = dims;
            let x = random_real(nx * ny * nz, 17);
            let threaded = rfft3(&x, dims);
            let mut serial = vec![Complex64::ZERO; half_len(dims)];
            rfft3_into(&x, dims, &mut serial);
            let err = threaded
                .as_slice()
                .iter()
                .zip(&serial)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {dims:?}: fwd err {err}");
            let mut back = vec![0.0; nx * ny * nz];
            irfft3_into(&mut serial, dims, &mut back);
            let err = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {dims:?}: inv err {err}");
        }
    }

    #[test]
    fn parseval_on_half_spectrum() {
        // Σ_r x(r)² == (1/N) Σ_k w_k |X_k|² with w = 1 on the self-conjugate
        // z-planes (iz == 0, and iz == nz/2 for even nz) and w = 2 elsewhere.
        for dims in [(4, 4, 8), (3, 5, 7)] {
            let (nx, ny, nz) = dims;
            let n = nx * ny * nz;
            let x = random_real(n, 19);
            let time: f64 = x.iter().map(|v| v * v).sum();
            let half = rfft3(&x, dims);
            let nzh = nz / 2 + 1;
            let mut freq = 0.0;
            for ix in 0..nx {
                for iy in 0..ny {
                    for iz in 0..nzh {
                        let w = if iz == 0 || (nz % 2 == 0 && iz == nzh - 1) {
                            1.0
                        } else {
                            2.0
                        };
                        freq += w * half.get(ix, iy, iz).norm_sqr();
                    }
                }
            }
            freq /= n as f64;
            assert!(
                (time - freq).abs() < 1e-10 * time,
                "dims {dims:?}: {time} vs {freq}"
            );
        }
    }
}
