//! Planned 1-D FFTs with a process-wide plan cache.
//!
//! The seed implementation rebuilt the twiddle table `e^{±2πik/n}` on every
//! 1-D call — `O(n²)` table traffic per 3-D grid since `fft3` issues one
//! line transform per row. An [`FftPlan`] hoists everything that depends
//! only on the length out of the transform:
//!
//! * the forward/inverse twiddle tables,
//! * the bit-reversal permutation (power-of-two lengths),
//! * for Bluestein lengths: the chirp sequence **and its forward FFT**
//!   (the seed re-FFT'd the chirp on every non-power-of-two call — two of
//!   the three `m`-point transforms per call were pure overhead).
//!
//! Plans are cached process-wide in [`plan`] keyed by length, so the first
//! transform of a given size pays the setup and every later one (any
//! thread) reuses it — the serial analogue of FFTW-style planning the
//! BG/Q paper leans on for its node kernel. The cache is **bounded**: a
//! multi-tenant serve process sees many distinct grid sizes over its
//! lifetime, so beyond [`plan_cache_capacity`] entries the least-recently
//! used plan is evicted (in-flight `Arc`s keep evicted plans alive until
//! their last user drops them — eviction only forgets, it never
//! invalidates). [`plan_cache_stats`] exposes hit/miss/eviction counters
//! for regression tests, the engine's `BuildProfile`, and perf triage.
//!
//! Steady-state transforms are allocation-free: the Bluestein convolution
//! scratch lives in a grow-only thread local.

use crate::complex::Complex64;
use crate::simd::{self, SimdLevel};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A planned 1-D transform of fixed length.
#[derive(Debug)]
pub struct FftPlan {
    n: usize,
    /// `e^{-2πik/n}` for `k < n/2` (forward sign).
    tw_fwd: Vec<Complex64>,
    /// `e^{+2πik/n}` for `k < n/2`.
    tw_inv: Vec<Complex64>,
    /// Bit-reversal permutation; empty unless `n` is a power of two.
    bitrev: Vec<u32>,
    /// Chirp-z machinery for non-power-of-two lengths.
    bluestein: Option<Bluestein>,
}

#[derive(Debug)]
struct Bluestein {
    /// Convolution length: next power of two ≥ 2n−1.
    m: usize,
    /// Forward chirp `e^{-iπ j²/n}` (inverse uses the conjugate).
    chirp: Vec<Complex64>,
    /// FFT_m of the wrapped conjugate chirp (forward transforms).
    spec_fwd: Vec<Complex64>,
    /// FFT_m of the wrapped chirp (inverse transforms).
    spec_inv: Vec<Complex64>,
    /// The power-of-two sub-plan driving the cyclic convolution.
    sub: Arc<FftPlan>,
}

thread_local! {
    /// Grow-only Bluestein convolution scratch (per thread, reused across
    /// calls — zero allocations once warmed up).
    static CONV_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

impl FftPlan {
    fn build(n: usize) -> FftPlan {
        assert!(n >= 1, "FFT length must be positive");
        let tw_fwd = twiddle_table(n, false);
        let tw_inv = twiddle_table(n, true);
        if n.is_power_of_two() {
            let shift = usize::BITS - n.trailing_zeros();
            let bitrev = if n > 1 {
                (0..n).map(|i| (i.reverse_bits() >> shift) as u32).collect()
            } else {
                Vec::new()
            };
            return FftPlan {
                n,
                tw_fwd,
                tw_inv,
                bitrev,
                bluestein: None,
            };
        }
        // Bluestein setup. Quadratic phase reduced mod 2n to preserve
        // precision at large indices.
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let jsq = (j as u128 * j as u128 % (2 * n as u128)) as f64;
                Complex64::cis(-std::f64::consts::PI * jsq / n as f64)
            })
            .collect();
        let m = (2 * n - 1).next_power_of_two();
        let sub = plan(m);
        let mut b_fwd = vec![Complex64::ZERO; m];
        let mut b_inv = vec![Complex64::ZERO; m];
        for j in 0..n {
            b_fwd[j] = chirp[j].conj();
            b_inv[j] = chirp[j];
            if j > 0 {
                b_fwd[m - j] = chirp[j].conj();
                b_inv[m - j] = chirp[j];
            }
        }
        // Chirp spectra are part of the cached plan: build them at the Off
        // level so the plan is identical no matter which level built it
        // (levels are bit-identical anyway; this makes it true by fiat).
        sub.pow2_transform(SimdLevel::Off, &mut b_fwd, false);
        sub.pow2_transform(SimdLevel::Off, &mut b_inv, false);
        FftPlan {
            n,
            tw_fwd,
            tw_inv,
            bitrev: Vec::new(),
            bluestein: Some(Bluestein {
                m,
                chirp,
                spec_fwd: b_fwd,
                spec_inv: b_inv,
                sub,
            }),
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the degenerate length-1 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// In-place forward DFT `X_k = Σ_j x_j e^{-2πijk/n}` (unnormalized).
    pub fn fft(&self, data: &mut [Complex64]) {
        self.fft_with(simd::level(), data);
    }

    /// [`FftPlan::fft`] at an explicit SIMD level.
    pub fn fft_with(&self, level: SimdLevel, data: &mut [Complex64]) {
        self.transform(level, data, false);
    }

    /// In-place inverse DFT with `1/n` normalization.
    pub fn ifft(&self, data: &mut [Complex64]) {
        self.ifft_with(simd::level(), data);
    }

    /// [`FftPlan::ifft`] at an explicit SIMD level.
    pub fn ifft_with(&self, level: SimdLevel, data: &mut [Complex64]) {
        self.transform(level, data, true);
        simd::scale_complex_with(level, data, 1.0 / self.n as f64);
    }

    fn transform(&self, level: SimdLevel, data: &mut [Complex64], inverse: bool) {
        assert_eq!(data.len(), self.n, "data length does not match plan");
        if self.n <= 1 {
            return;
        }
        if self.bluestein.is_none() {
            self.pow2_transform(level, data, inverse);
        } else {
            self.bluestein_transform(level, data, inverse);
        }
    }

    /// Iterative radix-2 Cooley–Tukey using the cached permutation and
    /// twiddles (`n` power of two). The butterfly passes dispatch through
    /// [`simd::butterfly_pass_with`]; every level is bit-identical.
    fn pow2_transform(&self, level: SimdLevel, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        debug_assert!(n.is_power_of_two() && data.len() == n);
        for (i, &jr) in self.bitrev.iter().enumerate() {
            let j = jr as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        let tw = if inverse { &self.tw_inv } else { &self.tw_fwd };
        let mut len = 2;
        while len <= n {
            simd::butterfly_pass_with(level, data, tw, len, n / len);
            len *= 2;
        }
    }

    /// Bluestein chirp-z via one cached-spectrum cyclic convolution: only
    /// two `m`-point transforms per call (the seed needed three, plus two
    /// fresh `m`-point buffers; here the single scratch is thread-local).
    fn bluestein_transform(&self, level: SimdLevel, data: &mut [Complex64], inverse: bool) {
        let bs = self.bluestein.as_ref().expect("bluestein plan");
        CONV_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < bs.m {
                buf.resize(bs.m, Complex64::ZERO);
            }
            let a = &mut buf[..bs.m];
            for j in 0..self.n {
                let c = if inverse {
                    bs.chirp[j].conj()
                } else {
                    bs.chirp[j]
                };
                a[j] = data[j] * c;
            }
            a[self.n..].fill(Complex64::ZERO);
            bs.sub.pow2_transform(level, a, false);
            let spec = if inverse { &bs.spec_inv } else { &bs.spec_fwd };
            for (x, s) in a.iter_mut().zip(spec) {
                *x *= *s;
            }
            bs.sub.pow2_transform(level, a, true);
            let inv_m = 1.0 / bs.m as f64;
            for k in 0..self.n {
                let c = if inverse {
                    bs.chirp[k].conj()
                } else {
                    bs.chirp[k]
                };
                data[k] = a[k].scale(inv_m) * c;
            }
        });
    }
}

fn twiddle_table(n: usize, inverse: bool) -> Vec<Complex64> {
    let sign = if inverse { 1.0 } else { -1.0 };
    let step = sign * 2.0 * std::f64::consts::PI / n as f64;
    (0..n / 2)
        .map(|k| Complex64::cis(step * k as f64))
        .collect()
}

/// Default bound on distinct cached lengths. A 3-D transform touches at
/// most three lengths plus their Bluestein sub-lengths, so this comfortably
/// covers dozens of concurrently active grid shapes.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

#[derive(Debug)]
struct PlanEntry {
    plan: Arc<FftPlan>,
    /// Logical clock of the most recent lookup; smallest value = LRU.
    last_use: u64,
}

#[derive(Debug)]
struct PlanCache {
    entries: HashMap<usize, PlanEntry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache {
            entries: HashMap::new(),
            capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl PlanCache {
    /// Evict least-recently-used entries until at most `capacity` remain,
    /// never evicting `keep` (the entry the caller is about to hand out).
    fn enforce_bound(&mut self, keep: usize) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                None => break, // capacity 0 with only `keep` present
            }
        }
    }
}

static PLAN_CACHE: OnceLock<Mutex<PlanCache>> = OnceLock::new();

fn cache() -> &'static Mutex<PlanCache> {
    PLAN_CACHE.get_or_init(Default::default)
}

/// Fetch (or build and cache) the plan for length `n`. Hot callers that
/// transform many same-length lines should fetch once and reuse the `Arc`
/// rather than paying the cache lock per line.
pub fn plan(n: usize) -> Arc<FftPlan> {
    {
        let mut c = cache().lock().unwrap();
        c.tick += 1;
        let tick = c.tick;
        if let Some(e) = c.entries.get_mut(&n) {
            e.last_use = tick;
            let out = Arc::clone(&e.plan);
            c.hits += 1;
            return out;
        }
        c.misses += 1;
    }
    // Build outside the lock: Bluestein setup recurses into `plan(m)`.
    let built = Arc::new(FftPlan::build(n));
    let mut c = cache().lock().unwrap();
    c.tick += 1;
    let tick = c.tick;
    let out = Arc::clone(
        &c.entries
            .entry(n)
            .or_insert(PlanEntry {
                plan: built,
                last_use: tick,
            })
            .plan,
    );
    c.enforce_bound(n);
    out
}

/// Bound the number of distinct cached plan lengths (LRU eviction beyond
/// it). Returns the previous capacity. Takes effect immediately: shrinking
/// below the current population evicts at once.
pub fn set_plan_cache_capacity(capacity: usize) -> usize {
    let mut c = cache().lock().unwrap();
    let prev = c.capacity;
    c.capacity = capacity.max(1);
    // `usize::MAX` is never a valid length key, so nothing is pinned.
    c.enforce_bound(usize::MAX);
    prev
}

/// The current bound on distinct cached plan lengths.
pub fn plan_cache_capacity() -> usize {
    cache().lock().unwrap().capacity
}

/// Plan-cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans dropped by the LRU bound (cumulative).
    pub evictions: u64,
    /// Distinct lengths currently cached.
    pub plans: usize,
    /// Current cache bound.
    pub capacity: usize,
}

impl PlanCacheStats {
    /// Counter deltas `self − earlier` (for per-build / per-job windows).
    pub fn since(&self, earlier: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            plans: self.plans,
            capacity: self.capacity,
        }
    }
}

/// Snapshot of the process-wide plan-cache counters.
pub fn plan_cache_stats() -> PlanCacheStats {
    let c = cache().lock().unwrap();
    PlanCacheStats {
        hits: c.hits,
        misses: c.misses,
        evictions: c.evictions,
        plans: c.entries.len(),
        capacity: c.capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_reference;
    use crate::rng::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    #[test]
    fn planned_transform_matches_reference() {
        for &n in &[2usize, 7, 16, 48, 77, 96, 128] {
            let p = plan(n);
            let x = random_signal(n, n as u64);
            let want = dft_reference(&x, false);
            let mut got = x.clone();
            p.fft(&mut got);
            let err = got
                .iter()
                .zip(&want)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-8 * n as f64, "n={n}: err {err}");
            p.ifft(&mut got);
            let rt = got
                .iter()
                .zip(&x)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max);
            assert!(rt < 1e-10, "n={n} roundtrip err {rt}");
        }
    }

    #[test]
    fn repeated_odd_length_transforms_reuse_the_plan() {
        // Regression: the seed rebuilt the Bluestein chirp and re-FFT'd it
        // on every odd-length call. With the cache, every lookup of the
        // same length must return the *same* plan object.
        let first = plan(77);
        for _ in 0..10 {
            let again = plan(77);
            assert!(
                Arc::ptr_eq(&first, &again),
                "plan(77) rebuilt instead of reused"
            );
            let mut x = random_signal(77, 3);
            again.fft(&mut x);
        }
        // And the cache counters move in the right direction: at least ten
        // hits for this length, monotone totals.
        let stats = plan_cache_stats();
        assert!(stats.hits >= 10, "{stats:?}");
        assert!(stats.plans >= 1);
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        // Drive the LRU policy on a local cache instance: the global one is
        // shared with concurrently running tests that assert plan identity,
        // so shrinking its capacity here would race them.
        let mut c = PlanCache {
            capacity: 3,
            ..Default::default()
        };
        for &n in &[8usize, 16, 32] {
            c.tick += 1;
            let tick = c.tick;
            c.entries.insert(
                n,
                PlanEntry {
                    plan: Arc::new(FftPlan::build(n)),
                    last_use: tick,
                },
            );
        }
        // Touch 8 so 16 becomes the LRU, then overflow with 64.
        c.tick += 1;
        let tick = c.tick;
        c.entries.get_mut(&8).unwrap().last_use = tick;
        c.tick += 1;
        let tick = c.tick;
        c.entries.insert(
            64,
            PlanEntry {
                plan: Arc::new(FftPlan::build(64)),
                last_use: tick,
            },
        );
        c.enforce_bound(64);
        assert_eq!(c.entries.len(), 3);
        assert!(!c.entries.contains_key(&16), "LRU entry should be evicted");
        assert!(c.entries.contains_key(&8));
        assert!(c.entries.contains_key(&64));
        assert_eq!(c.evictions, 1);
        // The just-inserted key is never its own victim, even at capacity 0.
        c.capacity = 0;
        c.capacity = c.capacity.max(1);
        c.enforce_bound(64);
        assert!(c.entries.contains_key(&64));
    }

    #[test]
    fn stats_since_windows_the_counters() {
        let a = plan_cache_stats();
        plan(2053);
        plan(2053);
        let b = plan_cache_stats();
        let d = b.since(&a);
        assert!(d.misses >= 1, "{d:?}");
        assert!(d.hits >= 1, "{d:?}");
    }

    #[test]
    fn bluestein_spectrum_is_precomputed_once() {
        // The chirp spectrum lives in the plan: two transforms of the same
        // odd length must not rebuild it (checked via pointer identity of
        // the cached plan and by exactness of repeated results).
        let p = plan(45);
        let x = random_signal(45, 9);
        let mut a = x.clone();
        let mut b = x.clone();
        p.fft(&mut a);
        p.fft(&mut b);
        for (u, v) in a.iter().zip(&b) {
            assert_eq!(u.re, v.re);
            assert_eq!(u.im, v.im);
        }
    }
}
