//! Small statistics helpers used by the benchmark harness and the MD
//! analysis code: summaries, linear fits, and histograms.

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator; 0 for fewer than 2 points).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Minimum (NaN-free input assumed; 0 for empty).
pub fn min(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Maximum (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Least-squares line `y = a + b·x`; returns `(a, b)`.
/// Panics with fewer than 2 points or a degenerate x-range.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(x.len() >= 2, "linear_fit needs at least 2 points");
    let n = x.len() as f64;
    let sx: f64 = x.iter().sum();
    let sy: f64 = y.iter().sum();
    let sxx: f64 = x.iter().map(|v| v * v).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| a * b).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-300, "linear_fit: degenerate x range");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets; out-of-range
/// samples are clamped into the first/last bucket.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0 && hi > lo);
    let mut h = vec![0usize; bins];
    let w = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / w).floor() as isize).clamp(0, bins as isize - 1);
        h[idx as usize] += 1;
    }
    h
}

/// Relative imbalance of a load vector: `max/mean` (1.0 = perfectly
/// balanced). Returns 1.0 for an empty or all-zero input.
pub fn imbalance(loads: &[f64]) -> f64 {
    let m = mean(loads);
    if m <= 0.0 {
        return 1.0;
    }
    max(loads) / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn summary_stats() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!(approx_eq(mean(&xs), 5.0, 1e-15));
        // Sample stddev of that classic set is sqrt(32/7).
        assert!(approx_eq(stddev(&xs), (32.0f64 / 7.0).sqrt(), 1e-12));
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 9.0);
    }

    #[test]
    fn fit_recovers_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 - 0.5 * v).collect();
        let (a, b) = linear_fit(&x, &y);
        assert!(approx_eq(a, 3.0, 1e-12));
        assert!(approx_eq(b, -0.5, 1e-12));
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-1.0, 0.1, 0.5, 0.9, 2.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]); // -1.0 clamps low, 2.0 clamps high
        assert_eq!(h.iter().sum::<usize>(), xs.len());
    }

    #[test]
    fn imbalance_metric() {
        assert!(approx_eq(imbalance(&[1.0, 1.0, 1.0]), 1.0, 1e-15));
        assert!(approx_eq(imbalance(&[2.0, 1.0, 0.0]), 2.0, 1e-15));
        assert_eq!(imbalance(&[]), 1.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }
}
