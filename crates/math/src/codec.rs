//! Bit-exact binary encoding for checkpoint/restart.
//!
//! The serve layer checkpoints SCF and MD state mid-job and must resume
//! producing **bit-identical** trajectories, so floating-point values are
//! written as their raw IEEE-754 bit patterns (`f64::to_bits`) — no textual
//! round-trip, no rounding. The format is deliberately tiny: little-endian
//! fixed-width integers, length-prefixed slices, and a caller-chosen magic
//! tag so mismatched payloads fail loudly instead of decoding garbage.
//!
//! This module exists because the workspace's `serde` shim is
//! serialization-free by design (the reproduction environment has no real
//! serde); everything that needs durable bytes goes through here.

use std::fmt;

/// Error decoding a checkpoint byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the requested field.
    Truncated {
        /// Bytes wanted by the read.
        wanted: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// The leading magic tag did not match the expected payload kind.
    BadMagic {
        /// Tag expected by the decoder.
        expected: u32,
        /// Tag found in the stream.
        found: u32,
    },
    /// A version the decoder does not understand.
    BadVersion(u16),
    /// A length prefix that is implausibly large for the stream.
    BadLength(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { wanted, remaining } => {
                write!(
                    f,
                    "truncated stream: wanted {wanted} bytes, {remaining} remain"
                )
            }
            CodecError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:#x}, found {found:#x}")
            }
            CodecError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::BadLength(n) => write!(f, "implausible length prefix {n}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh encoder stamped with a magic tag and format version.
    pub fn with_magic(magic: u32, version: u16) -> Encoder {
        let mut e = Encoder { buf: Vec::new() };
        e.put_u32(magic);
        e.put_u16(version);
        e
    }

    /// Consume the encoder, returning the byte stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a fixed-width `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `f64` as its raw bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `f64` slice, bit-exact.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bs: &[u8]) {
        self.put_usize(bs.len());
        self.buf.extend_from_slice(bs);
    }
}

/// Cursor-based decoder over a checkpoint byte stream.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Decoder that first checks the magic tag and returns the stream
    /// version, failing on a mismatched tag.
    pub fn with_magic(buf: &'a [u8], magic: u32) -> Result<(Decoder<'a>, u16), CodecError> {
        let mut d = Decoder::new(buf);
        let found = d.get_u32()?;
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found,
            });
        }
        let version = d.get_u16()?;
        Ok((d, version))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `usize` (stored as `u64`), validating it fits the platform
    /// and is not wildly beyond the remaining stream.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength(v))
    }

    /// Read a `bool`.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.get_u8()? != 0)
    }

    /// Read an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.get_usize()?;
        // Each element is 8 bytes; reject prefixes the stream cannot hold.
        if n > self.remaining() / 8 {
            return Err(CodecError::BadLength(n as u64));
        }
        (0..n).map(|_| self.get_f64()).collect()
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid bytes).
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(CodecError::BadLength(n as u64));
        }
        Ok(String::from_utf8_lossy(self.take(n)?).into_owned())
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(CodecError::BadLength(n as u64));
        }
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_exact() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.5e-300,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ];
        let mut e = Encoder::with_magic(0x4C41_4952, 3);
        for &v in &specials {
            e.put_f64(v);
        }
        e.put_f64_slice(&specials);
        e.put_u64(u64::MAX);
        e.put_usize(77);
        e.put_bool(true);
        e.put_str("liair-serve");
        let bytes = e.finish();

        let (mut d, version) = Decoder::with_magic(&bytes, 0x4C41_4952).unwrap();
        assert_eq!(version, 3);
        for &v in &specials {
            assert_eq!(d.get_f64().unwrap().to_bits(), v.to_bits());
        }
        let vs = d.get_f64_vec().unwrap();
        assert_eq!(vs.len(), specials.len());
        for (a, b) in vs.iter().zip(&specials) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_usize().unwrap(), 77);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_string().unwrap(), "liair-serve");
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn nan_payloads_survive() {
        // Checkpoints must preserve NaN payload bits too — resume paths
        // compare trajectories via to_bits().
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut e = Encoder::default();
        e.put_f64(weird);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn mismatched_magic_is_rejected() {
        let e = Encoder::with_magic(0x1111_2222, 1);
        let bytes = e.finish();
        let err = Decoder::with_magic(&bytes, 0x3333_4444).unwrap_err();
        assert!(matches!(err, CodecError::BadMagic { .. }));
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::default();
        e.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 4]);
        assert!(d.get_f64_vec().is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut e = Encoder::default();
        e.put_u64(u64::MAX); // absurd length prefix
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_f64_vec().is_err());
    }
}
