//! A dense 3-D array stored contiguously in row-major (`x`-major) order.
//!
//! Used for real-space grids: element `(ix, iy, iz)` lives at
//! `ix * ny * nz + iy * nz + iz`, so the `z` axis is contiguous — the FFT and
//! stencil loops exploit this layout.

/// Dense 3-D array of `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3<T> {
    dims: (usize, usize, usize),
    data: Vec<T>,
}

impl<T: Clone + Default> Array3<T> {
    /// A new array of the given dimensions, default-filled.
    pub fn zeros(dims: (usize, usize, usize)) -> Self {
        let n = dims.0 * dims.1 * dims.2;
        Self {
            dims,
            data: vec![T::default(); n],
        }
    }
}

impl<T> Array3<T> {
    /// Wrap an existing flat buffer. Panics if the length mismatches.
    pub fn from_vec(dims: (usize, usize, usize), data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims.0 * dims.1 * dims.2, "Array3 size mismatch");
        Self { dims, data }
    }

    /// Dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(ix, iy, iz)`.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.dims.0 && iy < self.dims.1 && iz < self.dims.2);
        (ix * self.dims.1 + iy) * self.dims.2 + iz
    }

    /// Immutable flat view.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, ix: usize, iy: usize, iz: usize) -> &T {
        &self.data[self.idx(ix, iy, iz)]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, ix: usize, iy: usize, iz: usize) -> &mut T {
        let i = self.idx(ix, iy, iz);
        &mut self.data[i]
    }
}

impl<T> std::ops::Index<(usize, usize, usize)> for Array3<T> {
    type Output = T;
    #[inline]
    fn index(&self, (ix, iy, iz): (usize, usize, usize)) -> &T {
        self.get(ix, iy, iz)
    }
}

impl<T> std::ops::IndexMut<(usize, usize, usize)> for Array3<T> {
    #[inline]
    fn index_mut(&mut self, (ix, iy, iz): (usize, usize, usize)) -> &mut T {
        self.get_mut(ix, iy, iz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_z_contiguous() {
        let a: Array3<f64> = Array3::zeros((2, 3, 4));
        assert_eq!(a.idx(0, 0, 0), 0);
        assert_eq!(a.idx(0, 0, 1), 1);
        assert_eq!(a.idx(0, 1, 0), 4);
        assert_eq!(a.idx(1, 0, 0), 12);
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn index_write_read() {
        let mut a: Array3<i32> = Array3::zeros((3, 3, 3));
        a[(1, 2, 0)] = 42;
        assert_eq!(a[(1, 2, 0)], 42);
        assert_eq!(a.as_slice().iter().sum::<i32>(), 42);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_wrong_length() {
        let _ = Array3::from_vec((2, 2, 2), vec![0.0f64; 7]);
    }
}
