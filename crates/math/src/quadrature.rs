//! Gauss–Legendre quadrature nodes and weights on `[-1, 1]`.
//!
//! Nodes are roots of the Legendre polynomial `P_n`, found by Newton
//! iteration from the Chebyshev initial guess; weights follow from
//! `w_i = 2 / ((1 - x_i²) P_n'(x_i)²)`.

use std::f64::consts::PI;

/// Return `(nodes, weights)` of the `n`-point rule on `[-1, 1]`.
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-like initial guess for the i-th root.
        let mut x = (PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            let p = if n == 1 { x } else { p1 };
            dp = n as f64 * (x * p - p0) / (x * x - 1.0);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

/// Integrate `f` over `[a, b]` with the `n`-point rule.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let (nodes, weights) = gauss_legendre(n);
    let mid = 0.5 * (a + b);
    let half = 0.5 * (b - a);
    nodes
        .iter()
        .zip(&weights)
        .map(|(&x, &w)| w * f(mid + half * x))
        .sum::<f64>()
        * half
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn weights_sum_to_two() {
        for n in [1, 2, 5, 16, 33, 64] {
            let (_, w) = gauss_legendre(n);
            let s: f64 = w.iter().sum();
            assert!(approx_eq(s, 2.0, 1e-13), "n={n}: {s}");
        }
    }

    #[test]
    fn exact_for_polynomials() {
        // n-point rule is exact for degree ≤ 2n−1.
        let (x, w) = gauss_legendre(4);
        // ∫_{-1}^{1} t^6 dt = 2/7
        let s: f64 = x.iter().zip(&w).map(|(&t, &wi)| wi * t.powi(6)).sum();
        assert!(approx_eq(s, 2.0 / 7.0, 1e-13));
        // degree 7 (odd) integrates to 0
        let s7: f64 = x.iter().zip(&w).map(|(&t, &wi)| wi * t.powi(7)).sum();
        assert!(s7.abs() < 1e-14);
    }

    #[test]
    fn integrates_transcendental() {
        // ∫₀^π sin = 2
        let v = integrate(f64::sin, 0.0, PI, 24);
        assert!(approx_eq(v, 2.0, 1e-12));
        // ∫₀^1 e^x = e − 1
        let v = integrate(f64::exp, 0.0, 1.0, 16);
        assert!(approx_eq(v, std::f64::consts::E - 1.0, 1e-13));
    }

    #[test]
    fn nodes_are_sorted_and_symmetric() {
        let (x, _) = gauss_legendre(10);
        for i in 1..x.len() {
            assert!(x[i] > x[i - 1]);
        }
        for i in 0..x.len() {
            assert!(approx_eq(x[i], -x[x.len() - 1 - i], 1e-13));
        }
    }
}
