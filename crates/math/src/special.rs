//! Special functions for Gaussian integral evaluation.
//!
//! The centrepiece is the Boys function
//! `F_m(x) = ∫₀¹ t^{2m} e^{-x t²} dt`, which every Coulomb-type Gaussian
//! integral reduces to. We use the standard numerically-stable split:
//!
//! * `x < 35`: evaluate the highest requested order by its convergent series
//!   and fill lower orders with the *downward* recursion
//!   `F_m = (2x·F_{m+1} + e^{-x}) / (2m+1)` (stable in this direction);
//! * `x ≥ 35`: `F₀ ≈ ½√(π/x)` (the `erfc(√x)` correction is below machine
//!   epsilon here) followed by the *upward* recursion, stable for large `x`.

use std::f64::consts::PI;

/// Natural log of the gamma function (Lanczos, g = 7, 9 coefficients);
/// |relative error| < 1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (valid/fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by continued fraction
/// (valid/fast for `x ≥ a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let fpmin = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a={a}, x={x}");
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Error function to near machine precision via `erf(x) = P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Boys function values `F_0(x) .. F_mmax(x)` (inclusive), written into a
/// freshly returned vector of length `mmax + 1`.
pub fn boys(mmax: usize, x: f64) -> Vec<f64> {
    let mut f = vec![0.0; mmax + 1];
    boys_into(&mut f, x);
    f
}

/// As [`boys`], writing into a caller-provided slice (hot paths reuse the
/// buffer). `out.len() - 1` is the maximum order.
pub fn boys_into(out: &mut [f64], x: f64) {
    assert!(!out.is_empty());
    let mmax = out.len() - 1;
    if x < 1e-14 {
        for (m, f) in out.iter_mut().enumerate() {
            *f = 1.0 / (2 * m + 1) as f64;
        }
        return;
    }
    if x < 35.0 {
        // Series for the top order: F_m(x) = e^{-x} Σ_k (2x)^k /
        // ((2m+1)(2m+3)...(2m+2k+1)) — term ratio 2x/(2m+2k+3).
        let emx = (-x).exp();
        let mut term = 1.0 / (2 * mmax + 1) as f64;
        let mut sum = term;
        let mut k = 0usize;
        loop {
            term *= 2.0 * x / (2 * mmax + 2 * k + 3) as f64;
            sum += term;
            k += 1;
            if term < sum * 1e-17 || k > 10_000 {
                break;
            }
        }
        out[mmax] = emx * sum;
        // Downward recursion.
        for m in (0..mmax).rev() {
            out[m] = (2.0 * x * out[m + 1] + emx) / (2 * m + 1) as f64;
        }
    } else {
        // Large-x asymptotics: erfc(√35) ≈ 3e-17 so the correction vanishes.
        let emx = (-x).exp();
        out[0] = 0.5 * (PI / x).sqrt();
        for m in 0..mmax {
            out[m + 1] = ((2 * m + 1) as f64 * out[m] - emx) / (2.0 * x);
        }
    }
}

/// Double factorial `n!! = n (n-2)(n-4)…` with the conventions
/// `(-1)!! = 0!! = 1`.
pub fn double_factorial(n: i64) -> f64 {
    if n <= 0 {
        return 1.0;
    }
    let mut acc = 1.0;
    let mut k = n;
    while k > 1 {
        acc *= k as f64;
        k -= 2;
    }
    acc
}

/// Factorial as `f64` (exact through 22!).
pub fn factorial(n: usize) -> f64 {
    (1..=n).fold(1.0, |acc, k| acc * k as f64)
}

/// Binomial coefficient as `f64`.
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn ln_gamma_known_values() {
        assert!(approx_eq(ln_gamma(1.0), 0.0, 1e-13));
        assert!(approx_eq(ln_gamma(2.0), 0.0, 1e-13));
        assert!(approx_eq(ln_gamma(5.0), (24.0f64).ln(), 1e-12));
        assert!(approx_eq(ln_gamma(0.5), (PI.sqrt()).ln(), 1e-12));
    }

    #[test]
    fn erf_reference_values() {
        // Values from Abramowitz & Stegun tables / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (-1.0, -0.8427007929497149),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!(approx_eq(erf(x), want, 1e-12), "erf({x})");
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for k in 0..60 {
            let x = -3.0 + 0.1 * k as f64;
            assert!(approx_eq(erf(x), -erf(-x), 1e-14));
            assert!(erf(x).abs() <= 1.0);
        }
    }

    #[test]
    fn boys_zero_argument() {
        let f = boys(6, 0.0);
        for (m, &v) in f.iter().enumerate() {
            assert!(approx_eq(v, 1.0 / (2 * m + 1) as f64, 1e-15));
        }
    }

    #[test]
    fn boys_f0_is_erf_formula() {
        // F_0(x) = (1/2)·√(π/x)·erf(√x)
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0, 30.0, 40.0, 100.0] {
            let f = boys(0, x);
            let want = 0.5 * (PI / x).sqrt() * erf(x.sqrt());
            assert!(approx_eq(f[0], want, 1e-12), "x={x}: {} vs {want}", f[0]);
        }
    }

    #[test]
    fn boys_satisfies_recursion() {
        // F_{m+1}(x) = ((2m+1) F_m(x) − e^{-x}) / (2x)
        for &x in &[0.25, 2.0, 8.0, 20.0, 50.0] {
            let f = boys(8, x);
            for m in 0..8 {
                let rhs = ((2 * m + 1) as f64 * f[m] - (-x).exp()) / (2.0 * x);
                assert!(approx_eq(f[m + 1], rhs, 1e-10), "x={x} m={m}");
            }
        }
    }

    #[test]
    fn boys_quadrature_oracle() {
        // Compare against direct Gauss–Legendre integration of the defining
        // integral.
        use crate::quadrature::gauss_legendre;
        let (nodes, weights) = gauss_legendre(80);
        for &x in &[0.3, 1.7, 5.0, 12.0] {
            let f = boys(4, x);
            for m in 0..=4 {
                // map [-1,1] -> [0,1]
                let mut val = 0.0;
                for (&t, &w) in nodes.iter().zip(&weights) {
                    let u: f64 = 0.5 * (t + 1.0);
                    val += 0.5 * w * u.powi(2 * m as i32) * (-x * u * u).exp();
                }
                assert!(approx_eq(f[m], val, 1e-11), "x={x}, m={m}");
            }
        }
    }

    #[test]
    fn boys_continuous_across_regime_switch() {
        let below = boys(10, 35.0 - 1e-9);
        let above = boys(10, 35.0 + 1e-9);
        for m in 0..=10 {
            assert!(approx_eq(below[m], above[m], 1e-10), "m={m}");
        }
    }

    #[test]
    fn combinatorics() {
        assert_eq!(double_factorial(-1), 1.0);
        assert_eq!(double_factorial(0), 1.0);
        assert_eq!(double_factorial(5), 15.0);
        assert_eq!(double_factorial(6), 48.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(binomial(6, 2), 15.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(4, 7), 0.0);
    }
}
