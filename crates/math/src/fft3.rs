//! Threaded 3-D complex FFTs over [`Array3`] grids.
//!
//! The transform is applied axis by axis:
//!
//! * the `z` axis is contiguous in memory, so rows are transformed in place
//!   (one rayon task per batch of rows);
//! * the `y` axis is handled per `x`-slab — each slab is a disjoint `&mut`
//!   chunk, gathered into a thread-local scratch line;
//! * the `x` axis is the long stride: the array is transposed into an
//!   `(ny·nz) × nx` row-major scratch, rows transformed, and transposed back.
//!
//! This mirrors the node-local threaded FFT the paper runs with 64 hardware
//! threads per BG/Q node; here the threading is rayon.

use crate::array3::Array3;
use crate::complex::Complex64;
use crate::fft::{fft, ifft};
use rayon::prelude::*;

/// Forward 3-D FFT, unnormalized.
pub fn fft3(a: &mut Array3<Complex64>) {
    transform3(a, false);
}

/// Inverse 3-D FFT with `1/(nx·ny·nz)` normalization.
pub fn ifft3(a: &mut Array3<Complex64>) {
    transform3(a, true);
}

fn transform3(a: &mut Array3<Complex64>, inverse: bool) {
    let (nx, ny, nz) = a.dims();
    let line = if inverse { ifft } else { fft };

    // --- z axis: contiguous rows ---
    a.as_mut_slice().par_chunks_mut(nz).for_each(line);

    // --- y axis: per-x slab, strided by nz ---
    a.as_mut_slice()
        .par_chunks_mut(ny * nz)
        .for_each_init(
            || vec![Complex64::ZERO; ny],
            |scratch, slab| {
                for iz in 0..nz {
                    for iy in 0..ny {
                        scratch[iy] = slab[iy * nz + iz];
                    }
                    line(scratch);
                    for iy in 0..ny {
                        slab[iy * nz + iz] = scratch[iy];
                    }
                }
            },
        );

    // --- x axis: transpose to (ny·nz) × nx, transform rows, transpose back ---
    if nx > 1 {
        let plane = ny * nz;
        let mut t = vec![Complex64::ZERO; nx * plane];
        {
            let src = a.as_slice();
            t.par_chunks_mut(nx).enumerate().for_each(|(p, row)| {
                for (ix, v) in row.iter_mut().enumerate() {
                    *v = src[ix * plane + p];
                }
            });
        }
        t.par_chunks_mut(nx).for_each(line);
        {
            let dst = a.as_mut_slice();
            // Scatter back: parallelize over x-slabs of the destination so
            // each task writes a disjoint chunk.
            dst.par_chunks_mut(plane).enumerate().for_each(|(ix, slab)| {
                for (p, v) in slab.iter_mut().enumerate() {
                    *v = t[p * nx + ix];
                }
            });
        }
    }
}

/// Convert a real field into a complex work array.
pub fn to_complex(real: &[f64], dims: (usize, usize, usize)) -> Array3<Complex64> {
    let data = real.iter().map(|&r| Complex64::real(r)).collect();
    Array3::from_vec(dims, data)
}

/// Extract the real parts of a complex grid (imaginary parts are discarded —
/// callers assert they are negligible where that is an invariant).
pub fn to_real(c: &Array3<Complex64>) -> Vec<f64> {
    c.as_slice().iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_reference;
    use crate::rng::SplitMix64;

    fn random_grid(dims: (usize, usize, usize), seed: u64) -> Array3<Complex64> {
        let mut rng = SplitMix64::new(seed);
        let n = dims.0 * dims.1 * dims.2;
        let data = (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        Array3::from_vec(dims, data)
    }

    /// Brute-force 3-D DFT by applying the 1-D reference along each axis.
    fn reference3(a: &Array3<Complex64>) -> Array3<Complex64> {
        let (nx, ny, nz) = a.dims();
        let mut out = a.clone();
        // z axis
        for ix in 0..nx {
            for iy in 0..ny {
                let row: Vec<_> = (0..nz).map(|iz| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for iz in 0..nz {
                    *out.get_mut(ix, iy, iz) = tr[iz];
                }
            }
        }
        // y axis
        for ix in 0..nx {
            for iz in 0..nz {
                let row: Vec<_> = (0..ny).map(|iy| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for iy in 0..ny {
                    *out.get_mut(ix, iy, iz) = tr[iy];
                }
            }
        }
        // x axis
        for iy in 0..ny {
            for iz in 0..nz {
                let row: Vec<_> = (0..nx).map(|ix| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for ix in 0..nx {
                    *out.get_mut(ix, iy, iz) = tr[ix];
                }
            }
        }
        out
    }

    #[test]
    fn matches_separable_reference() {
        for dims in [(4, 4, 4), (2, 3, 5), (8, 4, 2)] {
            let a = random_grid(dims, 17);
            let want = reference3(&a);
            let mut got = a.clone();
            fft3(&mut got);
            let err = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "dims {dims:?}: err {err}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let a = random_grid((8, 8, 8), 5);
        let mut b = a.clone();
        fft3(&mut b);
        ifft3(&mut b);
        let err = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-11);
    }

    #[test]
    fn real_field_has_hermitian_spectrum() {
        let dims = (4, 4, 4);
        let mut rng = SplitMix64::new(23);
        let real: Vec<f64> = (0..64).map(|_| rng.next_f64()).collect();
        let mut c = to_complex(&real, dims);
        fft3(&mut c);
        // X(-k) = conj(X(k)) for a real input.
        let (nx, ny, nz) = dims;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let a = *c.get(ix, iy, iz);
                    let b = *c.get((nx - ix) % nx, (ny - iy) % ny, (nz - iz) % nz);
                    assert!((a.re - b.re).abs() < 1e-10 && (a.im + b.im).abs() < 1e-10);
                }
            }
        }
    }
}
