//! Threaded 3-D complex FFTs over [`Array3`] grids.
//!
//! The transform is applied axis by axis:
//!
//! * the `z` axis is contiguous in memory, so rows are transformed in place
//!   (one rayon task per batch of rows);
//! * the `y` axis is handled per `x`-slab — each slab is a disjoint `&mut`
//!   chunk, gathered into a thread-local scratch line;
//! * the `x` axis is the long stride: the array is transposed into an
//!   `(ny·nz) × nx` row-major scratch, rows transformed, and transposed back.
//!
//! This mirrors the node-local threaded FFT the paper runs with 64 hardware
//! threads per BG/Q node; here the threading is rayon.
//!
//! Plans are fetched **once per axis** from the process-wide cache (the
//! seed rebuilt twiddle tables inside every 1-D line transform), and the
//! serial variants [`fft3_serial`] / [`ifft3_serial`] additionally perform
//! zero heap allocations in steady state — they are the building block for
//! the per-pair exchange hot loop, where each rayon task owns one whole
//! 3-D transform and must not allocate or nest parallelism.

use crate::array3::Array3;
use crate::complex::Complex64;
use crate::plan::{plan, FftPlan};
use crate::simd::{self, SimdLevel};
use rayon::prelude::*;
use std::cell::RefCell;

thread_local! {
    /// Grow-only line scratch for strided (y/x-axis) serial transforms.
    static LINE_SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// Forward 3-D FFT, unnormalized.
pub fn fft3(a: &mut Array3<Complex64>) {
    transform3(a, false);
}

/// Inverse 3-D FFT with `1/(nx·ny·nz)` normalization.
pub fn ifft3(a: &mut Array3<Complex64>) {
    transform3(a, true);
}

/// Forward 3-D FFT on the calling thread only — no rayon, no steady-state
/// heap allocation (scratch is thread-local and grow-only). Use inside
/// parallel loops that already own one transform per task.
pub fn fft3_serial(a: &mut Array3<Complex64>) {
    let dims = a.dims();
    transform3_serial(simd::level(), a.as_mut_slice(), dims, false);
}

/// Serial inverse 3-D FFT with `1/(nx·ny·nz)` normalization; see
/// [`fft3_serial`].
pub fn ifft3_serial(a: &mut Array3<Complex64>) {
    let dims = a.dims();
    transform3_serial(simd::level(), a.as_mut_slice(), dims, true);
}

/// [`fft3_serial`] over a bare slice in `Array3` layout (z contiguous),
/// for callers that keep reusable flat workspaces.
pub fn fft3_serial_slice(data: &mut [Complex64], dims: (usize, usize, usize)) {
    transform3_serial(simd::level(), data, dims, false);
}

/// [`fft3_serial_slice`] at an explicit SIMD level.
pub fn fft3_serial_slice_with(
    level: SimdLevel,
    data: &mut [Complex64],
    dims: (usize, usize, usize),
) {
    transform3_serial(level, data, dims, false);
}

/// [`ifft3_serial`] over a bare slice in `Array3` layout.
pub fn ifft3_serial_slice(data: &mut [Complex64], dims: (usize, usize, usize)) {
    transform3_serial(simd::level(), data, dims, true);
}

/// [`ifft3_serial_slice`] at an explicit SIMD level.
pub fn ifft3_serial_slice_with(
    level: SimdLevel,
    data: &mut [Complex64],
    dims: (usize, usize, usize),
) {
    transform3_serial(level, data, dims, true);
}

#[inline]
fn line_transform(p: &FftPlan, level: SimdLevel, inverse: bool, row: &mut [Complex64]) {
    if inverse {
        p.ifft_with(level, row);
    } else {
        p.fft_with(level, row);
    }
}

fn transform3(a: &mut Array3<Complex64>, inverse: bool) {
    let (nx, ny, nz) = a.dims();
    // One cache lookup per axis, not one per line; one SIMD-level resolve.
    let (px, py, pz) = (plan(nx), plan(ny), plan(nz));
    let level = simd::level();

    // --- z axis: contiguous rows ---
    {
        let pz = &pz;
        a.as_mut_slice()
            .par_chunks_mut(nz)
            .for_each(|row| line_transform(pz, level, inverse, row));
    }

    // --- y axis: per-x slab, strided by nz ---
    {
        let py = &py;
        a.as_mut_slice().par_chunks_mut(ny * nz).for_each_init(
            || vec![Complex64::ZERO; ny],
            |scratch, slab| {
                for iz in 0..nz {
                    for iy in 0..ny {
                        scratch[iy] = slab[iy * nz + iz];
                    }
                    line_transform(py, level, inverse, scratch);
                    for iy in 0..ny {
                        slab[iy * nz + iz] = scratch[iy];
                    }
                }
            },
        );
    }

    // --- x axis: transpose to (ny·nz) × nx, transform rows, transpose back ---
    if nx > 1 {
        let plane = ny * nz;
        let mut t = vec![Complex64::ZERO; nx * plane];
        {
            let src = a.as_slice();
            t.par_chunks_mut(nx).enumerate().for_each(|(p, row)| {
                for (ix, v) in row.iter_mut().enumerate() {
                    *v = src[ix * plane + p];
                }
            });
        }
        {
            let px = &px;
            t.par_chunks_mut(nx)
                .for_each(|row| line_transform(px, level, inverse, row));
        }
        {
            let dst = a.as_mut_slice();
            // Scatter back: parallelize over x-slabs of the destination so
            // each task writes a disjoint chunk.
            dst.par_chunks_mut(plane)
                .enumerate()
                .for_each(|(ix, slab)| {
                    for (p, v) in slab.iter_mut().enumerate() {
                        *v = t[p * nx + ix];
                    }
                });
        }
    }
}

/// Single-thread axis-by-axis transform. Strided axes go through one
/// thread-local gather/scatter line instead of a full transpose buffer, so
/// the only memory touched beyond the array itself is `max(nx, ny)`
/// complex numbers of reusable scratch.
fn transform3_serial(
    level: SimdLevel,
    data: &mut [Complex64],
    dims: (usize, usize, usize),
    inverse: bool,
) {
    let (nx, ny, nz) = dims;
    assert_eq!(data.len(), nx * ny * nz, "slice does not match dims");
    let (px, py, pz) = (plan(nx), plan(ny), plan(nz));

    // --- z axis: contiguous rows ---
    for row in data.chunks_exact_mut(nz) {
        line_transform(&pz, level, inverse, row);
    }

    LINE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let need = nx.max(ny);
        if buf.len() < need {
            buf.resize(need, Complex64::ZERO);
        }

        // --- y axis: per-x slab, strided by nz ---
        let line = &mut buf[..ny];
        for slab in data.chunks_exact_mut(ny * nz) {
            for iz in 0..nz {
                for iy in 0..ny {
                    line[iy] = slab[iy * nz + iz];
                }
                line_transform(&py, level, inverse, line);
                for iy in 0..ny {
                    slab[iy * nz + iz] = line[iy];
                }
            }
        }

        // --- x axis: strided by ny·nz ---
        if nx > 1 {
            let plane = ny * nz;
            let line = &mut buf[..nx];
            for p in 0..plane {
                for ix in 0..nx {
                    line[ix] = data[ix * plane + p];
                }
                line_transform(&px, level, inverse, line);
                for ix in 0..nx {
                    data[ix * plane + p] = line[ix];
                }
            }
        }
    });
}

/// Convert a real field into a complex work array.
pub fn to_complex(real: &[f64], dims: (usize, usize, usize)) -> Array3<Complex64> {
    let data = real.iter().map(|&r| Complex64::real(r)).collect();
    Array3::from_vec(dims, data)
}

/// Extract the real parts of a complex grid (imaginary parts are discarded —
/// callers assert they are negligible where that is an invariant).
pub fn to_real(c: &Array3<Complex64>) -> Vec<f64> {
    c.as_slice().iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_reference;
    use crate::rng::SplitMix64;

    fn random_grid(dims: (usize, usize, usize), seed: u64) -> Array3<Complex64> {
        let mut rng = SplitMix64::new(seed);
        let n = dims.0 * dims.1 * dims.2;
        let data = (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect();
        Array3::from_vec(dims, data)
    }

    /// Brute-force 3-D DFT by applying the 1-D reference along each axis.
    fn reference3(a: &Array3<Complex64>) -> Array3<Complex64> {
        let (nx, ny, nz) = a.dims();
        let mut out = a.clone();
        // z axis
        for ix in 0..nx {
            for iy in 0..ny {
                let row: Vec<_> = (0..nz).map(|iz| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for iz in 0..nz {
                    *out.get_mut(ix, iy, iz) = tr[iz];
                }
            }
        }
        // y axis
        for ix in 0..nx {
            for iz in 0..nz {
                let row: Vec<_> = (0..ny).map(|iy| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for iy in 0..ny {
                    *out.get_mut(ix, iy, iz) = tr[iy];
                }
            }
        }
        // x axis
        for iy in 0..ny {
            for iz in 0..nz {
                let row: Vec<_> = (0..nx).map(|ix| *out.get(ix, iy, iz)).collect();
                let tr = dft_reference(&row, false);
                for ix in 0..nx {
                    *out.get_mut(ix, iy, iz) = tr[ix];
                }
            }
        }
        out
    }

    #[test]
    fn matches_separable_reference() {
        for dims in [(4, 4, 4), (2, 3, 5), (8, 4, 2)] {
            let a = random_grid(dims, 17);
            let want = reference3(&a);
            let mut got = a.clone();
            fft3(&mut got);
            let err = got
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "dims {dims:?}: err {err}");
        }
    }

    #[test]
    fn serial_matches_parallel() {
        for dims in [(4, 4, 4), (2, 3, 5), (8, 4, 2), (6, 10, 15)] {
            let a = random_grid(dims, 29);
            let mut par = a.clone();
            let mut ser = a.clone();
            fft3(&mut par);
            fft3_serial(&mut ser);
            let err = par
                .as_slice()
                .iter()
                .zip(ser.as_slice())
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {dims:?}: fwd err {err}");
            ifft3(&mut par);
            ifft3_serial(&mut ser);
            let err = par
                .as_slice()
                .iter()
                .zip(ser.as_slice())
                .map(|(x, y)| (*x - *y).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "dims {dims:?}: inv err {err}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let a = random_grid((8, 8, 8), 5);
        let mut b = a.clone();
        fft3(&mut b);
        ifft3(&mut b);
        let err = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-11);
    }

    #[test]
    fn real_field_has_hermitian_spectrum() {
        let dims = (4, 4, 4);
        let mut rng = SplitMix64::new(23);
        let real: Vec<f64> = (0..64).map(|_| rng.next_f64()).collect();
        let mut c = to_complex(&real, dims);
        fft3(&mut c);
        // X(-k) = conj(X(k)) for a real input.
        let (nx, ny, nz) = dims;
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let a = *c.get(ix, iy, iz);
                    let b = *c.get((nx - ix) % nx, (ny - iy) % ny, (nz - iz) % nz);
                    assert!((a.re - b.re).abs() < 1e-10 && (a.im + b.im).abs() < 1e-10);
                }
            }
        }
    }
}
