//! A minimal double-precision complex number.
//!
//! The standard library has no complex type and `num-complex` is not in the
//! allowed dependency set, so we carry our own. Only the operations needed by
//! the FFT and reciprocal-space kernels are provided.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
///
/// `repr(C)` so a `&[Complex64]` can be reinterpreted as an interleaved
/// `re, im, re, im, …` `f64` sequence — the layout the SIMD kernels in
/// [`crate::simd`] load 256 bits at a time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, s: f64) -> Self {
        self.scale(s)
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, o: Self) -> Self {
        let d = o.norm_sqr();
        Self::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, s: f64) -> Self {
        Self::new(self.re / s, self.im / s)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj().im, 4.0);
        assert_eq!((z - z), Complex64::ZERO);
    }

    #[test]
    fn multiplication_and_division_invert() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 3.0);
        let q = (a * b) / b;
        assert!(approx_eq(q.re, a.re, 1e-14));
        assert!(approx_eq(q.im, a.im, 1e-14));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..32 {
            let t = k as f64 * 0.3;
            let z = Complex64::cis(t);
            assert!(approx_eq(z.abs(), 1.0, 1e-14));
        }
        // Euler's identity.
        let z = Complex64::cis(std::f64::consts::PI);
        assert!(approx_eq(z.re, -1.0, 1e-14));
        assert!(z.im.abs() < 1e-14);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let z = Complex64::I * Complex64::I;
        assert!(approx_eq(z.re, -1.0, 1e-15));
        assert!(z.im.abs() < 1e-15);
    }
}
