//! 1-D complex FFTs.
//!
//! * Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform
//!   with a precomputed twiddle table.
//! * Every other length falls back to Bluestein's chirp-z algorithm (which
//!   reduces an arbitrary-length DFT to a power-of-two cyclic convolution),
//!   so any grid size is supported, at roughly 4× the cost.
//!
//! Convention: [`fft`] is unnormalized, [`ifft`] applies the `1/n` factor,
//! so `ifft(fft(x)) == x`.

use crate::complex::Complex64;

/// In-place forward DFT: `X_k = Σ_j x_j e^{-2πijk/n}`.
pub fn fft(data: &mut [Complex64]) {
    transform(data, false);
}

/// In-place inverse DFT with `1/n` normalization.
pub fn ifft(data: &mut [Complex64]) {
    transform(data, true);
    let inv_n = 1.0 / data.len() as f64;
    for z in data.iter_mut() {
        *z = z.scale(inv_n);
    }
}

/// Dispatch on length; `inverse` selects the exponent sign (no scaling).
fn transform(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        fft_pow2(data, inverse);
    } else {
        fft_bluestein(data, inverse);
    }
}

/// Precompute `w_k = e^{sign·2πik/n}` for `k < n/2`.
fn twiddles(n: usize, inverse: bool) -> Vec<Complex64> {
    let sign = if inverse { 1.0 } else { -1.0 };
    let step = sign * 2.0 * std::f64::consts::PI / n as f64;
    (0..n / 2).map(|k| Complex64::cis(step * k as f64)).collect()
}

/// Iterative radix-2 Cooley–Tukey (n must be a power of two).
fn fft_pow2(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
    let tw = twiddles(n, inverse);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for block in data.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            for j in 0..half {
                let w = tw[j * step];
                let u = lo[j];
                let v = hi[j] * w;
                lo[j] = u + v;
                hi[j] = u - v;
            }
        }
        len *= 2;
    }
}

/// Bluestein chirp-z transform for arbitrary n.
///
/// `X_k = conj(b_k) · (a ⊛ b)_k` with `a_j = x_j · conj(b_j)` and the chirp
/// `b_j = e^{sign·iπ j²/n}`; the cyclic convolution runs at the next
/// power-of-two length `m ≥ 2n−1`.
fn fft_bluestein(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp with the quadratic phase reduced mod 2n to preserve precision for
    // large indices.
    let chirp: Vec<Complex64> = (0..n)
        .map(|j| {
            let jsq = (j as u128 * j as u128 % (2 * n as u128)) as f64;
            Complex64::cis(sign * std::f64::consts::PI * jsq / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for j in 0..n {
        a[j] = data[j] * chirp[j];
        b[j] = chirp[j].conj();
    }
    for j in 1..n {
        b[m - j] = chirp[j].conj();
    }
    fft_pow2(&mut a, false);
    fft_pow2(&mut b, false);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    fft_pow2(&mut a, true);
    let inv_m = 1.0 / m as f64;
    for k in 0..n {
        data[k] = a[k].scale(inv_m) * chirp[k];
    }
}

/// Out-of-place naive DFT — O(n²), used as the oracle in tests and for tiny
/// transforms where set-up cost dominates.
pub fn dft_reference(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_pow2() {
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let x = random_signal(n, n as u64);
            let want = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got);
            assert!(max_err(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_reference_arbitrary() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 30, 100, 125] {
            let x = random_signal(n, 31 + n as u64);
            let want = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got);
            assert!(max_err(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[16usize, 60, 128, 81] {
            let x = random_signal(n, 7 + n as u64);
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert!(max_err(&y, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let x = random_signal(n, 99);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 32];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_has_single_bin() {
        // x_j = e^{2πi·3j/32} should transform to n·δ_{k,3} (with the e^{-..}
        // convention the +3 tone lands in bin 3).
        let n = 32;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-9 && z.im.abs() < 1e-9, "bin {k}");
        }
    }
}
