//! 1-D complex FFTs (convenience entry points).
//!
//! These free functions delegate to the process-wide plan cache in
//! [`crate::plan`]: the first transform of a given length builds twiddle
//! tables, the bit-reversal permutation, and (for non-power-of-two lengths)
//! the Bluestein chirp plus its precomputed forward spectrum; every later
//! call reuses them. Hot loops that transform many same-length lines should
//! fetch the plan once with [`crate::plan::plan`] and call it directly to
//! skip the per-call cache lookup.
//!
//! Convention: [`fft`] is unnormalized, [`ifft`] applies the `1/n` factor,
//! so `ifft(fft(x)) == x`.

use crate::complex::Complex64;
use crate::plan::plan;

/// In-place forward DFT: `X_k = Σ_j x_j e^{-2πijk/n}`.
pub fn fft(data: &mut [Complex64]) {
    if data.len() <= 1 {
        return;
    }
    plan(data.len()).fft(data);
}

/// In-place inverse DFT with `1/n` normalization.
pub fn ifft(data: &mut [Complex64]) {
    if data.len() <= 1 {
        return;
    }
    plan(data.len()).ifft(data);
}

/// Out-of-place naive DFT — O(n²), used as the oracle in tests and for tiny
/// transforms where set-up cost dominates.
pub fn dft_reference(input: &[Complex64], inverse: bool) -> Vec<Complex64> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_reference_pow2() {
        for &n in &[1usize, 2, 4, 8, 64, 256] {
            let x = random_signal(n, n as u64);
            let want = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got);
            assert!(max_err(&got, &want) < 1e-9 * n as f64, "n={n}");
        }
    }

    #[test]
    fn matches_reference_arbitrary() {
        for &n in &[3usize, 5, 6, 7, 12, 15, 30, 100, 125] {
            let x = random_signal(n, 31 + n as u64);
            let want = dft_reference(&x, false);
            let mut got = x.clone();
            fft(&mut got);
            assert!(max_err(&got, &want) < 1e-8 * n as f64, "n={n}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        for &n in &[16usize, 60, 128, 81] {
            let x = random_signal(n, 7 + n as u64);
            let mut y = x.clone();
            fft(&mut y);
            ifft(&mut y);
            assert!(max_err(&y, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 128;
        let x = random_signal(n, 99);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft(&mut y);
        let freq_energy: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-10 * time_energy);
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex64::ZERO; 32];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_has_single_bin() {
        // x_j = e^{2πi·3j/32} should transform to n·δ_{k,3} (with the e^{-..}
        // convention the +3 tone lands in bin 3).
        let n = 32;
        let mut x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        fft(&mut x);
        for (k, z) in x.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-9 && z.im.abs() < 1e-9, "bin {k}");
        }
    }
}
