//! Runtime-dispatched short-vector SIMD kernels for the exchange hot path.
//!
//! The paper's node-level performance rests on the 4-wide QPX unit; this
//! module is the host-side equivalent: the handful of inner loops that
//! dominate a pair-Poisson exchange build — radix-2 butterfly passes,
//! the pointwise complex×real kernel-table multiply, the half-spectrum
//! weighted `|ρ̂|²` energy contraction, the real pair-density product
//! `φ_i·φ_j`, and axpy/scale accumulation — each available as
//!
//! * an **AVX2+FMA** implementation (`x86_64` only, `std::arch`
//!   intrinsics behind `is_x86_feature_detected!` — no new dependencies),
//! * a **chunked scalar** fallback written so LLVM can auto-vectorize it
//!   (the portable default), and
//! * an **off** path that is bit-identical to the pre-SIMD scalar code
//!   (the debugging / regression baseline).
//!
//! Dispatch is per *call* through [`SimdLevel`]: [`level()`] resolves the
//! process-wide default once (hardware detection + the `LIAIR_SIMD`
//! override), and every primitive has a `*_with` form taking an explicit
//! level so callers like the `liair-core` pair-path autotuner can pick
//! scalar vs SIMD per grid shape.
//!
//! ## Numerical contract
//!
//! Every *elementwise* primitive (butterfly, kernel multiply, pair
//! density, axpy, scale, pack/unpack) performs the same per-element
//! operations in the same rounding order at every level — the AVX2
//! variants deliberately use unfused multiply + add/sub — so their
//! results are **bit-identical** across `off`/`scalar`/`avx2`. Only the
//! energy *contraction* re-associates the sum (four independent
//! accumulator lanes); its terms are non-negative, so the scalar and SIMD
//! results agree to a few ULP (property-tested at ≤ 4 ULP).
//!
//! `LIAIR_SIMD=off|scalar|avx2` forces a level; requesting `avx2` on
//! hardware without it falls back to `scalar` rather than failing, so the
//! same test matrix runs everywhere.

use crate::complex::Complex64;
use std::sync::OnceLock;

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// The pre-SIMD scalar loops, bit-identical to the seed code paths.
    Off,
    /// Chunked scalar kernels laid out for LLVM auto-vectorization.
    Scalar,
    /// Explicit AVX2+FMA intrinsics (`x86_64` with runtime detection).
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (the `LIAIR_SIMD` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// f64 lanes the level's vector unit processes at once.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Avx2 => 4,
            _ => 1,
        }
    }
}

/// `true` when the running CPU can execute the AVX2+FMA kernels.
pub fn avx2_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// The best level the hardware supports (ignores the env override).
pub fn detect() -> SimdLevel {
    if avx2_available() {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

/// Parse a `LIAIR_SIMD` value. Unknown strings are `None` (auto).
pub fn parse_level(raw: &str) -> Option<SimdLevel> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" => Some(SimdLevel::Off),
        "scalar" => Some(SimdLevel::Scalar),
        "avx2" => Some(SimdLevel::Avx2),
        _ => None,
    }
}

/// The `LIAIR_SIMD` override, read once per process. A forced `avx2` on
/// hardware without it degrades to `scalar`.
pub fn env_override() -> Option<SimdLevel> {
    static OVERRIDE: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let forced = std::env::var("LIAIR_SIMD")
            .ok()
            .as_deref()
            .and_then(parse_level)?;
        Some(if forced == SimdLevel::Avx2 && !avx2_available() {
            SimdLevel::Scalar
        } else {
            forced
        })
    })
}

/// The process-wide default level: the `LIAIR_SIMD` override if set,
/// otherwise the best detected level.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| env_override().unwrap_or_else(detect))
}

/// Every level runnable on this machine, in increasing capability order —
/// what the tests and `bench-simd` sweep.
pub fn available_levels() -> Vec<SimdLevel> {
    let mut v = vec![SimdLevel::Off, SimdLevel::Scalar];
    if avx2_available() {
        v.push(SimdLevel::Avx2);
    }
    v
}

/// Resolve a requested level to one that is safe to execute here: `Avx2`
/// without hardware support degrades to `Scalar`. Keeps the `*_with`
/// entry points sound even for a hand-constructed [`SimdLevel::Avx2`].
#[inline]
fn effective(level: SimdLevel) -> SimdLevel {
    if level == SimdLevel::Avx2 && !avx2_available() {
        SimdLevel::Scalar
    } else {
        level
    }
}

// ---------------------------------------------------------------------------
// Pair-density product: out = a ⊙ b
// ---------------------------------------------------------------------------

/// Elementwise real product `out[i] = a[i]·b[i]` — the pair-density
/// formation `ρ_ij = φ_i φ_j`. Bit-identical across levels.
pub fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    mul_into_with(level(), out, a, b);
}

/// [`mul_into`] at an explicit level.
pub fn mul_into_with(level: SimdLevel, out: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::mul_into(out, a, b) },
        SimdLevel::Scalar => {
            // 4-lane chunks: independent lanes LLVM packs into vectors.
            let n4 = out.len() / 4 * 4;
            for ((o, a4), b4) in out[..n4]
                .chunks_exact_mut(4)
                .zip(a[..n4].chunks_exact(4))
                .zip(b[..n4].chunks_exact(4))
            {
                for k in 0..4 {
                    o[k] = a4[k] * b4[k];
                }
            }
            for i in n4..out.len() {
                out[i] = a[i] * b[i];
            }
        }
        _ => {
            for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                *o = x * y;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// axpy: y += alpha · x
// ---------------------------------------------------------------------------

/// `y[i] += alpha·x[i]` — the orbital accumulation `φ += C_μk χ_μ`.
/// Unfused multiply-then-add at every level: bit-identical results.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    axpy_with(level(), y, alpha, x);
}

/// [`axpy`] at an explicit level.
pub fn axpy_with(level: SimdLevel, y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::axpy(y, alpha, x) },
        SimdLevel::Scalar => {
            let n4 = y.len() / 4 * 4;
            for (y4, x4) in y[..n4].chunks_exact_mut(4).zip(x[..n4].chunks_exact(4)) {
                for k in 0..4 {
                    y4[k] += alpha * x4[k];
                }
            }
            for i in n4..y.len() {
                y[i] += alpha * x[i];
            }
        }
        _ => {
            for (yi, &xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Uniform complex scale: z *= s (the 1/n of an inverse transform)
// ---------------------------------------------------------------------------

/// `z[i] = z[i]·s` for a real scale factor. Bit-identical across levels.
pub fn scale_complex(z: &mut [Complex64], s: f64) {
    scale_complex_with(level(), z, s);
}

/// [`scale_complex`] at an explicit level.
pub fn scale_complex_with(level: SimdLevel, z: &mut [Complex64], s: f64) {
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::scale_complex(z, s) },
        SimdLevel::Scalar => {
            // Two complex per chunk = four independent f64 lanes.
            let n2 = z.len() / 2 * 2;
            for pair in z[..n2].chunks_exact_mut(2) {
                pair[0] = pair[0].scale(s);
                pair[1] = pair[1].scale(s);
            }
            for zi in &mut z[n2..] {
                *zi = zi.scale(s);
            }
        }
        _ => {
            for zi in z.iter_mut() {
                *zi = zi.scale(s);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel-table multiply: z[i] *= table[i] (complex × real, pointwise)
// ---------------------------------------------------------------------------

/// Pointwise complex×real product `z[i] = z[i]·table[i]` — the
/// reciprocal-space Coulomb kernel application. Bit-identical across
/// levels.
pub fn scale_by_table(z: &mut [Complex64], table: &[f64]) {
    scale_by_table_with(level(), z, table);
}

/// [`scale_by_table`] at an explicit level.
pub fn scale_by_table_with(level: SimdLevel, z: &mut [Complex64], table: &[f64]) {
    assert_eq!(z.len(), table.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::scale_by_table(z, table) },
        SimdLevel::Scalar => {
            let n2 = z.len() / 2 * 2;
            for (pair, k2) in z[..n2].chunks_exact_mut(2).zip(table[..n2].chunks_exact(2)) {
                pair[0] = pair[0].scale(k2[0]);
                pair[1] = pair[1].scale(k2[1]);
            }
            for i in n2..z.len() {
                z[i] = z[i].scale(table[i]);
            }
        }
        _ => {
            for (zi, &k) in z.iter_mut().zip(table) {
                *zi = zi.scale(k);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Energy contraction: Σ_i wk[i] · |z[i]|²
// ---------------------------------------------------------------------------

/// Weighted half-spectrum energy `Σ_i wk[i]·|z[i]|²` with the Hermitian
/// double-count weights pre-folded into `wk` — the Parseval contraction
/// of the energy-only exchange path.
///
/// `Off` accumulates strictly sequentially (bit-identical to the seed
/// loop); `Scalar` and `Avx2` share a sixteen-lane accumulation order, so
/// they agree with each other to ≤ 4 ULP (FMA fusion is the only
/// difference) and with `Off` to the usual reassociation error of a
/// non-negative sum.
pub fn weighted_energy(z: &[Complex64], wk: &[f64]) -> f64 {
    weighted_energy_with(level(), z, wk)
}

/// [`weighted_energy`] at an explicit level.
pub fn weighted_energy_with(level: SimdLevel, z: &[Complex64], wk: &[f64]) -> f64 {
    assert_eq!(z.len(), wk.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::weighted_energy(z, wk) },
        SimdLevel::Scalar => {
            // Mirror of the AVX2 lane layout: four 4-lane accumulators over
            // eight complex per step, identical reduction tree. Four chains
            // because the FMA/add latency of one chain is what bounds the
            // sequential `Off` loop.
            let n = z.len();
            let mut l = [0.0f64; 16];
            let mut i = 0;
            while i + 8 <= n {
                for v in 0..4 {
                    let c0 = z[i + 2 * v];
                    let c1 = z[i + 2 * v + 1];
                    l[4 * v] += c0.re * c0.re * wk[i + 2 * v];
                    l[4 * v + 1] += c0.im * c0.im * wk[i + 2 * v];
                    l[4 * v + 2] += c1.re * c1.re * wk[i + 2 * v + 1];
                    l[4 * v + 3] += c1.im * c1.im * wk[i + 2 * v + 1];
                }
                i += 8;
            }
            let mut acc = (((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7])))
                + (((l[8] + l[9]) + (l[10] + l[11])) + ((l[12] + l[13]) + (l[14] + l[15])));
            while i < n {
                acc += wk[i] * z[i].norm_sqr();
                i += 1;
            }
            acc
        }
        _ => {
            let mut acc = 0.0;
            for (zi, &k) in z.iter().zip(wk) {
                acc += k * zi.norm_sqr();
            }
            acc
        }
    }
}

// ---------------------------------------------------------------------------
// Radix-2 butterfly pass
// ---------------------------------------------------------------------------

/// One radix-2 Cooley–Tukey pass over `data`: for every `len`-long block,
/// `lo' = lo + w·hi`, `hi' = lo − w·hi` with twiddle `w = tw[j·step]`.
/// The AVX2 variant uses unfused complex multiplies, so the transform is
/// bit-identical across levels.
pub fn butterfly_pass(data: &mut [Complex64], tw: &[Complex64], len: usize, step: usize) {
    butterfly_pass_with(level(), data, tw, len, step);
}

/// [`butterfly_pass`] at an explicit level.
pub fn butterfly_pass_with(
    level: SimdLevel,
    data: &mut [Complex64],
    tw: &[Complex64],
    len: usize,
    step: usize,
) {
    debug_assert!(len >= 2 && data.len().is_multiple_of(len));
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 if len >= 4 => unsafe { avx2::butterfly_pass(data, tw, len, step) },
        _ => butterfly_pass_scalar(data, tw, len, step),
    }
}

/// The seed butterfly loop, shared by `Off` and `Scalar` (a butterfly has
/// no accumulation to re-associate, so one scalar body serves both).
fn butterfly_pass_scalar(data: &mut [Complex64], tw: &[Complex64], len: usize, step: usize) {
    let half = len / 2;
    for block in data.chunks_exact_mut(len) {
        let (lo, hi) = block.split_at_mut(half);
        for j in 0..half {
            let w = tw[j * step];
            let u = lo[j];
            let v = hi[j] * w;
            lo[j] = u + v;
            hi[j] = u - v;
        }
    }
}

// ---------------------------------------------------------------------------
// r2c pack / unpack
// ---------------------------------------------------------------------------

/// Pack `2n` reals into `n` complex as `z_j = x_{2j} + i·x_{2j+1}` — the
/// even-length r2c front end. A straight interleaved copy under
/// `repr(C)`; bit-identical across levels.
pub fn pack_complex(out: &mut [Complex64], reals: &[f64]) {
    pack_complex_with(level(), out, reals);
}

/// [`pack_complex`] at an explicit level.
pub fn pack_complex_with(level: SimdLevel, out: &mut [Complex64], reals: &[f64]) {
    assert_eq!(reals.len(), 2 * out.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::pack_complex(out, reals) },
        _ => {
            for (zj, r) in out.iter_mut().zip(reals.chunks_exact(2)) {
                *zj = Complex64::new(r[0], r[1]);
            }
        }
    }
}

/// Inverse of [`pack_complex`]: spill `n` complex back to `2n` reals.
pub fn unpack_complex(out: &mut [f64], z: &[Complex64]) {
    unpack_complex_with(level(), out, z);
}

/// [`unpack_complex`] at an explicit level.
pub fn unpack_complex_with(level: SimdLevel, out: &mut [f64], z: &[Complex64]) {
    assert_eq!(out.len(), 2 * z.len());
    match effective(level) {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::unpack_complex(out, z) },
        _ => {
            for (r, zj) in out.chunks_exact_mut(2).zip(z) {
                r[0] = zj.re;
                r[1] = zj.im;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2+FMA kernels (x86_64, runtime-gated)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Callers guarantee AVX2+FMA via [`super::avx2_available`] before
    //! entering any function here. `Complex64` is `repr(C)`, so complex
    //! slices are interleaved `re, im` f64 sequences and a 256-bit vector
    //! holds two complex numbers.

    use super::Complex64;
    use std::arch::x86_64::*;

    /// `[k0, k1]` (128-bit) → `[k0, k0, k1, k1]` — one real weight per
    /// complex lane pair.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dup_weights(k: __m128d) -> __m256d {
        _mm256_permute4x64_pd(_mm256_castpd128_pd256(k), 0b01_01_00_00)
    }

    /// `(a[0]+a[1]) + (a[2]+a[3])` — the reduction tree the chunked
    /// scalar path mirrors.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum4(v: __m256d) -> f64 {
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), v);
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        let n = out.len();
        let n4 = n / 4 * 4;
        let (op, ap, bp) = (out.as_mut_ptr(), a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < n4 {
            let va = _mm256_loadu_pd(ap.add(i));
            let vb = _mm256_loadu_pd(bp.add(i));
            _mm256_storeu_pd(op.add(i), _mm256_mul_pd(va, vb));
            i += 4;
        }
        for i in n4..n {
            out[i] = a[i] * b[i];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
        let n = y.len();
        let n4 = n / 4 * 4;
        let va = _mm256_set1_pd(alpha);
        let (yp, xp) = (y.as_mut_ptr(), x.as_ptr());
        let mut i = 0;
        while i < n4 {
            let vx = _mm256_loadu_pd(xp.add(i));
            let vy = _mm256_loadu_pd(yp.add(i));
            // Unfused mul + add: bit-identical to the scalar path.
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
            i += 4;
        }
        for i in n4..n {
            y[i] += alpha * x[i];
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_complex(z: &mut [Complex64], s: f64) {
        let n = z.len();
        let n2 = n / 2 * 2;
        let vs = _mm256_set1_pd(s);
        let zp = z.as_mut_ptr() as *mut f64;
        let mut i = 0;
        while i < n2 {
            let v = _mm256_loadu_pd(zp.add(2 * i));
            _mm256_storeu_pd(zp.add(2 * i), _mm256_mul_pd(v, vs));
            i += 2;
        }
        if n2 < n {
            z[n2] = z[n2].scale(s);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale_by_table(z: &mut [Complex64], table: &[f64]) {
        let n = z.len();
        let n2 = n / 2 * 2;
        let zp = z.as_mut_ptr() as *mut f64;
        let kp = table.as_ptr();
        let mut i = 0;
        while i < n2 {
            let kd = dup_weights(_mm_loadu_pd(kp.add(i)));
            let v = _mm256_loadu_pd(zp.add(2 * i));
            _mm256_storeu_pd(zp.add(2 * i), _mm256_mul_pd(v, kd));
            i += 2;
        }
        if n2 < n {
            z[n2] = z[n2].scale(table[n2]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn weighted_energy(z: &[Complex64], wk: &[f64]) -> f64 {
        let n = z.len();
        let n8 = n / 8 * 8;
        let zp = z.as_ptr() as *const f64;
        let kp = wk.as_ptr();
        // Four independent accumulator chains: the FMA latency of a single
        // chain is exactly what bounds the sequential `Off` loop, so the
        // chain count — not the lane width — sets the speedup here.
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0;
        while i < n8 {
            let v0 = _mm256_loadu_pd(zp.add(2 * i));
            let v1 = _mm256_loadu_pd(zp.add(2 * i + 4));
            let v2 = _mm256_loadu_pd(zp.add(2 * i + 8));
            let v3 = _mm256_loadu_pd(zp.add(2 * i + 12));
            let k0 = dup_weights(_mm_loadu_pd(kp.add(i)));
            let k1 = dup_weights(_mm_loadu_pd(kp.add(i + 2)));
            let k2 = dup_weights(_mm_loadu_pd(kp.add(i + 4)));
            let k3 = dup_weights(_mm_loadu_pd(kp.add(i + 6)));
            acc0 = _mm256_fmadd_pd(_mm256_mul_pd(v0, v0), k0, acc0);
            acc1 = _mm256_fmadd_pd(_mm256_mul_pd(v1, v1), k1, acc1);
            acc2 = _mm256_fmadd_pd(_mm256_mul_pd(v2, v2), k2, acc2);
            acc3 = _mm256_fmadd_pd(_mm256_mul_pd(v3, v3), k3, acc3);
            i += 8;
        }
        let mut acc = (hsum4(acc0) + hsum4(acc1)) + (hsum4(acc2) + hsum4(acc3));
        while i < n {
            acc += wk[i] * z[i].norm_sqr();
            i += 1;
        }
        acc
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn butterfly_pass(
        data: &mut [Complex64],
        tw: &[Complex64],
        len: usize,
        step: usize,
    ) {
        let half = len / 2;
        let tp = tw.as_ptr() as *const f64;
        for block in data.chunks_exact_mut(len) {
            let (lo, hi) = block.split_at_mut(half);
            let lp = lo.as_mut_ptr() as *mut f64;
            let hp = hi.as_mut_ptr() as *mut f64;
            let mut j = 0;
            while j + 2 <= half {
                // w = [w0.re, w0.im, w1.re, w1.im] (twiddles strided by `step`).
                let w = if step == 1 {
                    _mm256_loadu_pd(tp.add(2 * j))
                } else {
                    let w0 = _mm_loadu_pd(tp.add(2 * j * step));
                    let w1 = _mm_loadu_pd(tp.add(2 * (j + 1) * step));
                    _mm256_set_m128d(w1, w0)
                };
                let u = _mm256_loadu_pd(lp.add(2 * j));
                let h = _mm256_loadu_pd(hp.add(2 * j));
                // v = h·w, complex, unfused: p1 ∓ p2 matches the scalar
                // (re·re − im·im, im·re + re·im) roundings exactly.
                let w_re = _mm256_movedup_pd(w);
                let w_im = _mm256_permute_pd(w, 0b1111);
                let h_sw = _mm256_permute_pd(h, 0b0101);
                let p1 = _mm256_mul_pd(h, w_re);
                let p2 = _mm256_mul_pd(h_sw, w_im);
                let v = _mm256_addsub_pd(p1, p2);
                _mm256_storeu_pd(lp.add(2 * j), _mm256_add_pd(u, v));
                _mm256_storeu_pd(hp.add(2 * j), _mm256_sub_pd(u, v));
                j += 2;
            }
            while j < half {
                let w = tw[j * step];
                let u = lo[j];
                let v = hi[j] * w;
                lo[j] = u + v;
                hi[j] = u - v;
                j += 1;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn pack_complex(out: &mut [Complex64], reals: &[f64]) {
        let n = out.len();
        let n2 = n / 2 * 2;
        let op = out.as_mut_ptr() as *mut f64;
        let rp = reals.as_ptr();
        let mut i = 0;
        while i < n2 {
            _mm256_storeu_pd(op.add(2 * i), _mm256_loadu_pd(rp.add(2 * i)));
            i += 2;
        }
        if n2 < n {
            out[n2] = Complex64::new(reals[2 * n2], reals[2 * n2 + 1]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn unpack_complex(out: &mut [f64], z: &[Complex64]) {
        let n = z.len();
        let n2 = n / 2 * 2;
        let op = out.as_mut_ptr();
        let zp = z.as_ptr() as *const f64;
        let mut i = 0;
        while i < n2 {
            _mm256_storeu_pd(op.add(2 * i), _mm256_loadu_pd(zp.add(2 * i)));
            i += 2;
        }
        if n2 < n {
            out[2 * n2] = z[n2].re;
            out[2 * n2 + 1] = z[n2].im;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn randf(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() - 0.5).collect()
    }

    fn randc(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
            .collect()
    }

    /// ULP distance between two finite doubles (monotone bit mapping).
    fn ulps(a: f64, b: f64) -> u64 {
        fn key(x: f64) -> u64 {
            let b = x.to_bits();
            if b >> 63 == 1 {
                !b
            } else {
                b | (1 << 63)
            }
        }
        key(a).abs_diff(key(b))
    }

    #[test]
    fn parse_level_vocabulary() {
        assert_eq!(parse_level("off"), Some(SimdLevel::Off));
        assert_eq!(parse_level(" Scalar "), Some(SimdLevel::Scalar));
        assert_eq!(parse_level("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(parse_level("auto"), None);
        assert_eq!(parse_level(""), None);
    }

    #[test]
    fn detection_is_consistent() {
        let d = detect();
        assert!(d == SimdLevel::Scalar || d == SimdLevel::Avx2);
        assert_eq!(d == SimdLevel::Avx2, avx2_available());
        let avail = available_levels();
        assert!(avail.contains(&SimdLevel::Off) && avail.contains(&SimdLevel::Scalar));
        assert_eq!(avail.contains(&SimdLevel::Avx2), avx2_available());
        // level() resolves to something runnable.
        assert!(avail.contains(&level()));
    }

    #[test]
    fn elementwise_primitives_bit_identical_across_levels() {
        for n in [0usize, 1, 3, 4, 7, 64, 129] {
            let a = randf(n, 1 + n as u64);
            let b = randf(n, 2 + n as u64);
            let z0 = randc(n, 3 + n as u64);
            let table = randf(n, 4 + n as u64);

            let mut want_mul = vec![0.0; n];
            mul_into_with(SimdLevel::Off, &mut want_mul, &a, &b);
            let mut want_axpy = b.clone();
            axpy_with(SimdLevel::Off, &mut want_axpy, 0.73, &a);
            let mut want_scale = z0.clone();
            scale_complex_with(SimdLevel::Off, &mut want_scale, 1.37);
            let mut want_table = z0.clone();
            scale_by_table_with(SimdLevel::Off, &mut want_table, &table);

            for lvl in available_levels() {
                let mut got = vec![0.0; n];
                mul_into_with(lvl, &mut got, &a, &b);
                assert_eq!(got, want_mul, "mul_into {lvl:?} n={n}");

                let mut got = b.clone();
                axpy_with(lvl, &mut got, 0.73, &a);
                assert_eq!(got, want_axpy, "axpy {lvl:?} n={n}");

                let mut got = z0.clone();
                scale_complex_with(lvl, &mut got, 1.37);
                assert_eq!(got, want_scale, "scale_complex {lvl:?} n={n}");

                let mut got = z0.clone();
                scale_by_table_with(lvl, &mut got, &table);
                assert_eq!(got, want_table, "scale_by_table {lvl:?} n={n}");
            }
        }
    }

    #[test]
    fn butterfly_pass_bit_identical_across_levels() {
        // Twiddles for n = 32; sweep every pass geometry (len, step).
        let n = 32;
        let tw: Vec<Complex64> = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let data = randc(n, 99);
        let mut len = 2;
        while len <= n {
            let step = n / len;
            let mut want = data.clone();
            butterfly_pass_with(SimdLevel::Off, &mut want, &tw, len, step);
            for lvl in available_levels() {
                let mut got = data.clone();
                butterfly_pass_with(lvl, &mut got, &tw, len, step);
                assert_eq!(got, want, "butterfly {lvl:?} len={len} step={step}");
            }
            len *= 2;
        }
    }

    #[test]
    fn pack_unpack_roundtrip_all_levels() {
        for n in [0usize, 1, 2, 5, 16, 33] {
            let x = randf(2 * n, 7 + n as u64);
            for lvl in available_levels() {
                let mut z = vec![Complex64::ZERO; n];
                pack_complex_with(lvl, &mut z, &x);
                for (j, zj) in z.iter().enumerate() {
                    assert_eq!(zj.re, x[2 * j]);
                    assert_eq!(zj.im, x[2 * j + 1]);
                }
                let mut back = vec![0.0; 2 * n];
                unpack_complex_with(lvl, &mut back, &z);
                assert_eq!(back, x, "{lvl:?} n={n}");
            }
        }
    }

    #[test]
    fn weighted_energy_agreement_bounds() {
        for n in [0usize, 1, 3, 4, 6, 17, 256, 1000] {
            let z = randc(n, 11 + n as u64);
            // Non-negative weights, like the Coulomb kernel table.
            let wk: Vec<f64> = randf(n, 13 + n as u64).iter().map(|v| v.abs()).collect();
            let off = weighted_energy_with(SimdLevel::Off, &z, &wk);
            let scalar = weighted_energy_with(SimdLevel::Scalar, &z, &wk);
            // Scalar and AVX2 share the lane assignment and reduction tree,
            // so they agree to ≤ 4 ULP (FMA fusion is the only difference).
            for lvl in available_levels() {
                if lvl == SimdLevel::Off {
                    continue;
                }
                let got = weighted_energy_with(lvl, &z, &wk);
                assert!(
                    ulps(got, scalar) <= 4,
                    "{lvl:?} n={n}: {got} vs {scalar} ({} ulp)",
                    ulps(got, scalar)
                );
            }
            // Off re-associates differently (sequential sum); for a sum of
            // non-negative terms the drift is bounded by n·eps relatively.
            let tol = 4.0 * n.max(1) as f64 * f64::EPSILON;
            assert!(
                (scalar - off).abs() <= tol * off.abs().max(1.0),
                "n={n}: scalar {scalar} vs off {off}"
            );
        }
    }

    #[test]
    fn avx2_requests_degrade_gracefully() {
        // Passing Avx2 explicitly must be safe even where unsupported:
        // `effective` falls back to the chunked scalar path.
        let a = randf(9, 1);
        let b = randf(9, 2);
        let mut got = vec![0.0; 9];
        mul_into_with(SimdLevel::Avx2, &mut got, &a, &b);
        let mut want = vec![0.0; 9];
        mul_into_with(SimdLevel::Off, &mut want, &a, &b);
        assert_eq!(got, want);
    }
}
