//! Deterministic pseudo-random numbers for reproducible workloads.
//!
//! SplitMix64 is tiny, fast, passes BigCrush when used as a 64-bit stream,
//! and — unlike the `rand` ecosystem — guarantees identical sequences across
//! versions, which keeps every benchmark workload in this repository exactly
//! reproducible.

/// SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of entropy.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`. Panics on `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        // Multiplicative rejection-free mapping (Lemire); bias is < 2^-64·n,
        // irrelevant for workload construction.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                let v = self.next_f64();
                return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the SplitMix64 reference code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(1234);
        let n = 50_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.next_gaussian();
            m1 += g;
            m2 += g * g;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.02, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.05, "var {m2}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
