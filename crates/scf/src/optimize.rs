//! Geometry optimization and harmonic vibrational analysis on the RHF
//! surface, using the analytic nuclear gradients.

use crate::driver::{rhf, ScfOptions};
use liair_basis::{Basis, Molecule};
use liair_integrals::rhf_gradient;
use liair_math::linalg::eigh;
use liair_math::{Mat, Vec3};

/// Result of a geometry optimization.
#[derive(Debug, Clone)]
pub struct OptResult {
    /// Optimized geometry.
    pub mol: Molecule,
    /// Final RHF energy.
    pub energy: f64,
    /// Final gradient RMS (Ha/Bohr).
    pub grad_rms: f64,
    /// Optimization steps taken.
    pub steps: usize,
    /// Whether the gradient threshold was met.
    pub converged: bool,
}

/// Minimize the RHF energy by gradient descent with a simple backtracking
/// line search (robust at these system sizes; a quasi-Newton update buys
/// little for 3–13 atoms).
pub fn optimize_rhf(
    mol: &Molecule,
    scf_opts: &ScfOptions,
    grad_tol: f64,
    max_steps: usize,
) -> OptResult {
    let mut current = mol.clone();
    let mut step_size = 0.5; // Bohr²/Ha
    let eval = |m: &Molecule| -> (f64, Vec<Vec3>) {
        let basis = Basis::sto3g(m);
        let scf = rhf(m, &basis, scf_opts);
        assert!(scf.converged, "SCF failed during optimization");
        let g = rhf_gradient(m, &basis, &scf.c, &scf.orbital_energies, &scf.density);
        (scf.energy, g)
    };
    let (mut energy, mut grad) = eval(&current);
    let rms =
        |g: &[Vec3]| (g.iter().map(|v| v.norm_sqr()).sum::<f64>() / (3 * g.len()) as f64).sqrt();
    let mut steps = 0;
    while steps < max_steps {
        let g_rms = rms(&grad);
        if g_rms < grad_tol {
            return OptResult {
                mol: current,
                energy,
                grad_rms: g_rms,
                steps,
                converged: true,
            };
        }
        steps += 1;
        // Backtracking: shrink until the energy decreases.
        let mut accepted = false;
        for _ in 0..12 {
            let mut trial = current.clone();
            for (a, g) in trial.atoms.iter_mut().zip(&grad) {
                a.pos -= *g * step_size;
            }
            let (e_trial, g_trial) = eval(&trial);
            if e_trial < energy {
                current = trial;
                energy = e_trial;
                grad = g_trial;
                step_size = (step_size * 1.3).min(2.0);
                accepted = true;
                break;
            }
            step_size *= 0.4;
        }
        if !accepted {
            break; // line search exhausted: we are at numerical noise level
        }
    }
    let g_rms = rms(&grad);
    OptResult {
        mol: current,
        energy,
        grad_rms: g_rms,
        steps,
        converged: g_rms < grad_tol,
    }
}

/// Harmonic vibrational frequencies (cm⁻¹) from a finite-difference
/// Hessian of the analytic gradient, mass-weighted and diagonalized.
/// Returns all `3N` eigenfrequencies ascending — the first ~6 are the
/// near-zero translations/rotations; imaginary modes come back negative.
pub fn harmonic_frequencies(mol: &Molecule, scf_opts: &ScfOptions, h: f64) -> Vec<f64> {
    let n = mol.natoms();
    let dim = 3 * n;
    let grad_of = |m: &Molecule| -> Vec<Vec3> {
        let basis = Basis::sto3g(m);
        let scf = rhf(m, &basis, scf_opts);
        assert!(scf.converged);
        rhf_gradient(m, &basis, &scf.c, &scf.orbital_energies, &scf.density)
    };
    // Hessian by central differences of the gradient.
    let mut hess = Mat::zeros(dim, dim);
    for atom in 0..n {
        for axis in 0..3 {
            let col = 3 * atom + axis;
            let mut plus = mol.clone();
            plus.atoms[atom].pos[axis] += h;
            let mut minus = mol.clone();
            minus.atoms[atom].pos[axis] -= h;
            let gp = grad_of(&plus);
            let gm = grad_of(&minus);
            for a2 in 0..n {
                for x2 in 0..3 {
                    hess[(3 * a2 + x2, col)] = (gp[a2][x2] - gm[a2][x2]) / (2.0 * h);
                }
            }
        }
    }
    // Symmetrize and mass-weight: H̃ = M^{-1/2} H M^{-1/2}.
    let masses: Vec<f64> = mol.atoms.iter().map(|a| a.element.mass_au()).collect();
    let mut mw = Mat::zeros(dim, dim);
    for i in 0..dim {
        for j in 0..dim {
            let hij = 0.5 * (hess[(i, j)] + hess[(j, i)]);
            mw[(i, j)] = hij / (masses[i / 3] * masses[j / 3]).sqrt();
        }
    }
    let (evals, _) = eigh(&mw);
    // ω = √λ in atomic frequency units → cm⁻¹ (1 a.u. = 2.1947e5 cm⁻¹).
    const AU_TO_CM: f64 = 219_474.631;
    evals
        .into_iter()
        .map(|l| {
            if l >= 0.0 {
                l.sqrt() * AU_TO_CM
            } else {
                -(-l).sqrt() * AU_TO_CM
            }
        })
        .collect()
}

/// Electric dipole moment (a.u.) of a converged closed-shell state:
/// `μ = Σ_A Z_A R_A − Tr(D·r)`.
pub fn dipole_moment(mol: &Molecule, basis: &Basis, density: &Mat) -> Vec3 {
    let d_ints = liair_integrals::dipole_matrices(basis, Vec3::ZERO);
    let mut mu = Vec3::ZERO;
    for a in &mol.atoms {
        mu += a.pos * a.element.z() as f64;
    }
    for k in 0..3 {
        mu[k] -= density.trace_product(&d_ints[k]);
    }
    mu
}

/// Conversion: 1 a.u. of dipole = 2.541746 Debye.
pub const AU_TO_DEBYE: f64 = 2.541_746_473;

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;

    fn fast_opts() -> ScfOptions {
        ScfOptions {
            energy_tol: 1e-10,
            ..Default::default()
        }
    }

    #[test]
    fn h2_optimizes_to_sto3g_equilibrium() {
        // STO-3G H2 equilibrium bond length ≈ 1.346 Bohr (0.712 Å).
        let mut mol = systems::h2(); // starts at 1.4
        mol.atoms[1].pos.x = 1.6; // displace further
        let res = optimize_rhf(&mol, &fast_opts(), 1e-5, 60);
        assert!(res.converged, "opt did not converge: rms {}", res.grad_rms);
        let r = res.mol.atoms[0].pos.distance(res.mol.atoms[1].pos);
        assert!((r - 1.346).abs() < 5e-3, "r_eq = {r}");
        // Energy below the starting point and near the known minimum.
        assert!(res.energy <= -1.1175, "E = {}", res.energy);
    }

    #[test]
    fn water_optimization_lowers_energy_and_flattens_gradient() {
        let mol = systems::water();
        let start = rhf(&mol, &Basis::sto3g(&mol), &fast_opts()).energy;
        let res = optimize_rhf(&mol, &fast_opts(), 3e-4, 25);
        assert!(res.energy < start, "{} !< {start}", res.energy);
        assert!(res.grad_rms < 3e-4, "rms {}", res.grad_rms);
        // STO-3G water optimizes to a shorter bond (~0.989 Å) and a
        // tighter angle than experiment; just check the geometry is sane.
        let r1 = res.mol.atoms[0].pos.distance(res.mol.atoms[1].pos);
        assert!(r1 > 1.6 && r1 < 2.2, "r(OH) = {r1} Bohr");
    }

    #[test]
    fn h2_frequency_is_physical() {
        // Optimize, then compute the vibration: STO-3G H2 harmonic
        // frequency ≈ 5000 cm⁻¹ (experimental 4401; minimal basis is stiff).
        let res = optimize_rhf(&systems::h2(), &fast_opts(), 1e-6, 60);
        let freqs = harmonic_frequencies(&res.mol, &fast_opts(), 5e-3);
        assert_eq!(freqs.len(), 6);
        // Five near-zero modes (3 translations + 2 rotations for a linear
        // molecule), one stretch.
        let stretch = freqs[5];
        assert!(stretch > 4000.0 && stretch < 6500.0, "ω = {stretch}");
        for &f in &freqs[..5] {
            assert!(f.abs() < 400.0, "spurious mode {f}");
        }
    }

    #[test]
    fn water_dipole_matches_sto3g_value() {
        // RHF/STO-3G water dipole ≈ 1.7 D.
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &fast_opts());
        let mu = dipole_moment(&mol, &basis, &scf.density);
        let debye = mu.norm() * AU_TO_DEBYE;
        assert!(debye > 1.4 && debye < 2.0, "dipole = {debye} D");
        // Symmetry: the dipole lies in the molecular plane (z = 0).
        assert!(mu.z.abs() < 1e-8);
    }

    #[test]
    fn h2_dipole_is_zero() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &fast_opts());
        let mu = dipole_moment(&mol, &basis, &scf.density);
        assert!(mu.norm() < 1e-8, "homonuclear dipole {}", mu.norm());
    }
}
