//! Second-order Møller–Plesset perturbation theory (closed shell).
//!
//! `E_MP2 = Σ_{ijab} (ia|jb)·[2(ia|jb) − (ib|ja)] / (ε_i + ε_j − ε_a − ε_b)`
//!
//! over occupied `i, j` and virtual `a, b`, with MO integrals from an
//! O(N⁵) quarter-wise transform of the dense AO tensor. Small systems
//! only (the dense tensor is capped at 96 AOs) — this is a *validation*
//! tool for the integral/SCF stack, not a production correlation method;
//! the paper's correlation comes from the PBE0 functional.

use crate::driver::ScfResult;
use liair_basis::Basis;
use liair_integrals::eri_tensor;
use liair_math::Mat;

/// MP2 correlation energy on a converged closed-shell reference.
pub fn mp2_correlation(basis: &Basis, scf: &ScfResult) -> f64 {
    let n = basis.nao();
    let nocc = scf.nocc;
    let nvirt = n - nocc;
    assert!(nvirt > 0, "no virtual orbitals — MP2 undefined");
    let eri = eri_tensor(basis);
    let c = &scf.c;

    // Quarter transforms: (μν|λσ) → (iν|λσ) → (ia|λσ) → (ia|jσ) → (ia|jb).
    // Stored as dense 4-index arrays over the required ranges.
    let full = |m: &Vec<f64>, d: [usize; 4], i: usize, j: usize, k: usize, l: usize| {
        m[((i * d[1] + j) * d[2] + k) * d[3] + l]
    };
    // Step 1: T1[i, ν, λ, σ]
    let mut t1 = vec![0.0; nocc * n * n * n];
    for i in 0..nocc {
        for nu in 0..n {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for mu in 0..n {
                        acc += c[(mu, i)] * eri.get(mu, nu, lam, sig);
                    }
                    t1[((i * n + nu) * n + lam) * n + sig] = acc;
                }
            }
        }
    }
    // Step 2: T2[i, a, λ, σ]
    let mut t2 = vec![0.0; nocc * nvirt * n * n];
    for i in 0..nocc {
        for a in 0..nvirt {
            for lam in 0..n {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for nu in 0..n {
                        acc += c[(nu, nocc + a)] * full(&t1, [nocc, n, n, n], i, nu, lam, sig);
                    }
                    t2[((i * nvirt + a) * n + lam) * n + sig] = acc;
                }
            }
        }
    }
    drop(t1);
    // Step 3: T3[i, a, j, σ]
    let mut t3 = vec![0.0; nocc * nvirt * nocc * n];
    for i in 0..nocc {
        for a in 0..nvirt {
            for j in 0..nocc {
                for sig in 0..n {
                    let mut acc = 0.0;
                    for lam in 0..n {
                        acc += c[(lam, j)] * full(&t2, [nocc, nvirt, n, n], i, a, lam, sig);
                    }
                    t3[((i * nvirt + a) * nocc + j) * n + sig] = acc;
                }
            }
        }
    }
    drop(t2);
    // Step 4: (ia|jb)
    let mut mo = vec![0.0; nocc * nvirt * nocc * nvirt];
    for i in 0..nocc {
        for a in 0..nvirt {
            for j in 0..nocc {
                for b in 0..nvirt {
                    let mut acc = 0.0;
                    for sig in 0..n {
                        acc += c[(sig, nocc + b)] * full(&t3, [nocc, nvirt, nocc, n], i, a, j, sig);
                    }
                    mo[((i * nvirt + a) * nocc + j) * nvirt + b] = acc;
                }
            }
        }
    }
    drop(t3);

    let iajb =
        |i: usize, a: usize, j: usize, b: usize| mo[((i * nvirt + a) * nocc + j) * nvirt + b];
    let eps = &scf.orbital_energies;
    let mut e2 = 0.0;
    for i in 0..nocc {
        for j in 0..nocc {
            for a in 0..nvirt {
                for b in 0..nvirt {
                    let v = iajb(i, a, j, b);
                    let x = iajb(i, b, j, a);
                    let denom = eps[i] + eps[j] - eps[nocc + a] - eps[nocc + b];
                    e2 += v * (2.0 * v - x) / denom;
                }
            }
        }
    }
    e2
}

/// Convenience: RHF + MP2 total energy.
pub fn rhf_mp2_energy(
    mol: &liair_basis::Molecule,
    basis: &Basis,
    opts: &crate::driver::ScfOptions,
) -> (f64, f64) {
    let scf = crate::driver::rhf(mol, basis, opts);
    assert!(scf.converged, "RHF failed for {}", mol.formula());
    let corr = mp2_correlation(basis, &scf);
    (scf.energy, corr)
}

/// Unused-parameter silencer for Mat import in docs.
#[allow(dead_code)]
fn _t(_: &Mat) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{rhf, ScfOptions};
    use liair_basis::systems;
    use liair_math::approx_eq;

    #[test]
    fn h2_mp2_is_negative_and_small() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let corr = mp2_correlation(&basis, &scf);
        assert!(corr < 0.0, "MP2 correlation must be negative: {corr}");
        assert!(corr > -0.05, "unreasonably large: {corr}");
        // Minimal-basis H2 has a single double excitation: the MP2 pair
        // energy equals (ov|ov)²·1/(2(ε_o − ε_v)) exactly — spot value
        // ≈ −0.013 Ha at R = 1.4.
        assert!(approx_eq(corr, -0.0131, 2e-3), "corr = {corr}");
    }

    #[test]
    fn water_mp2_matches_reference_scale() {
        // H2O/STO-3G MP2 correlation is a few tens of mHa (−0.035 at the
        // experimental geometry; geometry-sensitive — stretched tutorial
        // geometries give up to −0.049).
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let corr = mp2_correlation(&basis, &scf);
        assert!(
            corr < -0.025 && corr > -0.060,
            "H2O MP2 correlation = {corr}"
        );
    }

    #[test]
    fn mp2_is_size_consistent() {
        // Two H2 far apart: E_corr(2×H2) = 2·E_corr(H2).
        let mol1 = systems::h2();
        let basis1 = Basis::sto3g(&mol1);
        let scf1 = rhf(&mol1, &basis1, &ScfOptions::default());
        let corr1 = mp2_correlation(&basis1, &scf1);

        let mut dimer = systems::h2();
        let mut far = systems::h2();
        far.translate(liair_math::Vec3::new(0.0, 40.0, 0.0));
        dimer.merge(&far);
        let basis2 = Basis::sto3g(&dimer);
        let scf2 = rhf(&dimer, &basis2, &ScfOptions::default());
        let corr2 = mp2_correlation(&basis2, &scf2);
        assert!(approx_eq(corr2, 2.0 * corr1, 1e-6), "{corr2} vs 2×{corr1}");
    }

    #[test]
    fn bigger_basis_recovers_more_correlation() {
        let mol = systems::h2();
        let sto = Basis::sto3g(&mol);
        let dz = Basis::b631g(&mol);
        let scf_sto = rhf(&mol, &sto, &ScfOptions::default());
        let scf_dz = rhf(&mol, &dz, &ScfOptions::default());
        let c_sto = mp2_correlation(&sto, &scf_sto);
        let c_dz = mp2_correlation(&dz, &scf_dz);
        assert!(
            c_dz < c_sto,
            "6-31G {c_dz} should recover more than STO-3G {c_sto}"
        );
    }
}
