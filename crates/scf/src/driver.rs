//! RHF / RKS(LDA) SCF drivers and post-SCF functional energies.

use liair_basis::{Basis, Molecule};
use liair_grid::orbital::density_from_dm_at_points;
use liair_grid::MolGrid;
use liair_integrals::{build_jk, kinetic_matrix, nuclear_matrix};
use liair_math::Mat;
use liair_xc::functional::Functional;
use liair_xc::lda::lda_exc;

/// Which self-consistent method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Restricted Hartree–Fock (100 % exact exchange).
    Rhf,
    /// Restricted Kohn–Sham with the LDA potential.
    RksLda,
}

/// SCF controls.
#[derive(Debug, Clone, Copy)]
pub struct ScfOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iter: usize,
    /// Energy convergence threshold (Hartree).
    pub energy_tol: f64,
    /// DIIS error (∞-norm of FDS−SDF) threshold.
    pub error_tol: f64,
    /// DIIS history depth.
    pub diis_depth: usize,
    /// Schwarz screening threshold for the integral-direct build.
    pub schwarz_tol: f64,
    /// Radial points of the Becke XC grid (RKS only).
    pub grid_radial: usize,
    /// θ points of the angular product grid (φ uses 2×this).
    pub grid_theta: usize,
    /// Build J/K incrementally from difference densities `ΔD = D_n −
    /// D_{n−1}` (density-weighted Schwarz screening drops most quartets
    /// as ΔD shrinks toward convergence). Exact up to `schwarz_tol`.
    pub incremental_fock: bool,
    /// Full (non-incremental) Fock rebuild every N iterations, resetting
    /// the accumulated screening error. Only used with `incremental_fock`.
    pub fock_rebuild_every: usize,
}

impl Default for ScfOptions {
    fn default() -> Self {
        Self {
            max_iter: 100,
            energy_tol: 1e-9,
            error_tol: 1e-6,
            diis_depth: 8,
            schwarz_tol: 1e-11,
            grid_radial: 40,
            grid_theta: 8,
            incremental_fock: false,
            fock_rebuild_every: 8,
        }
    }
}

/// Energy decomposition of a converged calculation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyBreakdown {
    /// Nuclear–nuclear repulsion.
    pub e_nuc: f64,
    /// One-electron (kinetic + nuclear attraction) energy `Tr(D·H)`.
    pub e_core: f64,
    /// Classical Coulomb `½ Tr(D·J)`.
    pub e_coulomb: f64,
    /// Exact-exchange contribution actually included in the total
    /// (`−c_x·¼ Tr(D·K)`).
    pub e_exchange: f64,
    /// DFT exchange–correlation energy included in the total.
    pub e_xc: f64,
}

/// Converged SCF state.
#[derive(Debug, Clone)]
pub struct ScfResult {
    /// Total energy (Hartree).
    pub energy: f64,
    /// Orbital energies, ascending.
    pub orbital_energies: Vec<f64>,
    /// MO coefficients (AO × MO), columns ordered with the energies.
    pub c: Mat,
    /// Closed-shell density matrix `D = 2 C_occ C_occᵀ`.
    pub density: Mat,
    /// Number of doubly-occupied orbitals.
    pub nocc: usize,
    /// Iterations used.
    pub iterations: usize,
    /// Whether both convergence criteria were met.
    pub converged: bool,
    /// Energy components.
    pub breakdown: EnergyBreakdown,
    /// Which method produced it.
    pub method: Method,
}

impl ScfResult {
    /// Energy of the highest occupied molecular orbital, `None` before
    /// the first iteration or for an empty system.
    pub fn homo(&self) -> Option<f64> {
        if self.nocc == 0 || self.orbital_energies.len() < self.nocc {
            return None;
        }
        Some(self.orbital_energies[self.nocc - 1])
    }

    /// Energy of the lowest unoccupied molecular orbital, `None` when the
    /// basis has no virtual orbitals.
    pub fn lumo(&self) -> Option<f64> {
        self.orbital_energies.get(self.nocc).copied()
    }

    /// HOMO–LUMO gap `ε_LUMO − ε_HOMO` — the screening study's proxy for
    /// oxidative stability (a wider gap resists electron transfer to the
    /// peroxide). `None` when either frontier orbital is unavailable.
    pub fn homo_lumo_gap(&self) -> Option<f64> {
        Some(self.lumo()? - self.homo()?)
    }
}

/// Run restricted Hartree–Fock.
pub fn rhf(mol: &Molecule, basis: &Basis, opts: &ScfOptions) -> ScfResult {
    scf(mol, basis, opts, Method::Rhf)
}

/// Run restricted Kohn–Sham LDA.
pub fn rks_lda(mol: &Molecule, basis: &Basis, opts: &ScfOptions) -> ScfResult {
    scf(mol, basis, opts, Method::RksLda)
}

fn scf(mol: &Molecule, basis: &Basis, opts: &ScfOptions, method: Method) -> ScfResult {
    // The iteration itself lives in `session`: one `ScfSession::step` per
    // SCF cycle, checkpointable between cycles. Running a fresh session to
    // completion is the uninterrupted special case.
    crate::session::ScfSession::new(mol, basis, opts, method).run_to_completion()
}

/// Post-SCF total energy of `functional` on a converged density:
/// `E = E_nn + Tr(DH) + ½Tr(DJ) + c_x·(−¼Tr(DK)) + E_xc^{DFT}[n]`,
/// with the DFT part integrated on a Becke grid. For `Functional::Hf`
/// this reproduces the RHF energy expression exactly.
pub fn functional_energy(
    mol: &Molecule,
    basis: &Basis,
    res: &ScfResult,
    functional: Functional,
    opts: &ScfOptions,
) -> f64 {
    let h = kinetic_matrix(basis).add(&nuclear_matrix(basis, mol));
    let (j, k) = build_jk(basis, &res.density, opts.schwarz_tol);
    let e_core = res.density.trace_product(&h);
    let e_coul = 0.5 * res.density.trace_product(&j);
    let e_hfx = -0.25 * res.density.trace_product(&k);
    let e_dft = if functional == Functional::Hf {
        0.0
    } else {
        let grid = MolGrid::becke(mol, opts.grid_radial, opts.grid_theta);
        let (nvals, grads) = density_from_dm_at_points(basis, &res.density, &grid.points);
        match functional {
            Functional::Lda => nvals
                .iter()
                .zip(&grid.weights)
                .map(|(&d, &w)| w * d * lda_exc(d))
                .sum(),
            Functional::Pbe => nvals
                .iter()
                .zip(&grads)
                .zip(&grid.weights)
                .map(|((&d, &g), &w)| w * d * liair_xc::pbe::pbe_exc(d, g))
                .sum(),
            Functional::Pbe0 => nvals
                .iter()
                .zip(&grads)
                .zip(&grid.weights)
                .map(|((&d, &g), &w)| {
                    w * d * (0.75 * liair_xc::pbe::pbe_ex(d, g) + liair_xc::pbe::pbe_ec(d, g))
                })
                .sum(),
            Functional::Hf => unreachable!(),
        }
    };
    mol.nuclear_repulsion() + e_core + e_coul + functional.hfx_fraction() * e_hfx + e_dft
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_integrals::overlap_matrix;
    use liair_math::approx_eq;

    fn run_rhf(mol: &Molecule) -> (Basis, ScfResult) {
        let basis = Basis::sto3g(mol);
        let res = rhf(mol, &basis, &ScfOptions::default());
        assert!(res.converged, "RHF did not converge for {}", mol.formula());
        (basis, res)
    }

    #[test]
    fn h2_sto3g_energy() {
        // Szabo & Ostlund: E(H2/STO-3G, R = 1.4) = −1.1167 Ha.
        let (_, res) = run_rhf(&systems::h2());
        assert!(approx_eq(res.energy, -1.1167, 2e-4), "E = {}", res.energy);
        // One doubly-occupied orbital at ε ≈ −0.578.
        assert!(approx_eq(res.orbital_energies[0], -0.578, 5e-3));
    }

    #[test]
    fn helium_sto3g_energy() {
        // HF/STO-3G He: −2.8078 Ha.
        let (_, res) = run_rhf(&systems::helium());
        assert!(approx_eq(res.energy, -2.8078, 1e-3), "E = {}", res.energy);
    }

    #[test]
    fn water_sto3g_energy() {
        // HF/STO-3G water near experimental geometry: ≈ −74.96 Ha.
        let (_, res) = run_rhf(&systems::water());
        assert!(
            res.energy < -74.90 && res.energy > -75.05,
            "E = {}",
            res.energy
        );
        assert_eq!(res.nocc, 5);
    }

    #[test]
    fn lih_sto3g_energy() {
        // HF/STO-3G LiH: ≈ −7.86 Ha.
        let (_, res) = run_rhf(&systems::lih());
        assert!(res.energy < -7.7 && res.energy > -8.0, "E = {}", res.energy);
    }

    #[test]
    fn h2_and_water_631g_energies() {
        // Split-valence basis: H2/6-31G ~ -1.1268 Ha; H2O/6-31G ~ -75.98 Ha.
        let mol = systems::h2();
        let basis = Basis::b631g(&mol);
        let res = rhf(&mol, &basis, &ScfOptions::default());
        assert!(res.converged);
        assert!(
            approx_eq(res.energy, -1.1268, 2e-3),
            "H2/6-31G E = {}",
            res.energy
        );
        // 6-31G lies below STO-3G (variational improvement).
        let sto = rhf(&mol, &Basis::sto3g(&mol), &ScfOptions::default());
        assert!(res.energy < sto.energy);

        let water = systems::water();
        let b = Basis::b631g(&water);
        assert_eq!(b.nao(), 13);
        let wres = rhf(&water, &b, &ScfOptions::default());
        assert!(wres.converged);
        assert!(
            wres.energy < -75.90 && wres.energy > -76.05,
            "H2O/6-31G E = {}",
            wres.energy
        );
    }

    #[test]
    fn incremental_fock_matches_full_rebuild() {
        // Difference-density Fock builds must land on the same converged
        // energy as full rebuilds, for both a small and a heavier system.
        for mol in [systems::h2(), systems::water()] {
            let basis = Basis::sto3g(&mol);
            let full = rhf(&mol, &basis, &ScfOptions::default());
            let inc = rhf(
                &mol,
                &basis,
                &ScfOptions {
                    incremental_fock: true,
                    fock_rebuild_every: 6,
                    ..ScfOptions::default()
                },
            );
            assert!(full.converged && inc.converged, "{}", mol.formula());
            assert!(
                approx_eq(full.energy, inc.energy, 1e-7),
                "{}: {} vs {}",
                mol.formula(),
                full.energy,
                inc.energy
            );
        }
    }

    #[test]
    fn frontier_orbitals_and_gap() {
        // H2/STO-3G: two orbitals, σ occupied below zero, σ* virtual
        // above, so the gap is positive and equals ε₁ − ε₀.
        let (_, res) = run_rhf(&systems::h2());
        let homo = res.homo().unwrap();
        let lumo = res.lumo().unwrap();
        assert!(approx_eq(homo, -0.578, 5e-3));
        assert!(lumo > 0.0);
        assert!(approx_eq(res.homo_lumo_gap().unwrap(), lumo - homo, 1e-15));
        // Helium/STO-3G has a single AO: no virtual orbital, no gap.
        let (_, he) = run_rhf(&systems::helium());
        assert!(he.homo().is_some());
        assert!(he.lumo().is_none());
        assert!(he.homo_lumo_gap().is_none());
    }

    #[test]
    fn virial_ratio_near_two() {
        // |V/T| ≈ 2 at convergence (loose: finite basis, non-equilibrium).
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let res = rhf(&mol, &basis, &ScfOptions::default());
        let t = kinetic_matrix(&basis);
        let e_kin = res.density.trace_product(&t);
        let e_pot = res.energy - e_kin;
        let ratio = -e_pot / e_kin;
        assert!((ratio - 2.0).abs() < 0.1, "virial ratio {ratio}");
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let (_, res) = run_rhf(&systems::water());
        let b = res.breakdown;
        let total = b.e_nuc + b.e_core + b.e_coulomb + b.e_exchange + b.e_xc;
        assert!(approx_eq(total, res.energy, 1e-8));
        assert!(b.e_exchange < 0.0);
        assert!(b.e_coulomb > 0.0);
    }

    #[test]
    fn density_is_idempotent() {
        // DSD = 2D for a converged closed-shell density.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let res = rhf(&mol, &basis, &ScfOptions::default());
        let s = overlap_matrix(&basis);
        let dsd = res.density.matmul(&s).matmul(&res.density);
        let err = dsd.sub(&res.density.scale(2.0)).fro_norm();
        assert!(err < 1e-6, "idempotency error {err}");
    }

    #[test]
    fn hf_functional_energy_reproduces_rhf() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions::default();
        let res = rhf(&mol, &basis, &opts);
        let e = functional_energy(&mol, &basis, &res, Functional::Hf, &opts);
        assert!(approx_eq(e, res.energy, 1e-8));
    }

    #[test]
    fn pbe0_lowers_h2_energy_vs_rhf() {
        // Correlation is attractive: E(PBE0) < E(RHF) for H2, by a few
        // tens of mHa.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions::default();
        let res = rhf(&mol, &basis, &opts);
        let e0 = functional_energy(&mol, &basis, &res, Functional::Pbe0, &opts);
        let diff = e0 - res.energy;
        assert!(diff < -0.005 && diff > -0.3, "E(PBE0)−E(RHF) = {diff}");
    }

    #[test]
    fn rks_lda_converges_h2() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions {
            energy_tol: 1e-8,
            ..ScfOptions::default()
        };
        let res = rks_lda(&mol, &basis, &opts);
        assert!(res.converged, "LDA SCF did not converge");
        // LSDA H2 sits above the HF value in a minimal basis but in the
        // same ballpark.
        assert!(res.energy < -0.9 && res.energy > -1.3, "E = {}", res.energy);
        assert!(res.breakdown.e_xc < 0.0);
    }

    #[test]
    fn converges_quickly_with_diis() {
        let (_, res) = run_rhf(&systems::water());
        assert!(res.iterations < 30, "took {} iterations", res.iterations);
    }
}
