//! Full configuration interaction for two-electron systems — exact within
//! the basis, the ultimate internal reference for the SCF/MP2/integral
//! stack (H₂ dissociation, where RHF fails qualitatively and UHF
//! contaminates, is reproduced exactly).
//!
//! For two electrons in `n` spatial MOs the singlet space is spanned by
//! the `n(n+1)/2` symmetric spatial configurations `|ij⟩`; the Hamiltonian
//! matrix elements follow from the one- and two-electron MO integrals:
//!
//! `⟨ij|H|kl⟩ = [δ_jl h_ik + δ_ik h_jl + δ_il h_jk + δ_jk h_il]·norm
//!            + [(ik|jl) + (il|jk)]·norm`, `norm = 1/√((1+δ_ij)(1+δ_kl))`.

use crate::driver::ScfResult;
use liair_basis::Basis;
use liair_integrals::{eri_tensor, kinetic_matrix, nuclear_matrix};
use liair_math::linalg::eigh;
use liair_math::Mat;

/// FCI result for a two-electron system.
#[derive(Debug, Clone)]
pub struct FciResult {
    /// Ground-state total energy (Hartree, including nuclear repulsion).
    pub energy: f64,
    /// All singlet CI eigenvalues (electronic + nuclear), ascending.
    pub spectrum: Vec<f64>,
    /// Ground-state CI vector over the `|ij⟩ (i ≤ j)` configuration basis.
    pub ci_vector: Vec<f64>,
}

/// Exact singlet FCI for a 2-electron molecule on a converged RHF
/// reference (the MOs just define the orthonormal one-particle basis; the
/// result is invariant to that choice).
pub fn fci_two_electron(mol: &liair_basis::Molecule, basis: &Basis, scf: &ScfResult) -> FciResult {
    assert_eq!(mol.nelectrons(), 2, "two-electron FCI only");
    let n = basis.nao();
    let c = &scf.c;

    // MO one-electron integrals h_pq = Cᵀ (T + V) C.
    let h_ao = kinetic_matrix(basis).add(&nuclear_matrix(basis, mol));
    let h_mo = c.transpose().matmul(&h_ao).matmul(c);

    // MO two-electron integrals (pq|rs), full transform (small systems).
    let eri = eri_tensor(basis);
    let mut mo = vec![0.0; n * n * n * n];
    {
        // Straightforward O(n⁸)→no: do two-index-at-a-time O(n⁵).
        let mut t1 = vec![0.0; n * n * n * n]; // (p ν | λ σ)
        for p in 0..n {
            for nu in 0..n {
                for lam in 0..n {
                    for sig in 0..n {
                        let mut acc = 0.0;
                        for mu in 0..n {
                            acc += c[(mu, p)] * eri.get(mu, nu, lam, sig);
                        }
                        t1[((p * n + nu) * n + lam) * n + sig] = acc;
                    }
                }
            }
        }
        let mut t2 = vec![0.0; n * n * n * n]; // (p q | λ σ)
        for p in 0..n {
            for q in 0..n {
                for lam in 0..n {
                    for sig in 0..n {
                        let mut acc = 0.0;
                        for nu in 0..n {
                            acc += c[(nu, q)] * t1[((p * n + nu) * n + lam) * n + sig];
                        }
                        t2[((p * n + q) * n + lam) * n + sig] = acc;
                    }
                }
            }
        }
        let mut t3 = vec![0.0; n * n * n * n]; // (p q | r σ)
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for sig in 0..n {
                        let mut acc = 0.0;
                        for lam in 0..n {
                            acc += c[(lam, r)] * t2[((p * n + q) * n + lam) * n + sig];
                        }
                        t3[((p * n + q) * n + r) * n + sig] = acc;
                    }
                }
            }
        }
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let mut acc = 0.0;
                        for sig in 0..n {
                            acc += c[(sig, s)] * t3[((p * n + q) * n + r) * n + sig];
                        }
                        mo[((p * n + q) * n + r) * n + s] = acc;
                    }
                }
            }
        }
    }
    let g = |p: usize, q: usize, r: usize, s: usize| mo[((p * n + q) * n + r) * n + s];

    // Singlet configuration basis |ij⟩, i ≤ j, normalized
    // (φ_i φ_j + φ_j φ_i)/√(2(1+δ_ij)) in spatial form.
    let mut configs = Vec::new();
    for i in 0..n {
        for j in i..n {
            configs.push((i, j));
        }
    }
    let dim = configs.len();
    let mut hmat = Mat::zeros(dim, dim);
    let delta = |a: usize, b: usize| -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    };
    for (a, &(i, j)) in configs.iter().enumerate() {
        for (b, &(k, l)) in configs.iter().enumerate() {
            let norm = 1.0 / ((1.0 + delta(i, j)) * (1.0 + delta(k, l))).sqrt();
            let one = h_mo[(i, k)] * delta(j, l)
                + h_mo[(j, l)] * delta(i, k)
                + h_mo[(i, l)] * delta(j, k)
                + h_mo[(j, k)] * delta(i, l);
            let two = g(i, k, j, l) + g(i, l, j, k);
            hmat[(a, b)] = norm * (one + two);
        }
    }
    let (evals, evecs) = eigh(&hmat);
    let e_nuc = mol.nuclear_repulsion();
    let spectrum: Vec<f64> = evals.iter().map(|e| e + e_nuc).collect();
    let ci_vector: Vec<f64> = (0..dim).map(|a| evecs[(a, 0)]).collect();
    FciResult {
        energy: spectrum[0],
        spectrum,
        ci_vector,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{rhf, ScfOptions};
    use crate::mp2::mp2_correlation;
    use liair_basis::systems;
    use liair_math::approx_eq;

    fn h2_fci(r: f64) -> (f64, f64) {
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = r;
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let fci = fci_two_electron(&mol, &basis, &scf);
        (scf.energy, fci.energy)
    }

    #[test]
    fn h2_sto3g_fci_energy() {
        // Szabo & Ostlund: minimal-basis full CI of H2 at R = 1.4 gives
        // E ≈ −1.1373 Ha (correlation ≈ −20.6 mHa).
        let (e_rhf, e_fci) = h2_fci(1.4);
        assert!(e_fci < e_rhf, "FCI must lower the energy");
        assert!(approx_eq(e_fci, -1.1373, 2e-3), "E_FCI = {e_fci}");
        let corr = e_fci - e_rhf;
        assert!(approx_eq(corr, -0.0206, 2e-3), "corr = {corr}");
    }

    #[test]
    fn h2_dissociates_exactly_to_two_atoms() {
        // The triumph of FCI over both RHF and MP2: at R = 10 the energy
        // is exactly 2 × E(H/STO-3G) = −0.93316.
        let (e_rhf, e_fci) = h2_fci(10.0);
        assert!(approx_eq(e_fci, -0.93316, 1e-4), "E_FCI = {e_fci}");
        // While RHF is catastrophically high.
        assert!(e_rhf > e_fci + 0.2, "RHF {e_rhf} vs FCI {e_fci}");
    }

    #[test]
    fn mp2_is_between_rhf_and_fci_near_equilibrium() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        let fci = fci_two_electron(&mol, &basis, &scf);
        let mp2 = scf.energy + mp2_correlation(&basis, &scf);
        assert!(fci.energy < scf.energy);
        assert!(mp2 < scf.energy, "MP2 {mp2} above RHF");
        // MP2 recovers a meaningful fraction but not more than FCI by a lot
        // (second order can slightly overshoot; allow 5 mHa).
        assert!(mp2 > fci.energy - 5e-3, "MP2 {mp2} vs FCI {}", fci.energy);
    }

    #[test]
    fn fci_invariant_under_basis_change() {
        // 6-31G FCI drops below STO-3G FCI (variational in basis size).
        let mol = systems::h2();
        let b1 = Basis::sto3g(&mol);
        let s1 = rhf(&mol, &b1, &ScfOptions::default());
        let f1 = fci_two_electron(&mol, &b1, &s1);
        let b2 = Basis::b631g(&mol);
        let s2 = rhf(&mol, &b2, &ScfOptions::default());
        let f2 = fci_two_electron(&mol, &b2, &s2);
        assert!(f2.energy < f1.energy, "{} !< {}", f2.energy, f1.energy);
        // Spectrum is sorted and the CI vector is normalized.
        for w in f2.spectrum.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        let norm: f64 = f1.ci_vector.iter().map(|x| x * x).sum();
        assert!(approx_eq(norm, 1.0, 1e-10));
    }

    #[test]
    fn heh_plus_two_electron_cation() {
        // HeH⁺ — the classic two-electron heteronuclear benchmark.
        let mut mol = liair_basis::Molecule::new();
        mol.push(liair_basis::Element::He, liair_math::Vec3::ZERO);
        mol.push(
            liair_basis::Element::H,
            liair_math::Vec3::new(1.4632, 0.0, 0.0),
        );
        mol.charge = 1;
        assert_eq!(mol.nelectrons(), 2);
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        assert!(scf.converged);
        let fci = fci_two_electron(&mol, &basis, &scf);
        assert!(fci.energy < scf.energy);
        // Szabo & Ostlund quote E_RHF ≈ −2.841 for their ζ values; ours
        // (standard STO-3G) lands nearby.
        assert!(scf.energy < -2.7 && scf.energy > -3.0, "E = {}", scf.energy);
    }
}
