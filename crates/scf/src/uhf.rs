//! Unrestricted Hartree–Fock — open-shell species.
//!
//! The lithium/air reaction network runs through radicals (O₂⁻, LiO₂)
//! that a restricted determinant cannot describe. UHF propagates separate
//! α/β orbital sets:
//!
//! `F^σ = H + J(D^α + D^β) − K(D^σ)`,
//! `E = ½·Tr[(D^T)(H) + D^α F^α + D^β F^β] + E_nn` (with `F` including
//! `H`), plus the spin-contamination diagnostic
//! `⟨S²⟩ = S_z(S_z+1) + N_β − Σ_{ij} |⟨φ^α_i|S|φ^β_j⟩|²`.

use crate::diis::Diis;
use liair_basis::{Basis, Molecule};
use liair_integrals::{kinetic_matrix, nuclear_matrix, overlap_matrix, JkBuilder};
use liair_math::linalg::{eigh, sym_inv_sqrt};
use liair_math::Mat;

/// UHF controls.
#[derive(Debug, Clone, Copy)]
pub struct UhfOptions {
    /// Maximum iterations.
    pub max_iter: usize,
    /// Energy convergence threshold.
    pub energy_tol: f64,
    /// Schwarz threshold.
    pub schwarz_tol: f64,
    /// DIIS depth.
    pub diis_depth: usize,
    /// Rotate the α HOMO/LUMO of the initial guess by 45° to let
    /// spin symmetry break (needed e.g. for stretched closed-shell bonds).
    pub break_symmetry: bool,
}

impl Default for UhfOptions {
    fn default() -> Self {
        Self {
            max_iter: 200,
            energy_tol: 1e-9,
            schwarz_tol: 1e-11,
            diis_depth: 8,
            break_symmetry: false,
        }
    }
}

/// Converged UHF state.
#[derive(Debug, Clone)]
pub struct UhfResult {
    /// Total energy (Hartree).
    pub energy: f64,
    /// α orbital energies.
    pub eps_alpha: Vec<f64>,
    /// β orbital energies.
    pub eps_beta: Vec<f64>,
    /// α MO coefficients.
    pub c_alpha: Mat,
    /// β MO coefficients.
    pub c_beta: Mat,
    /// α electron count.
    pub nalpha: usize,
    /// β electron count.
    pub nbeta: usize,
    /// ⟨S²⟩ expectation value.
    pub s_squared: f64,
    /// Iterations used.
    pub iterations: usize,
    /// Converged flag.
    pub converged: bool,
}

/// Run UHF with `nalpha`/`nbeta` electrons (must sum to the molecule's
/// electron count).
pub fn uhf(
    mol: &Molecule,
    basis: &Basis,
    nalpha: usize,
    nbeta: usize,
    opts: &UhfOptions,
) -> UhfResult {
    assert_eq!(
        nalpha + nbeta,
        mol.nelectrons(),
        "nalpha + nbeta must equal the electron count"
    );
    assert!(nalpha >= nbeta, "convention: nalpha >= nbeta");
    let n = basis.nao();
    assert!(nalpha <= n);
    let s = overlap_matrix(basis);
    let h = kinetic_matrix(basis).add(&nuclear_matrix(basis, mol));
    let x = sym_inv_sqrt(&s);
    let e_nuc = mol.nuclear_repulsion();
    let jk = JkBuilder::new(basis);

    let orbitals = |f: &Mat| -> (Vec<f64>, Mat) {
        let fp = x.transpose().matmul(f).matmul(&x);
        let (eps, cp) = eigh(&fp);
        (eps, x.matmul(&cp))
    };
    let density_of = |c: &Mat, nocc: usize| -> Mat {
        let mut d = Mat::zeros(n, n);
        for mu in 0..n {
            for nu in 0..n {
                let mut acc = 0.0;
                for k in 0..nocc {
                    acc += c[(mu, k)] * c[(nu, k)];
                }
                d[(mu, nu)] = acc;
            }
        }
        d
    };

    // Core guess; optionally break spin symmetry in the α set.
    let (_, c0) = orbitals(&h);
    let mut c_a = c0.clone();
    let c_b = c0;
    if opts.break_symmetry && nalpha >= 1 && nalpha < n {
        let (homo, lumo) = (nalpha - 1, nalpha);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        for mu in 0..n {
            let (ho, lu) = (c_a[(mu, homo)], c_a[(mu, lumo)]);
            c_a[(mu, homo)] = r * (ho + lu);
            c_a[(mu, lumo)] = r * (ho - lu);
        }
    }
    let mut d_a = density_of(&c_a, nalpha);
    let mut d_b = density_of(&c_b, nbeta);

    let mut diis = Diis::new(opts.diis_depth);
    let mut energy = 0.0;
    let mut converged = false;
    let mut iterations = 0;
    let mut eps_a = vec![0.0; n];
    let mut eps_b = vec![0.0; n];
    let mut c_a_final = Mat::zeros(n, n);
    let mut c_b_final = Mat::zeros(n, n);

    for it in 1..=opts.max_iter {
        iterations = it;
        let d_total = d_a.add(&d_b);
        let (j, _) = jk.build(&d_total, opts.schwarz_tol);
        let (_, k_a) = jk.build(&d_a, opts.schwarz_tol);
        let (_, k_b) = jk.build(&d_b, opts.schwarz_tol);
        let mut f_a = h.clone();
        f_a.axpy(1.0, &j);
        f_a.axpy(-1.0, &k_a);
        let mut f_b = h.clone();
        f_b.axpy(1.0, &j);
        f_b.axpy(-1.0, &k_b);

        // E = ½[Tr(Dᵀ·H) + Tr(D^α F^α) + Tr(D^β F^β)] + E_nn
        let e_elec =
            0.5 * (d_total.trace_product(&h) + d_a.trace_product(&f_a) + d_b.trace_product(&f_b));
        let new_energy = e_elec + e_nuc;

        // Joint DIIS on the stacked [F^α; F^β] with stacked errors.
        let err_a = {
            let fds = f_a.matmul(&d_a).matmul(&s);
            fds.sub(&fds.transpose())
        };
        let err_b = {
            let fds = f_b.matmul(&d_b).matmul(&s);
            fds.sub(&fds.transpose())
        };
        let stacked_f = vstack(&f_a, &f_b);
        let stacked_e = vstack(&err_a, &err_b);
        let extrap = diis.extrapolate(stacked_f, stacked_e);
        let (f_a_x, f_b_x) = vsplit(&extrap, n);

        let (ea, ca) = orbitals(&f_a_x);
        let (eb, cb) = orbitals(&f_b_x);
        d_a = density_of(&ca, nalpha);
        d_b = density_of(&cb, nbeta);
        let de = (new_energy - energy).abs();
        energy = new_energy;
        eps_a = ea;
        eps_b = eb;
        c_a_final = ca;
        c_b_final = cb;
        if it > 1 && de < opts.energy_tol {
            converged = true;
            break;
        }
    }

    // ⟨S²⟩ diagnostic.
    let sz = 0.5 * (nalpha as f64 - nbeta as f64);
    let mut overlap_sq = 0.0;
    for i in 0..nalpha {
        for j in 0..nbeta {
            // ⟨φ^α_i | φ^β_j⟩ = c_αᵢᵀ S c_βⱼ
            let mut v = 0.0;
            for mu in 0..n {
                for nu in 0..n {
                    v += c_a_final[(mu, i)] * s[(mu, nu)] * c_b_final[(nu, j)];
                }
            }
            overlap_sq += v * v;
        }
    }
    let s_squared = sz * (sz + 1.0) + nbeta as f64 - overlap_sq;

    UhfResult {
        energy,
        eps_alpha: eps_a,
        eps_beta: eps_b,
        c_alpha: c_a_final,
        c_beta: c_b_final,
        nalpha,
        nbeta,
        s_squared,
        iterations,
        converged,
    }
}

fn vstack(a: &Mat, b: &Mat) -> Mat {
    let n = a.ncols();
    assert_eq!(b.ncols(), n);
    let mut out = Mat::zeros(a.nrows() + b.nrows(), n);
    for i in 0..a.nrows() {
        for j in 0..n {
            out[(i, j)] = a[(i, j)];
        }
    }
    for i in 0..b.nrows() {
        for j in 0..n {
            out[(a.nrows() + i, j)] = b[(i, j)];
        }
    }
    out
}

fn vsplit(stacked: &Mat, n: usize) -> (Mat, Mat) {
    let mut a = Mat::zeros(n, stacked.ncols());
    let mut b = Mat::zeros(n, stacked.ncols());
    for i in 0..n {
        for j in 0..stacked.ncols() {
            a[(i, j)] = stacked[(i, j)];
            b[(i, j)] = stacked[(n + i, j)];
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{rhf, ScfOptions};
    use liair_basis::{systems, Element};
    use liair_math::{approx_eq, Vec3};

    #[test]
    fn hydrogen_atom_doublet() {
        // H/STO-3G UHF: E = −0.46658 Ha, pure doublet ⟨S²⟩ = 0.75.
        let mut mol = Molecule::new();
        mol.push(Element::H, Vec3::ZERO);
        let basis = Basis::sto3g(&mol);
        let res = uhf(&mol, &basis, 1, 0, &UhfOptions::default());
        assert!(res.converged);
        assert!(approx_eq(res.energy, -0.46658, 1e-4), "E = {}", res.energy);
        assert!(
            approx_eq(res.s_squared, 0.75, 1e-10),
            "<S2> = {}",
            res.s_squared
        );
    }

    #[test]
    fn closed_shell_uhf_equals_rhf() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let r = rhf(&mol, &basis, &ScfOptions::default());
        let u = uhf(&mol, &basis, 1, 1, &UhfOptions::default());
        assert!(u.converged);
        assert!(
            approx_eq(u.energy, r.energy, 1e-7),
            "{} vs {}",
            u.energy,
            r.energy
        );
        assert!(u.s_squared.abs() < 1e-8, "<S2> = {}", u.s_squared);
    }

    #[test]
    fn stretched_h2_breaks_symmetry_below_rhf() {
        // At R = 6 Bohr the RHF determinant is badly wrong; broken-symmetry
        // UHF falls to ~2×E(H atom) with heavy spin contamination.
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = 6.0;
        let basis = Basis::sto3g(&mol);
        let r = rhf(&mol, &basis, &ScfOptions::default());
        let opts = UhfOptions {
            break_symmetry: true,
            ..UhfOptions::default()
        };
        let u = uhf(&mol, &basis, 1, 1, &opts);
        assert!(u.converged);
        assert!(
            u.energy < r.energy - 0.05,
            "UHF {} vs RHF {}",
            u.energy,
            r.energy
        );
        // Two isolated H atoms: 2 × (−0.46658).
        assert!(approx_eq(u.energy, -0.93316, 2e-3), "E = {}", u.energy);
        // Strong contamination: ⟨S²⟩ → 1 in the dissociation limit.
        assert!(u.s_squared > 0.8, "<S2> = {}", u.s_squared);
    }

    #[test]
    fn lithium_superoxide_radical_converges() {
        // LiO2 — the Li/air discharge intermediate — is a doublet; UHF is
        // the right tool where the restricted code would simply panic.
        let mut mol = Molecule::new();
        mol.push(Element::O, Vec3::new(0.0, 1.26, 0.0));
        mol.push(Element::O, Vec3::new(0.0, -1.26, 0.0));
        mol.push(Element::Li, Vec3::new(3.1, 0.0, 0.0));
        let basis = Basis::sto3g(&mol);
        let nelec = mol.nelectrons();
        assert_eq!(nelec % 2, 1);
        let res = uhf(
            &mol,
            &basis,
            nelec / 2 + 1,
            nelec / 2,
            &UhfOptions::default(),
        );
        assert!(res.converged, "LiO2 UHF failed");
        assert!(
            res.energy < -150.0 && res.energy > -165.0,
            "E = {}",
            res.energy
        );
        // Roughly one unpaired electron.
        assert!(
            res.s_squared > 0.7 && res.s_squared < 1.3,
            "<S2> = {}",
            res.s_squared
        );
    }

    #[test]
    fn triplet_oxygen_ground_state() {
        // O2's famous triplet ground state (the "air" in lithium/air):
        // nalpha = nbeta + 2, ⟨S²⟩ ≈ 2 (S = 1).
        let mut mol = Molecule::new();
        mol.push(Element::O, Vec3::ZERO);
        mol.push(Element::O, Vec3::new(2.28, 0.0, 0.0)); // ~1.21 Å
        let basis = Basis::sto3g(&mol);
        let res = uhf(&mol, &basis, 9, 7, &UhfOptions::default());
        assert!(res.converged, "O2 triplet UHF failed");
        // UHF/STO-3G O2 ≈ −147.6 Ha.
        assert!(
            res.energy < -147.0 && res.energy > -148.5,
            "E = {}",
            res.energy
        );
        assert!(
            res.s_squared > 1.9 && res.s_squared < 2.2,
            "<S2> = {} (triplet expects ~2.0)",
            res.s_squared
        );
        // The triplet sits below the closed-shell singlet determinant.
        let singlet = uhf(&mol, &basis, 8, 8, &UhfOptions::default());
        assert!(singlet.converged);
        assert!(res.energy < singlet.energy, "triplet not the ground state");
    }

    #[test]
    fn lithium_atom_doublet() {
        let mut mol = Molecule::new();
        mol.push(Element::Li, Vec3::ZERO);
        let basis = Basis::sto3g(&mol);
        let res = uhf(&mol, &basis, 2, 1, &UhfOptions::default());
        assert!(res.converged);
        // Li/STO-3G: ≈ −7.3155 Ha.
        assert!(approx_eq(res.energy, -7.3155, 2e-3), "E = {}", res.energy);
        assert!(approx_eq(res.s_squared, 0.75, 1e-2));
    }
}
