//! Stepwise SCF with checkpoint/restart.
//!
//! PR 9 splits the monolithic SCF loop (`driver::scf`) into an explicit
//! [`ScfSession`]: construction builds the immutable per-calculation
//! context (integrals, orthogonalizer, XC grid, Schwarz bounds) and the
//! core-guess density; [`ScfSession::step`] advances exactly one SCF
//! iteration. `rhf`/`rks_lda` now run sessions to completion, so the
//! converged numbers are the same code path — and bit-identical — to what
//! the old loop produced.
//!
//! The point of the split is preemption: a serve job interrupted between
//! iterations captures an [`ScfCheckpoint`] — every mutable loop variable
//! (density, DIIS history, incremental-Fock accumulators, energies,
//! latest orbitals) as raw IEEE-754 bits — and a later
//! [`ScfSession::resume`] rebuilds the immutable context deterministically
//! from the same molecule/basis/options and continues the iteration
//! sequence **bit-identically** to an uninterrupted run (property-tested
//! in `tests/session_checkpoint.rs`). The context is deliberately *not*
//! serialized: it is a pure function of the inputs and dwarfs the loop
//! state.

use crate::diis::Diis;
use crate::driver::{EnergyBreakdown, Method, ScfOptions, ScfResult};
use liair_basis::{Basis, Molecule};
use liair_grid::orbital::density_from_dm_at_points;
use liair_grid::MolGrid;
use liair_integrals::{kinetic_matrix, nuclear_matrix, overlap_matrix, JkBuilder};
use liair_math::codec::{CodecError, Decoder, Encoder};
use liair_math::linalg::{eigh, sym_inv_sqrt};
use liair_math::Mat;
use liair_xc::lda;
use liair_xc::lda::lda_exc;

/// Magic tag for SCF checkpoint streams (`"LSC1"`).
const MAGIC: u32 = 0x4C53_4331;
const VERSION: u16 = 1;

/// Immutable per-calculation context, deterministic in the inputs.
struct ScfContext<'a> {
    basis: &'a Basis,
    n: usize,
    nocc: usize,
    s: Mat,
    h: Mat,
    x: Mat,
    e_nuc: f64,
    molgrid: Option<MolGrid>,
    ao_at_pts: Option<Vec<Vec<f64>>>,
    jk_builder: JkBuilder<'a>,
}

impl<'a> ScfContext<'a> {
    fn build(
        mol: &Molecule,
        basis: &'a Basis,
        opts: &ScfOptions,
        method: Method,
    ) -> ScfContext<'a> {
        let n = basis.nao();
        let nocc = mol.nocc();
        assert!(nocc >= 1, "no electrons to converge");
        assert!(
            nocc <= n,
            "basis too small: {nocc} occupied orbitals, {n} AOs"
        );
        let s = overlap_matrix(basis);
        let h = kinetic_matrix(basis).add(&nuclear_matrix(basis, mol));
        let x = sym_inv_sqrt(&s);
        let molgrid = if method == Method::RksLda {
            Some(MolGrid::becke(mol, opts.grid_radial, opts.grid_theta))
        } else {
            None
        };
        let ao_at_pts = molgrid
            .as_ref()
            .map(|g| liair_grid::ao_values_at_points(basis, &g.points));
        ScfContext {
            basis,
            n,
            nocc,
            s,
            h,
            x,
            e_nuc: mol.nuclear_repulsion(),
            molgrid,
            ao_at_pts,
            jk_builder: JkBuilder::new(basis),
        }
    }
}

/// The mutable SCF loop state — exactly what a checkpoint captures.
struct ScfLoopState {
    density: Mat,
    diis: Diis,
    d_ref: Option<Mat>,
    j_acc: Mat,
    k_acc: Mat,
    builds_since_full: usize,
    energy: f64,
    breakdown: EnergyBreakdown,
    c_final: Mat,
    eps_final: Vec<f64>,
    converged: bool,
    iterations: usize,
}

/// An in-flight SCF calculation: step it, checkpoint it, resume it.
pub struct ScfSession<'a> {
    method: Method,
    opts: ScfOptions,
    basis_nao: usize,
    ctx: ScfContext<'a>,
    st: ScfLoopState,
}

impl<'a> ScfSession<'a> {
    /// Build the context and core-guess density; no iterations run yet.
    pub fn new(
        mol: &Molecule,
        basis: &'a Basis,
        opts: &ScfOptions,
        method: Method,
    ) -> ScfSession<'a> {
        let ctx = ScfContext::build(mol, basis, opts, method);
        let n = ctx.n;
        let density = density_from_fock(&ctx.h, &ctx.x, ctx.nocc);
        let e_nuc = ctx.e_nuc;
        ScfSession {
            method,
            opts: *opts,
            basis_nao: n,
            ctx,
            st: ScfLoopState {
                density,
                diis: Diis::new(opts.diis_depth),
                d_ref: None,
                j_acc: Mat::zeros(n, n),
                k_acc: Mat::zeros(n, n),
                builds_since_full: 0,
                energy: 0.0,
                breakdown: EnergyBreakdown {
                    e_nuc,
                    ..Default::default()
                },
                c_final: Mat::zeros(n, n),
                eps_final: vec![0.0; n],
                converged: false,
                iterations: 0,
            },
        }
    }

    /// Iterations completed so far.
    pub fn iterations(&self) -> usize {
        self.st.iterations
    }

    /// `true` once both convergence criteria were met.
    pub fn converged(&self) -> bool {
        self.st.converged
    }

    /// `true` when stepping is over: converged or out of iterations.
    pub fn done(&self) -> bool {
        self.st.converged || self.st.iterations >= self.opts.max_iter
    }

    /// Advance one SCF iteration (no-op once [`ScfSession::done`]).
    /// Returns `true` while further stepping is useful.
    pub fn step(&mut self) -> bool {
        if self.done() {
            return false;
        }
        let ctx = &self.ctx;
        let st = &mut self.st;
        let opts = &self.opts;
        st.iterations += 1;
        let it = st.iterations;
        let (j, k) = if opts.incremental_fock {
            let full = st.d_ref.is_none()
                || (opts.fock_rebuild_every > 0
                    && st.builds_since_full + 1 >= opts.fock_rebuild_every);
            if full {
                let (jf, kf) = ctx.jk_builder.build(&st.density, opts.schwarz_tol);
                st.j_acc = jf;
                st.k_acc = kf;
                st.builds_since_full = 0;
            } else {
                let delta = st.density.sub(st.d_ref.as_ref().unwrap());
                let (dj, dk) = ctx
                    .jk_builder
                    .build_density_screened(&delta, opts.schwarz_tol);
                st.j_acc.axpy(1.0, &dj);
                st.k_acc.axpy(1.0, &dk);
                st.builds_since_full += 1;
            }
            st.d_ref = Some(st.density.clone());
            (st.j_acc.clone(), st.k_acc.clone())
        } else {
            ctx.jk_builder.build(&st.density, opts.schwarz_tol)
        };
        let e_nuc = ctx.e_nuc;
        let (fock, e_elec, bd) = match self.method {
            Method::Rhf => {
                let mut f = ctx.h.clone();
                f.axpy(1.0, &j);
                f.axpy(-0.5, &k);
                let e_core = st.density.trace_product(&ctx.h);
                let e_coul = 0.5 * st.density.trace_product(&j);
                let e_exch = -0.25 * st.density.trace_product(&k);
                (
                    f,
                    e_core + e_coul + e_exch,
                    EnergyBreakdown {
                        e_nuc,
                        e_core,
                        e_coulomb: e_coul,
                        e_exchange: e_exch,
                        e_xc: 0.0,
                    },
                )
            }
            Method::RksLda => {
                let grid = ctx.molgrid.as_ref().unwrap();
                let aos = ctx.ao_at_pts.as_ref().unwrap();
                let n = ctx.n;
                let (nvals, _) = density_from_dm_at_points(ctx.basis, &st.density, &grid.points);
                // V_xc matrix: Σ_p w_p v_xc(n_p) χ_μ(p) χ_ν(p).
                let vxc_pts: Vec<f64> = nvals.iter().map(|&d| lda::lda_vxc(d)).collect();
                let mut vxc = Mat::zeros(n, n);
                for mu in 0..n {
                    for nu in 0..=mu {
                        let mut acc = 0.0;
                        for p in 0..grid.len() {
                            acc += grid.weights[p] * vxc_pts[p] * aos[mu][p] * aos[nu][p];
                        }
                        vxc[(mu, nu)] = acc;
                        vxc[(nu, mu)] = acc;
                    }
                }
                let e_xc: f64 = nvals
                    .iter()
                    .zip(&grid.weights)
                    .map(|(&d, &w)| w * d * lda_exc(d))
                    .sum();
                let mut f = ctx.h.clone();
                f.axpy(1.0, &j);
                f.axpy(1.0, &vxc);
                let e_core = st.density.trace_product(&ctx.h);
                let e_coul = 0.5 * st.density.trace_product(&j);
                (
                    f,
                    e_core + e_coul + e_xc,
                    EnergyBreakdown {
                        e_nuc,
                        e_core,
                        e_coulomb: e_coul,
                        e_exchange: 0.0,
                        e_xc,
                    },
                )
            }
        };

        let new_energy = e_elec + e_nuc;
        // DIIS error FDS − SDF.
        let fds = fock.matmul(&st.density).matmul(&ctx.s);
        let err = fds.sub(&fds.transpose());
        let fock_x = st.diis.extrapolate(fock, err);
        let diis_err = st.diis.latest_error();

        // New density.
        let (eps, c) = orbitals_from_fock(&fock_x, &ctx.x);
        st.density = assemble_density(&c, ctx.nocc);
        let de = (new_energy - st.energy).abs();
        st.energy = new_energy;
        st.breakdown = bd;
        st.c_final = c;
        st.eps_final = eps;
        if it > 1 && de < opts.energy_tol && diis_err < opts.error_tol {
            st.converged = true;
        }
        !self.done()
    }

    /// Step until convergence or `max_iter`, then package the result.
    pub fn run_to_completion(mut self) -> ScfResult {
        while self.step() {}
        self.into_result()
    }

    /// The result as of the current iteration (converged or not).
    pub fn into_result(self) -> ScfResult {
        ScfResult {
            energy: self.st.energy,
            orbital_energies: self.st.eps_final,
            c: self.st.c_final,
            density: self.st.density,
            nocc: self.ctx.nocc,
            iterations: self.st.iterations,
            converged: self.st.converged,
            breakdown: self.st.breakdown,
            method: self.method,
        }
    }

    /// Latest total energy (0.0 before the first step).
    pub fn energy(&self) -> f64 {
        self.st.energy
    }

    /// Capture every mutable loop variable, bit-exact.
    pub fn checkpoint(&self) -> ScfCheckpoint {
        let st = &self.st;
        let mut e = Encoder::with_magic(MAGIC, VERSION);
        e.put_u8(match self.method {
            Method::Rhf => 0,
            Method::RksLda => 1,
        });
        put_opts(&mut e, &self.opts);
        e.put_usize(self.basis_nao);
        put_mat(&mut e, &st.density);
        // DIIS history, oldest first.
        let (focks, errors) = st.diis.history();
        e.put_usize(st.diis.depth());
        e.put_usize(focks.len());
        for (f, er) in focks.iter().zip(&errors) {
            put_mat(&mut e, f);
            put_mat(&mut e, er);
        }
        match &st.d_ref {
            Some(d) => {
                e.put_bool(true);
                put_mat(&mut e, d);
            }
            None => e.put_bool(false),
        }
        put_mat(&mut e, &st.j_acc);
        put_mat(&mut e, &st.k_acc);
        e.put_usize(st.builds_since_full);
        e.put_f64(st.energy);
        for v in [
            st.breakdown.e_nuc,
            st.breakdown.e_core,
            st.breakdown.e_coulomb,
            st.breakdown.e_exchange,
            st.breakdown.e_xc,
        ] {
            e.put_f64(v);
        }
        put_mat(&mut e, &st.c_final);
        e.put_f64_slice(&st.eps_final);
        e.put_bool(st.converged);
        e.put_usize(st.iterations);
        ScfCheckpoint { bytes: e.finish() }
    }

    /// Rebuild a session from a checkpoint plus the *same* molecule and
    /// basis the original was built from (the job spec is the source of
    /// truth; the context is recomputed, the loop state restored).
    pub fn resume(
        mol: &Molecule,
        basis: &'a Basis,
        ck: &ScfCheckpoint,
    ) -> Result<ScfSession<'a>, CodecError> {
        let (mut d, version) = Decoder::with_magic(&ck.bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let method = match d.get_u8()? {
            0 => Method::Rhf,
            1 => Method::RksLda,
            m => return Err(CodecError::BadLength(m as u64)),
        };
        let opts = get_opts(&mut d)?;
        let nao = d.get_usize()?;
        if nao != basis.nao() {
            // Resuming against a different basis would silently produce
            // garbage — fail loudly instead.
            return Err(CodecError::BadLength(nao as u64));
        }
        let density = get_mat(&mut d)?;
        let depth = d.get_usize()?;
        let hist_len = d.get_usize()?;
        if hist_len > d.remaining() / 16 {
            return Err(CodecError::BadLength(hist_len as u64));
        }
        let mut focks = Vec::with_capacity(hist_len);
        let mut errors = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            focks.push(get_mat(&mut d)?);
            errors.push(get_mat(&mut d)?);
        }
        let d_ref = if d.get_bool()? {
            Some(get_mat(&mut d)?)
        } else {
            None
        };
        let j_acc = get_mat(&mut d)?;
        let k_acc = get_mat(&mut d)?;
        let builds_since_full = d.get_usize()?;
        let energy = d.get_f64()?;
        let breakdown = EnergyBreakdown {
            e_nuc: d.get_f64()?,
            e_core: d.get_f64()?,
            e_coulomb: d.get_f64()?,
            e_exchange: d.get_f64()?,
            e_xc: d.get_f64()?,
        };
        let c_final = get_mat(&mut d)?;
        let eps_final = d.get_f64_vec()?;
        let converged = d.get_bool()?;
        let iterations = d.get_usize()?;
        let ctx = ScfContext::build(mol, basis, &opts, method);
        Ok(ScfSession {
            method,
            opts,
            basis_nao: nao,
            ctx,
            st: ScfLoopState {
                density,
                diis: Diis::from_history(depth, focks, errors),
                d_ref,
                j_acc,
                k_acc,
                builds_since_full,
                energy,
                breakdown,
                c_final,
                eps_final,
                converged,
                iterations,
            },
        })
    }
}

/// A frozen SCF loop state as a self-describing byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScfCheckpoint {
    /// Encoded state (see `session.rs` for the layout).
    pub bytes: Vec<u8>,
}

fn put_mat(e: &mut Encoder, m: &Mat) {
    e.put_usize(m.nrows());
    e.put_usize(m.ncols());
    e.put_f64_slice(m.as_slice());
}

fn get_mat(d: &mut Decoder<'_>) -> Result<Mat, CodecError> {
    let nrows = d.get_usize()?;
    let ncols = d.get_usize()?;
    let data = d.get_f64_vec()?;
    if data.len() != nrows * ncols {
        return Err(CodecError::BadLength(data.len() as u64));
    }
    Ok(Mat::from_vec(nrows, ncols, data))
}

fn put_opts(e: &mut Encoder, o: &ScfOptions) {
    e.put_usize(o.max_iter);
    e.put_f64(o.energy_tol);
    e.put_f64(o.error_tol);
    e.put_usize(o.diis_depth);
    e.put_f64(o.schwarz_tol);
    e.put_usize(o.grid_radial);
    e.put_usize(o.grid_theta);
    e.put_bool(o.incremental_fock);
    e.put_usize(o.fock_rebuild_every);
}

fn get_opts(d: &mut Decoder<'_>) -> Result<ScfOptions, CodecError> {
    Ok(ScfOptions {
        max_iter: d.get_usize()?,
        energy_tol: d.get_f64()?,
        error_tol: d.get_f64()?,
        diis_depth: d.get_usize()?,
        schwarz_tol: d.get_f64()?,
        grid_radial: d.get_usize()?,
        grid_theta: d.get_usize()?,
        incremental_fock: d.get_bool()?,
        fock_rebuild_every: d.get_usize()?,
    })
}

/// Diagonalize a Fock matrix in the orthonormal basis; return
/// `(ε, C)` in the original AO basis.
pub(crate) fn orbitals_from_fock(f: &Mat, x: &Mat) -> (Vec<f64>, Mat) {
    let fp = x.transpose().matmul(f).matmul(x);
    let (eps, cp) = eigh(&fp);
    (eps, x.matmul(&cp))
}

pub(crate) fn assemble_density(c: &Mat, nocc: usize) -> Mat {
    let n = c.nrows();
    let mut d = Mat::zeros(n, n);
    for mu in 0..n {
        for nu in 0..n {
            let mut acc = 0.0;
            for k in 0..nocc {
                acc += c[(mu, k)] * c[(nu, k)];
            }
            d[(mu, nu)] = 2.0 * acc;
        }
    }
    d
}

pub(crate) fn density_from_fock(f: &Mat, x: &Mat, nocc: usize) -> Mat {
    let (_, c) = orbitals_from_fock(f, x);
    assemble_density(&c, nocc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;

    fn bitwise_mat(a: &Mat, b: &Mat) -> bool {
        a.nrows() == b.nrows()
            && a.ncols() == b.ncols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn session_matches_monolithic_driver() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions::default();
        let via_session = ScfSession::new(&mol, &basis, &opts, Method::Rhf).run_to_completion();
        let via_driver = crate::driver::rhf(&mol, &basis, &opts);
        assert_eq!(via_session.energy.to_bits(), via_driver.energy.to_bits());
        assert_eq!(via_session.iterations, via_driver.iterations);
        assert!(bitwise_mat(&via_session.density, &via_driver.density));
    }

    #[test]
    fn interrupt_resume_is_bit_identical() {
        let mol = systems::lih();
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions::default();

        let uninterrupted = ScfSession::new(&mol, &basis, &opts, Method::Rhf).run_to_completion();

        let mut first = ScfSession::new(&mol, &basis, &opts, Method::Rhf);
        for _ in 0..3 {
            first.step();
        }
        let ck = first.checkpoint();
        drop(first);
        let resumed = ScfSession::resume(&mol, &basis, &ck)
            .unwrap()
            .run_to_completion();

        assert_eq!(resumed.energy.to_bits(), uninterrupted.energy.to_bits());
        assert_eq!(resumed.iterations, uninterrupted.iterations);
        assert!(bitwise_mat(&resumed.density, &uninterrupted.density));
        assert!(bitwise_mat(&resumed.c, &uninterrupted.c));
    }

    #[test]
    fn resume_against_wrong_basis_fails() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let session = ScfSession::new(&mol, &basis, &ScfOptions::default(), Method::Rhf);
        let ck = session.checkpoint();
        let bigger = Basis::b631g(&mol);
        assert!(ScfSession::resume(&mol, &bigger, &ck).is_err());
    }
}
