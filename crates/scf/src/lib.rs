//! # liair-scf
//!
//! Restricted self-consistent-field engines over the `liair-integrals`
//! substrate:
//!
//! * [`diis`] — Pulay's DIIS convergence accelerator;
//! * [`driver`] — RHF and RKS(LDA) SCF drivers, plus post-SCF evaluation
//!   of PBE and PBE0 (the paper's production functional) on the converged
//!   density. Self-consistency for the GGA potential is intentionally out
//!   of scope (see DESIGN.md): the hybrid's *exact-exchange* term — the
//!   paper's entire subject — is computed exactly, both analytically (via
//!   the K matrix) and on grids (via `liair-core`'s pair-Poisson path).
//!
//! Validation: H₂, He, LiH and H₂O STO-3G total energies against
//! literature values in the unit tests.

pub mod diis;
pub mod driver;
pub mod fci;
pub mod mp2;
pub mod optimize;
pub mod session;
pub mod uhf;

pub use diis::Diis;
pub use driver::{functional_energy, rhf, rks_lda, EnergyBreakdown, Method, ScfOptions, ScfResult};
pub use fci::{fci_two_electron, FciResult};
pub use mp2::{mp2_correlation, rhf_mp2_energy};
pub use optimize::{dipole_moment, harmonic_frequencies, optimize_rhf, OptResult};
pub use session::{ScfCheckpoint, ScfSession};
pub use uhf::{uhf, UhfOptions, UhfResult};
