//! Pulay's Direct Inversion in the Iterative Subspace.
//!
//! Stores recent `(Fock, error)` pairs and extrapolates the next Fock
//! matrix as the linear combination minimizing the norm of the combined
//! error, subject to coefficients summing to one (solved via the standard
//! bordered linear system).

use liair_math::linalg::try_solve;
use liair_math::Mat;
use std::collections::VecDeque;

/// DIIS accelerator state.
#[derive(Debug, Clone)]
pub struct Diis {
    depth: usize,
    focks: VecDeque<Mat>,
    errors: VecDeque<Mat>,
}

impl Diis {
    /// New accelerator keeping up to `depth` history entries (≥ 1).
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1);
        Self {
            depth,
            focks: VecDeque::new(),
            errors: VecDeque::new(),
        }
    }

    /// Rebuild an accelerator from checkpointed history (oldest first).
    /// The history is truncated to `depth` from the back, matching what
    /// an uninterrupted run would have retained.
    pub fn from_history(depth: usize, focks: Vec<Mat>, errors: Vec<Mat>) -> Self {
        assert!(depth >= 1);
        assert_eq!(focks.len(), errors.len(), "mismatched DIIS history");
        let skip = focks.len().saturating_sub(depth);
        Self {
            depth,
            focks: focks.into_iter().skip(skip).collect(),
            errors: errors.into_iter().skip(skip).collect(),
        }
    }

    /// History depth bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Stored `(Fock, error)` history, oldest first (for checkpointing).
    pub fn history(&self) -> (Vec<&Mat>, Vec<&Mat>) {
        (self.focks.iter().collect(), self.errors.iter().collect())
    }

    /// Number of stored history entries.
    pub fn len(&self) -> usize {
        self.focks.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.focks.is_empty()
    }

    /// Current worst error element (∞-norm of the latest error), or
    /// `f64::INFINITY` before the first push.
    pub fn latest_error(&self) -> f64 {
        self.errors
            .back()
            .map(|e| e.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs())))
            .unwrap_or(f64::INFINITY)
    }

    /// Push a new `(F, error)` pair and return the extrapolated Fock
    /// matrix. Falls back to plain `F` while fewer than two entries exist
    /// or if the DIIS system is ill-conditioned.
    pub fn extrapolate(&mut self, fock: Mat, error: Mat) -> Mat {
        self.focks.push_back(fock);
        self.errors.push_back(error);
        if self.focks.len() > self.depth {
            self.focks.pop_front();
            self.errors.pop_front();
        }
        let m = self.focks.len();
        if m < 2 {
            return self.focks.back().unwrap().clone();
        }
        // Bordered system:  [B  1][c]   [0]
        //                   [1ᵀ 0][λ] = [1]
        let mut a = Mat::zeros(m + 1, m + 1);
        for i in 0..m {
            for j in 0..m {
                let bij: f64 = self.errors[i]
                    .as_slice()
                    .iter()
                    .zip(self.errors[j].as_slice())
                    .map(|(x, y)| x * y)
                    .sum();
                a[(i, j)] = bij;
            }
            a[(i, m)] = 1.0;
            a[(m, i)] = 1.0;
        }
        let mut rhs = vec![0.0; m + 1];
        rhs[m] = 1.0;
        // Near convergence the B block becomes singular; fall back to the
        // latest Fock matrix in that case.
        let coeffs = match try_solve(&a, &rhs) {
            Some(c) if c.iter().take(m).all(|x| x.is_finite()) => c,
            _ => return self.focks.back().unwrap().clone(),
        };
        let n = self.focks[0].nrows();
        let mut out = Mat::zeros(n, self.focks[0].ncols());
        for (i, f) in self.focks.iter().enumerate() {
            out.axpy(coeffs[i], f);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_of(vals: &[f64]) -> Mat {
        Mat::from_vec(1, vals.len(), vals.to_vec())
    }

    #[test]
    fn single_entry_returns_input() {
        let mut d = Diis::new(5);
        let f = mat_of(&[1.0, 2.0]);
        let out = d.extrapolate(f.clone(), mat_of(&[0.5, 0.5]));
        assert_eq!(out, f);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn two_opposite_errors_cancel() {
        // Errors e1 = +1, e2 = −1 ⇒ coefficients (½, ½) kill the combined
        // error; extrapolated F is the average.
        let mut d = Diis::new(5);
        d.extrapolate(mat_of(&[0.0]), mat_of(&[1.0]));
        let out = d.extrapolate(mat_of(&[2.0]), mat_of(&[-1.0]));
        assert!((out[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn history_is_bounded() {
        let mut d = Diis::new(3);
        for k in 0..10 {
            d.extrapolate(mat_of(&[k as f64]), mat_of(&[1.0 / (k + 1) as f64]));
        }
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn latest_error_tracks_inf_norm() {
        let mut d = Diis::new(4);
        assert!(d.latest_error().is_infinite());
        d.extrapolate(mat_of(&[0.0]), mat_of(&[0.25, -0.75]));
        assert!((d.latest_error() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn coefficients_sum_to_one_property() {
        // With random errors the extrapolation of identical Fock matrices
        // must return that same matrix (coefficients sum to 1).
        let mut d = Diis::new(6);
        let f = mat_of(&[3.5, -1.25, 0.75]);
        let mut rng = liair_math::rng::SplitMix64::new(11);
        let mut out = f.clone();
        for _ in 0..5 {
            let e = mat_of(&[
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
                rng.next_f64() - 0.5,
            ]);
            out = d.extrapolate(f.clone(), e);
        }
        assert!(out.sub(&f).fro_norm() < 1e-9);
    }
}
