//! Property test: serialize → deserialize → resume of an SCF session is
//! bit-identical to the uninterrupted convergence, for every molecule,
//! Fock-build mode, and interruption point.
//!
//! The serve layer preempts SCF jobs at arbitrary iterations and resumes
//! them from [`ScfCheckpoint`] bytes; the resumed session must converge
//! to exactly the uninterrupted energy, density, and orbitals — the DIIS
//! history, incremental-Fock accumulators, and convergence bookkeeping
//! all have to survive the byte round trip intact.

use liair_basis::{systems, Basis, Molecule};
use liair_scf::driver::{Method, ScfOptions};
use liair_scf::ScfSession;
use proptest::prelude::*;

fn molecule_for(idx: usize) -> Molecule {
    match idx % 4 {
        0 => systems::h2(),
        1 => systems::helium(),
        2 => systems::lih(),
        _ => systems::water(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scf_checkpoint_resume_is_bit_identical(
        mol_idx in 0usize..4,
        cut_after in 1usize..6,
        incremental_idx in 0usize..2,
    ) {
        let incremental_fock = incremental_idx == 1;
        let mol = molecule_for(mol_idx);
        let basis = Basis::sto3g(&mol);
        let opts = ScfOptions {
            incremental_fock,
            ..ScfOptions::default()
        };

        // Uninterrupted reference.
        let reference =
            ScfSession::new(&mol, &basis, &opts, Method::Rhf).run_to_completion();

        // Interrupted twin: step `cut_after` iterations (or fewer if it
        // converges first), checkpoint, drop, resume, finish.
        let mut live = ScfSession::new(&mol, &basis, &opts, Method::Rhf);
        for _ in 0..cut_after {
            if !live.step() {
                break;
            }
        }
        let ck = live.checkpoint();
        drop(live);
        let resumed = ScfSession::resume(&mol, &basis, &ck)
            .expect("runner-written bytes resume against the same basis")
            .run_to_completion();

        prop_assert!(reference.converged);
        prop_assert!(resumed.converged);
        prop_assert_eq!(resumed.energy.to_bits(), reference.energy.to_bits());
        prop_assert_eq!(resumed.density.nrows(), reference.density.nrows());
        for (a, b) in resumed
            .density
            .as_slice()
            .iter()
            .zip(reference.density.as_slice())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in resumed
            .orbital_energies
            .iter()
            .zip(&reference.orbital_energies)
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
