//! # liair-xc
//!
//! Exchange–correlation functionals for closed-shell densities on uniform
//! grids (the plane-wave-DFT style used by the paper's CPMD substrate):
//!
//! * [`lda`] — Slater exchange and Perdew–Wang '92 correlation, including
//!   the potentials needed for self-consistent LDA;
//! * [`pbe`] — PBE GGA exchange and correlation energy densities;
//! * [`functional`] — the user-facing [`Functional`] enum: `LDA`, `PBE` and
//!   the paper's `PBE0` hybrid (25 % exact exchange + 75 % PBE exchange +
//!   full PBE correlation).
//!
//! GGA quantities are evaluated from FFT gradients of the grid density.
//! The hybrid's exact-exchange share is *not* computed here — that is the
//! whole point of `liair-core`; this crate only reports the fraction.

pub mod functional;
pub mod lda;
pub mod lsda;
pub mod pbe;

pub use functional::Functional;
