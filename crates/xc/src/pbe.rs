//! PBE generalized-gradient exchange and correlation (Perdew, Burke &
//! Ernzerhof, PRL 77, 3865 (1996)) — closed-shell energy densities.
//!
//! Exchange: `ε_x = ε_x^{LDA}(n) · F_x(s)` with the enhancement factor
//! `F_x = 1 + κ − κ/(1 + μ s²/κ)` and the reduced gradient
//! `s = |∇n| / (2 (3π²)^{1/3} n^{4/3})`.
//!
//! Correlation: `ε_c = ε_c^{PW92}(n) + H(n, t)` with
//! `t = |∇n| / (2 k_s n)`, `k_s = √(4 k_F/π)`, and the PBE `H` gradient
//! correction.

use crate::lda::{pw92_ec, slater_ex, DENSITY_FLOOR};
use std::f64::consts::PI;

/// PBE exchange enhancement parameters.
pub const KAPPA: f64 = 0.804;
/// μ = β π²/3 with β = 0.066725.
pub const MU: f64 = 0.219_514_972_764_517_1;
/// PBE correlation β (the precise value consistent with μ = βπ²/3).
pub const BETA: f64 = 0.066_724_550_603_149_22;
/// γ = (1 − ln 2)/π².
pub const GAMMA: f64 = 0.031_090_690_869_654_895;

/// Exchange enhancement factor `F_x(s)`.
#[inline]
pub fn fx(s: f64) -> f64 {
    1.0 + KAPPA - KAPPA / (1.0 + MU * s * s / KAPPA)
}

/// Reduced density gradient `s`.
#[inline]
pub fn reduced_gradient(n: f64, grad_n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    let kf = (3.0 * PI * PI * n).powf(1.0 / 3.0);
    grad_n / (2.0 * kf * n)
}

/// PBE exchange energy per particle.
pub fn pbe_ex(n: f64, grad_n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    slater_ex(n) * fx(reduced_gradient(n, grad_n))
}

/// The PBE gradient correction `H(n, t)` to the correlation energy per
/// particle (closed shell, φ = 1).
pub fn pbe_h(n: f64, grad_n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    let kf = (3.0 * PI * PI * n).powf(1.0 / 3.0);
    let ks = (4.0 * kf / PI).sqrt();
    let t = grad_n / (2.0 * ks * n);
    let t2 = t * t;
    let ec = pw92_ec(n);
    // A = (β/γ) / (e^{−ε_c/γ} − 1); guard the uniform-gas limit ε_c → 0⁻.
    let expo = (-ec / GAMMA).exp() - 1.0;
    let a = if expo.abs() < 1e-300 {
        f64::INFINITY
    } else {
        BETA / GAMMA / expo
    };
    let num = 1.0 + a * t2;
    let den = 1.0 + a * t2 + a * a * t2 * t2;
    GAMMA * (1.0 + BETA / GAMMA * t2 * num / den).ln()
}

/// PBE correlation energy per particle.
pub fn pbe_ec(n: f64, grad_n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    pw92_ec(n) + pbe_h(n, grad_n)
}

/// PBE exchange–correlation energy per particle.
pub fn pbe_exc(n: f64, grad_n: f64) -> f64 {
    pbe_ex(n, grad_n) + pbe_ec(n, grad_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    #[test]
    fn enhancement_factor_bounds() {
        // 1 ≤ F_x < 1 + κ (the Lieb–Oxford-motivated bound PBE enforces).
        assert!(approx_eq(fx(0.0), 1.0, 1e-15));
        for k in 0..200 {
            let s = 0.1 * k as f64;
            let f = fx(s);
            assert!((1.0..1.0 + KAPPA + 1e-12).contains(&f), "s={s}: {f}");
        }
        // Monotone increasing.
        assert!(fx(2.0) > fx(1.0));
        // Large-s limit saturates at 1 + κ.
        assert!(approx_eq(fx(1e6), 1.0 + KAPPA, 1e-6));
    }

    #[test]
    fn uniform_gas_recovers_lda() {
        for &n in &[0.01, 0.2, 1.0] {
            assert!(approx_eq(pbe_ex(n, 0.0), slater_ex(n), 1e-14));
            assert!(approx_eq(pbe_ec(n, 0.0), pw92_ec(n), 1e-12));
        }
    }

    #[test]
    fn small_s_expansion_of_fx() {
        // F_x ≈ 1 + μ s² for small s.
        let s = 1e-3;
        assert!(approx_eq(fx(s) - 1.0, MU * s * s, 1e-8));
    }

    #[test]
    fn gradient_correction_is_nonnegative() {
        // H ≥ 0: gradients *reduce* the magnitude of correlation.
        for &n in &[0.05, 0.3, 1.5] {
            for &g in &[0.0, 0.1, 1.0, 10.0] {
                assert!(pbe_h(n, g) >= -1e-14, "n={n}, g={g}");
            }
        }
    }

    #[test]
    fn strong_gradient_kills_correlation() {
        // As t → ∞, H → −ε_c so ε_c^{PBE} → 0⁻.
        let n = 0.3;
        let ec = pbe_ec(n, 1e6);
        assert!(ec.abs() < 5e-3, "{ec}");
        assert!(ec <= 1e-12);
    }

    #[test]
    fn exchange_more_negative_with_gradient() {
        // F_x > 1 makes GGA exchange more negative than LDA.
        let n = 0.2;
        assert!(pbe_ex(n, 1.0) < slater_ex(n));
    }

    #[test]
    fn mu_beta_relation() {
        // μ = β π²/3 by construction (gradient-expansion link).
        assert!(approx_eq(MU, BETA * PI * PI / 3.0, 1e-12));
    }
}
