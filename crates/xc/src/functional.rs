//! Grid-level functional evaluation and the [`Functional`] selector.

use crate::{lda, pbe};
use liair_grid::RealGrid;
use liair_math::fft3::{fft3, ifft3};
use liair_math::{Array3, Complex64};
use rayon::prelude::*;

/// The exchange–correlation treatments of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Functional {
    /// Pure Hartree–Fock: 100 % exact exchange, no DFT XC.
    Hf,
    /// Local-density approximation (Slater + PW92).
    Lda,
    /// PBE GGA.
    Pbe,
    /// PBE0 hybrid: 25 % exact exchange + 75 % PBE exchange + PBE
    /// correlation — the functional the paper's application runs use.
    Pbe0,
}

impl Functional {
    /// Fraction of exact (Hartree–Fock) exchange this functional mixes in.
    /// The exchange itself is computed by `liair-core`/`liair-integrals`.
    pub fn hfx_fraction(self) -> f64 {
        match self {
            Functional::Hf => 1.0,
            Functional::Lda | Functional::Pbe => 0.0,
            Functional::Pbe0 => 0.25,
        }
    }

    /// Whether the DFT part needs density gradients.
    pub fn needs_gradient(self) -> bool {
        matches!(self, Functional::Pbe | Functional::Pbe0)
    }

    /// The exchange-free surrogate used for the *fast* (inner) forces of
    /// r-RESPA multiple time stepping: hybrids drop their exact-exchange
    /// share (PBE0 → PBE), pure Hartree–Fock falls back to LDA, and
    /// functionals with no exact exchange are their own surrogate. The
    /// expensive HFX part then enters only through the outer-step slow
    /// correction (see `liair-md::mts`).
    pub fn mts_fast(self) -> Functional {
        match self {
            Functional::Hf => Functional::Lda,
            Functional::Pbe0 => Functional::Pbe,
            f => f,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Functional::Hf => "HF",
            Functional::Lda => "LDA",
            Functional::Pbe => "PBE",
            Functional::Pbe0 => "PBE0",
        }
    }

    /// DFT exchange–correlation energy of a closed-shell density sampled on
    /// the grid. The exact-exchange share (for `Hf`/`Pbe0`) is *not*
    /// included — callers add `hfx_fraction() · E_x^{exact}` themselves.
    pub fn xc_energy(self, grid: &RealGrid, density: &[f64]) -> f64 {
        assert_eq!(density.len(), grid.len());
        match self {
            Functional::Hf => 0.0,
            Functional::Lda => {
                let e: f64 = density.par_iter().map(|&n| n * lda::lda_exc(n)).sum();
                e * grid.dvol()
            }
            Functional::Pbe => {
                let g = density_gradient_norm(grid, density);
                let e: f64 = density
                    .par_iter()
                    .zip(&g)
                    .map(|(&n, &gn)| n * pbe::pbe_exc(n, gn))
                    .sum();
                e * grid.dvol()
            }
            Functional::Pbe0 => {
                let g = density_gradient_norm(grid, density);
                let e: f64 = density
                    .par_iter()
                    .zip(&g)
                    .map(|(&n, &gn)| n * (0.75 * pbe::pbe_ex(n, gn) + pbe::pbe_ec(n, gn)))
                    .sum();
                e * grid.dvol()
            }
        }
    }

    /// LDA exchange–correlation potential on the grid (used by the
    /// self-consistent RKS path; GGA potentials are intentionally not
    /// implemented — PBE/PBE0 energies are evaluated post-SCF, see
    /// DESIGN.md).
    pub fn lda_vxc_field(density: &[f64]) -> Vec<f64> {
        density.par_iter().map(|&n| lda::lda_vxc(n)).collect()
    }
}

/// `|∇n|` on the grid via reciprocal-space differentiation
/// (`∂̂f = iG f̂`), one FFT pair per axis.
pub fn density_gradient_norm(grid: &RealGrid, density: &[f64]) -> Vec<f64> {
    assert_eq!(density.len(), grid.len());
    let mut hat = Array3::from_vec(
        grid.dims,
        density.iter().map(|&r| Complex64::real(r)).collect(),
    );
    fft3(&mut hat);
    let (nx, ny, nz) = grid.dims;
    let mut grad_sq = vec![0.0; grid.len()];
    for axis in 0..3 {
        let mut comp = hat.clone();
        {
            let data = comp.as_mut_slice();
            let mut idx = 0;
            for i in 0..nx {
                for j in 0..ny {
                    for k in 0..nz {
                        let g = grid.g_of_bin(i, j, k);
                        let gk = g[axis];
                        // i·g_k multiply; Nyquist rows of even grids have no
                        // matching conjugate partner — zero them so the
                        // derivative stays real.
                        let is_nyquist = (axis == 0 && nx % 2 == 0 && i == nx / 2)
                            || (axis == 1 && ny % 2 == 0 && j == ny / 2)
                            || (axis == 2 && nz % 2 == 0 && k == nz / 2);
                        data[idx] = if is_nyquist {
                            Complex64::ZERO
                        } else {
                            Complex64::new(-data[idx].im * gk, data[idx].re * gk)
                        };
                        idx += 1;
                    }
                }
            }
        }
        ifft3(&mut comp);
        for (acc, z) in grad_sq.iter_mut().zip(comp.as_slice()) {
            *acc += z.re * z.re;
        }
    }
    grad_sq.into_iter().map(f64::sqrt).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::Cell;
    use liair_math::approx_eq;
    use std::f64::consts::PI;

    #[test]
    fn gradient_of_plane_wave() {
        // n = 2 + sin(Gx): |∇n| = G|cos(Gx)|.
        let l = 9.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 24);
        let g0 = 2.0 * PI / l;
        let n: Vec<f64> = (0..grid.len())
            .map(|i| 2.0 + (g0 * grid.point_flat(i).x).sin())
            .collect();
        let g = density_gradient_norm(&grid, &n);
        for i in (0..grid.len()).step_by(101) {
            let want = g0 * (g0 * grid.point_flat(i).x).cos().abs();
            assert!(approx_eq(g[i], want, 1e-8), "{} vs {want}", g[i]);
        }
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let grid = RealGrid::cubic(Cell::cubic(5.0), 8);
        let n = vec![0.7; grid.len()];
        let g = density_gradient_norm(&grid, &n);
        assert!(g.iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn uniform_density_lda_closed_form() {
        // E_xc = V · n ε_xc(n) for a homogeneous density.
        let grid = RealGrid::cubic(Cell::cubic(6.0), 8);
        let n0 = 0.25;
        let n = vec![n0; grid.len()];
        let want = grid.cell.volume() * n0 * lda::lda_exc(n0);
        let got = Functional::Lda.xc_energy(&grid, &n);
        assert!(approx_eq(got, want, 1e-10));
        // PBE reduces to LDA for the uniform gas.
        let pbe = Functional::Pbe.xc_energy(&grid, &n);
        assert!(approx_eq(pbe, want, 1e-8), "{pbe} vs {want}");
    }

    #[test]
    fn pbe0_composition_identity() {
        // E_xc^{PBE0,DFT} = E_xc^{PBE} − 0.25 E_x^{PBE}.
        let grid = RealGrid::cubic(Cell::cubic(7.0), 16);
        let g0 = 2.0 * PI / 7.0;
        let n: Vec<f64> = (0..grid.len())
            .map(|i| 0.3 + 0.1 * (g0 * grid.point_flat(i).y).cos())
            .collect();
        let grads = density_gradient_norm(&grid, &n);
        let ex_pbe: f64 = n
            .iter()
            .zip(&grads)
            .map(|(&d, &g)| d * pbe::pbe_ex(d, g))
            .sum::<f64>()
            * grid.dvol();
        let full = Functional::Pbe.xc_energy(&grid, &n);
        let hybrid = Functional::Pbe0.xc_energy(&grid, &n);
        assert!(approx_eq(hybrid, full - 0.25 * ex_pbe, 1e-10));
    }

    #[test]
    fn hf_has_no_dft_xc() {
        let grid = RealGrid::cubic(Cell::cubic(4.0), 4);
        let n = vec![0.5; grid.len()];
        assert_eq!(Functional::Hf.xc_energy(&grid, &n), 0.0);
        assert_eq!(Functional::Hf.hfx_fraction(), 1.0);
        assert_eq!(Functional::Pbe0.hfx_fraction(), 0.25);
    }

    #[test]
    fn xc_energy_is_negative_for_physical_density() {
        let l = 12.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 24);
        let alpha = 0.5;
        let c = liair_math::Vec3::splat(l / 2.0);
        let n: Vec<f64> = (0..grid.len())
            .map(|i| {
                let d = grid.cell.min_image(c, grid.point_flat(i));
                2.0 * (alpha / PI).powf(1.5) * (-alpha * d.norm_sqr()).exp()
            })
            .collect();
        for f in [Functional::Lda, Functional::Pbe, Functional::Pbe0] {
            let e = f.xc_energy(&grid, &n);
            assert!(e < 0.0, "{}: {e}", f.name());
        }
    }

    #[test]
    fn mts_fast_surrogate_is_exchange_free_and_idempotent() {
        for f in [
            Functional::Hf,
            Functional::Lda,
            Functional::Pbe,
            Functional::Pbe0,
        ] {
            let s = f.mts_fast();
            assert_eq!(s.hfx_fraction(), 0.0, "{} surrogate carries HFX", f.name());
            assert_eq!(s.mts_fast(), s, "{} surrogate not a fixed point", f.name());
        }
        assert_eq!(Functional::Pbe0.mts_fast(), Functional::Pbe);
        assert_eq!(Functional::Hf.mts_fast(), Functional::Lda);
    }
}
