//! Spin-polarized local density approximation (LSDA).
//!
//! Exchange by exact spin scaling,
//! `E_x[n↑, n↓] = ½(E_x^{LDA}[2n↑] + E_x^{LDA}[2n↓])`,
//! and the full Perdew–Wang '92 correlation interpolation
//!
//! `ε_c(r_s, ζ) = ε_c(r_s,0) + α_c(r_s)·f(ζ)/f''(0)·(1−ζ⁴)
//!              + [ε_c(r_s,1) − ε_c(r_s,0)]·f(ζ)·ζ⁴`
//!
//! with `f(ζ) = [(1+ζ)^{4/3} + (1−ζ)^{4/3} − 2]/(2^{4/3} − 2)`. Pairs
//! with the UHF densities from `liair-scf` for radical thermochemistry.

use crate::lda::{rs_of, slater_ex, DENSITY_FLOOR};

/// The PW92 G-function: `−2A(1+α₁ r_s)·ln[1 + 1/(2A(β₁√r_s + β₂r_s +
/// β₃r_s^{3/2} + β₄r_s²))]`.
fn pw92_g(rs: f64, a: f64, a1: f64, b: [f64; 4]) -> f64 {
    let s = rs.sqrt();
    let q0 = -2.0 * a * (1.0 + a1 * rs);
    let q1 = 2.0 * a * (b[0] * s + b[1] * rs + b[2] * rs * s + b[3] * rs * rs);
    q0 * (1.0 + 1.0 / q1).ln()
}

/// ε_c(r_s, ζ = 0).
pub fn ec0(rs: f64) -> f64 {
    pw92_g(rs, 0.031_090_7, 0.213_70, [7.5957, 3.5876, 1.6382, 0.49294])
}

/// ε_c(r_s, ζ = 1).
pub fn ec1(rs: f64) -> f64 {
    pw92_g(
        rs,
        0.015_545_35,
        0.205_48,
        [14.1189, 6.1977, 3.3662, 0.62517],
    )
}

/// Spin stiffness −α_c(r_s) (the G fit returns −α_c).
pub fn minus_alpha_c(rs: f64) -> f64 {
    pw92_g(
        rs,
        0.016_886_9,
        0.111_25,
        [10.357, 3.6231, 0.88026, 0.49671],
    )
}

/// The spin interpolation function `f(ζ)`.
pub fn f_zeta(zeta: f64) -> f64 {
    let z = zeta.clamp(-1.0, 1.0);
    ((1.0 + z).powf(4.0 / 3.0) + (1.0 - z).powf(4.0 / 3.0) - 2.0) / (2.0f64.powf(4.0 / 3.0) - 2.0)
}

/// `f''(0) = 8/(9(2^{4/3} − 2)) ≈ 1.709921`.
pub const F_PP0: f64 = 1.709_920_934_161_365_6;

/// LSDA exchange energy per particle for spin densities `(n_up, n_dn)`.
pub fn lsda_ex(n_up: f64, n_dn: f64) -> f64 {
    let n = n_up + n_dn;
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    // E_x = ½ Σ_σ E_x^{unpol}[2 n_σ] ⇒ per-particle weighting by n_σ.
    (n_up * slater_ex(2.0 * n_up) + n_dn * slater_ex(2.0 * n_dn)) / n
}

/// PW92 correlation energy per particle at arbitrary polarization.
pub fn lsda_ec(n_up: f64, n_dn: f64) -> f64 {
    let n = n_up + n_dn;
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    let rs = rs_of(n);
    let zeta = ((n_up - n_dn) / n).clamp(-1.0, 1.0);
    let f = f_zeta(zeta);
    let z4 = zeta.powi(4);
    let e0 = ec0(rs);
    let e1 = ec1(rs);
    let mac = minus_alpha_c(rs);
    e0 - mac * f / F_PP0 * (1.0 - z4) + (e1 - e0) * f * z4
}

/// LSDA exchange–correlation energy per particle.
pub fn lsda_exc(n_up: f64, n_dn: f64) -> f64 {
    lsda_ex(n_up, n_dn) + lsda_ec(n_up, n_dn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{lda_exc, pw92_ec};
    use liair_math::approx_eq;

    #[test]
    fn unpolarized_limit_matches_lda() {
        for &n in &[0.01, 0.1, 0.5, 2.0] {
            let half = n / 2.0;
            assert!(
                approx_eq(lsda_exc(half, half), lda_exc(n), 1e-12),
                "n = {n}: {} vs {}",
                lsda_exc(half, half),
                lda_exc(n)
            );
            assert!(approx_eq(lsda_ec(half, half), pw92_ec(n), 1e-12));
        }
    }

    #[test]
    fn fully_polarized_exchange_scaling() {
        // ε_x(n, 0) = 2^{1/3} ε_x^{unpol}(n).
        for &n in &[0.05, 0.3, 1.0] {
            let want = 2.0f64.powf(1.0 / 3.0) * crate::lda::slater_ex(n);
            assert!(
                approx_eq(lsda_ex(n, 0.0), want, 1e-12),
                "n = {n}: {} vs {want}",
                lsda_ex(n, 0.0)
            );
        }
    }

    #[test]
    fn f_zeta_endpoints_and_symmetry() {
        assert!(f_zeta(0.0).abs() < 1e-15);
        assert!(approx_eq(f_zeta(1.0), 1.0, 1e-14));
        assert!(approx_eq(f_zeta(-1.0), 1.0, 1e-14));
        for k in 0..10 {
            let z = 0.1 * k as f64;
            assert!(approx_eq(f_zeta(z), f_zeta(-z), 1e-14));
        }
        // Numerical f''(0) matches the constant.
        let h = 1e-4;
        let fpp = (f_zeta(h) - 2.0 * f_zeta(0.0) + f_zeta(-h)) / (h * h);
        assert!(approx_eq(fpp, F_PP0, 1e-5), "{fpp}");
    }

    #[test]
    fn polarized_correlation_is_weaker() {
        // |ε_c| decreases with polarization (parallel spins avoid each
        // other already via exchange).
        for &n in &[0.05, 0.3, 1.0] {
            let unpol = lsda_ec(n / 2.0, n / 2.0).abs();
            let pol = lsda_ec(n, 0.0).abs();
            assert!(pol < unpol, "n = {n}: {pol} !< {unpol}");
            assert!(pol > 0.0);
        }
    }

    #[test]
    fn correlation_monotone_in_zeta() {
        let n = 0.2;
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=10 {
            let zeta = k as f64 / 10.0;
            let n_up = n * (1.0 + zeta) / 2.0;
            let n_dn = n * (1.0 - zeta) / 2.0;
            let ec = lsda_ec(n_up, n_dn);
            assert!(ec >= prev - 1e-12, "zeta = {zeta}");
            prev = ec;
        }
    }

    #[test]
    fn spin_stiffness_fit_sign() {
        // The fitted quantity −α_c is negative for all r_s (α_c > 0: the
        // curvature that lifts ε_c toward the weaker polarized limit), and
        // |α_c| is on the correlation-energy scale.
        for &rs in &[0.5, 1.0, 2.0, 5.0, 20.0] {
            let mac = minus_alpha_c(rs);
            assert!(mac < 0.0, "rs = {rs}: {mac}");
            assert!(mac > -0.1, "rs = {rs}: {mac}");
        }
        // Spot value: −α_c(1) ≈ −0.040.
        assert!(approx_eq(minus_alpha_c(1.0), -0.0403, 2e-3));
    }

    #[test]
    fn exchange_symmetric_in_spins() {
        assert!(approx_eq(lsda_exc(0.3, 0.1), lsda_exc(0.1, 0.3), 1e-14));
    }
}
