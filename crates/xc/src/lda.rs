//! Local-density approximation, closed shell (spin-unpolarized):
//! Slater–Dirac exchange and Perdew–Wang 1992 correlation.

use std::f64::consts::PI;

/// Density floor below which XC contributions are treated as zero (the
/// functionals are singular at n → 0⁺ only in their *potentials*; cutting
/// at this floor changes energies by far less than grid error).
pub const DENSITY_FLOOR: f64 = 1e-12;

/// Slater exchange energy per particle `ε_x(n) = −(3/4)(3n/π)^{1/3}`.
#[inline]
pub fn slater_ex(n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    -0.75 * (3.0 * n / PI).powf(1.0 / 3.0)
}

/// Slater exchange potential `v_x = ∂(n ε_x)/∂n = −(3n/π)^{1/3}`.
#[inline]
pub fn slater_vx(n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    -(3.0 * n / PI).powf(1.0 / 3.0)
}

/// Wigner–Seitz radius `r_s = (3/4πn)^{1/3}`.
#[inline]
pub fn rs_of(n: f64) -> f64 {
    (3.0 / (4.0 * PI * n)).powf(1.0 / 3.0)
}

// PW92 unpolarized parameters (Perdew & Wang, PRB 45, 13244 (1992), Table I,
// ε_c(rs, ζ=0) fit).
const A: f64 = 0.031_090_7;
const ALPHA1: f64 = 0.213_70;
const BETA1: f64 = 7.595_7;
const BETA2: f64 = 3.587_6;
const BETA3: f64 = 1.638_2;
const BETA4: f64 = 0.492_94;

/// PW92 correlation energy per particle (ζ = 0) as a function of `r_s`.
pub fn pw92_ec_rs(rs: f64) -> f64 {
    let sqrt_rs = rs.sqrt();
    let q0 = -2.0 * A * (1.0 + ALPHA1 * rs);
    let q1 = 2.0 * A * (BETA1 * sqrt_rs + BETA2 * rs + BETA3 * rs * sqrt_rs + BETA4 * rs * rs);
    q0 * (1.0 + 1.0 / q1).ln()
}

/// Analytic `dε_c/dr_s` for the PW92 fit.
pub fn pw92_dec_drs(rs: f64) -> f64 {
    let sqrt_rs = rs.sqrt();
    let q0 = -2.0 * A * (1.0 + ALPHA1 * rs);
    let dq0 = -2.0 * A * ALPHA1;
    let q1 = 2.0 * A * (BETA1 * sqrt_rs + BETA2 * rs + BETA3 * rs * sqrt_rs + BETA4 * rs * rs);
    let dq1 = A * (BETA1 / sqrt_rs + 2.0 * BETA2 + 3.0 * BETA3 * sqrt_rs + 4.0 * BETA4 * rs);
    dq0 * (1.0 + 1.0 / q1).ln() - q0 * dq1 / (q1 * q1 + q1)
}

/// PW92 correlation energy per particle as a function of density.
#[inline]
pub fn pw92_ec(n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    pw92_ec_rs(rs_of(n))
}

/// PW92 correlation potential `v_c = ε_c − (r_s/3) dε_c/dr_s`.
#[inline]
pub fn pw92_vc(n: f64) -> f64 {
    if n < DENSITY_FLOOR {
        return 0.0;
    }
    let rs = rs_of(n);
    pw92_ec_rs(rs) - rs / 3.0 * pw92_dec_drs(rs)
}

/// LDA exchange–correlation energy per particle.
#[inline]
pub fn lda_exc(n: f64) -> f64 {
    slater_ex(n) + pw92_ec(n)
}

/// LDA exchange–correlation potential.
#[inline]
pub fn lda_vxc(n: f64) -> f64 {
    slater_vx(n) + pw92_vc(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    #[test]
    fn slater_uniform_gas_scaling() {
        // ε_x scales like n^{1/3}: ε_x(8n) = 2 ε_x(n).
        let n = 0.37;
        assert!(approx_eq(slater_ex(8.0 * n), 2.0 * slater_ex(n), 1e-12));
        // v_x = (4/3) ε_x for the LDA.
        assert!(approx_eq(slater_vx(n), 4.0 / 3.0 * slater_ex(n), 1e-12));
    }

    #[test]
    fn pw92_reference_point() {
        // Widely tabulated value: ε_c(rs = 1, ζ = 0) ≈ −0.05966 Ha (e.g.
        // libxc LDA_C_PW). Loose tolerance covers fit-constant rounding.
        let ec = pw92_ec_rs(1.0);
        assert!(approx_eq(ec, -0.05966, 2e-4), "{ec}");
        // rs = 2: ≈ −0.04477? check against monotonic window instead.
        let ec2 = pw92_ec_rs(2.0);
        assert!(ec2 > ec && ec2 < 0.0, "{ec2}");
    }

    #[test]
    fn pw92_is_negative_and_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for k in 1..100 {
            let rs = 0.1 * k as f64;
            let ec = pw92_ec_rs(rs);
            assert!(ec < 0.0);
            assert!(ec > prev, "not monotone at rs = {rs}");
            prev = ec;
        }
    }

    #[test]
    fn pw92_derivative_matches_finite_difference() {
        for &rs in &[0.5, 1.0, 2.0, 5.0, 10.0] {
            let h = 1e-6;
            let fd = (pw92_ec_rs(rs + h) - pw92_ec_rs(rs - h)) / (2.0 * h);
            let an = pw92_dec_drs(rs);
            assert!(approx_eq(an, fd, 1e-6), "rs={rs}: {an} vs {fd}");
        }
    }

    #[test]
    fn potentials_vanish_below_floor() {
        assert_eq!(lda_vxc(0.0), 0.0);
        assert_eq!(lda_exc(1e-20), 0.0);
    }

    #[test]
    fn vxc_from_energy_derivative() {
        // v_xc = d(n ε_xc)/dn, finite-difference check.
        for &n in &[0.01, 0.1, 0.5, 2.0] {
            let h = 1e-7 * n;
            let fd = ((n + h) * lda_exc(n + h) - (n - h) * lda_exc(n - h)) / (2.0 * h);
            assert!(approx_eq(lda_vxc(n), fd, 1e-5), "n={n}");
        }
    }
}
