//! Counting-allocator proof that the steady-state pair-Poisson work units
//! perform **zero** heap allocations: after one warm-up call (plan build,
//! grow-once scratch), repeated solves through a reused
//! [`PoissonWorkspace`] / [`PatchScratch`] must not touch the allocator.

use liair_basis::Cell;
use liair_grid::{
    isolated_patch_solver, patch_pair_energy_ws, PatchScratch, PoissonSolver, PoissonWorkspace,
    RealGrid,
};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so the tests in this binary
/// must not overlap: one test's warm-up would land in the other's
/// measured window.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

fn random_field(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_f64() - 0.5).collect()
}

#[test]
fn pair_energy_paths_are_allocation_free_after_warmup() {
    let _guard = SERIAL.lock().unwrap();
    // 32³: pure radix-2 lines. 24³ additionally covered below for the
    // Bluestein path (its convolution scratch is thread-local too).
    for n in [32usize, 24] {
        let grid = RealGrid::cubic(Cell::cubic(12.0), n);
        let solver = PoissonSolver::isolated(grid);
        let a = random_field(grid.len(), 1);
        let b = random_field(grid.len(), 2);
        let mut ws = PoissonWorkspace::new();

        // Warm-up: builds FFT plans, grows workspace + thread-local scratch.
        let e_single = solver.exchange_pair_energy(&a, &mut ws);
        let (e_ba, _e_bb) = solver.exchange_pair_energy_batched(&a, &b, &mut ws);
        solver.solve_into(&a, &mut ws);

        let before = alloc_count();
        let mut acc = 0.0;
        for _ in 0..10 {
            acc += solver.exchange_pair_energy(&a, &mut ws);
            let (ea, eb) = solver.exchange_pair_energy_batched(&a, &b, &mut ws);
            acc += ea + eb;
            acc += solver.solve_into(&a, &mut ws)[0];
        }
        let delta = alloc_count() - before;
        assert_eq!(
            delta, 0,
            "n={n}: {delta} heap allocations in 10 steady-state pair solves"
        );
        // The warm-up results stay live so the loop above is not optimized out.
        assert!(acc.is_finite() && e_single >= 0.0 && e_ba >= 0.0);
    }
}

/// The SIMD-dispatched pair path stays zero-alloc at *every* level the
/// host supports: the vector kernels work strictly in the caller's
/// workspace, so switching `off`/`scalar`/`avx2` cannot reintroduce heap
/// traffic into the hot loop.
#[test]
fn simd_pair_paths_are_allocation_free_after_warmup() {
    use liair_math::simd;
    let _guard = SERIAL.lock().unwrap();
    let grid = RealGrid::cubic(Cell::cubic(12.0), 32);
    let solver = PoissonSolver::isolated(grid);
    let a = random_field(grid.len(), 5);
    let b = random_field(grid.len(), 6);
    let mut ws = PoissonWorkspace::new();
    for level in simd::available_levels() {
        // Warm-up at this level: plans, grow-once workspace, scratch.
        let warm = solver.exchange_pair_energy_with(level, &a, &mut ws);
        let _ = solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);

        let before = alloc_count();
        let mut acc = 0.0;
        for _ in 0..10 {
            acc += solver.exchange_pair_energy_with(level, &a, &mut ws);
            let (ea, eb) = solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);
            acc += ea + eb;
        }
        let delta = alloc_count() - before;
        assert_eq!(
            delta,
            0,
            "{}: {delta} heap allocations in 10 steady-state SIMD pair solves",
            level.name()
        );
        assert!(acc.is_finite() && warm >= 0.0);
    }
}

#[test]
fn patched_pair_path_is_allocation_free_after_warmup() {
    let _guard = SERIAL.lock().unwrap();
    let parent = RealGrid::cubic(Cell::cubic(16.0), 32);
    let phi_i = random_field(parent.len(), 3);
    let phi_j = random_field(parent.len(), 4);
    let mid = Vec3::splat(8.0);
    let mut scratch = PatchScratch::new();

    // Warm-up builds the cached patch solver and grows the scratch.
    let warm = patch_pair_energy_ws(&parent, &phi_i, &phi_j, mid, 8, &mut scratch);
    // Verify the solver cache is actually primed for this shape.
    let patch = liair_grid::Patch::plan(&parent, mid, 8);
    let _solver = isolated_patch_solver(patch.grid);

    let before = alloc_count();
    let mut acc = 0.0;
    for k in 0..10 {
        // Shift the midpoint so gather offsets vary (same patch shape).
        let m = Vec3::new(8.0 + 0.1 * k as f64, 8.0, 8.0);
        acc += patch_pair_energy_ws(&parent, &phi_i, &phi_j, m, 8, &mut scratch);
    }
    let delta = alloc_count() - before;
    assert_eq!(
        delta, 0,
        "{delta} heap allocations in 10 steady-state patched pair solves"
    );
    assert!(acc.is_finite() && warm >= 0.0);
}
