//! # liair-grid
//!
//! The real-space / plane-wave machinery of the condensed-phase exact
//! exchange path (the code path the paper parallelizes):
//!
//! * [`grid`] — uniform grids over periodic cells;
//! * [`orbital`] — evaluation of Gaussian AOs/MOs on grids;
//! * [`poisson`] — FFT-based Poisson solvers with periodic and
//!   spherical-cutoff (isolated) Coulomb kernels; every orbital-pair
//!   exchange term is one `solve` on this type;
//! * [`localize`] — Foster–Boys orbital localization (Jacobi sweeps over
//!   MO dipole matrices), producing the Wannier-like centers and spreads
//!   that drive the paper's distance screening.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod grid;
pub mod localize;
pub mod molgrid;
pub mod orbital;
pub mod patch;
pub mod poisson;

pub use grid::RealGrid;
pub use localize::{foster_boys, Localization};
pub use molgrid::MolGrid;
pub use orbital::{
    ao_values, ao_values_at_points, density_from_dm_at_points, density_on_grid, orbitals_on_grid,
};
pub use patch::{
    isolated_patch_solver, patch_pair_energy, patch_pair_energy_ws, Patch, PatchScratch,
};
pub use poisson::{CoulombKernel, KernelTimings, PoissonSolver, PoissonWorkspace};
