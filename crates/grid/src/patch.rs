//! Pair-local grid patches — the compact representation at the heart of
//! the paper's time-to-solution win.
//!
//! Localized orbital pairs have compact support: instead of transforming
//! the full simulation cell per pair, a small cubic patch covering both
//! orbitals is cut out of the parent grid (same spacing, periodic wrap)
//! and the pair Poisson problem is solved on the patch with the isolated
//! kernel. The FFT shrinks from `N_cell³` to `N_patch³` — the ~10× the
//! abstract reports. This module *executes* that mechanism; the cost model
//! in `liair-core::simulate` prices it at scale.
//!
//! Patch shapes repeat heavily across a pair list (the extent is rounded
//! to a power of two and the spacing is shared), so the isolated Poisson
//! solver — whose kernel table costs an `O(N_patch³)` rebuild — is cached
//! process-wide per `(extent, edge)` shape. Together with
//! [`PatchScratch`], the steady-state patched pair loop allocates nothing.

use crate::grid::RealGrid;
use crate::poisson::{PoissonSolver, PoissonWorkspace};
use liair_basis::Cell;
use liair_math::simd::{self, SimdLevel};
use liair_math::Vec3;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A cubic patch cut from a parent grid.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Grid-index origin in the parent grid (corner, before wrapping).
    pub origin: (i64, i64, i64),
    /// Points per axis.
    pub extent: usize,
    /// The patch's own grid (isolated cell of matching physical size).
    pub grid: RealGrid,
}

impl Patch {
    /// Plan a patch of at least `extent³` parent-spacing points whose
    /// *center* lands nearest to `center`. The extent is rounded up to the
    /// next power of two (the radix-2 FFT fast path — a non-power-of-two
    /// patch would fall into the ~4× slower Bluestein transform and waste
    /// the compact representation's advantage) and clamped to the parent.
    pub fn plan(parent: &RealGrid, center: Vec3, extent: usize) -> Patch {
        let (nx, ny, nz) = parent.dims;
        assert_eq!(nx, ny, "patches require cubic parent grids");
        assert_eq!(ny, nz, "patches require cubic parent grids");
        let extent = extent.max(2).next_power_of_two().min(nx);
        let h = parent.spacing();
        let origin = (
            (center.x / h.x).round() as i64 - extent as i64 / 2,
            (center.y / h.y).round() as i64 - extent as i64 / 2,
            (center.z / h.z).round() as i64 - extent as i64 / 2,
        );
        let cell = Cell::cubic(extent as f64 * h.x);
        Patch {
            origin,
            extent,
            grid: RealGrid::cubic(cell, extent),
        }
    }

    /// Gather a field from the parent grid into this patch (periodic wrap).
    pub fn gather(&self, parent: &RealGrid, field: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.extent.pow(3)];
        self.gather_into(parent, field, &mut out);
        out
    }

    /// [`Self::gather`] into caller-owned storage (no allocation).
    pub fn gather_into(&self, parent: &RealGrid, field: &[f64], out: &mut [f64]) {
        assert_eq!(field.len(), parent.len());
        let e = self.extent;
        assert_eq!(out.len(), e * e * e, "output does not match patch extent");
        let (nx, ny, nz) = parent.dims;
        let wrap = |v: i64, n: usize| -> usize { v.rem_euclid(n as i64) as usize };
        let mut idx = 0;
        for ix in 0..e {
            let px = wrap(self.origin.0 + ix as i64, nx);
            for iy in 0..e {
                let py = wrap(self.origin.1 + iy as i64, ny);
                for iz in 0..e {
                    let pz = wrap(self.origin.2 + iz as i64, nz);
                    out[idx] = field[(px * ny + py) * nz + pz];
                    idx += 1;
                }
            }
        }
    }

    /// Physical edge length of the patch (Bohr).
    pub fn edge(&self) -> f64 {
        self.grid.cell.lengths.x
    }
}

/// Cache key: (grid extent, cell edge bits) — cubic patches only.
type SolverCache = Mutex<HashMap<(usize, u64), Arc<PoissonSolver>>>;

static PATCH_SOLVER_CACHE: OnceLock<SolverCache> = OnceLock::new();

/// Fetch (or build and cache) the isolated Poisson solver for a cubic
/// patch grid. Patch shapes repeat across a pair list, and the kernel
/// table rebuild the seed paid per pair dominates small-patch solves.
pub fn isolated_patch_solver(grid: RealGrid) -> Arc<PoissonSolver> {
    let key = (grid.dims.0, grid.cell.lengths.x.to_bits());
    let cache = PATCH_SOLVER_CACHE.get_or_init(Default::default);
    if let Some(s) = cache.lock().unwrap().get(&key) {
        return Arc::clone(s);
    }
    let built = Arc::new(PoissonSolver::isolated(grid));
    Arc::clone(cache.lock().unwrap().entry(key).or_insert(built))
}

/// Reusable buffers for [`patch_pair_energy_ws`]: the two gathered
/// orbitals, their product density, and the Poisson workspace. Keep one
/// per worker thread.
#[derive(Debug, Default)]
pub struct PatchScratch {
    a: Vec<f64>,
    b: Vec<f64>,
    rho: Vec<f64>,
    poisson: PoissonWorkspace,
}

impl PatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the FFT/kernel phase timings accumulated by the embedded
    /// Poisson workspace across patched pair solves.
    pub fn take_timings(&mut self) -> crate::poisson::KernelTimings {
        self.poisson.take_timings()
    }

    fn ensure(&mut self, n: usize) {
        if self.a.len() != n {
            self.a.resize(n, 0.0);
            self.b.resize(n, 0.0);
            self.rho.resize(n, 0.0);
        }
    }
}

/// One exchange-pair term `(ij|ij)` evaluated on a pair-local patch:
/// gather both orbitals around the pair midpoint, form the pair density,
/// solve the isolated Poisson problem on the small box.
///
/// `extent` is the patch size in parent grid points; choose it to cover
/// both orbitals (`≥ (d_ij + 6σ)/h`).
pub fn patch_pair_energy(
    parent: &RealGrid,
    phi_i: &[f64],
    phi_j: &[f64],
    midpoint: Vec3,
    extent: usize,
) -> f64 {
    let mut scratch = PatchScratch::new();
    patch_pair_energy_ws(parent, phi_i, phi_j, midpoint, extent, &mut scratch)
}

/// [`patch_pair_energy`] with caller-owned scratch: the hot-loop form.
/// Uses the cached patch solver and the energy-only (forward transform
/// only) Poisson path — zero steady-state heap allocation.
pub fn patch_pair_energy_ws(
    parent: &RealGrid,
    phi_i: &[f64],
    phi_j: &[f64],
    midpoint: Vec3,
    extent: usize,
    scratch: &mut PatchScratch,
) -> f64 {
    patch_pair_energy_ws_with(
        simd::level(),
        parent,
        phi_i,
        phi_j,
        midpoint,
        extent,
        scratch,
    )
}

/// [`patch_pair_energy_ws`] at an explicit SIMD level.
#[allow(clippy::too_many_arguments)]
pub fn patch_pair_energy_ws_with(
    level: SimdLevel,
    parent: &RealGrid,
    phi_i: &[f64],
    phi_j: &[f64],
    midpoint: Vec3,
    extent: usize,
    scratch: &mut PatchScratch,
) -> f64 {
    let patch = Patch::plan(parent, midpoint, extent);
    scratch.ensure(patch.extent.pow(3));
    patch.gather_into(parent, phi_i, &mut scratch.a);
    patch.gather_into(parent, phi_j, &mut scratch.b);
    simd::mul_into_with(level, &mut scratch.rho, &scratch.a, &scratch.b);
    let solver = isolated_patch_solver(patch.grid);
    solver.exchange_pair_energy_with(level, &scratch.rho, &mut scratch.poisson)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;
    use std::f64::consts::PI;

    fn gaussian_field(grid: &RealGrid, center: Vec3, alpha: f64) -> Vec<f64> {
        let norm = (2.0 * alpha / PI).powf(0.75);
        (0..grid.len())
            .map(|i| {
                let d = grid.cell.min_image(center, grid.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect()
    }

    #[test]
    fn gather_reproduces_field_values() {
        let parent = RealGrid::cubic(Cell::cubic(16.0), 32);
        let field: Vec<f64> = (0..parent.len()).map(|i| i as f64).collect();
        let patch = Patch::plan(&parent, Vec3::splat(8.0), 8);
        let gathered = patch.gather(&parent, &field);
        assert_eq!(gathered.len(), 512);
        // Spot-check one point: patch (0,0,0) = parent at wrapped origin.
        let (nx, ny, nz) = parent.dims;
        let wrap = |v: i64, n: usize| v.rem_euclid(n as i64) as usize;
        let want = field[(wrap(patch.origin.0, nx) * ny + wrap(patch.origin.1, ny)) * nz
            + wrap(patch.origin.2, nz)];
        assert_eq!(gathered[0], want);
    }

    #[test]
    fn patch_wraps_across_the_boundary() {
        let parent = RealGrid::cubic(Cell::cubic(10.0), 20);
        let field: Vec<f64> = (0..parent.len()).map(|i| (i % 97) as f64).collect();
        // Patch centered at the cell corner must wrap cleanly.
        let patch = Patch::plan(&parent, Vec3::ZERO, 6);
        let gathered = patch.gather(&parent, &field);
        assert_eq!(patch.extent, 8); // rounded up to the FFT-friendly size
        assert_eq!(gathered.len(), 512);
        assert!(gathered.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn patch_pair_energy_matches_full_grid() {
        // Two Gaussian orbitals near the box center: the pair energy from
        // a 24-point patch matches the full 64-point isolated solve.
        let l = 24.0;
        let parent = RealGrid::cubic(Cell::cubic(l), 64);
        let c1 = Vec3::new(l / 2.0 - 1.0, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + 1.0, l / 2.0, l / 2.0);
        let alpha = 1.1;
        let phi_i = gaussian_field(&parent, c1, alpha);
        let phi_j = gaussian_field(&parent, c2, alpha);
        // Full-grid reference.
        let solver = PoissonSolver::isolated(parent);
        let rho: Vec<f64> = phi_i.iter().zip(&phi_j).map(|(a, b)| a * b).collect();
        let (want, _) = solver.exchange_pair(&rho);
        // Patch evaluation — 24³ instead of 64³ (19× fewer points).
        let got = patch_pair_energy(&parent, &phi_i, &phi_j, (c1 + c2) * 0.5, 24);
        assert!(
            approx_eq(got, want, 2e-3),
            "patch {got} vs full {want} (rel {:.1e})",
            (got - want).abs() / want
        );
        assert!(want > 0.0);
    }

    #[test]
    fn bigger_patches_converge_to_full_grid() {
        let l = 20.0;
        let parent = RealGrid::cubic(Cell::cubic(l), 64);
        let c = Vec3::splat(l / 2.0);
        let phi = gaussian_field(&parent, c, 0.9);
        let solver = PoissonSolver::isolated(parent);
        let rho: Vec<f64> = phi.iter().map(|x| x * x).collect();
        let (want, _) = solver.exchange_pair(&rho);
        let mut errs = Vec::new();
        for extent in [12usize, 20, 32] {
            let got = patch_pair_energy(&parent, &phi, &phi, c, extent);
            errs.push((got - want).abs());
        }
        assert!(errs[2] < errs[0], "{errs:?}");
        assert!(errs[2] / want < 1e-3, "{errs:?}");
    }

    #[test]
    fn patch_clamps_to_parent_size() {
        let parent = RealGrid::cubic(Cell::cubic(8.0), 16);
        let patch = Patch::plan(&parent, Vec3::splat(4.0), 99);
        assert_eq!(patch.extent, 16);
        assert!(approx_eq(patch.edge(), 8.0, 1e-12));
    }

    #[test]
    fn patch_solver_is_cached_per_shape() {
        let parent = RealGrid::cubic(Cell::cubic(16.0), 32);
        let p1 = Patch::plan(&parent, Vec3::splat(5.0), 8);
        let p2 = Patch::plan(&parent, Vec3::splat(11.0), 8);
        let s1 = isolated_patch_solver(p1.grid);
        let s2 = isolated_patch_solver(p2.grid);
        assert!(
            Arc::ptr_eq(&s1, &s2),
            "same-shape patches must share a solver"
        );
        let p3 = Patch::plan(&parent, Vec3::splat(5.0), 16);
        let s3 = isolated_patch_solver(p3.grid);
        assert!(!Arc::ptr_eq(&s1, &s3), "different shapes must not collide");
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let l = 18.0;
        let parent = RealGrid::cubic(Cell::cubic(l), 36);
        let c1 = Vec3::new(l / 2.0 - 0.8, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + 0.8, l / 2.0, l / 2.0);
        let phi_i = gaussian_field(&parent, c1, 1.0);
        let phi_j = gaussian_field(&parent, c2, 1.0);
        let mid = (c1 + c2) * 0.5;
        let want = patch_pair_energy(&parent, &phi_i, &phi_j, mid, 16);
        let mut scratch = PatchScratch::new();
        for _ in 0..2 {
            let got = patch_pair_energy_ws(&parent, &phi_i, &phi_j, mid, 16, &mut scratch);
            assert!(approx_eq(got, want, 1e-12), "{got} vs {want}");
        }
    }
}
