//! Pair-local grid patches — the compact representation at the heart of
//! the paper's time-to-solution win.
//!
//! Localized orbital pairs have compact support: instead of transforming
//! the full simulation cell per pair, a small cubic patch covering both
//! orbitals is cut out of the parent grid (same spacing, periodic wrap)
//! and the pair Poisson problem is solved on the patch with the isolated
//! kernel. The FFT shrinks from `N_cell³` to `N_patch³` — the ~10× the
//! abstract reports. This module *executes* that mechanism; the cost model
//! in `liair-core::simulate` prices it at scale.

use crate::grid::RealGrid;
use crate::poisson::PoissonSolver;
use liair_basis::Cell;
use liair_math::Vec3;

/// A cubic patch cut from a parent grid.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Grid-index origin in the parent grid (corner, before wrapping).
    pub origin: (i64, i64, i64),
    /// Points per axis.
    pub extent: usize,
    /// The patch's own grid (isolated cell of matching physical size).
    pub grid: RealGrid,
}

impl Patch {
    /// Plan a patch of at least `extent³` parent-spacing points whose
    /// *center* lands nearest to `center`. The extent is rounded up to the
    /// next power of two (the radix-2 FFT fast path — a non-power-of-two
    /// patch would fall into the ~4× slower Bluestein transform and waste
    /// the compact representation's advantage) and clamped to the parent.
    pub fn plan(parent: &RealGrid, center: Vec3, extent: usize) -> Patch {
        let (nx, ny, nz) = parent.dims;
        assert_eq!(nx, ny, "patches require cubic parent grids");
        assert_eq!(ny, nz, "patches require cubic parent grids");
        let extent = extent.max(2).next_power_of_two().min(nx);
        let h = parent.spacing();
        let origin = (
            (center.x / h.x).round() as i64 - extent as i64 / 2,
            (center.y / h.y).round() as i64 - extent as i64 / 2,
            (center.z / h.z).round() as i64 - extent as i64 / 2,
        );
        let cell = Cell::cubic(extent as f64 * h.x);
        Patch { origin, extent, grid: RealGrid::cubic(cell, extent) }
    }

    /// Gather a field from the parent grid into this patch (periodic wrap).
    pub fn gather(&self, parent: &RealGrid, field: &[f64]) -> Vec<f64> {
        assert_eq!(field.len(), parent.len());
        let (nx, ny, nz) = parent.dims;
        let e = self.extent;
        let mut out = vec![0.0; e * e * e];
        let wrap = |v: i64, n: usize| -> usize { v.rem_euclid(n as i64) as usize };
        let mut idx = 0;
        for ix in 0..e {
            let px = wrap(self.origin.0 + ix as i64, nx);
            for iy in 0..e {
                let py = wrap(self.origin.1 + iy as i64, ny);
                for iz in 0..e {
                    let pz = wrap(self.origin.2 + iz as i64, nz);
                    out[idx] = field[(px * ny + py) * nz + pz];
                    idx += 1;
                }
            }
        }
        out
    }

    /// Physical edge length of the patch (Bohr).
    pub fn edge(&self) -> f64 {
        self.grid.cell.lengths.x
    }
}

/// One exchange-pair term `(ij|ij)` evaluated on a pair-local patch:
/// gather both orbitals around the pair midpoint, form the pair density,
/// solve the isolated Poisson problem on the small box.
///
/// `extent` is the patch size in parent grid points; choose it to cover
/// both orbitals (`≥ (d_ij + 6σ)/h`).
pub fn patch_pair_energy(
    parent: &RealGrid,
    phi_i: &[f64],
    phi_j: &[f64],
    midpoint: Vec3,
    extent: usize,
) -> f64 {
    let patch = Patch::plan(parent, midpoint, extent);
    let a = patch.gather(parent, phi_i);
    let b = patch.gather(parent, phi_j);
    let rho: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
    let solver = PoissonSolver::isolated(patch.grid);
    let (e, _) = solver.exchange_pair(&rho);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;
    use std::f64::consts::PI;

    fn gaussian_field(grid: &RealGrid, center: Vec3, alpha: f64) -> Vec<f64> {
        let norm = (2.0 * alpha / PI).powf(0.75);
        (0..grid.len())
            .map(|i| {
                let d = grid.cell.min_image(center, grid.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect()
    }

    #[test]
    fn gather_reproduces_field_values() {
        let parent = RealGrid::cubic(Cell::cubic(16.0), 32);
        let field: Vec<f64> = (0..parent.len()).map(|i| i as f64).collect();
        let patch = Patch::plan(&parent, Vec3::splat(8.0), 8);
        let gathered = patch.gather(&parent, &field);
        assert_eq!(gathered.len(), 512);
        // Spot-check one point: patch (0,0,0) = parent at wrapped origin.
        let (nx, ny, nz) = parent.dims;
        let wrap = |v: i64, n: usize| v.rem_euclid(n as i64) as usize;
        let want = field[(wrap(patch.origin.0, nx) * ny + wrap(patch.origin.1, ny)) * nz
            + wrap(patch.origin.2, nz)];
        assert_eq!(gathered[0], want);
    }

    #[test]
    fn patch_wraps_across_the_boundary() {
        let parent = RealGrid::cubic(Cell::cubic(10.0), 20);
        let field: Vec<f64> = (0..parent.len()).map(|i| (i % 97) as f64).collect();
        // Patch centered at the cell corner must wrap cleanly.
        let patch = Patch::plan(&parent, Vec3::ZERO, 6);
        let gathered = patch.gather(&parent, &field);
        assert_eq!(patch.extent, 8); // rounded up to the FFT-friendly size
        assert_eq!(gathered.len(), 512);
        assert!(gathered.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn patch_pair_energy_matches_full_grid() {
        // Two Gaussian orbitals near the box center: the pair energy from
        // a 24-point patch matches the full 64-point isolated solve.
        let l = 24.0;
        let parent = RealGrid::cubic(Cell::cubic(l), 64);
        let c1 = Vec3::new(l / 2.0 - 1.0, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + 1.0, l / 2.0, l / 2.0);
        let alpha = 1.1;
        let phi_i = gaussian_field(&parent, c1, alpha);
        let phi_j = gaussian_field(&parent, c2, alpha);
        // Full-grid reference.
        let solver = PoissonSolver::isolated(parent);
        let rho: Vec<f64> = phi_i.iter().zip(&phi_j).map(|(a, b)| a * b).collect();
        let (want, _) = solver.exchange_pair(&rho);
        // Patch evaluation — 24³ instead of 64³ (19× fewer points).
        let got = patch_pair_energy(&parent, &phi_i, &phi_j, (c1 + c2) * 0.5, 24);
        assert!(
            approx_eq(got, want, 2e-3),
            "patch {got} vs full {want} (rel {:.1e})",
            (got - want).abs() / want
        );
        assert!(want > 0.0);
    }

    #[test]
    fn bigger_patches_converge_to_full_grid() {
        let l = 20.0;
        let parent = RealGrid::cubic(Cell::cubic(l), 64);
        let c = Vec3::splat(l / 2.0);
        let phi = gaussian_field(&parent, c, 0.9);
        let solver = PoissonSolver::isolated(parent);
        let rho: Vec<f64> = phi.iter().map(|x| x * x).collect();
        let (want, _) = solver.exchange_pair(&rho);
        let mut errs = Vec::new();
        for extent in [12usize, 20, 32] {
            let got = patch_pair_energy(&parent, &phi, &phi, c, extent);
            errs.push((got - want).abs());
        }
        assert!(errs[2] < errs[0], "{errs:?}");
        assert!(errs[2] / want < 1e-3, "{errs:?}");
    }

    #[test]
    fn patch_clamps_to_parent_size() {
        let parent = RealGrid::cubic(Cell::cubic(8.0), 16);
        let patch = Patch::plan(&parent, Vec3::splat(4.0), 99);
        assert_eq!(patch.extent, 16);
        assert!(approx_eq(patch.edge(), 8.0, 1e-12));
    }
}
