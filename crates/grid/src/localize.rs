//! Foster–Boys orbital localization.
//!
//! The paper's pair screening relies on *localized* occupied orbitals
//! (maximally-localized Wannier functions in the condensed phase): pairs of
//! orbitals whose centers are far apart contribute negligibly to the exact
//! exchange and are dropped. Here localization maximizes the Boys
//! functional `D = Σ_i |⟨i|r|i⟩|²` by Jacobi 2×2 rotations over occupied
//! orbital pairs, using the analytic dipole matrices from
//! `liair-integrals`. Centers and spreads feed `liair-core`'s screening.

use liair_basis::Basis;
use liair_integrals::{dipole_matrices, second_moment_matrices};
use liair_math::{Mat, Vec3};

/// Result of a localization: rotated occupied coefficients plus the
/// per-orbital centers `⟨r⟩` and spreads `σ = √(⟨r²⟩ − ⟨r⟩²)`.
#[derive(Debug, Clone)]
pub struct Localization {
    /// Localized occupied coefficients (`nao × nocc`).
    pub c_loc: Mat,
    /// Orbital centroids (Bohr).
    pub centers: Vec<Vec3>,
    /// Orbital spreads (Bohr).
    pub spreads: Vec<f64>,
    /// Number of Jacobi sweeps executed.
    pub sweeps: usize,
}

/// Localize the first `nocc` columns of `c` by Foster–Boys Jacobi sweeps.
///
/// Converges when one full sweep improves the Boys functional by less than
/// `1e-10` (relative), or after `max_sweeps`.
pub fn foster_boys(basis: &Basis, c: &Mat, nocc: usize, max_sweeps: usize) -> Localization {
    assert!(nocc <= c.ncols());
    let nao = basis.nao();
    assert_eq!(c.nrows(), nao);
    // Occupied block.
    let mut c_loc = Mat::zeros(nao, nocc);
    for mu in 0..nao {
        for k in 0..nocc {
            c_loc[(mu, k)] = c[(mu, k)];
        }
    }
    let d_ao = dipole_matrices(basis, Vec3::ZERO);
    // MO-basis dipole matrices X_k = Cᵀ D_k C (nocc × nocc).
    let mut x: Vec<Mat> = d_ao
        .iter()
        .map(|d| c_loc.transpose().matmul(d).matmul(&c_loc))
        .collect();

    let boys = |x: &[Mat]| -> f64 {
        (0..nocc)
            .map(|i| x.iter().map(|m| m[(i, i)] * m[(i, i)]).sum::<f64>())
            .sum()
    };

    let mut sweeps = 0;
    let mut prev = boys(&x);
    for _ in 0..max_sweeps {
        sweeps += 1;
        for s in 0..nocc {
            for t in (s + 1)..nocc {
                // Pairwise Boys update (Edmiston–Ruedenberg style 2×2).
                let mut a = 0.0;
                let mut b = 0.0;
                for m in &x {
                    let xst = m[(s, t)];
                    let diff = m[(s, s)] - m[(t, t)];
                    a += xst * xst - 0.25 * diff * diff;
                    b += xst * diff;
                }
                if (a * a + b * b).sqrt() < 1e-14 {
                    continue;
                }
                // Maximizing angle: 4α = atan2(B, −A).
                let alpha = 0.25 * b.atan2(-a);
                let (sn, cs) = alpha.sin_cos();
                // Rotate coefficient columns s, t.
                for mu in 0..nao {
                    let vs = c_loc[(mu, s)];
                    let vt = c_loc[(mu, t)];
                    c_loc[(mu, s)] = cs * vs + sn * vt;
                    c_loc[(mu, t)] = -sn * vs + cs * vt;
                }
                // Rotate X matrices congruently (rows then columns).
                for m in x.iter_mut() {
                    for k in 0..nocc {
                        let vs = m[(s, k)];
                        let vt = m[(t, k)];
                        m[(s, k)] = cs * vs + sn * vt;
                        m[(t, k)] = -sn * vs + cs * vt;
                    }
                    for k in 0..nocc {
                        let vs = m[(k, s)];
                        let vt = m[(k, t)];
                        m[(k, s)] = cs * vs + sn * vt;
                        m[(k, t)] = -sn * vs + cs * vt;
                    }
                }
            }
        }
        let cur = boys(&x);
        if cur - prev <= 1e-10 * (1.0 + prev.abs()) {
            prev = cur;
            break;
        }
        prev = cur;
    }
    let _ = prev;

    // Centers from MO dipole diagonals; spreads from second moments.
    let q_ao = second_moment_matrices(basis, Vec3::ZERO);
    let mut centers = Vec::with_capacity(nocc);
    let mut spreads = Vec::with_capacity(nocc);
    for i in 0..nocc {
        let center = Vec3::new(x[0][(i, i)], x[1][(i, i)], x[2][(i, i)]);
        // ⟨r²⟩_ii = Σ_k (Cᵀ Q_k C)_ii — computed directly on column i.
        let mut r2 = 0.0;
        for q in &q_ao {
            for mu in 0..nao {
                for nu in 0..nao {
                    r2 += c_loc[(mu, i)] * q[(mu, nu)] * c_loc[(nu, i)];
                }
            }
        }
        let var = (r2 - center.norm_sqr()).max(0.0);
        centers.push(center);
        spreads.push(var.sqrt());
    }
    Localization {
        c_loc,
        centers,
        spreads,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::{systems, Element, Molecule};
    use liair_integrals::overlap_matrix;
    use liair_math::linalg::sym_inv_sqrt;

    /// Two H atoms far apart; start from delocalized ± combinations and
    /// check that localization recovers one orbital per atom.
    #[test]
    fn separates_stretched_h2_orbitals() {
        let mut mol = Molecule::new();
        mol.push(Element::H, liair_math::Vec3::ZERO);
        mol.push(Element::H, liair_math::Vec3::new(8.0, 0.0, 0.0));
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        // Löwdin-orthonormalized AOs, then mix them maximally.
        let x = sym_inv_sqrt(&s);
        let mix = {
            let r = 1.0 / (2.0f64).sqrt();
            Mat::from_vec(2, 2, vec![r, r, r, -r])
        };
        let c = x.matmul(&mix); // two delocalized orthonormal orbitals
        let loc = foster_boys(&basis, &c, 2, 50);
        // After localization the two centers sit near x = 0 and x = 8.
        let mut xs: Vec<f64> = loc.centers.iter().map(|c| c.x).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0].abs() < 0.2, "center 0 at {}", xs[0]);
        assert!((xs[1] - 8.0).abs() < 0.2, "center 1 at {}", xs[1]);
        // Spreads are about one Bohr for an STO-3G H 1s.
        for &sp in &loc.spreads {
            assert!(sp > 0.3 && sp < 3.0, "spread {sp}");
        }
    }

    #[test]
    fn localization_preserves_orthonormality() {
        let mut mol = Molecule::new();
        mol.push(Element::H, liair_math::Vec3::ZERO);
        mol.push(Element::H, liair_math::Vec3::new(6.0, 0.0, 0.0));
        mol.push(Element::H, liair_math::Vec3::new(0.0, 6.0, 0.0));
        mol.push(Element::H, liair_math::Vec3::new(6.0, 6.0, 0.0));
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        let c = sym_inv_sqrt(&s); // orthonormal set spanning everything
        let loc = foster_boys(&basis, &c, 4, 50);
        let ctsc = loc.c_loc.transpose().matmul(&s).matmul(&loc.c_loc);
        let err = ctsc.sub(&Mat::identity(4)).fro_norm();
        assert!(err < 1e-9, "orthonormality error {err}");
    }

    #[test]
    fn boys_functional_never_decreases() {
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        let c = sym_inv_sqrt(&s);
        let d = liair_integrals::dipole_matrices(&basis, liair_math::Vec3::ZERO);
        let boys_of = |cm: &Mat, n: usize| -> f64 {
            (0..n)
                .map(|i| {
                    d.iter()
                        .map(|dm| {
                            let mut v = 0.0;
                            for mu in 0..basis.nao() {
                                for nu in 0..basis.nao() {
                                    v += cm[(mu, i)] * dm[(mu, nu)] * cm[(nu, i)];
                                }
                            }
                            v * v
                        })
                        .sum::<f64>()
                })
                .sum()
        };
        let before = boys_of(&c, 5);
        let loc = foster_boys(&basis, &c, 5, 60);
        let after = boys_of(&loc.c_loc, 5);
        assert!(after >= before - 1e-10, "{after} < {before}");
    }

    #[test]
    fn single_orbital_is_noop() {
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let s = overlap_matrix(&basis);
        let norm = 1.0 / (2.0 + 2.0 * s[(0, 1)]).sqrt();
        let mut c = Mat::zeros(2, 1);
        c[(0, 0)] = norm;
        c[(1, 0)] = norm;
        let loc = foster_boys(&basis, &c, 1, 10);
        // One orbital: nothing to rotate; center at the bond midpoint.
        assert!((loc.centers[0].x - 0.7).abs() < 1e-8);
        assert!(loc.c_loc.sub(&c).fro_norm() < 1e-12);
    }
}
