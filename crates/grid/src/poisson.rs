//! FFT-based Poisson solvers.
//!
//! The Hartree potential of a density on the grid is obtained by one
//! forward 3-D FFT, a pointwise multiply with the reciprocal-space Coulomb
//! kernel, and one inverse FFT — exactly the per-pair work unit of the
//! paper's exact-exchange algorithm. Two kernels are provided:
//!
//! * [`CoulombKernel::Periodic`] — `v(G) = 4π/G²` with the `G = 0` term
//!   dropped (jellium convention), for condensed-phase cells;
//! * [`CoulombKernel::SphericalCutoff`] — `v(G) = 4π(1 − cos(G·R_c))/G²`,
//!   `v(0) = 2π R_c²`, which reproduces the *isolated* `1/r` interaction
//!   exactly for separations below `R_c`; used to validate the grid path
//!   against analytic Gaussian integrals.

use crate::grid::RealGrid;
use liair_math::fft3::{fft3, ifft3};
use liair_math::{Array3, Complex64};
use std::f64::consts::PI;

/// Which reciprocal-space Coulomb interaction to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoulombKernel {
    /// Fully periodic `4π/G²` (neutralizing-background `G = 0`).
    Periodic,
    /// Spherically truncated interaction with cutoff radius `R_c` (Bohr).
    SphericalCutoff(f64),
}

/// A planned Poisson solver: precomputed kernel table over FFT bins.
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    grid: RealGrid,
    kernel: Vec<f64>,
}

impl PoissonSolver {
    /// Precompute the kernel for a grid.
    pub fn new(grid: RealGrid, kernel: CoulombKernel) -> Self {
        let (nx, ny, nz) = grid.dims;
        let mut table = vec![0.0; grid.len()];
        let mut idx = 0;
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let g = grid.g_of_bin(i, j, k);
                    let g2 = g.norm_sqr();
                    table[idx] = match kernel {
                        CoulombKernel::Periodic => {
                            if g2 < 1e-12 {
                                0.0
                            } else {
                                4.0 * PI / g2
                            }
                        }
                        CoulombKernel::SphericalCutoff(rc) => {
                            if g2 < 1e-12 {
                                2.0 * PI * rc * rc
                            } else {
                                4.0 * PI * (1.0 - (g2.sqrt() * rc).cos()) / g2
                            }
                        }
                    };
                    idx += 1;
                }
            }
        }
        Self { grid, kernel: table }
    }

    /// A solver with the conventional isolated-system choice
    /// `R_c = L_min/2`.
    pub fn isolated(grid: RealGrid) -> Self {
        let rc = grid.cell.min_half_edge();
        Self::new(grid, CoulombKernel::SphericalCutoff(rc))
    }

    /// The grid this solver was planned for.
    pub fn grid(&self) -> &RealGrid {
        &self.grid
    }

    /// Hartree potential `v(r) = ∫ ρ(r') v_C(r, r') dr'` of a real density.
    pub fn solve(&self, rho: &[f64]) -> Vec<f64> {
        assert_eq!(rho.len(), self.grid.len());
        let mut work = Array3::from_vec(
            self.grid.dims,
            rho.iter().map(|&r| Complex64::real(r)).collect(),
        );
        fft3(&mut work);
        // With ρ(G) = (dV/V)·ρ̂_k = ρ̂_k/N and the 1/N carried by the
        // inverse FFT, the synthesis v_j = Σ_G ṽ(G) ρ(G) e^{iG·r_j} reduces
        // to a bare pointwise kernel multiply.
        for (z, &k) in work.as_mut_slice().iter_mut().zip(&self.kernel) {
            *z = z.scale(k);
        }
        ifft3(&mut work);
        work.as_slice().iter().map(|z| z.re).collect()
    }

    /// Electrostatic interaction energy `∬ ρ₁(r) ρ₂(r') v_C dr dr'`.
    pub fn interaction_energy(&self, rho1: &[f64], rho2: &[f64]) -> f64 {
        let v2 = self.solve(rho2);
        self.grid.inner(rho1, &v2)
    }

    /// Hartree (self-interaction) energy `½ ∬ ρ ρ' v_C`.
    pub fn hartree_energy(&self, rho: &[f64]) -> f64 {
        0.5 * self.interaction_energy(rho, rho)
    }

    /// The exchange-pair work unit of the paper: given the pair density
    /// `ρ_ij = φ_i φ_j`, return `(ij|ij) = ∬ ρ_ij ρ_ij v_C` along with the
    /// pair potential (callers that assemble exchange operators reuse it).
    pub fn exchange_pair(&self, rho_ij: &[f64]) -> (f64, Vec<f64>) {
        let v = self.solve(rho_ij);
        (self.grid.inner(rho_ij, &v), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::Cell;
    use liair_math::special::erf;
    use liair_math::{approx_eq, Vec3};

    fn gaussian_density(grid: &RealGrid, center: Vec3, alpha: f64) -> Vec<f64> {
        let norm = (alpha / PI).powf(1.5);
        (0..grid.len())
            .map(|i| {
                let d = grid.cell.min_image(center, grid.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect()
    }

    #[test]
    fn periodic_plane_wave_eigenfunction() {
        // ρ = cos(G·x) ⇒ v = (4π/G²)cos(G·x) for the periodic kernel.
        let l = 7.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 16);
        let gx = 2.0 * PI / l;
        let rho: Vec<f64> =
            (0..grid.len()).map(|i| (gx * grid.point_flat(i).x).cos()).collect();
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let v = solver.solve(&rho);
        let scale = 4.0 * PI / (gx * gx);
        for i in (0..grid.len()).step_by(97) {
            let want = scale * (gx * grid.point_flat(i).x).cos();
            assert!(approx_eq(v[i], want, 1e-9), "point {i}: {} vs {want}", v[i]);
        }
    }

    #[test]
    fn isolated_gaussian_self_energy() {
        // Hartree energy of a unit Gaussian charge: ½·√(2α/π)·2 = √(α/2π)·…
        // interaction of the Gaussian with itself is 2√(α/(2π))·…; the
        // closed form is E_H = ½·√(2α/π).
        let l = 24.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 64);
        let alpha = 1.1;
        let rho = gaussian_density(&grid, Vec3::splat(l / 2.0), alpha);
        let solver = PoissonSolver::isolated(grid);
        let got = solver.hartree_energy(&rho);
        let want = 0.5 * (2.0 * alpha / PI).sqrt();
        assert!(approx_eq(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn isolated_two_gaussian_interaction_is_erf_over_r() {
        // Two unit Gaussian charges, exponents α, separation R:
        // E = erf(√(α/2)·R)/R.
        let l = 28.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 72);
        let alpha = 0.9;
        let r = 3.0;
        let c1 = Vec3::new(l / 2.0 - r / 2.0, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + r / 2.0, l / 2.0, l / 2.0);
        let rho1 = gaussian_density(&grid, c1, alpha);
        let rho2 = gaussian_density(&grid, c2, alpha);
        let solver = PoissonSolver::isolated(grid);
        let got = solver.interaction_energy(&rho1, &rho2);
        let want = erf((alpha / 2.0).sqrt() * r) / r;
        assert!(approx_eq(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn solver_is_linear() {
        let grid = RealGrid::cubic(Cell::cubic(9.0), 12);
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let mut rng = liair_math::rng::SplitMix64::new(4);
        let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - 3.0 * y).collect();
        let va = solver.solve(&a);
        let vb = solver.solve(&b);
        let vs = solver.solve(&sum);
        for i in (0..grid.len()).step_by(53) {
            assert!(approx_eq(vs[i], 2.0 * va[i] - 3.0 * vb[i], 1e-10));
        }
    }

    #[test]
    fn interaction_energy_is_symmetric() {
        let grid = RealGrid::cubic(Cell::cubic(15.0), 24);
        let solver = PoissonSolver::isolated(grid);
        let rho1 = gaussian_density(&grid, Vec3::new(6.0, 7.5, 7.5), 0.7);
        let rho2 = gaussian_density(&grid, Vec3::new(9.0, 7.5, 7.5), 1.4);
        let e12 = solver.interaction_energy(&rho1, &rho2);
        let e21 = solver.interaction_energy(&rho2, &rho1);
        assert!(approx_eq(e12, e21, 1e-10));
        assert!(e12 > 0.0);
    }

    #[test]
    fn exchange_pair_energy_is_nonnegative() {
        // (ij|ij) is a self-repulsion of the pair density — always ≥ 0.
        let grid = RealGrid::cubic(Cell::cubic(12.0), 24);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = liair_math::rng::SplitMix64::new(8);
        let rho: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let (e, v) = solver.exchange_pair(&rho);
        assert!(e >= 0.0);
        assert_eq!(v.len(), grid.len());
    }
}
