//! FFT-based Poisson solvers.
//!
//! The Hartree potential of a density on the grid is obtained by one
//! forward 3-D FFT, a pointwise multiply with the reciprocal-space Coulomb
//! kernel, and one inverse FFT — exactly the per-pair work unit of the
//! paper's exact-exchange algorithm. Two kernels are provided:
//!
//! * [`CoulombKernel::Periodic`] — `v(G) = 4π/G²` with the `G = 0` term
//!   dropped (jellium convention), for condensed-phase cells;
//! * [`CoulombKernel::SphericalCutoff`] — `v(G) = 4π(1 − cos(G·R_c))/G²`,
//!   `v(0) = 2π R_c²`, which reproduces the *isolated* `1/r` interaction
//!   exactly for separations below `R_c`; used to validate the grid path
//!   against analytic Gaussian integrals.
//!
//! Because every density here is real, the solver works on the Hermitian
//! half-spectrum (`nz/2 + 1` bins along `z`) via `liair_math::rfft`: the
//! kernel table is laid out once over the half-spectrum bins, the r2c/c2r
//! transforms do roughly half the work of the seed's complex path, and the
//! hot-loop entry points ([`PoissonSolver::solve_into`],
//! [`PoissonSolver::exchange_pair_energy`],
//! [`PoissonSolver::exchange_pair_energy_batched`]) run against a caller
//! owned [`PoissonWorkspace`] so steady-state pair loops perform **zero**
//! heap allocations.
//!
//! Energy-only callers skip the inverse transform entirely: by Parseval,
//! `(ij|ij) = (dV/N) Σ_k v(G_k) |ρ̂_k|²`, summed over half-spectrum bins
//! with weight 2 off the self-conjugate planes (valid because
//! `v(−G) = v(G)`).

use crate::grid::RealGrid;
use liair_math::fft3::fft3_serial_slice_with;
use liair_math::rfft::{half_len, irfft3, irfft3_into_with, rfft3, rfft3_into_with};
use liair_math::simd::{self, SimdLevel};
use liair_math::Complex64;
use std::f64::consts::PI;

/// Which reciprocal-space Coulomb interaction to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoulombKernel {
    /// Fully periodic `4π/G²` (neutralizing-background `G = 0`).
    Periodic,
    /// Spherically truncated interaction with cutoff radius `R_c` (Bohr).
    SphericalCutoff(f64),
}

impl CoulombKernel {
    #[inline]
    fn eval(self, g2: f64) -> f64 {
        match self {
            CoulombKernel::Periodic => {
                if g2 < 1e-12 {
                    0.0
                } else {
                    4.0 * PI / g2
                }
            }
            CoulombKernel::SphericalCutoff(rc) => {
                if g2 < 1e-12 {
                    2.0 * PI * rc * rc
                } else {
                    4.0 * PI * (1.0 - (g2.sqrt() * rc).cos()) / g2
                }
            }
        }
    }
}

/// Wall time a workspace has spent in the two compute phases of the pair
/// kernel: the FFT transforms and the reciprocal-space kernel work
/// (pointwise multiply / Parseval contraction / spectrum untangle).
/// Accumulated into the owning [`PoissonWorkspace`] by every instrumented
/// solve; drained by the exchange engine into its per-build profile.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KernelTimings {
    /// Seconds spent in forward/inverse FFTs.
    pub fft_s: f64,
    /// Seconds spent in kernel multiplies / energy contractions.
    pub kernel_s: f64,
}

impl KernelTimings {
    /// Add another accumulator into this one.
    pub fn merge(&mut self, other: KernelTimings) {
        self.fft_s += other.fft_s;
        self.kernel_s += other.kernel_s;
    }
}

/// Reusable scratch for the solver's zero-allocation entry points. One per
/// worker thread (grow-only buffers sized on first use); a single
/// workspace serves any number of solves on any grids.
#[derive(Debug, Default)]
pub struct PoissonWorkspace {
    /// Half-spectrum buffer for r2c/c2r solves.
    half: Vec<Complex64>,
    /// Full complex buffer for the two-pair batched transform.
    full: Vec<Complex64>,
    /// Real output field (potential) for `solve_into`.
    v: Vec<f64>,
    /// Phase timings accumulated across all solves through this workspace.
    timings: KernelTimings,
}

impl PoissonWorkspace {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the accumulated phase timings, resetting them to zero.
    pub fn take_timings(&mut self) -> KernelTimings {
        std::mem::take(&mut self.timings)
    }

    fn ensure_half(&mut self, dims: (usize, usize, usize)) {
        let need = half_len(dims);
        if self.half.len() != need {
            self.half.resize(need, Complex64::ZERO);
        }
    }

    fn ensure_full(&mut self, dims: (usize, usize, usize)) {
        let need = dims.0 * dims.1 * dims.2;
        if self.full.len() != need {
            self.full.resize(need, Complex64::ZERO);
        }
    }

    fn ensure_v(&mut self, n: usize) {
        if self.v.len() != n {
            self.v.resize(n, 0.0);
        }
    }
}

/// A planned Poisson solver: precomputed kernel tables over FFT bins.
#[derive(Debug, Clone)]
pub struct PoissonSolver {
    grid: RealGrid,
    /// Kernel over the full `(nx, ny, nz)` bin set (batched c2c path and
    /// the seed-convention reference).
    kernel: Vec<f64>,
    /// Kernel over the Hermitian half-spectrum `(nx, ny, nz/2 + 1)`.
    kernel_half: Vec<f64>,
    /// Half-spectrum kernel with the Hermitian double-count weight folded
    /// in: `w·v(G)` with `w = 1` on the self-conjugate z-planes and `w = 2`
    /// elsewhere. Multiplying by `w ∈ {1, 2}` is exact, so the energy
    /// contraction over this table reproduces the unfolded
    /// `w·(v·|ρ̂|²)` loop bit for bit while exposing one flat
    /// weighted-sum that the SIMD layer can consume directly.
    kernel_half_weighted: Vec<f64>,
}

impl PoissonSolver {
    /// Precompute the kernel tables for a grid.
    pub fn new(grid: RealGrid, kernel: CoulombKernel) -> Self {
        let (nx, ny, nz) = grid.dims;
        let nzh = nz / 2 + 1;
        let mut table = vec![0.0; grid.len()];
        let mut table_half = vec![0.0; nx * ny * nzh];
        let mut idx = 0;
        for i in 0..nx {
            for j in 0..ny {
                for k in 0..nz {
                    let g2 = grid.g_of_bin(i, j, k).norm_sqr();
                    table[idx] = kernel.eval(g2);
                    if k < nzh {
                        // Half-spectrum bins share the full-bin frequency
                        // mapping for iz ≤ nz/2.
                        table_half[(i * ny + j) * nzh + k] = table[idx];
                    }
                    idx += 1;
                }
            }
        }
        let nyquist = if nz.is_multiple_of(2) {
            nzh - 1
        } else {
            usize::MAX
        };
        let table_weighted: Vec<f64> = table_half
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let iz = i % nzh;
                // ×2 is exact, so folding the weight in here keeps the
                // Parseval contraction bit-identical to the seed loop.
                if iz == 0 || iz == nyquist {
                    v
                } else {
                    2.0 * v
                }
            })
            .collect();
        Self {
            grid,
            kernel: table,
            kernel_half: table_half,
            kernel_half_weighted: table_weighted,
        }
    }

    /// A solver with the conventional isolated-system choice
    /// `R_c = L_min/2`.
    pub fn isolated(grid: RealGrid) -> Self {
        let rc = grid.cell.min_half_edge();
        Self::new(grid, CoulombKernel::SphericalCutoff(rc))
    }

    /// The grid this solver was planned for.
    pub fn grid(&self) -> &RealGrid {
        &self.grid
    }

    /// Hartree potential `v(r) = ∫ ρ(r') v_C(r, r') dr'` of a real density
    /// (threaded r2c path; allocates the result).
    pub fn solve(&self, rho: &[f64]) -> Vec<f64> {
        assert_eq!(rho.len(), self.grid.len());
        let mut half = rfft3(rho, self.grid.dims);
        // With ρ(G) = (dV/V)·ρ̂_k = ρ̂_k/N and the 1/N carried by the
        // inverse FFT, the synthesis v_j = Σ_G ṽ(G) ρ(G) e^{iG·r_j} reduces
        // to a bare pointwise kernel multiply.
        self.apply_kernel_half(half.as_mut_slice());
        irfft3(half, self.grid.dims)
    }

    /// [`Self::solve`] on the calling thread with caller-owned scratch:
    /// no rayon, zero steady-state heap allocation. Returns the potential
    /// borrowed from the workspace.
    pub fn solve_into<'w>(&self, rho: &[f64], ws: &'w mut PoissonWorkspace) -> &'w [f64] {
        self.solve_into_with(simd::level(), rho, ws)
    }

    /// [`Self::solve_into`] at an explicit SIMD level.
    pub fn solve_into_with<'w>(
        &self,
        level: SimdLevel,
        rho: &[f64],
        ws: &'w mut PoissonWorkspace,
    ) -> &'w [f64] {
        assert_eq!(rho.len(), self.grid.len());
        ws.ensure_half(self.grid.dims);
        ws.ensure_v(self.grid.len());
        let t0 = std::time::Instant::now();
        rfft3_into_with(level, rho, self.grid.dims, &mut ws.half);
        let t1 = std::time::Instant::now();
        simd::scale_by_table_with(level, &mut ws.half, &self.kernel_half);
        let t2 = std::time::Instant::now();
        irfft3_into_with(level, &mut ws.half, self.grid.dims, &mut ws.v);
        ws.timings.fft_s += (t1 - t0).as_secs_f64() + t2.elapsed().as_secs_f64();
        ws.timings.kernel_s += (t2 - t1).as_secs_f64();
        &ws.v
    }

    #[inline]
    fn apply_kernel_half(&self, half: &mut [Complex64]) {
        simd::scale_by_table(half, &self.kernel_half);
    }

    /// Electrostatic interaction energy `∬ ρ₁(r) ρ₂(r') v_C dr dr'`.
    pub fn interaction_energy(&self, rho1: &[f64], rho2: &[f64]) -> f64 {
        let v2 = self.solve(rho2);
        self.grid.inner(rho1, &v2)
    }

    /// Hartree (self-interaction) energy `½ ∬ ρ ρ' v_C`.
    pub fn hartree_energy(&self, rho: &[f64]) -> f64 {
        0.5 * self.interaction_energy(rho, rho)
    }

    /// The exchange-pair work unit of the paper: given the pair density
    /// `ρ_ij = φ_i φ_j`, return `(ij|ij) = ∬ ρ_ij ρ_ij v_C` along with the
    /// pair potential (callers that assemble exchange operators reuse it).
    pub fn exchange_pair(&self, rho_ij: &[f64]) -> (f64, Vec<f64>) {
        let v = self.solve(rho_ij);
        (self.grid.inner(rho_ij, &v), v)
    }

    /// Energy-only exchange pair term: one forward r2c transform, no
    /// inverse, no allocation. By Parseval,
    /// `(ij|ij) = (dV/N) Σ_k v(G_k) |ρ̂_k|²` over half-spectrum bins with
    /// weight 2 off the self-conjugate z-planes.
    pub fn exchange_pair_energy(&self, rho_ij: &[f64], ws: &mut PoissonWorkspace) -> f64 {
        self.exchange_pair_energy_with(simd::level(), rho_ij, ws)
    }

    /// [`Self::exchange_pair_energy`] at an explicit SIMD level.
    pub fn exchange_pair_energy_with(
        &self,
        level: SimdLevel,
        rho_ij: &[f64],
        ws: &mut PoissonWorkspace,
    ) -> f64 {
        assert_eq!(rho_ij.len(), self.grid.len());
        ws.ensure_half(self.grid.dims);
        let t0 = std::time::Instant::now();
        rfft3_into_with(level, rho_ij, self.grid.dims, &mut ws.half);
        let t1 = std::time::Instant::now();
        // The double-count weight is pre-folded into the table (exactly, as
        // ×1/×2), so the whole Parseval sum is one flat contraction.
        let acc = simd::weighted_energy_with(level, &ws.half, &self.kernel_half_weighted);
        ws.timings.fft_s += (t1 - t0).as_secs_f64();
        ws.timings.kernel_s += t1.elapsed().as_secs_f64();
        acc * self.grid.dvol() / self.grid.len() as f64
    }

    /// Two energy-only exchange pair terms for the price of one complex
    /// transform: the real densities are packed as `ρ_a + i·ρ_b`, one
    /// forward c2c FFT runs, and the two Hermitian spectra are untangled
    /// per bin via the conjugate partner `ẑ(−k)`. Zero allocation.
    pub fn exchange_pair_energy_batched(
        &self,
        rho_a: &[f64],
        rho_b: &[f64],
        ws: &mut PoissonWorkspace,
    ) -> (f64, f64) {
        self.exchange_pair_energy_batched_with(simd::level(), rho_a, rho_b, ws)
    }

    /// [`Self::exchange_pair_energy_batched`] at an explicit SIMD level.
    pub fn exchange_pair_energy_batched_with(
        &self,
        level: SimdLevel,
        rho_a: &[f64],
        rho_b: &[f64],
        ws: &mut PoissonWorkspace,
    ) -> (f64, f64) {
        assert_eq!(rho_a.len(), self.grid.len());
        assert_eq!(rho_b.len(), self.grid.len());
        let dims = self.grid.dims;
        ws.ensure_full(dims);
        for ((z, &a), &b) in ws.full.iter_mut().zip(rho_a).zip(rho_b) {
            *z = Complex64::new(a, b);
        }
        let t0 = std::time::Instant::now();
        fft3_serial_slice_with(level, &mut ws.full, dims);
        let t1 = std::time::Instant::now();
        ws.timings.fft_s += (t1 - t0).as_secs_f64();
        let (nx, ny, nz) = dims;
        let (mut ea, mut eb) = (0.0, 0.0);
        let mut idx = 0;
        for i in 0..nx {
            let ic = ((nx - i) % nx) * ny;
            for j in 0..ny {
                let jc = (ic + (ny - j) % ny) * nz;
                for k in 0..nz {
                    let z = ws.full[idx];
                    let zc = ws.full[jc + (nz - k) % nz].conj();
                    // ẑ = â + i·b̂ with â, b̂ Hermitian:
                    // â(k) = (ẑ(k) + ẑ*(−k))/2, b̂(k) = (ẑ(k) − ẑ*(−k))/2i.
                    let ah = (z + zc).scale(0.5);
                    let bh = (z - zc) * Complex64::new(0.0, -0.5);
                    let kk = self.kernel[idx];
                    ea += kk * ah.norm_sqr();
                    eb += kk * bh.norm_sqr();
                    idx += 1;
                }
            }
        }
        ws.timings.kernel_s += t1.elapsed().as_secs_f64();
        let scale = self.grid.dvol() / self.grid.len() as f64;
        (ea * scale, eb * scale)
    }

    /// The seed's complex-to-complex energy path, kept verbatim as the
    /// benchmark baseline for the r2c fast path (`benches/pair_kernel.rs`).
    pub fn exchange_pair_reference(&self, rho_ij: &[f64]) -> f64 {
        use liair_math::fft3::{fft3, ifft3, to_complex, to_real};
        assert_eq!(rho_ij.len(), self.grid.len());
        let mut work = to_complex(rho_ij, self.grid.dims);
        fft3(&mut work);
        for (z, &k) in work.as_mut_slice().iter_mut().zip(&self.kernel) {
            *z = z.scale(k);
        }
        ifft3(&mut work);
        let v = to_real(&work);
        self.grid.inner(rho_ij, &v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::Cell;
    use liair_math::special::erf;
    use liair_math::{approx_eq, Vec3};

    fn gaussian_density(grid: &RealGrid, center: Vec3, alpha: f64) -> Vec<f64> {
        let norm = (alpha / PI).powf(1.5);
        (0..grid.len())
            .map(|i| {
                let d = grid.cell.min_image(center, grid.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect()
    }

    #[test]
    fn periodic_plane_wave_eigenfunction() {
        // ρ = cos(G·x) ⇒ v = (4π/G²)cos(G·x) for the periodic kernel.
        let l = 7.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 16);
        let gx = 2.0 * PI / l;
        let rho: Vec<f64> = (0..grid.len())
            .map(|i| (gx * grid.point_flat(i).x).cos())
            .collect();
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let v = solver.solve(&rho);
        let scale = 4.0 * PI / (gx * gx);
        for i in (0..grid.len()).step_by(97) {
            let want = scale * (gx * grid.point_flat(i).x).cos();
            assert!(approx_eq(v[i], want, 1e-9), "point {i}: {} vs {want}", v[i]);
        }
    }

    #[test]
    fn isolated_gaussian_self_energy() {
        // Hartree energy of a unit Gaussian charge: ½·√(2α/π)·2 = √(α/2π)·…
        // interaction of the Gaussian with itself is 2√(α/(2π))·…; the
        // closed form is E_H = ½·√(2α/π).
        let l = 24.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 64);
        let alpha = 1.1;
        let rho = gaussian_density(&grid, Vec3::splat(l / 2.0), alpha);
        let solver = PoissonSolver::isolated(grid);
        let got = solver.hartree_energy(&rho);
        let want = 0.5 * (2.0 * alpha / PI).sqrt();
        assert!(approx_eq(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn isolated_two_gaussian_interaction_is_erf_over_r() {
        // Two unit Gaussian charges, exponents α, separation R:
        // E = erf(√(α/2)·R)/R.
        let l = 28.0;
        let grid = RealGrid::cubic(Cell::cubic(l), 72);
        let alpha = 0.9;
        let r = 3.0;
        let c1 = Vec3::new(l / 2.0 - r / 2.0, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + r / 2.0, l / 2.0, l / 2.0);
        let rho1 = gaussian_density(&grid, c1, alpha);
        let rho2 = gaussian_density(&grid, c2, alpha);
        let solver = PoissonSolver::isolated(grid);
        let got = solver.interaction_energy(&rho1, &rho2);
        let want = erf((alpha / 2.0).sqrt() * r) / r;
        assert!(approx_eq(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn solver_is_linear() {
        let grid = RealGrid::cubic(Cell::cubic(9.0), 12);
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let mut rng = liair_math::rng::SplitMix64::new(4);
        let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - 3.0 * y).collect();
        let va = solver.solve(&a);
        let vb = solver.solve(&b);
        let vs = solver.solve(&sum);
        for i in (0..grid.len()).step_by(53) {
            assert!(approx_eq(vs[i], 2.0 * va[i] - 3.0 * vb[i], 1e-10));
        }
    }

    #[test]
    fn interaction_energy_is_symmetric() {
        let grid = RealGrid::cubic(Cell::cubic(15.0), 24);
        let solver = PoissonSolver::isolated(grid);
        let rho1 = gaussian_density(&grid, Vec3::new(6.0, 7.5, 7.5), 0.7);
        let rho2 = gaussian_density(&grid, Vec3::new(9.0, 7.5, 7.5), 1.4);
        let e12 = solver.interaction_energy(&rho1, &rho2);
        let e21 = solver.interaction_energy(&rho2, &rho1);
        assert!(approx_eq(e12, e21, 1e-10));
        assert!(e12 > 0.0);
    }

    #[test]
    fn exchange_pair_energy_is_nonnegative() {
        // (ij|ij) is a self-repulsion of the pair density — always ≥ 0.
        let grid = RealGrid::cubic(Cell::cubic(12.0), 24);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = liair_math::rng::SplitMix64::new(8);
        let rho: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let (e, v) = solver.exchange_pair(&rho);
        assert!(e >= 0.0);
        assert_eq!(v.len(), grid.len());
    }

    #[test]
    fn solve_into_matches_solve() {
        let grid = RealGrid::new(Cell::orthorhombic(9.0, 11.0, 13.0), (12, 10, 15));
        let solver = PoissonSolver::new(grid, CoulombKernel::Periodic);
        let mut rng = liair_math::rng::SplitMix64::new(21);
        let rho: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let want = solver.solve(&rho);
        let mut ws = PoissonWorkspace::new();
        // Run twice through the same workspace: the second pass must be
        // identical (buffers fully overwritten, no stale state).
        for _ in 0..2 {
            let got = solver.solve_into(&rho, &mut ws);
            let err = got
                .iter()
                .zip(&want)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-10, "err {err}");
        }
    }

    #[test]
    fn energy_only_path_matches_solve_based_energy() {
        for dims in [(16usize, 16usize, 16usize), (12, 10, 15)] {
            let grid = RealGrid::new(Cell::orthorhombic(9.0, 10.0, 11.0), dims);
            let solver = PoissonSolver::isolated(grid);
            let mut rng = liair_math::rng::SplitMix64::new(33);
            let rho: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
            let (want, _) = solver.exchange_pair(&rho);
            let mut ws = PoissonWorkspace::new();
            let got = solver.exchange_pair_energy(&rho, &mut ws);
            assert!(
                approx_eq(got, want, 1e-10),
                "dims {dims:?}: {got} vs {want}"
            );
            let reference = solver.exchange_pair_reference(&rho);
            assert!(approx_eq(got, reference, 1e-10), "{got} vs c2c {reference}");
        }
    }

    #[test]
    fn batched_pair_energies_match_single() {
        for dims in [(16usize, 16usize, 16usize), (12, 10, 15)] {
            let grid = RealGrid::new(Cell::orthorhombic(8.0, 9.0, 10.0), dims);
            let solver = PoissonSolver::isolated(grid);
            let mut rng = liair_math::rng::SplitMix64::new(44);
            let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
            let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
            let mut ws = PoissonWorkspace::new();
            let ea = solver.exchange_pair_energy(&a, &mut ws);
            let eb = solver.exchange_pair_energy(&b, &mut ws);
            let (ga, gb) = solver.exchange_pair_energy_batched(&a, &b, &mut ws);
            assert!(approx_eq(ga, ea, 1e-10), "dims {dims:?}: {ga} vs {ea}");
            assert!(approx_eq(gb, eb, 1e-10), "dims {dims:?}: {gb} vs {eb}");
        }
    }
}
