//! Uniform real-space grids over periodic cells.

use liair_basis::Cell;
use liair_math::Vec3;

/// A uniform grid sampling the periodic cell; point `(ix, iy, iz)` sits at
/// `(ix·a/nx, iy·b/ny, iz·c/nz)`. Fields over the grid are flat `Vec<f64>`
/// in the `Array3` layout (z contiguous).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealGrid {
    /// The periodic cell.
    pub cell: Cell,
    /// Points per axis.
    pub dims: (usize, usize, usize),
}

impl RealGrid {
    /// Construct; all dims must be ≥ 1.
    pub fn new(cell: Cell, dims: (usize, usize, usize)) -> Self {
        assert!(dims.0 >= 1 && dims.1 >= 1 && dims.2 >= 1);
        Self { cell, dims }
    }

    /// Cubic grid of `n³` points.
    pub fn cubic(cell: Cell, n: usize) -> Self {
        Self::new(cell, (n, n, n))
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Whether the grid has no points (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Volume element `dV = V / N`.
    pub fn dvol(&self) -> f64 {
        self.cell.volume() / self.len() as f64
    }

    /// Grid spacing per axis.
    pub fn spacing(&self) -> Vec3 {
        Vec3::new(
            self.cell.lengths.x / self.dims.0 as f64,
            self.cell.lengths.y / self.dims.1 as f64,
            self.cell.lengths.z / self.dims.2 as f64,
        )
    }

    /// Cartesian position of grid point `(ix, iy, iz)`.
    #[inline]
    pub fn point(&self, ix: usize, iy: usize, iz: usize) -> Vec3 {
        let h = self.spacing();
        Vec3::new(ix as f64 * h.x, iy as f64 * h.y, iz as f64 * h.z)
    }

    /// Position of the flat-index point.
    #[inline]
    pub fn point_flat(&self, idx: usize) -> Vec3 {
        let (_, ny, nz) = self.dims;
        let iz = idx % nz;
        let iy = (idx / nz) % ny;
        let ix = idx / (ny * nz);
        self.point(ix, iy, iz)
    }

    /// Integrate a field sampled on the grid: `Σ f·dV`.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.len());
        f.iter().sum::<f64>() * self.dvol()
    }

    /// Inner product `∫ f g dV`.
    pub fn inner(&self, f: &[f64], g: &[f64]) -> f64 {
        assert_eq!(f.len(), self.len());
        assert_eq!(g.len(), self.len());
        f.iter().zip(g).map(|(a, b)| a * b).sum::<f64>() * self.dvol()
    }

    /// Signed reciprocal-lattice index of FFT bin `i` along an axis of `n`
    /// points: `0, 1, …, n/2, −(n−1)/2, …, −1`.
    #[inline]
    pub fn freq_index(i: usize, n: usize) -> i64 {
        if i <= n / 2 {
            i as i64
        } else {
            i as i64 - n as i64
        }
    }

    /// Reciprocal vector of FFT bin `(i, j, k)`.
    pub fn g_of_bin(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.cell.g_vector((
            Self::freq_index(i, self.dims.0),
            Self::freq_index(j, self.dims.1),
            Self::freq_index(k, self.dims.2),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    #[test]
    fn integrates_constant_to_volume() {
        let g = RealGrid::cubic(Cell::cubic(10.0), 8);
        let ones = vec![1.0; g.len()];
        assert!(approx_eq(g.integrate(&ones), 1000.0, 1e-12));
    }

    #[test]
    fn integrates_plane_wave_to_zero() {
        // ∫ cos(2πx/L) over the cell vanishes exactly on a uniform grid.
        let g = RealGrid::cubic(Cell::cubic(5.0), 16);
        let f: Vec<f64> = (0..g.len())
            .map(|i| {
                let p = g.point_flat(i);
                (2.0 * std::f64::consts::PI * p.x / 5.0).cos()
            })
            .collect();
        assert!(g.integrate(&f).abs() < 1e-10);
    }

    #[test]
    fn point_flat_matches_indexed() {
        let g = RealGrid::new(Cell::orthorhombic(4.0, 6.0, 8.0), (2, 3, 4));
        let mut idx = 0;
        for ix in 0..2 {
            for iy in 0..3 {
                for iz in 0..4 {
                    assert_eq!(g.point(ix, iy, iz), g.point_flat(idx));
                    idx += 1;
                }
            }
        }
    }

    #[test]
    fn freq_indices_wrap() {
        assert_eq!(RealGrid::freq_index(0, 8), 0);
        assert_eq!(RealGrid::freq_index(4, 8), 4);
        assert_eq!(RealGrid::freq_index(5, 8), -3);
        assert_eq!(RealGrid::freq_index(7, 8), -1);
    }

    #[test]
    fn normalized_gaussian_integrates_to_one() {
        // (α/π)^{3/2} e^{-α|r−c|²} integrates to 1 when well resolved and
        // well contained.
        let l = 20.0;
        let g = RealGrid::cubic(Cell::cubic(l), 48);
        let alpha = 0.8;
        let c = Vec3::splat(l / 2.0);
        let norm = (alpha / std::f64::consts::PI).powf(1.5);
        let f: Vec<f64> = (0..g.len())
            .map(|i| {
                let d = g.cell.min_image(c, g.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect();
        assert!(approx_eq(g.integrate(&f), 1.0, 1e-6));
    }
}
