//! Atom-centered molecular quadrature (Becke fuzzy-cell grids).
//!
//! Uniform plane-wave grids cannot resolve all-electron Gaussian cores
//! (STO-3G oxygen has exponents ≈ 130 Bohr⁻²), so DFT exchange–correlation
//! integrals use the standard molecular quadrature instead:
//!
//! * per atom, a radial Gauss–Chebyshev grid mapped to `[0, ∞)` by
//!   Becke's `r = r_m (1+x)/(1−x)` transformation;
//! * an angular product grid — Gauss–Legendre in `cos θ` × uniform in `φ`
//!   (exact for spherical harmonics up to the chosen degree; chosen over
//!   Lebedev to stay table-free);
//! * Becke's fuzzy Voronoi partition (three iterations of the smoothing
//!   polynomial) to assemble atomic cells into a molecular weight.

use liair_basis::Molecule;
use liair_math::quadrature::gauss_legendre;
use liair_math::Vec3;

/// A molecular integration grid: points with weights such that
/// `∫ f ≈ Σ_p w_p f(x_p)`.
#[derive(Debug, Clone)]
pub struct MolGrid {
    /// Quadrature points (Bohr).
    pub points: Vec<Vec3>,
    /// Quadrature weights (Bohr³).
    pub weights: Vec<f64>,
}

/// Becke smoothing polynomial iterated three times.
fn becke_smooth(mu: f64) -> f64 {
    let f = |x: f64| 1.5 * x - 0.5 * x * x * x;
    f(f(f(mu)))
}

/// Map radius scale per element: half the Bragg–Slater-ish radius works
/// well; hydrogen gets a larger share.
fn radial_scale(z: u32) -> f64 {
    match z {
        1 => 1.0,
        2 => 0.6,
        3..=10 => 1.2,
        _ => 1.5,
    }
}

impl MolGrid {
    /// Build a Becke grid with `n_rad` radial shells and an
    /// `n_theta × 2·n_theta` angular product grid per shell.
    pub fn becke(mol: &Molecule, n_rad: usize, n_theta: usize) -> MolGrid {
        assert!(n_rad >= 2 && n_theta >= 2);
        let n_phi = 2 * n_theta;
        let natoms = mol.natoms();
        // Angular product grid on the unit sphere.
        let (ct_nodes, ct_weights) = gauss_legendre(n_theta);
        let mut sphere: Vec<(Vec3, f64)> = Vec::with_capacity(n_theta * n_phi);
        for (i, &ct) in ct_nodes.iter().enumerate() {
            let st = (1.0 - ct * ct).sqrt();
            for k in 0..n_phi {
                let phi = 2.0 * std::f64::consts::PI * (k as f64 + 0.5) / n_phi as f64;
                let dir = Vec3::new(st * phi.cos(), st * phi.sin(), ct);
                // Solid-angle weight: w_θ · (2π/n_phi).
                let w = ct_weights[i] * 2.0 * std::f64::consts::PI / n_phi as f64;
                sphere.push((dir, w));
            }
        }

        let mut points = Vec::new();
        let mut weights = Vec::new();
        for (a, atom) in mol.atoms.iter().enumerate() {
            let rm = radial_scale(atom.element.z());
            // Gauss–Chebyshev (2nd kind) nodes mapped by r = rm(1+x)/(1−x).
            for i in 1..=n_rad {
                let xi = (i as f64 * std::f64::consts::PI / (n_rad as f64 + 1.0)).cos();
                let sin_i = (i as f64 * std::f64::consts::PI / (n_rad as f64 + 1.0)).sin();
                let w_cheb = std::f64::consts::PI / (n_rad as f64 + 1.0) * sin_i * sin_i;
                // dx weight: Chebyshev-2 weight includes √(1−x²); divide out.
                let w_x = w_cheb / (1.0 - xi * xi).sqrt();
                let r = rm * (1.0 + xi) / (1.0 - xi);
                let dr_dx = 2.0 * rm / ((1.0 - xi) * (1.0 - xi));
                let w_rad = w_x * dr_dx * r * r;
                if !w_rad.is_finite() || r > 40.0 {
                    continue; // outermost mapped points carry negligible density
                }
                for &(dir, w_ang) in &sphere {
                    let p = atom.pos + dir * r;
                    // Becke partition weight of atom `a` at point p.
                    let mut cell = vec![1.0; natoms];
                    for i1 in 0..natoms {
                        for j1 in 0..natoms {
                            if i1 == j1 {
                                continue;
                            }
                            let ri = p.distance(mol.atoms[i1].pos);
                            let rj = p.distance(mol.atoms[j1].pos);
                            let rij = mol.atoms[i1].pos.distance(mol.atoms[j1].pos);
                            let mu = (ri - rj) / rij;
                            cell[i1] *= 0.5 * (1.0 - becke_smooth(mu));
                        }
                    }
                    let total: f64 = cell.iter().sum();
                    if total <= 1e-300 {
                        continue;
                    }
                    let w_becke = cell[a] / total;
                    let w = w_rad * w_ang * w_becke;
                    if w > 1e-16 {
                        points.push(p);
                        weights.push(w);
                    }
                }
            }
        }
        MolGrid { points, weights }
    }

    /// Number of quadrature points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Integrate sampled values.
    pub fn integrate(&self, f: &[f64]) -> f64 {
        assert_eq!(f.len(), self.len());
        f.iter().zip(&self.weights).map(|(a, w)| a * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::{systems, Element, Molecule};
    use liair_math::approx_eq;
    use std::f64::consts::PI;

    #[test]
    fn integrates_single_gaussian() {
        let mut mol = Molecule::new();
        mol.push(Element::H, Vec3::ZERO);
        let grid = MolGrid::becke(&mol, 40, 8);
        // Sharp and diffuse Gaussians both integrate to (π/α)^{3/2}.
        for &alpha in &[0.2, 1.0, 30.0, 500.0] {
            let f: Vec<f64> = grid
                .points
                .iter()
                .map(|p| (-alpha * p.norm_sqr()).exp())
                .collect();
            let want = (PI / alpha).powf(1.5);
            let got = grid.integrate(&f);
            assert!(approx_eq(got, want, 1e-6), "alpha={alpha}: {got} vs {want}");
        }
    }

    #[test]
    fn integrates_offcenter_gaussian_with_becke_partition() {
        // Gaussian centred on one atom of a diatomic — the fuzzy cells must
        // hand the integrand over smoothly.
        let mol = systems::lih();
        let grid = MolGrid::becke(&mol, 50, 10);
        let c = mol.atoms[1].pos;
        let alpha = 2.0;
        let f: Vec<f64> = grid
            .points
            .iter()
            .map(|p| (-alpha * (*p - c).norm_sqr()).exp())
            .collect();
        let want = (PI / alpha).powf(1.5);
        let got = grid.integrate(&f);
        assert!(approx_eq(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn weights_are_positive() {
        let grid = MolGrid::becke(&systems::water(), 30, 6);
        assert!(grid.weights.iter().all(|&w| w > 0.0));
        assert!(grid.len() > 1000);
    }

    #[test]
    fn polynomial_times_gaussian() {
        // ∫ x² e^{-αr²} = (1/2α)(π/α)^{3/2} — tests angular accuracy.
        let mut mol = Molecule::new();
        mol.push(Element::O, Vec3::ZERO);
        let grid = MolGrid::becke(&mol, 40, 10);
        let alpha = 1.3;
        let f: Vec<f64> = grid
            .points
            .iter()
            .map(|p| p.x * p.x * (-alpha * p.norm_sqr()).exp())
            .collect();
        let want = 0.5 / alpha * (PI / alpha).powf(1.5);
        let got = grid.integrate(&f);
        assert!(approx_eq(got, want, 1e-6), "{got} vs {want}");
    }
}
