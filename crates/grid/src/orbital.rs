//! Evaluation of Gaussian basis functions and molecular orbitals on
//! real-space grids.
//!
//! Positions are taken modulo the cell (minimum-image displacement from the
//! shell center), so the same code serves the isolated-molecule-in-a-box
//! validation path and the condensed-phase periodic path.

use crate::grid::RealGrid;
use liair_basis::shell::cart_components;
use liair_basis::Basis;
use liair_math::{simd, Mat};
use rayon::prelude::*;

/// Grid points evaluated per block in [`ao_values`]: large enough to fill
/// the vector units, small enough that the per-block displacement/angular/
/// radial arrays stay resident in L1.
const AO_BLOCK: usize = 128;

/// Evaluate every AO at every grid point; returns `nao` fields of
/// `grid.len()` values each.
///
/// Evaluation is point-blocked: each block first gathers the min-image
/// displacements, then runs the angular and radial factors as contiguous
/// per-block loops (the `exp`-heavy radial loop iterates primitives
/// outermost so each pass over the block is a single fused
/// multiply-accumulate stream), and finally combines the factors with the
/// SIMD elementwise product. Per-point arithmetic is unchanged from the
/// straight-line form, so results are bit-identical to it.
pub fn ao_values(basis: &Basis, grid: &RealGrid) -> Vec<Vec<f64>> {
    // Precompute per-AO primitive data: (center, [(exp, normalized coef)], powers)
    struct AoData {
        center: liair_math::Vec3,
        powers: (usize, usize, usize),
        prims: Vec<(f64, f64)>,
    }
    let mut aos = Vec::with_capacity(basis.nao());
    for sh in &basis.shells {
        for powers in cart_components(sh.l) {
            let coefs = sh.normalized_coefs(powers);
            let prims = sh
                .prims
                .iter()
                .zip(coefs)
                .map(|(p, c)| (p.exp, c))
                .collect();
            aos.push(AoData {
                center: sh.center,
                powers,
                prims,
            });
        }
    }
    let n = grid.len();
    aos.par_iter()
        .map(|ao| {
            let mut out = vec![0.0; n];
            let (px, py, pz) = (ao.powers.0 as i32, ao.powers.1 as i32, ao.powers.2 as i32);
            let mut dx = [0.0f64; AO_BLOCK];
            let mut dy = [0.0f64; AO_BLOCK];
            let mut dz = [0.0f64; AO_BLOCK];
            let mut r2 = [0.0f64; AO_BLOCK];
            let mut ang = [0.0f64; AO_BLOCK];
            let mut radial = [0.0f64; AO_BLOCK];
            for (block, chunk) in out.chunks_mut(AO_BLOCK).enumerate() {
                let base = block * AO_BLOCK;
                let m = chunk.len();
                for t in 0..m {
                    let d = grid.cell.min_image(ao.center, grid.point_flat(base + t));
                    dx[t] = d.x;
                    dy[t] = d.y;
                    dz[t] = d.z;
                    r2[t] = d.norm_sqr();
                }
                for t in 0..m {
                    ang[t] = dx[t].powi(px) * dy[t].powi(py) * dz[t].powi(pz);
                }
                radial[..m].fill(0.0);
                for &(a, c) in &ao.prims {
                    for t in 0..m {
                        radial[t] += c * (-a * r2[t]).exp();
                    }
                }
                simd::mul_into(chunk, &ang[..m], &radial[..m]);
            }
            out
        })
        .collect()
}

/// Evaluate MO columns `0..nmo` of the coefficient matrix `c`
/// (`nao × nmo_total`) on the grid: `φ_k(r) = Σ_μ C_{μk} χ_μ(r)`.
pub fn orbitals_on_grid(basis: &Basis, c: &Mat, nmo: usize, grid: &RealGrid) -> Vec<Vec<f64>> {
    assert_eq!(c.nrows(), basis.nao());
    assert!(nmo <= c.ncols());
    let aos = ao_values(basis, grid);
    (0..nmo)
        .into_par_iter()
        .map(|k| {
            let mut phi = vec![0.0; grid.len()];
            for (mu, ao) in aos.iter().enumerate() {
                let coef = c[(mu, k)];
                if coef.abs() < 1e-14 {
                    continue;
                }
                simd::axpy(&mut phi, coef, ao);
            }
            phi
        })
        .collect()
}

/// Electron density of a closed-shell determinant on the grid:
/// `ρ(r) = 2 Σ_{k occ} φ_k(r)²`.
pub fn density_on_grid(orbitals: &[Vec<f64>]) -> Vec<f64> {
    assert!(!orbitals.is_empty());
    let n = orbitals[0].len();
    let mut rho = vec![0.0; n];
    for phi in orbitals {
        for (r, &p) in rho.iter_mut().zip(phi) {
            *r += 2.0 * p * p;
        }
    }
    rho
}

/// Evaluate every AO at an arbitrary point set (no periodic wrapping —
/// used by the atom-centered molecular quadrature). Returns `nao` rows.
pub fn ao_values_at_points(basis: &Basis, points: &[liair_math::Vec3]) -> Vec<Vec<f64>> {
    basis
        .shells
        .iter()
        .flat_map(|sh| {
            cart_components(sh.l)
                .into_iter()
                .map(move |powers| (sh, powers))
        })
        .collect::<Vec<_>>()
        .par_iter()
        .map(|(sh, powers)| {
            let coefs = sh.normalized_coefs(*powers);
            points
                .iter()
                .map(|&p| {
                    let d = p - sh.center;
                    let r2 = d.norm_sqr();
                    let ang = d.x.powi(powers.0 as i32)
                        * d.y.powi(powers.1 as i32)
                        * d.z.powi(powers.2 as i32);
                    let radial: f64 = sh
                        .prims
                        .iter()
                        .zip(&coefs)
                        .map(|(pr, &c)| c * (-pr.exp * r2).exp())
                        .sum();
                    ang * radial
                })
                .collect()
        })
        .collect()
}

/// Evaluate every AO *and* its Cartesian gradient at a point set.
/// Returns `(values, gradients)` with gradients as `[Vec3]` rows per AO.
pub fn ao_values_and_gradients_at_points(
    basis: &Basis,
    points: &[liair_math::Vec3],
) -> (Vec<Vec<f64>>, Vec<Vec<liair_math::Vec3>>) {
    let rows: Vec<(Vec<f64>, Vec<liair_math::Vec3>)> = basis
        .shells
        .iter()
        .flat_map(|sh| {
            cart_components(sh.l)
                .into_iter()
                .map(move |powers| (sh, powers))
        })
        .collect::<Vec<_>>()
        .par_iter()
        .map(|(sh, powers)| {
            let coefs = sh.normalized_coefs(*powers);
            let (lx, ly, lz) = (powers.0 as i32, powers.1 as i32, powers.2 as i32);
            let mut vals = Vec::with_capacity(points.len());
            let mut grads = Vec::with_capacity(points.len());
            for &p in points.iter() {
                let d = p - sh.center;
                let r2 = d.norm_sqr();
                let px = d.x.powi(lx);
                let py = d.y.powi(ly);
                let pz = d.z.powi(lz);
                let mut val = 0.0;
                let mut grad = liair_math::Vec3::ZERO;
                for (pr, &c) in sh.prims.iter().zip(&coefs) {
                    let g = c * (-pr.exp * r2).exp();
                    val += px * py * pz * g;
                    // ∂/∂x [x^l e^{-αr²}] = (l x^{l−1} − 2α x^{l+1}) e^{-αr²}
                    let dx = (if lx > 0 {
                        lx as f64 * d.x.powi(lx - 1)
                    } else {
                        0.0
                    } - 2.0 * pr.exp * d.x.powi(lx + 1))
                        * py
                        * pz;
                    let dy = (if ly > 0 {
                        ly as f64 * d.y.powi(ly - 1)
                    } else {
                        0.0
                    } - 2.0 * pr.exp * d.y.powi(ly + 1))
                        * px
                        * pz;
                    let dz = (if lz > 0 {
                        lz as f64 * d.z.powi(lz - 1)
                    } else {
                        0.0
                    } - 2.0 * pr.exp * d.z.powi(lz + 1))
                        * px
                        * py;
                    grad += liair_math::Vec3::new(dx, dy, dz) * g;
                }
                vals.push(val);
                grads.push(grad);
            }
            (vals, grads)
        })
        .collect();
    rows.into_iter().unzip()
}

/// Closed-shell density and gradient magnitude at arbitrary points from an
/// AO density matrix: `n = Σ_{μν} D_{μν} χ_μ χ_ν`,
/// `∇n = 2 Σ_{μν} D_{μν} χ_μ ∇χ_ν`.
pub fn density_from_dm_at_points(
    basis: &Basis,
    dm: &Mat,
    points: &[liair_math::Vec3],
) -> (Vec<f64>, Vec<f64>) {
    let nao = basis.nao();
    assert_eq!(dm.nrows(), nao);
    let (vals, grads) = ao_values_and_gradients_at_points(basis, points);
    let out: Vec<(f64, f64)> = (0..points.len())
        .into_par_iter()
        .map(|p| {
            // ψ_μ(p) once per point; n = χᵀ D χ, ∇n = 2 (Dχ)·∇χ.
            let mut dchi = vec![0.0; nao];
            for mu in 0..nao {
                let mut acc = 0.0;
                for nu in 0..nao {
                    acc += dm[(mu, nu)] * vals[nu][p];
                }
                dchi[mu] = acc;
            }
            let n: f64 = (0..nao).map(|mu| dchi[mu] * vals[mu][p]).sum();
            let mut g = liair_math::Vec3::ZERO;
            for mu in 0..nao {
                g += grads[mu][p] * (2.0 * dchi[mu]);
            }
            (n.max(0.0), g.norm())
        })
        .collect();
    out.into_iter().unzip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::{systems, Cell};
    use liair_math::{approx_eq, Vec3};

    fn centered_in_box(mut mol: liair_basis::Molecule, l: f64) -> liair_basis::Molecule {
        let c = mol.centroid();
        mol.translate(Vec3::splat(l / 2.0) - c);
        mol
    }

    #[test]
    fn ao_grid_norm_matches_analytic_overlap() {
        // ∫χ_μ² on the grid ≈ S_μμ = 1.
        let l = 16.0;
        let mol = centered_in_box(systems::h2(), l);
        let basis = liair_basis::Basis::sto3g(&mol);
        let grid = RealGrid::cubic(Cell::cubic(l), 64);
        let aos = ao_values(&basis, &grid);
        for (mu, ao) in aos.iter().enumerate() {
            let norm = grid.inner(ao, ao);
            assert!(approx_eq(norm, 1.0, 2e-3), "AO {mu}: {norm}");
        }
    }

    #[test]
    fn ao_grid_cross_overlap_matches_analytic() {
        let l = 16.0;
        let mol = centered_in_box(systems::h2(), l);
        let basis = liair_basis::Basis::sto3g(&mol);
        let s = liair_integrals::overlap_matrix(&basis);
        let grid = RealGrid::cubic(Cell::cubic(l), 64);
        let aos = ao_values(&basis, &grid);
        let s01 = grid.inner(&aos[0], &aos[1]);
        assert!(approx_eq(s01, s[(0, 1)], 2e-3), "{s01} vs {}", s[(0, 1)]);
    }

    #[test]
    fn density_integrates_to_electron_count() {
        // Two electrons in the normalized bonding combination of H2.
        let l = 16.0;
        let mol = centered_in_box(systems::h2(), l);
        let basis = liair_basis::Basis::sto3g(&mol);
        let s = liair_integrals::overlap_matrix(&basis);
        let norm = 1.0 / (2.0 + 2.0 * s[(0, 1)]).sqrt();
        let mut c = Mat::zeros(2, 1);
        c[(0, 0)] = norm;
        c[(1, 0)] = norm;
        let grid = RealGrid::cubic(Cell::cubic(l), 64);
        let phi = orbitals_on_grid(&basis, &c, 1, &grid);
        let rho = density_on_grid(&phi);
        assert!(approx_eq(grid.integrate(&rho), 2.0, 5e-3));
        // Density is nonnegative everywhere.
        assert!(rho.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn point_values_match_grid_values() {
        let l = 10.0;
        let mol = centered_in_box(systems::water(), l);
        let basis = liair_basis::Basis::sto3g(&mol);
        let grid = RealGrid::cubic(Cell::cubic(l), 8);
        let pts: Vec<Vec3> = (0..grid.len()).map(|i| grid.point_flat(i)).collect();
        let on_grid = ao_values(&basis, &grid);
        let at_pts = ao_values_at_points(&basis, &pts);
        // Min-image equals the direct displacement only for points within
        // half a box of the shell center along every axis; compare those.
        for (mu, ao) in basis.aos.iter().enumerate() {
            let c = basis.shells[ao.shell].center;
            for i in (0..pts.len()).step_by(37) {
                let p = pts[i];
                if (0..3).all(|k| (p[k] - c[k]).abs() < l / 2.0 - 1e-9) {
                    assert!(
                        approx_eq(on_grid[mu][i], at_pts[mu][i], 1e-10),
                        "AO {mu} point {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn ao_gradients_match_finite_difference() {
        let mol = systems::water();
        let basis = liair_basis::Basis::sto3g(&mol);
        let p0 = Vec3::new(0.4, 0.3, 0.2);
        let h = 1e-6;
        let (_, grads) = ao_values_and_gradients_at_points(&basis, &[p0]);
        for axis in 0..3 {
            let mut pp = p0;
            pp[axis] += h;
            let mut pm = p0;
            pm[axis] -= h;
            let vp = ao_values_at_points(&basis, &[pp]);
            let vm = ao_values_at_points(&basis, &[pm]);
            for mu in 0..basis.nao() {
                let fd = (vp[mu][0] - vm[mu][0]) / (2.0 * h);
                assert!(
                    approx_eq(grads[mu][0][axis], fd, 1e-5),
                    "AO {mu} axis {axis}: {} vs {fd}",
                    grads[mu][0][axis]
                );
            }
        }
    }

    #[test]
    fn density_from_dm_integrates_to_nelec() {
        // D = 2 c cᵀ for the bonding orbital of H2; integrate n over a
        // Becke grid → 2 electrons.
        let mol = systems::h2();
        let basis = liair_basis::Basis::sto3g(&mol);
        let s = liair_integrals::overlap_matrix(&basis);
        let norm = 1.0 / (2.0 + 2.0 * s[(0, 1)]).sqrt();
        let mut dm = Mat::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                dm[(i, j)] = 2.0 * norm * norm;
            }
        }
        let mg = crate::molgrid::MolGrid::becke(&mol, 40, 8);
        let (n, grad) = density_from_dm_at_points(&basis, &dm, &mg.points);
        let total = mg.integrate(&n);
        assert!(approx_eq(total, 2.0, 1e-4), "{total}");
        assert!(grad.iter().all(|&g| g >= 0.0));
    }

    #[test]
    fn p_orbital_has_node_at_center() {
        let l = 12.0;
        let mut mol = liair_basis::Molecule::new();
        mol.push(liair_basis::Element::O, Vec3::splat(l / 2.0));
        let basis = liair_basis::Basis::sto3g(&mol);
        let grid = RealGrid::cubic(Cell::cubic(l), 32);
        let aos = ao_values(&basis, &grid);
        // AO 2 is 2px; at the center point (16,16,16) its value is 0.
        let center_idx = grid.len() / 2 + grid.dims.2 / 2 + grid.dims.1 / 2 * grid.dims.2;
        // Instead of index gymnastics, scan for the max |value| point of
        // the s AO — that is the nucleus — and check px vanishes there.
        let (imax, _) = aos[0]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        let _ = center_idx;
        assert!(aos[2][imax].abs() < 1e-10);
    }
}
