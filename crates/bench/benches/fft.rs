//! Criterion bench: the 3-D FFT — the inner kernel of every exchange pair
//! (two transforms per pair). Calibrates the cost model's flop pricing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use liair_math::fft3::{fft3, ifft3};
use liair_math::rng::SplitMix64;
use liair_math::{Array3, Complex64};

fn random_grid(n: usize, seed: u64) -> Array3<Complex64> {
    let mut rng = SplitMix64::new(seed);
    let data = (0..n * n * n)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();
    Array3::from_vec((n, n, n), data)
}

fn bench_fft3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3");
    for &n in &[16usize, 32, 48, 64] {
        let base = random_grid(n, 7);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| fft3(&mut g),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| {
                    fft3(&mut g);
                    ifft3(&mut g);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fft3
}
criterion_main!(benches);
