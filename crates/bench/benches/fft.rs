//! Criterion bench: the 3-D FFT — the inner kernel of every exchange pair
//! (two transforms per pair). Calibrates the cost model's flop pricing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use liair_math::fft3::{fft3, ifft3, to_complex};
use liair_math::rfft::{half_len, irfft3, rfft3, rfft3_into};
use liair_math::rng::SplitMix64;
use liair_math::{Array3, Complex64};

fn random_grid(n: usize, seed: u64) -> Array3<Complex64> {
    let mut rng = SplitMix64::new(seed);
    let data = (0..n * n * n)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();
    Array3::from_vec((n, n, n), data)
}

fn bench_fft3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3");
    for &n in &[16usize, 32, 48, 64] {
        let base = random_grid(n, 7);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| fft3(&mut g),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("roundtrip", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| {
                    fft3(&mut g);
                    ifft3(&mut g);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The real-FFT fast path against the complex transform it replaces: a
/// real field only needs the nz/2+1 Hermitian half-spectrum, so the r2c
/// forward does roughly half the line transforms of the c2c one.
fn bench_c2c_vs_r2c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3_c2c_vs_r2c");
    for &n in &[32usize, 48, 64] {
        let dims = (n, n, n);
        let mut rng = SplitMix64::new(11);
        let real: Vec<f64> = (0..n * n * n).map(|_| rng.next_f64() - 0.5).collect();
        let base = to_complex(&real, dims);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("c2c_forward", n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut g| fft3(&mut g),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("r2c_forward", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(rfft3(&real, dims)))
        });
        group.bench_with_input(BenchmarkId::new("r2c_roundtrip", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(irfft3(rfft3(&real, dims), dims)))
        });
        // Serial zero-alloc entry point with a reused half-spectrum buffer —
        // the exact shape of the per-pair hot loop.
        let mut half = vec![Complex64::ZERO; half_len(dims)];
        group.bench_with_input(BenchmarkId::new("r2c_forward_serial_ws", n), &n, |b, _| {
            b.iter(|| {
                rfft3_into(&real, dims, &mut half);
                std::hint::black_box(half[0])
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fft3, bench_c2c_vs_r2c
}
criterion_main!(benches);
