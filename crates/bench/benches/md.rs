//! Criterion bench: the MD substrate — force-field evaluation and full
//! velocity-Verlet steps on condensed boxes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liair_basis::systems;
use liair_md::{ForceField, MdOptions, MdState, Thermostat};

fn bench_forces(c: &mut Criterion) {
    let mut group = c.benchmark_group("forcefield");
    for &n_side in &[2usize, 3] {
        let (mol, cell) = systems::water_box(n_side, 1);
        let ff = ForceField::from_molecule(&mol, Some(&cell));
        group.bench_with_input(
            BenchmarkId::new("energy_forces", mol.natoms()),
            &mol,
            |b, mol| b.iter(|| std::hint::black_box(ff.energy_forces(mol, Some(&cell)))),
        );
    }
    group.finish();
}

fn bench_md_step(c: &mut Criterion) {
    let (mol, cell) = systems::water_box(2, 3);
    let ff = ForceField::from_molecule(&mol, Some(&cell));
    let mut state = MdState::new(mol, Some(cell), &ff);
    state.thermalize_seeded(300.0, Some(1));
    let opts = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::Berendsen {
            t_target: 300.0,
            tau: 300.0,
        },
        ..Default::default()
    };
    c.bench_function("md_step_8_waters", |b| {
        b.iter(|| {
            state.step(&ff, &opts);
            std::hint::black_box(state.potential)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forces, bench_md_step
}
criterion_main!(benches);
