//! Criterion bench: the Gaussian integral substrate — ERI shell quartets
//! and the full direct Fock build (the analytic exchange reference path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liair_basis::{systems, Basis};
use liair_integrals::eri::{EriEngine, EriScratch};
use liair_integrals::JkBuilder;
use liair_math::Mat;

fn bench_quartets(c: &mut Criterion) {
    let mol = systems::water();
    let basis = Basis::sto3g(&mol);
    let engine = EriEngine::new(&basis);
    let nsh = basis.shells.len();
    let mut group = c.benchmark_group("eri");
    group.bench_function("all_shell_quartets_water", |b| {
        let mut scratch = EriScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            let mut acc = 0.0;
            for sa in 0..nsh {
                for sb in 0..nsh {
                    for sc in 0..nsh {
                        for sd in 0..nsh {
                            engine.shell_quartet_into(sa, sb, sc, sd, &mut scratch, &mut out);
                            acc += out[0];
                        }
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_fock(c: &mut Criterion) {
    let mut group = c.benchmark_group("fock_build");
    group.sample_size(10);
    for (name, mol) in [("water", systems::water()), ("li2o2", systems::li2o2())] {
        let basis = Basis::sto3g(&mol);
        let builder = JkBuilder::new(&basis);
        let n = basis.nao();
        let mut d = Mat::zeros(n, n);
        let mut rng = liair_math::rng::SplitMix64::new(2);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.next_f64() - 0.5;
                d[(i, j)] = v;
                d[(j, i)] = v;
            }
        }
        group.bench_with_input(BenchmarkId::new("jk", name), &d, |b, d| {
            b.iter(|| std::hint::black_box(builder.build(d, 1e-11)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_quartets, bench_fock
}
criterion_main!(benches);
