//! Criterion bench: the full exchange-pair work unit — pair density,
//! Poisson solve, energy contraction. The per-pair wall time measured here
//! is the physical anchor of `fig-strong-scaling`'s cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liair_basis::Cell;
use liair_grid::{PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::rng::SplitMix64;

fn bench_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_pair");
    for &n in &[24usize, 32, 48] {
        let grid = RealGrid::cubic(Cell::cubic(20.0), n);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = SplitMix64::new(1);
        let phi_i: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let phi_j: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        group.bench_with_input(BenchmarkId::new("pair", n), &n, |b, _| {
            b.iter(|| {
                let rho: Vec<f64> = phi_i.iter().zip(&phi_j).map(|(a, b)| a * b).collect();
                std::hint::black_box(solver.exchange_pair(&rho).0)
            })
        });
    }
    group.finish();
}

/// Seed c2c pair solve (`exchange_pair_reference`) against the planned
/// r2c energy-only path, with and without a reused [`PoissonWorkspace`] —
/// the tentpole speedup measured head-to-head on identical densities.
fn bench_pair_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_paths");
    for &n in &[48usize, 64] {
        let grid = RealGrid::cubic(Cell::cubic(20.0), n);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = SplitMix64::new(2);
        let rho_a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let rho_b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        group.bench_with_input(BenchmarkId::new("reference_c2c", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(solver.exchange_pair_reference(&rho_a)))
        });
        group.bench_with_input(BenchmarkId::new("r2c_energy_alloc", n), &n, |b, _| {
            b.iter(|| {
                let mut ws = PoissonWorkspace::new();
                std::hint::black_box(solver.exchange_pair_energy(&rho_a, &mut ws))
            })
        });
        let mut ws = PoissonWorkspace::new();
        group.bench_with_input(BenchmarkId::new("r2c_energy_workspace", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(solver.exchange_pair_energy(&rho_a, &mut ws)))
        });
        // One batched call evaluates two pairs; criterion reports the
        // per-call time, i.e. ~2 pairs per reported iteration.
        group.bench_with_input(BenchmarkId::new("r2c_batched_two_pairs", n), &n, |b, _| {
            b.iter(|| {
                let (ea, eb) = solver.exchange_pair_energy_batched(&rho_a, &rho_b, &mut ws);
                std::hint::black_box(ea + eb)
            })
        });
    }
    group.finish();
}

/// The paper's >10× mechanism measured for real: one exchange pair on the
/// full cell grid vs on its pair-local patch.
fn bench_patch_vs_full(c: &mut Criterion) {
    use liair_grid::patch::patch_pair_energy;
    use liair_math::Vec3;
    let l = 24.0;
    let parent = RealGrid::cubic(Cell::cubic(l), 64);
    let c1 = Vec3::new(l / 2.0 - 1.0, l / 2.0, l / 2.0);
    let c2 = Vec3::new(l / 2.0 + 1.0, l / 2.0, l / 2.0);
    let alpha = 1.1;
    let field = |center: Vec3| -> Vec<f64> {
        let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
        (0..parent.len())
            .map(|i| {
                let d = parent.cell.min_image(center, parent.point_flat(i));
                norm * (-alpha * d.norm_sqr()).exp()
            })
            .collect()
    };
    let phi_i = field(c1);
    let phi_j = field(c2);
    let solver = PoissonSolver::isolated(parent);
    let mut group = c.benchmark_group("compact_representation");
    group.bench_function("full_cell_64", |b| {
        b.iter(|| {
            let rho: Vec<f64> = phi_i.iter().zip(&phi_j).map(|(a, b)| a * b).collect();
            std::hint::black_box(solver.exchange_pair(&rho).0)
        })
    });
    group.bench_function("pair_patch_32", |b| {
        b.iter(|| {
            std::hint::black_box(patch_pair_energy(
                &parent,
                &phi_i,
                &phi_j,
                (c1 + c2) * 0.5,
                24,
            ))
        })
    });
    group.finish();
}

fn bench_screening(c: &mut Criterion) {
    use liair_core::Workload;
    let mut group = c.benchmark_group("pair_list");
    for &norb in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("build+screen", norb), &norb, |b, &n| {
            b.iter(|| {
                std::hint::black_box(Workload::condensed("bench", n, 30.0, 1.5, 1e-6, 48, 128, 3))
            })
        });
    }
    group.finish();
}

fn bench_balance(c: &mut Criterion) {
    use liair_core::{assign_pairs, BalanceStrategy, Workload};
    let w = Workload::condensed("bench", 1024, 30.0, 1.5, 1e-6, 48, 128, 3);
    let mut group = c.benchmark_group("load_balance");
    for strat in [BalanceStrategy::RoundRobin, BalanceStrategy::GreedyLpt] {
        group.bench_with_input(
            BenchmarkId::new(format!("{strat:?}"), w.pairs.len()),
            &w,
            |b, w| b.iter(|| std::hint::black_box(assign_pairs(&w.pairs, 4096, strat))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pair, bench_pair_paths, bench_patch_vs_full, bench_screening, bench_balance
}
criterion_main!(benches);
