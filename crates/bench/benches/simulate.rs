//! Criterion bench: the machine-model evaluation itself — one modelled
//! exchange build per scheme and partition (this is what the repro harness
//! sweeps; it must stay cheap enough to evaluate thousands of times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liair_bgq::collectives::CollectiveAlgo;
use liair_bgq::MachineConfig;
use liair_core::{simulate_hfx_build, Scheme, Workload};

fn bench_simulate(c: &mut Criterion) {
    let w = Workload::paper_water_box();
    let mut group = c.benchmark_group("simulate_build");
    for &racks in &[1usize, 96] {
        let m = MachineConfig::bgq_racks(racks);
        for (label, scheme) in [
            ("ours", Scheme::ours()),
            ("full-grid", Scheme::FullGridPairs),
            ("pw", Scheme::PwDistributed),
        ] {
            group.bench_with_input(BenchmarkId::new(label, racks), &m, |b, m| {
                b.iter(|| {
                    std::hint::black_box(simulate_hfx_build(
                        &w,
                        m,
                        scheme,
                        CollectiveAlgo::TorusPipelined,
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulate
}
criterion_main!(benches);
