//! Criterion bench: SCF convergence and analytic gradients — the per-step
//! cost drivers of Born–Oppenheimer MD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use liair_basis::{systems, Basis};
use liair_integrals::rhf_gradient;
use liair_scf::{rhf, ScfOptions};

fn bench_scf(c: &mut Criterion) {
    let mut group = c.benchmark_group("scf");
    for (name, mol) in [("h2", systems::h2()), ("water", systems::water())] {
        group.bench_with_input(BenchmarkId::new("rhf", name), &mol, |b, mol| {
            let basis = Basis::sto3g(mol);
            b.iter(|| std::hint::black_box(rhf(mol, &basis, &ScfOptions::default())))
        });
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient");
    group.sample_size(10);
    for (name, mol) in [("h2", systems::h2()), ("water", systems::water())] {
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &ScfOptions::default());
        group.bench_with_input(BenchmarkId::new("analytic", name), &mol, |b, mol| {
            b.iter(|| {
                std::hint::black_box(rhf_gradient(
                    mol,
                    &basis,
                    &scf.c,
                    &scf.orbital_energies,
                    &scf.density,
                ))
            })
        });
    }
    group.finish();
}

fn bench_ewald(c: &mut Criterion) {
    use liair_md::ewald::{ewald_energy_forces, rock_salt_cell, EwaldParams};
    let (pos, chg, cell) = rock_salt_cell(9.0, 1.0);
    let params = EwaldParams::auto(&cell);
    c.bench_function("ewald_rock_salt_cell", |b| {
        b.iter(|| std::hint::black_box(ewald_energy_forces(&cell, &pos, &chg, &params)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scf, bench_gradient, bench_ewald
}
criterion_main!(benches);
