//! Minimal table rendering for experiment output (console + markdown).

/// A titled table of string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Heading shown above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (ragged rows are padded on print).
    pub rows: Vec<Vec<String>>,
    /// Free-form note printed under the table.
    pub note: String,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Column widths for aligned printing.
    fn widths(&self) -> Vec<usize> {
        let ncol = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut w = vec![0usize; ncol];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = format!("## {}\n", self.title);
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// Render GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n*{}*\n", self.note));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note = "hello".into();
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let txt = sample().to_text();
        assert!(txt.contains("## demo"));
        assert!(txt.contains("333"));
        assert!(txt.contains("note: hello"));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 333 | 4 |"));
    }
}
