//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--fast] [--markdown] <experiment-id>... | all | list
//! ```
//!
//! * `--fast` trims the heaviest sweeps (minutes instead of tens of
//!   minutes); `--smoke` is an alias (the CI smoke jobs' spelling);
//! * `--markdown` emits GitHub tables (used to fill EXPERIMENTS.md);
//! * `list` prints the available ids.

use liair_bench::experiments::{run, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast" || a == "--smoke");
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    if ids.iter().any(|a| a == "list") || ids.is_empty() {
        eprintln!("usage: repro [--fast|--smoke] [--markdown] <id>... | all");
        eprintln!("experiments:");
        for id in ALL_IDS {
            eprintln!("  {id}");
        }
        return;
    }

    let selected: Vec<&str> = if ids.iter().any(|a| a == "all") {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    for id in selected {
        eprintln!(">>> running {id}{}", if fast { " (fast)" } else { "" });
        let t0 = std::time::Instant::now();
        let tables = run(id, fast);
        for t in &tables {
            if markdown {
                println!("{}", t.to_markdown());
            } else {
                println!("{}", t.to_text());
            }
        }
        eprintln!("<<< {id} done in {:.1?}\n", t0.elapsed());
    }
}
