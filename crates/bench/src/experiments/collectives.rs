//! `bench-collectives` — flat vs hierarchical collectives, measured on the
//! threaded runtime and priced on the BG/Q model up to the full machine.
//!
//! The engine's exchange build ends in one gather per build. Its cost has
//! two regimes: the bandwidth term `(P−1)·b/BW` every algorithm shares
//! (all contributions land on the root), and the latency term — `(P−1)·α`
//! for the flat root gather vs `⌈log₂P⌉·α` for the binomial tree. At the
//! paper's 6,291,456 threads the flat term alone costs ~0.2 s per build;
//! the hierarchical algorithms keep the collective in the hundreds of
//! microseconds, which is what keeps the modeled build efficiency flat.
//!
//! Two sections:
//!
//! 1. **measured** — the runtime's actual message patterns: `run_spmd_cfg`
//!    executes the same gather under [`CollectiveMode::Flat`] and
//!    [`CollectiveMode::Hierarchical`], the [`TrafficLog`] records every
//!    wire message, and `liair-bgq`'s router prices the resulting link
//!    loads — executed pattern, modeled machine;
//! 2. **modeled** — [`liair_bgq::collectives::gather`] over the paper's
//!    scaling series (1 → 96 racks), with the strong-scaling build
//!    efficiency each algorithm family sustains.
//!
//! Writes the machine-readable `BENCH_collectives.json`.

use crate::Table;
use liair_bgq::collectives::{gather, CollectiveAlgo};
use liair_bgq::machine::scaling_series;
use liair_bgq::MachineConfig;
use liair_runtime::{fit_torus, run_spmd_cfg, CollectiveMode, CommConfig};

/// Per-rank gather payload of a typical engine build: a node group's
/// chunk contributions plus the timing trailer (10 doubles).
const PAYLOAD_BYTES: f64 = 80.0;

/// Compute seconds of the one-rack build the strong-scaling efficiency is
/// measured against (the paper's per-MD-step exchange budget).
const T_BUILD_1RACK_S: f64 = 30.0;

/// One modeled scaling point.
struct ModelRow {
    racks: usize,
    threads: usize,
    t_flat: f64,
    t_tree: f64,
    t_torus: f64,
    eff_flat: f64,
    eff_hier: f64,
}

/// Strong-scaling efficiency of a build whose compute shrinks as `1/P`
/// while every build pays one gather: `t_ideal / (t_ideal + t_gather)`.
fn efficiency(t_ideal: f64, t_gather: f64) -> f64 {
    t_ideal / (t_ideal + t_gather)
}

fn model_series() -> Vec<ModelRow> {
    let series = scaling_series();
    let n1 = series[0].nodes() as f64;
    series
        .iter()
        .map(|m| {
            let t_ideal = T_BUILD_1RACK_S * n1 / m.nodes() as f64;
            let t_flat = gather(m, CollectiveAlgo::FlatRoot, PAYLOAD_BYTES);
            let t_tree = gather(m, CollectiveAlgo::BinomialTree, PAYLOAD_BYTES);
            let t_torus = gather(m, CollectiveAlgo::TorusPipelined, PAYLOAD_BYTES);
            ModelRow {
                racks: m.nodes() / 1024,
                threads: m.threads(),
                t_flat,
                t_tree,
                t_torus,
                eff_flat: efficiency(t_ideal, t_flat),
                eff_hier: efficiency(t_ideal, t_tree),
            }
        })
        .collect()
}

/// One measured point: the runtime's real gather traffic under a mode.
struct MeasuredRow {
    nranks: usize,
    mode: CollectiveMode,
    messages: usize,
    mean_hops: f64,
    max_link_bytes: f64,
    modeled_s: f64,
}

fn measure(nranks: usize, mode: CollectiveMode, words: usize) -> MeasuredRow {
    let cfg = CommConfig {
        mode,
        fault: None,
        torus: Some(fit_torus(nranks)),
    };
    let run = run_spmd_cfg(nranks, cfg, move |comm| {
        let payload = vec![comm.rank() as f64 + 0.5; words];
        comm.gather(0, payload).expect("fault-free gather");
    })
    .expect("valid fault-free configuration");
    let log = run.traffic.expect("torus was configured");
    let machine = MachineConfig::bgq_nodes(nranks);
    MeasuredRow {
        nranks,
        mode,
        messages: log.messages(),
        mean_hops: log.mean_hops(),
        max_link_bytes: log.route().max(),
        modeled_s: log.modeled_comm_time(&machine),
    }
}

/// Run the `bench-collectives` experiment.
pub fn bench_collectives(fast: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"bench-collectives\",\n");
    json.push_str(&format!(
        "  \"payload_bytes_per_rank\": {PAYLOAD_BYTES},\n  \"t_build_1rack_s\": {T_BUILD_1RACK_S},\n"
    ));

    // ── measured: the runtime's wire patterns through the torus router ──
    let rank_counts: &[usize] = if fast { &[8, 16] } else { &[8, 16, 32, 64] };
    let words = 10; // PAYLOAD_BYTES / 8
    let mut tm = Table::new(
        "bench-collectives — measured gather traffic (threaded runtime, routed on the fitted torus)",
        &[
            "ranks",
            "mode",
            "wire msgs",
            "mean hops",
            "max link [B]",
            "modeled [us]",
        ],
    );
    json.push_str("  \"measured\": [\n");
    let mut measured = Vec::new();
    for &n in rank_counts {
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            measured.push(measure(n, mode, words));
        }
    }
    for (i, r) in measured.iter().enumerate() {
        tm.row(vec![
            r.nranks.to_string(),
            r.mode.name().to_string(),
            r.messages.to_string(),
            format!("{:.2}", r.mean_hops),
            format!("{:.0}", r.max_link_bytes),
            format!("{:.2}", r.modeled_s * 1e6),
        ]);
        json.push_str(&format!(
            "    {{\"ranks\": {}, \"mode\": \"{}\", \"messages\": {}, \"mean_hops\": {:.3}, \
             \"max_link_bytes\": {:.1}, \"modeled_s\": {:.3e}}}{}\n",
            r.nranks,
            r.mode.name(),
            r.messages,
            r.mean_hops,
            r.max_link_bytes,
            r.modeled_s,
            if i + 1 < measured.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    tm.note = "every non-root rank sends its contribution exactly once in both modes; \
               the tree spreads the root's in-degree over rounds"
        .into();
    tables.push(tm);

    // ── modeled: the scaling series to 6,291,456 threads ──
    let rows = model_series();
    let mut t = Table::new(
        "bench-collectives — modeled build efficiency, flat vs hierarchical gather (80 B/rank)",
        &[
            "racks",
            "threads",
            "flat gather [s]",
            "tree gather [s]",
            "torus gather [s]",
            "eff flat",
            "eff hier",
            "hier/flat speedup",
        ],
    );
    json.push_str("  \"modeled\": [\n");
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![
            r.racks.to_string(),
            r.threads.to_string(),
            format!("{:.3e}", r.t_flat),
            format!("{:.3e}", r.t_tree),
            format!("{:.3e}", r.t_torus),
            format!("{:.4}", r.eff_flat),
            format!("{:.4}", r.eff_hier),
            format!("{:.1}x", r.t_flat / r.t_tree),
        ]);
        json.push_str(&format!(
            "    {{\"racks\": {}, \"threads\": {}, \"t_flat_s\": {:.6e}, \"t_tree_s\": {:.6e}, \
             \"t_torus_s\": {:.6e}, \"eff_flat\": {:.6}, \"eff_hier\": {:.6}}}{}\n",
            r.racks,
            r.threads,
            r.t_flat,
            r.t_tree,
            r.t_torus,
            r.eff_flat,
            r.eff_hier,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let dominated = rows
        .iter()
        .filter(|r| r.threads >= 1_000_000)
        .all(|r| r.eff_hier > r.eff_flat && r.t_tree < r.t_flat);
    json.push_str(&format!(
        "  \"hierarchical_dominates_at_1m_threads\": {dominated}\n}}\n"
    ));
    let full = rows.last().expect("scaling series is non-empty");
    t.note = format!(
        "full machine ({} threads): flat loses {:.1}% build efficiency to the (P-1)*alpha wall, \
         hierarchical {:.2}%; dominance at >=1M threads: {}",
        full.threads,
        (1.0 - full.eff_flat) * 100.0,
        (1.0 - full.eff_hier) * 100.0,
        dominated
    );
    tables.push(t);

    match std::fs::write("BENCH_collectives.json", &json) {
        Ok(()) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str("; BENCH_collectives.json written"),
        Err(e) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str(&format!("; JSON not written: {e}")),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_strictly_dominates_at_scale() {
        // The acceptance property: at >= 1M threads the hierarchical
        // gather is strictly cheaper and sustains strictly higher build
        // efficiency, and the series reaches the paper's 6,291,456 threads.
        let rows = model_series();
        assert_eq!(rows.last().unwrap().threads, 6_291_456);
        let mut checked = 0;
        for r in rows.iter().filter(|r| r.threads >= 1_000_000) {
            assert!(
                r.t_tree < r.t_flat,
                "{} threads: tree {} !< flat {}",
                r.threads,
                r.t_tree,
                r.t_flat
            );
            assert!(
                r.eff_hier > r.eff_flat,
                "{} threads: eff_hier {} !> eff_flat {}",
                r.threads,
                r.eff_hier,
                r.eff_flat
            );
            checked += 1;
        }
        assert!(checked >= 4, "series must cover the >=1M-thread regime");
        // And the full-machine gap is the (P−1)·α wall: >2 orders.
        let full = rows.last().unwrap();
        assert!(full.t_flat / full.t_tree > 100.0);
    }

    #[test]
    fn measured_modes_send_same_message_count() {
        // Both gathers are one-send-per-non-root; the tree only reshapes
        // *where* the messages go.
        let flat = measure(8, CollectiveMode::Flat, 4);
        let hier = measure(8, CollectiveMode::Hierarchical, 4);
        assert_eq!(flat.messages, 7);
        assert_eq!(hier.messages, 7);
        assert!(flat.modeled_s > 0.0 && hier.modeled_s > 0.0);
    }
}
