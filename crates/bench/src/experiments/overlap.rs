//! `bench-overlap` — the pipelined exchange engine: comm/compute overlap
//! and work-stealing load balance, measured on the threaded runtime and
//! priced on the BG/Q model up to the full machine.
//!
//! Three sections:
//!
//! 1. **measured** — the same exchange build on the staged gather vs the
//!    double-buffered pipeline ([`PipelineMode`]), over a rank sweep: the
//!    staged reduce is pure exposed latency, the pipelined backend hides
//!    result ingestion behind the root's own chunks and reports what it
//!    hid (`t_reduce_hidden_s`), what it stole, and the per-rank busy
//!    bracket;
//! 2. **straggler** — one deterministically stalled rank (seed found via
//!    the [`FaultInjector`] oracle): the staged path discovers the stall
//!    at the final gather after the full retry backoff, the pipeline
//!    declares it as soon as its timeout fires and feeds its chunks to
//!    the steal queue, so the build's tail latency collapses;
//! 3. **modeled** — [`liair_bgq::collectives::gather_pipelined`] over the
//!    paper's scaling series: an 8-buffer pipelined gather against the
//!    per-rack compute slice, with the exec∧reduce overlap fraction the
//!    schedule sustains at each size. Acceptance: ≥ 80% at 96 racks.
//!
//! Writes the machine-readable `BENCH_overlap.json`.

use crate::Table;
use liair_bgq::collectives::{gather_pipelined, CollectiveAlgo, PipelinedGather};
use liair_bgq::machine::scaling_series;
use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{
    BalanceStrategy, ExchangeEngine, ExecBackend, FaultPlan, HfxResult, PipelineMode,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use liair_runtime::FaultInjector;

/// Per-rank gather payload of a typical engine build (matches
/// `bench-collectives`).
const PAYLOAD_BYTES: f64 = 80.0;

/// Compute seconds of the one-rack build (the paper's per-MD-step
/// exchange budget).
const T_BUILD_1RACK_S: f64 = 30.0;

/// Chunk buffers in flight per rank in the modeled pipeline — two
/// rotating send buffers deep enough that the steady state hides
/// `(n−1)/n` of the collective.
const N_BUFFERS: usize = 8;

/// A laptop-scale exchange workload big enough that the pipeline has a
/// tail to steal (norb Gaussians → norb·(norb+1)/2 pairs).
fn workload(norb: usize, n: usize) -> (RealGrid, PoissonSolver, Vec<Vec<f64>>, PairList) {
    let l = 12.0;
    let grid = RealGrid::cubic(liair_basis::Cell::cubic(l), n);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(4242);
    let centers: Vec<Vec3> = (0..norb)
        .map(|_| {
            Vec3::new(
                rng.range_f64(3.0, 9.0),
                rng.range_f64(3.0, 9.0),
                rng.range_f64(3.0, 9.0),
            )
        })
        .collect();
    let fields: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    (-1.1 * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
    (grid, solver, fields, pairs)
}

fn run_build(
    grid: &RealGrid,
    solver: &PoissonSolver,
    fields: &[Vec<f64>],
    pairs: &PairList,
    nranks: usize,
    mode: PipelineMode,
    fault: Option<FaultPlan>,
) -> (HfxResult, f64) {
    let mut b = ExchangeEngine::builder(grid, solver)
        .backend(ExecBackend::Comm {
            nranks,
            strategy: BalanceStrategy::GreedyLpt,
        })
        .pipeline(mode)
        .no_faults();
    if let Some(plan) = fault {
        b = b.fault_plan(plan);
    }
    let engine = b.build().expect("valid engine configuration");
    let t0 = std::time::Instant::now();
    let out = engine.energy(fields, pairs);
    (out, t0.elapsed().as_secs_f64())
}

/// The smallest seed whose deterministic stall set kills exactly one of
/// `nranks` ranks — the straggler scenario, replayable forever.
fn one_straggler_seed(nranks: usize) -> u64 {
    (0u64..)
        .find(|&seed| {
            let inj = FaultInjector::new(FaultPlan::with_stalls(seed)).expect("valid plan");
            (1..nranks).filter(|&r| inj.stalled(r)).count() == 1
        })
        .expect("some seed stalls exactly one rank")
}

/// One modeled scaling point.
struct ModelRow {
    racks: usize,
    threads: usize,
    compute_s: f64,
    staged_s: f64,
    pipe: PipelinedGather,
}

fn model_series() -> Vec<ModelRow> {
    let series = scaling_series();
    let n1 = series[0].nodes() as f64;
    series
        .iter()
        .map(|m| {
            let compute_s = T_BUILD_1RACK_S * n1 / m.nodes() as f64;
            let staged_s =
                liair_bgq::collectives::gather(m, CollectiveAlgo::BinomialTree, PAYLOAD_BYTES);
            let pipe = gather_pipelined(
                m,
                CollectiveAlgo::BinomialTree,
                PAYLOAD_BYTES,
                N_BUFFERS,
                compute_s,
            );
            ModelRow {
                racks: m.nodes() / 1024,
                threads: m.threads(),
                compute_s,
                staged_s,
                pipe,
            }
        })
        .collect()
}

/// Run the `bench-overlap` experiment.
pub fn bench_overlap(fast: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"bench-overlap\",\n");
    json.push_str(&format!(
        "  \"payload_bytes_per_rank\": {PAYLOAD_BYTES}, \"t_build_1rack_s\": {T_BUILD_1RACK_S}, \
         \"n_buffers\": {N_BUFFERS},\n"
    ));

    // ── measured: staged vs pipelined on the threaded runtime ──
    let (grid, solver, fields, pairs) = if fast {
        workload(5, 14)
    } else {
        workload(7, 16)
    };
    let rank_counts: &[usize] = if fast { &[2, 4] } else { &[2, 4, 6] };
    let mut tm = Table::new(
        "bench-overlap — measured exchange build, staged gather vs double-buffered pipeline",
        &[
            "ranks",
            "schedule",
            "wall [ms]",
            "reduce exposed [ms]",
            "reduce hidden [ms]",
            "overlap",
            "stolen",
            "grants",
            "busy max/min",
        ],
    );
    json.push_str("  \"measured\": [\n");
    let mut first = true;
    for &nranks in rank_counts {
        for mode in [PipelineMode::Staged, PipelineMode::Pipelined] {
            let (out, wall_s) = run_build(&grid, &solver, &fields, &pairs, nranks, mode, None);
            let p = &out.profile;
            let name = match mode {
                PipelineMode::Staged => "staged",
                PipelineMode::Pipelined => "pipelined",
            };
            let balance = if p.rank_busy_min_s > 0.0 {
                format!("{:.1}", p.rank_busy_max_s / p.rank_busy_min_s)
            } else {
                "-".into()
            };
            tm.row(vec![
                nranks.to_string(),
                name.into(),
                format!("{:.1}", wall_s * 1e3),
                format!("{:.2}", p.t_reduce_s * 1e3),
                format!("{:.2}", p.t_reduce_hidden_s * 1e3),
                format!("{:.2}", p.exec_reduce_overlap_frac()),
                p.chunks_stolen.to_string(),
                p.steal_requests.to_string(),
                balance,
            ]);
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"ranks\": {nranks}, \"schedule\": \"{name}\", \"wall_s\": {wall_s:.6}, \
                 \"reduce_exposed_s\": {:.6}, \"reduce_hidden_s\": {:.6}, \
                 \"overlap_frac\": {:.4}, \"chunks_stolen\": {}, \"steal_requests\": {}, \
                 \"busy_max_s\": {:.6}, \"busy_min_s\": {:.6}, \"idle_total_s\": {:.6}}}",
                p.t_reduce_s,
                p.t_reduce_hidden_s,
                p.exec_reduce_overlap_frac(),
                p.chunks_stolen,
                p.steal_requests,
                p.rank_busy_max_s,
                p.rank_busy_min_s,
                p.rank_idle_total_s,
            ));
        }
    }
    json.push_str("\n  ],\n");
    tm.note = "same canonical bits on every row; the pipeline converts exposed reduce \
               latency into hidden ingestion behind the root's own chunks"
        .into();
    tables.push(tm);

    // ── straggler: re-issue at timeout vs at the final gather ──
    let nranks = 4;
    let seed = one_straggler_seed(nranks);
    let plan = FaultPlan::with_stalls(seed);
    let mut ts = Table::new(
        "bench-overlap — straggler tail latency, one deterministically stalled rank of 4",
        &[
            "schedule",
            "wall [ms]",
            "stalled",
            "re-issued",
            "stolen",
            "retries",
        ],
    );
    json.push_str(&format!(
        "  \"straggler\": {{\"seed\": {seed}, \"nranks\": {nranks}, \"runs\": [\n"
    ));
    let mut stall_walls = [0.0f64; 2];
    for (i, mode) in [PipelineMode::Staged, PipelineMode::Pipelined]
        .into_iter()
        .enumerate()
    {
        let (out, wall_s) = run_build(&grid, &solver, &fields, &pairs, nranks, mode, Some(plan));
        stall_walls[i] = wall_s;
        let p = &out.profile;
        let name = if i == 0 { "staged" } else { "pipelined" };
        ts.row(vec![
            name.into(),
            format!("{:.1}", wall_s * 1e3),
            p.ranks_stalled.to_string(),
            p.chunks_reissued.to_string(),
            p.chunks_stolen.to_string(),
            p.comm_retries.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"schedule\": \"{name}\", \"wall_s\": {wall_s:.6}, \"ranks_stalled\": {}, \
             \"chunks_reissued\": {}, \"chunks_stolen\": {}, \"comm_retries\": {}}}{}\n",
            p.ranks_stalled,
            p.chunks_reissued,
            p.chunks_stolen,
            p.comm_retries,
            if i == 0 { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ], \"tail_speedup\": {:.3}}},\n",
        stall_walls[0] / stall_walls[1].max(1e-12)
    ));
    ts.note = format!(
        "seed {seed}: the staged gather waits out the stalled rank's full retry backoff \
         before the root recomputes; the pipeline declares it at the first timeout and \
         the survivors steal its share ({:.1}x tail speedup here)",
        stall_walls[0] / stall_walls[1].max(1e-12)
    );
    tables.push(ts);

    // ── modeled: the scaling series to 6,291,456 threads ──
    let rows = model_series();
    let mut t = Table::new(
        "bench-overlap — modeled 8-buffer pipelined gather vs compute slice (80 B/rank)",
        &[
            "racks",
            "threads",
            "compute [s]",
            "staged gather [s]",
            "exposed [s]",
            "hidden [s]",
            "overlap",
        ],
    );
    json.push_str("  \"modeled\": [\n");
    for (i, r) in rows.iter().enumerate() {
        t.row(vec![
            r.racks.to_string(),
            r.threads.to_string(),
            format!("{:.3e}", r.compute_s),
            format!("{:.3e}", r.staged_s),
            format!("{:.3e}", r.pipe.exposed_s),
            format!("{:.3e}", r.pipe.hidden_s),
            format!("{:.4}", r.pipe.overlap_frac),
        ]);
        json.push_str(&format!(
            "    {{\"racks\": {}, \"threads\": {}, \"compute_s\": {:.6e}, \
             \"staged_gather_s\": {:.6e}, \"exposed_s\": {:.6e}, \"hidden_s\": {:.6e}, \
             \"overlap_frac\": {:.6}}}{}\n",
            r.racks,
            r.threads,
            r.compute_s,
            r.staged_s,
            r.pipe.exposed_s,
            r.pipe.hidden_s,
            r.pipe.overlap_frac,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let full = rows.last().expect("scaling series is non-empty");
    let ok = full.pipe.overlap_frac >= 0.80;
    json.push_str(&format!(
        "  \"overlap_frac_96racks\": {:.6},\n  \"overlap_ok_96racks\": {ok}\n}}\n",
        full.pipe.overlap_frac
    ));
    t.note = format!(
        "96 racks ({} threads): the pipeline hides {:.1}% of the reduce behind compute \
         (acceptance >= 80%: {})",
        full.threads,
        full.pipe.overlap_frac * 100.0,
        ok
    );
    tables.push(t);

    match std::fs::write("BENCH_overlap.json", &json) {
        Ok(()) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str("; BENCH_overlap.json written"),
        Err(e) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str(&format!("; JSON not written: {e}")),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_overlap_meets_acceptance_at_96_racks() {
        // The win condition: exec∧reduce overlap ≥ 80% at the simulated
        // 96-rack scale, sustained across the >=1M-thread regime.
        let rows = model_series();
        let full = rows.last().unwrap();
        assert_eq!(full.threads, 6_291_456);
        assert!(
            full.pipe.overlap_frac >= 0.80,
            "96 racks: overlap {} < 0.80",
            full.pipe.overlap_frac
        );
        for r in &rows {
            // The pipeline never exposes more than the staged gather plus
            // the per-buffer latency overhead, and hides the rest.
            assert!(r.pipe.overlap_frac >= 0.0 && r.pipe.overlap_frac < 1.0);
            assert!(r.pipe.hidden_s >= 0.0);
        }
    }

    #[test]
    fn straggler_seed_is_deterministic_and_singular() {
        let seed = one_straggler_seed(4);
        let inj = FaultInjector::new(FaultPlan::with_stalls(seed)).unwrap();
        assert_eq!((1..4).filter(|&r| inj.stalled(r)).count(), 1);
        assert!(!inj.stalled(0), "rank 0 never stalls");
        assert_eq!(seed, one_straggler_seed(4), "search is replayable");
    }

    #[test]
    fn measured_pipeline_hides_reduce_and_steals_the_tail() {
        // Cheap end-to-end sanity of the measured section's machinery:
        // identical energy, staged overlap = 0, pipelined tail stolen.
        let (grid, solver, fields, pairs) = workload(4, 12);
        let (staged, _) = run_build(
            &grid,
            &solver,
            &fields,
            &pairs,
            3,
            PipelineMode::Staged,
            None,
        );
        let (pipelined, _) = run_build(
            &grid,
            &solver,
            &fields,
            &pairs,
            3,
            PipelineMode::Pipelined,
            None,
        );
        assert_eq!(staged.energy.to_bits(), pipelined.energy.to_bits());
        assert_eq!(staged.profile.exec_reduce_overlap_frac(), 0.0);
        assert_eq!(staged.profile.chunks_stolen, 0);
        let nchunks = pairs.len().div_ceil(2);
        assert_eq!(pipelined.profile.chunks_stolen, nchunks / 4);
        assert!(pipelined.profile.rank_busy_max_s > 0.0);
    }
}
