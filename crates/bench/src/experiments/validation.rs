//! `tab-hfx-validation`: the correctness table — SCF total energies against
//! literature values, and the grid pair-Poisson exchange against the
//! analytic Gaussian-integral reference.

use crate::Table;
use liair_basis::{systems, Basis};
use liair_core::hfx::{analytic_exchange, analytic_exchange_orbitals, grid_exchange_for_molecule};
use liair_scf::{rhf, ScfOptions};

/// Run the validation table.
pub fn tab_hfx_validation(fast: bool) -> Vec<Table> {
    let opts = ScfOptions::default();

    // --- SCF energies vs literature ---
    let mut t1 = Table::new(
        "tab-hfx-validation — RHF/STO-3G total energies vs literature",
        &[
            "system",
            "E(this work) [Ha]",
            "E(literature) [Ha]",
            "|dE| [Ha]",
        ],
    );
    let cases: Vec<(&str, liair_basis::Molecule, f64)> = vec![
        ("H2 (R=1.4)", systems::h2(), -1.1167),
        ("He", systems::helium(), -2.8078),
        ("H2O", systems::water(), -74.963),
    ];
    for (name, mol, lit) in cases {
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &opts);
        assert!(scf.converged, "{name} did not converge");
        t1.row(vec![
            name.into(),
            format!("{:.5}", scf.energy),
            format!("{:.4}", lit),
            format!("{:.1e}", (scf.energy - lit).abs()),
        ]);
    }
    t1.note =
        "literature: Szabo & Ostlund (H2, He); standard STO-3G water near experiment geometry"
            .into();

    // --- grid vs analytic exchange ---
    let mut t2 = Table::new(
        "tab-hfx-validation — grid pair-Poisson E_x vs analytic",
        &[
            "system",
            "grid",
            "E_x grid [Ha]",
            "E_x analytic [Ha]",
            "|err| [Ha]",
            "t_exec [s]",
            "t_fft [s]",
            "pairs comp/scr",
            "allocs",
        ],
    );
    let profile_cols = |p: &liair_core::BuildProfile| -> Vec<String> {
        vec![
            format!("{:.3}", p.t_exec_s),
            format!("{:.3}", p.t_fft_s),
            format!("{}/{}", p.pairs_computed, p.pairs_screened),
            format!("{}", p.steady_allocs),
        ]
    };
    {
        // H2: all orbitals, resolution sweep.
        let mol = systems::h2();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &opts);
        let want = analytic_exchange(&basis, &scf.density, 0.0);
        let grids: &[usize] = if fast { &[32, 64] } else { &[24, 48, 96] };
        for &n in grids {
            let out = grid_exchange_for_molecule(&mol, &basis, &scf, n, 7.0, 0.0, 0.0);
            let mut row = vec![
                "H2".into(),
                format!("{n}^3"),
                format!("{:.6}", out.result.energy),
                format!("{:.6}", want),
                format!("{:.1e}", (out.result.energy - want).abs()),
            ];
            row.extend(profile_cols(&out.result.profile));
            t2.row(row);
        }
    }
    {
        // Water: valence-only (pseudopotential-style core filtering).
        let mol = systems::water();
        let basis = Basis::sto3g(&mol);
        let scf = rhf(&mol, &basis, &opts);
        let n = if fast { 64 } else { 80 };
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, n, 7.0, 0.0, 0.4);
        let want = analytic_exchange_orbitals(&out.basis_centered, &out.c_kept, out.c_kept.ncols());
        let mut row = vec![
            "H2O (valence)".into(),
            format!("{n}^3"),
            format!("{:.6}", out.result.energy),
            format!("{:.6}", want),
            format!("{:.1e}", (out.result.energy - want).abs()),
        ];
        row.extend(profile_cols(&out.result.profile));
        t2.row(row);
    }
    t2.note =
        "same pair tasks the parallel scheme distributes; errors are pure grid resolution".into();
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors_are_small() {
        let tables = tab_hfx_validation(true);
        // SCF errors below 2 mHa.
        for row in &tables[0].rows {
            let err: f64 = row[3].parse().unwrap();
            assert!(err < 2e-3, "{row:?}");
        }
        // Grid errors below 20 mHa even at the fast resolutions.
        for row in &tables[1].rows {
            let err: f64 = row[4].parse().unwrap();
            assert!(err < 2e-2, "{row:?}");
            // Every build row carries a populated profile.
            let t_exec: f64 = row[5].parse().unwrap();
            assert!(t_exec > 0.0, "unpopulated profile in {row:?}");
            assert!(row[7].contains('/'), "{row:?}");
        }
    }
}
