//! `bench-incremental` — the temporal-locality payoff: incremental
//! exact-exchange rebuilds (dirty-pair tracking + contribution caching)
//! against from-scratch builds, on an MD-step-like workload (all orbitals
//! drift a little between consecutive geometries) for an H2-chain and a
//! Li2O2-like cluster, plus the all-clean K-operator rebuild of a
//! near-converged SCF iteration. Writes `BENCH_incremental.json`.

use crate::Table;
use liair_basis::{systems, Basis, Cell};
use liair_core::screening::{build_pair_list, OrbitalInfo};
use liair_core::IncrementalExchange;
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::Vec3;
use std::time::Instant;

fn gaussian_field(grid: &RealGrid, center: Vec3, sigma: f64) -> Vec<f64> {
    (0..grid.len())
        .map(|p| {
            let r = grid.point_flat(p);
            let d2 = r.distance(center).powi(2);
            (-d2 / (2.0 * sigma * sigma)).exp()
        })
        .collect()
}

struct MdScenario {
    name: &'static str,
    edge: f64,
    centers: Vec<Vec3>,
}

/// Orbital centers of the two benchmark systems: a 1-D H2-chain of
/// localized orbitals, and the Li2O2 cluster's atom positions (a stand-in
/// for its localized valence orbitals).
fn scenarios(fast: bool) -> Vec<MdScenario> {
    let n_chain = if fast { 8 } else { 12 };
    let spacing = 2.0;
    let edge_chain = spacing * (n_chain as f64 - 1.0) + 10.0;
    let chain: Vec<Vec3> = (0..n_chain)
        .map(|k| Vec3::new(5.0 + spacing * k as f64, edge_chain / 2.0, edge_chain / 2.0))
        .collect();
    let li2o2 = systems::li2o2();
    let edge_li = 16.0;
    let centroid = li2o2.centroid();
    let cluster: Vec<Vec3> = li2o2
        .atoms
        .iter()
        .map(|a| a.pos - centroid + Vec3::splat(edge_li / 2.0))
        .collect();
    vec![
        MdScenario {
            name: "h2-chain",
            edge: edge_chain,
            centers: chain,
        },
        MdScenario {
            name: "li2o2",
            edge: edge_li,
            centers: cluster,
        },
    ]
}

/// Best-of-2 wall time of `f` in milliseconds.
fn time_ms(f: &mut dyn FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let v = f();
        std::hint::black_box(v);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Run the experiment; `fast` shrinks grids and orbital counts.
pub fn bench_incremental(fast: bool) -> Vec<Table> {
    let n_grid = if fast { 24 } else { 32 };
    let sigma = 1.0;
    // Per-orbital MD-step displacement: orbital k drifts 0.002·(k+1) Bohr,
    // so the eps_inc sweep peels orbitals from clean to dirty.
    let drift = 0.002;
    let eps_incs = [1e-1, 1e-2, 1e-3, 0.0];

    let mut t1 = Table::new(
        "bench-incremental — exchange energy across one MD-like step",
        &[
            "system",
            "eps_inc",
            "reused",
            "recomputed",
            "scratch",
            "incremental",
            "speedup",
            "|dE|",
            "bound",
            "t_exec [ms]",
            "cache hits",
        ],
    );
    let mut json_rows: Vec<String> = Vec::new();
    let mut best_speedup = 0.0f64;
    for sc in scenarios(fast) {
        let grid = RealGrid::cubic(Cell::cubic(sc.edge), n_grid);
        let solver = PoissonSolver::isolated(grid);
        let infos: Vec<OrbitalInfo> = sc
            .centers
            .iter()
            .map(|&c| OrbitalInfo {
                center: c,
                spread: sigma,
            })
            .collect();
        let base: Vec<Vec<f64>> = sc
            .centers
            .iter()
            .map(|&c| gaussian_field(&grid, c, sigma))
            .collect();
        // The "next MD step": every orbital drifts by its own small
        // displacement along a fixed direction.
        let stepped_infos: Vec<OrbitalInfo> = infos
            .iter()
            .enumerate()
            .map(|(k, o)| OrbitalInfo {
                center: o.center + Vec3::new(drift * (k + 1) as f64, 0.0, 0.0),
                spread: o.spread,
            })
            .collect();
        let stepped: Vec<Vec<f64>> = stepped_infos
            .iter()
            .map(|o| gaussian_field(&grid, o.center, sigma))
            .collect();
        let pairs = build_pair_list(&infos, 1e-6, None);

        // From-scratch reference on the stepped geometry (warm + timed).
        let exact = liair_core::exchange_energy(&grid, &solver, &stepped, &pairs);
        let t_scratch =
            time_ms(&mut || liair_core::exchange_energy(&grid, &solver, &stepped, &pairs).energy);

        for &eps_inc in &eps_incs {
            let mut inc = IncrementalExchange::new(eps_inc, 0);
            inc.exchange_energy(&grid, &solver, &base, &infos, &pairs);
            // Time the stepped rebuild from a freshly primed cache each
            // repetition (re-prime between timings so reuse state is
            // identical).
            let mut result = None;
            let t_inc = {
                let mut best = f64::INFINITY;
                for _ in 0..2 {
                    let mut state = IncrementalExchange::new(eps_inc, 0);
                    state.exchange_energy(&grid, &solver, &base, &infos, &pairs);
                    let t0 = Instant::now();
                    let r = state.exchange_energy(&grid, &solver, &stepped, &stepped_infos, &pairs);
                    best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                    result = Some(r);
                }
                best
            };
            let r = result.unwrap();
            let err = (r.energy - exact.energy).abs();
            // Reused pairs carry fingerprint distance ≤ eps_inc each; the
            // pair value moves by at most ~2 per unit of distance per
            // endpoint, hence the 4·eps_inc·|E| drift bound.
            let bound = 4.0 * eps_inc * exact.energy.abs();
            let speedup = t_scratch / t_inc.max(1e-9);
            if r.inc.pairs_reused > 0 {
                best_speedup = best_speedup.max(speedup);
            }
            t1.row(vec![
                sc.name.into(),
                format!("{eps_inc:.0e}"),
                format!("{}", r.inc.pairs_reused),
                format!("{}", r.inc.pairs_recomputed),
                format!("{t_scratch:.2} ms"),
                format!("{t_inc:.2} ms"),
                format!("{speedup:.1}x"),
                format!("{err:.2e}"),
                if eps_inc > 0.0 {
                    format!("{bound:.2e}")
                } else {
                    "exact".into()
                },
                format!("{:.2}", r.profile.t_exec_s * 1e3),
                format!("{}", r.profile.cache_hits),
            ]);
            json_rows.push(format!(
                "    {{\"system\": \"{}\", \"eps_inc\": {:e}, \"pairs_reused\": {}, \"pairs_recomputed\": {}, \"pairs_invalidated\": {}, \"t_scratch_ms\": {:.3}, \"t_incremental_ms\": {:.3}, \"speedup\": {:.2}, \"abs_energy_error\": {:.3e}, \"error_bound\": {:.3e}}}",
                sc.name,
                eps_inc,
                r.inc.pairs_reused,
                r.inc.pairs_recomputed,
                r.inc.pairs_invalidated,
                t_scratch,
                t_inc,
                speedup,
                err,
                bound,
            ));
        }
    }
    t1.note = format!(
        "drift bound = 4·eps_inc·|E|; best reusing speedup {best_speedup:.1}x (target >= 3x)"
    );

    // --- K-operator path: the all-clean rebuild of a near-converged SCF
    // iteration (two separated H2, converged orbitals, nothing moved).
    let mut t2 = Table::new(
        "bench-incremental — K operator, near-converged iteration",
        &[
            "build",
            "time",
            "tasks (eval/reused)",
            "speedup",
            "t_ao/t_exec [ms]",
        ],
    );
    let mut mol = systems::h2();
    let mut far = systems::h2();
    far.translate(Vec3::new(0.0, 7.0, 0.0));
    mol.merge(&far);
    let edge = 16.0;
    let shift = Vec3::splat(edge / 2.0) - mol.centroid();
    mol.translate(shift);
    let basis = Basis::sto3g(&mol);
    let scf = liair_scf::rhf(&mol, &basis, &liair_scf::ScfOptions::default());
    let kgrid = RealGrid::cubic(Cell::cubic(edge), if fast { 24 } else { 40 });
    let ksolver = PoissonSolver::isolated(kgrid);
    let eps = 1e-4;
    let full_outcome =
        liair_core::ExchangeEngine::new(&kgrid, &ksolver).k_operator(&basis, &scf.c, scf.nocc, eps);
    let ev = full_outcome.evaluated;
    let t_full = time_ms(&mut || {
        liair_core::operator::exchange_operator_grid_screened(
            &basis, &scf.c, scf.nocc, &kgrid, &ksolver, eps,
        )
        .0
        .fro_norm()
    });
    let mut kinc = IncrementalExchange::new(1e-4, 0);
    kinc.exchange_operator(&basis, &scf.c, scf.nocc, &kgrid, &ksolver, eps);
    let mut reused_tasks = 0;
    let t_clean = time_ms(&mut || {
        let (k, _, _, st) = kinc.exchange_operator(&basis, &scf.c, scf.nocc, &kgrid, &ksolver, eps);
        reused_tasks = st.pairs_reused;
        k.fro_norm()
    });
    let k_speedup = t_full / t_clean.max(1e-9);
    t2.row(vec![
        "from scratch".into(),
        format!("{t_full:.2} ms"),
        format!("{ev}/0"),
        "1.0x".into(),
        format!(
            "{:.2}/{:.2}",
            full_outcome.profile.t_ao_eval_s * 1e3,
            full_outcome.profile.t_exec_s * 1e3
        ),
    ]);
    t2.row(vec![
        "incremental (all clean)".into(),
        format!("{t_clean:.2} ms"),
        format!("{ev}/{reused_tasks}"),
        format!("{k_speedup:.1}x"),
        format!(
            "{:.2}/{:.2}",
            kinc.last_profile.t_ao_eval_s * 1e3,
            kinc.last_profile.t_exec_s * 1e3
        ),
    ]);
    t2.note = "clean rebuild pays localization + fingerprints, zero Poisson solves".into();

    let mut json = String::from("{\n  \"experiment\": \"bench-incremental\",\n  \"md_step\": [\n");
    json.push_str(&json_rows.join(",\n"));
    json.push_str(&format!(
        "\n  ],\n  \"k_operator\": {{\"t_scratch_ms\": {t_full:.3}, \"t_all_clean_ms\": {t_clean:.3}, \"speedup\": {k_speedup:.2}, \"tasks_evaluated\": {ev}, \"tasks_reused\": {reused_tasks}}},\n  \"best_md_speedup\": {best_speedup:.2}\n}}\n"
    ));
    match std::fs::write("BENCH_incremental.json", &json) {
        Ok(()) => t2.note.push_str("; BENCH_incremental.json written"),
        Err(e) => t2.note.push_str(&format!("; JSON not written: {e}")),
    }
    vec![t1, t2]
}
