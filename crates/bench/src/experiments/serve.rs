//! `bench-serve` — soak the multi-tenant batch service (PR 9): hundreds
//! of mixed SCF / MTS-MD / screening jobs from three tenants through
//! admission, aged scheduling, rank-pool leasing, the cross-job exchange
//! cache, and checkpoint/restart, measuring what the acceptance criteria
//! ask for:
//!
//! * throughput and p50/p90/p99 job latency;
//! * cross-job cache hit rate on the repeated-system screening workload
//!   (target > 50%);
//! * preempt/fault resume counts, and the fraction of resumed jobs whose
//!   final energy bitwise matches an uninterrupted reference run
//!   (target ≥ 95%);
//! * aggregate incremental-exchange reuse and FFT plan-cache counters,
//!   surfaced per job through [`BuildProfile`]-carrying `JobOutput`s.
//!
//! Writes `BENCH_serve.json`. `fast` shrinks the batch to a few dozen
//! jobs; the full run drives ≥ 200.

use crate::Table;
use liair_core::IncStats;
use liair_runtime::SeedConfig;
use liair_serve::{
    run_and_verify, Disruption, JobKind, JobReport, JobSpec, ScfSystem, ServiceConfig, TenantQuota,
};

/// The deterministic mixed workload (the soak test's mix, at bench
/// scale): `n` jobs cycling over tenants and kinds, screening jobs
/// drawn from a *small* set of `(system, seed)` keys so repeats hit the
/// cross-job cache, and roughly every 6th job disrupted.
fn mixed_jobs(n: usize) -> Vec<JobSpec> {
    let tenants = ["astra", "borel", "curie"];
    let scf_systems = [
        ScfSystem::H2,
        ScfSystem::Helium,
        ScfSystem::LiH,
        ScfSystem::Water,
    ];
    let screens = [("pc", 3u64), ("dmso", 5), ("dme", 7)];
    (0..n)
        .map(|i| {
            let tenant = tenants[i % tenants.len()];
            let kind = match i % 3 {
                0 => {
                    let (system, seed) = screens[(i / 3) % screens.len()];
                    JobKind::Screening {
                        system: system.to_string(),
                        extent: 16,
                        norb: 3,
                        seed,
                    }
                }
                1 => JobKind::Scf {
                    system: scf_systems[(i / 3) % scf_systems.len()],
                    incremental_fock: i % 6 == 1,
                },
                _ => JobKind::Md {
                    n_waters: 2,
                    n_outer: 5,
                    n_inner: 1 + (i / 3) % 3,
                    temperature: 300.0,
                },
            };
            // Screening jobs are single-build: disruption targets the
            // checkpointable kinds (SCF, MD).
            let disruption = if i % 4 == 1 && i % 3 != 0 {
                if i % 8 == 1 {
                    Disruption::Preempt { at_step: 2 }
                } else {
                    Disruption::Fault { at_step: 3 }
                }
            } else {
                Disruption::None
            };
            // A disruption must fire before the job finishes: H₂/He
            // converge in 2-3 iterations, so disrupted SCF jobs run LiH.
            let kind = match (kind, disruption) {
                (
                    JobKind::Scf {
                        incremental_fock, ..
                    },
                    d,
                ) if d.is_disruptive() => JobKind::Scf {
                    system: ScfSystem::LiH,
                    incremental_fock,
                },
                (kind, _) => kind,
            };
            JobSpec::builder(kind)
                .tenant(tenant)
                .priority((i % 5) as u32)
                .nranks(1 + i % 3)
                .seeds(SeedConfig::default().with_md_seed(100 + (i / 3) as u64 % 4))
                .disruption(disruption)
                .build()
                .expect("bench specs are valid")
        })
        .collect()
}

/// Kind class of a completed job, for the per-class breakdown.
fn class_of(spec: &JobSpec) -> &'static str {
    match spec.kind {
        JobKind::Scf { .. } => "scf",
        JobKind::Md { .. } => "md",
        JobKind::Screening { .. } => "screening",
        JobKind::Reaction { .. } => "reaction",
        JobKind::Solvation { .. } => "solvation",
    }
}

/// Run the soak; `fast` trims the batch to smoke-test scale.
pub fn bench_serve(fast: bool) -> Vec<Table> {
    let n = if fast { 48 } else { 240 };
    let cfg = ServiceConfig {
        max_workers: 4,
        pool_ranks: 8,
        cache_capacity: 8,
        quota: TenantQuota::default(),
        aging_rate: 1,
    };
    let jobs = mixed_jobs(n);
    let n_preempt = jobs
        .iter()
        .filter(|j| matches!(j.disruption, Disruption::Preempt { .. }))
        .count();
    let n_fault = jobs
        .iter()
        .filter(|j| matches!(j.disruption, Disruption::Fault { .. }))
        .count();
    let report = run_and_verify(cfg.clone(), jobs);
    let bit_fraction = report.bit_identical_fraction();

    // --- Per-kind-class breakdown -------------------------------------
    let mut classes = Table::new(
        "bench-serve — per-kind breakdown",
        &[
            "kind",
            "jobs",
            "disrupted",
            "resumed",
            "mean lat [ms]",
            "max ckpt [B]",
            "pairs reused/recomputed",
            "plan hits/misses",
        ],
    );
    for class in ["screening", "scf", "md"] {
        let of_class: Vec<&JobReport> = report
            .completed
            .iter()
            .filter(|r| class_of(&r.spec) == class)
            .collect();
        let disrupted = of_class.iter().filter(|r| r.disruption.injected).count();
        let resumed = of_class.iter().filter(|r| r.disruption.resumed).count();
        let mean_lat = if of_class.is_empty() {
            0.0
        } else {
            of_class.iter().map(|r| r.latency_s).sum::<f64>() / of_class.len() as f64
        };
        let max_ckpt = of_class
            .iter()
            .map(|r| r.disruption.checkpoint_bytes)
            .max()
            .unwrap_or(0);
        let mut inc = IncStats::default();
        let (mut plan_hits, mut plan_misses) = (0u64, 0u64);
        for r in &of_class {
            inc.accumulate(&r.profile.inc);
            plan_hits += r.profile.build.plan_cache_hits;
            plan_misses += r.profile.build.plan_cache_misses;
        }
        classes.row(vec![
            class.into(),
            format!("{}", of_class.len()),
            format!("{disrupted}"),
            format!("{resumed}"),
            format!("{:.1}", mean_lat * 1e3),
            format!("{max_ckpt}"),
            format!("{}/{}", inc.pairs_reused, inc.pairs_recomputed),
            format!("{plan_hits}/{plan_misses}"),
        ]);
    }
    classes.note = format!(
        "{} jobs, {} workers over a {}-rank pool, cache capacity {}",
        n, cfg.max_workers, cfg.pool_ranks, cfg.cache_capacity
    );

    // --- Headline service metrics -------------------------------------
    let disrupted = report.disrupted_jobs();
    let resumed = report.resumed_jobs();
    let resume_fraction = if disrupted > 0 {
        resumed as f64 / disrupted as f64
    } else {
        1.0
    };
    let p50 = report.latency_quantile(0.5);
    let p90 = report.latency_quantile(0.9);
    let p99 = report.latency_quantile(0.99);
    let warm_screens = report
        .completed
        .iter()
        .filter(|r| r.profile.cache_warm)
        .count();
    let mut headline = Table::new("bench-serve — service metrics", &["metric", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("jobs completed", format!("{}", report.completed.len())),
        ("jobs rejected", format!("{}", report.rejected.len())),
        ("elapsed [s]", format!("{:.3}", report.elapsed_s)),
        ("throughput [jobs/s]", format!("{:.1}", report.throughput())),
        (
            "latency p50/p90/p99 [ms]",
            format!("{:.1}/{:.1}/{:.1}", p50 * 1e3, p90 * 1e3, p99 * 1e3),
        ),
        (
            "cache hits/misses (hit rate)",
            format!(
                "{}/{} ({:.0}%)",
                report.cache.hits,
                report.cache.misses,
                report.cache.hit_rate() * 100.0
            ),
        ),
        ("cache evictions", format!("{}", report.cache.evictions)),
        ("warm screening jobs", format!("{warm_screens}")),
        (
            "pool granted/reclaimed (peak)",
            format!(
                "{}/{} ({})",
                report.pool.granted, report.pool.reclaimed, report.pool.peak_leased
            ),
        ),
        (
            "disrupted (preempt/fault)",
            format!("{disrupted} ({n_preempt}/{n_fault})"),
        ),
        (
            "resumed from checkpoint",
            format!("{resumed} ({:.0}%)", resume_fraction * 100.0),
        ),
        (
            "bit-identical resumes",
            format!("{:.0}%", bit_fraction * 100.0),
        ),
    ];
    for (metric, value) in rows {
        headline.row(vec![metric.into(), value]);
    }
    let hit_ok = report.cache.hit_rate() > 0.5;
    let resume_ok = resume_fraction >= 0.95 && bit_fraction >= 0.95;
    headline.note = format!(
        "acceptance: cache hit rate > 50% ({}), >= 95% of disrupted jobs resume bit-identically ({})",
        if hit_ok { "met" } else { "MISSED" },
        if resume_ok { "met" } else { "MISSED" },
    );

    // --- JSON artifact ------------------------------------------------
    let job_rows: Vec<String> = report
        .completed
        .iter()
        .map(|r| {
            format!(
                "    {{\"label\": \"{}\", \"tenant\": \"{}\", \"nranks\": {}, \"priority\": {}, \"attempts\": {}, \"resumed\": {}, \"checkpoint_bytes\": {}, \"latency_ms\": {:.3}, \"final_energy\": {:.17e}}}",
                r.spec.kind.label(),
                r.spec.tenant,
                r.spec.nranks,
                r.spec.priority,
                r.disruption.attempts,
                r.disruption.resumed,
                r.disruption.checkpoint_bytes,
                r.latency_s * 1e3,
                r.outcome.final_energy
            )
        })
        .collect();
    let mut inc = IncStats::default();
    let (mut plan_hits, mut plan_misses) = (0u64, 0u64);
    for r in &report.completed {
        inc.accumulate(&r.profile.inc);
        plan_hits += r.profile.build.plan_cache_hits;
        plan_misses += r.profile.build.plan_cache_misses;
    }
    let mut json = format!(
        "{{\n  \"experiment\": \"bench-serve\",\n  \"jobs_submitted\": {n},\n  \"completed\": {},\n  \"rejected\": {},\n  \"elapsed_s\": {:.4},\n  \"throughput_jobs_per_s\": {:.2},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}}},\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_rate\": {:.4}}},\n  \"pool\": {{\"granted\": {}, \"reclaimed\": {}, \"peak_leased\": {}}},\n  \"disrupted\": {{\"total\": {disrupted}, \"preempt\": {n_preempt}, \"fault\": {n_fault}, \"resumed\": {resumed}, \"bit_identical_fraction\": {bit_fraction:.4}}},\n  \"reuse\": {{\"pairs_reused\": {}, \"pairs_recomputed\": {}, \"plan_cache_hits\": {plan_hits}, \"plan_cache_misses\": {plan_misses}}},\n  \"jobs\": [\n",
        report.completed.len(),
        report.rejected.len(),
        report.elapsed_s,
        report.throughput(),
        p50 * 1e3,
        p90 * 1e3,
        p99 * 1e3,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.cache.hit_rate(),
        report.pool.granted,
        report.pool.reclaimed,
        report.pool.peak_leased,
        inc.pairs_reused,
        inc.pairs_recomputed,
    );
    json.push_str(&job_rows.join(",\n"));
    json.push_str("\n  ]\n}\n");
    match std::fs::write("BENCH_serve.json", &json) {
        Ok(()) => headline.note.push_str("; BENCH_serve.json written"),
        Err(e) => headline.note.push_str(&format!("; JSON not written: {e}")),
    }

    vec![classes, headline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_jobs_cover_kinds_tenants_and_disruptions() {
        let jobs = mixed_jobs(240);
        assert_eq!(jobs.len(), 240);
        let screens = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Screening { .. }))
            .count();
        let disrupted = jobs.iter().filter(|j| j.disruption.is_disruptive()).count();
        // A third of the batch screens over only 3 distinct keys: the
        // repeated-system workload behind the > 50% hit-rate target.
        assert_eq!(screens, 80);
        assert!(disrupted >= 30, "only {disrupted} disrupted jobs");
        // Disrupted SCF jobs always run LiH (H2/He finish too early).
        for j in &jobs {
            if let (JobKind::Scf { system, .. }, true) = (&j.kind, j.disruption.is_disruptive()) {
                assert_eq!(*system, ScfSystem::LiH);
            }
        }
    }
}
