//! Node-level and interconnect experiments.
//!
//! * `fig-node-threading` — the extreme-threading/SIMD claim: the modelled
//!   BG/Q thread/SMT/SIMD scaling curves next to a *real* measurement of
//!   the pair kernel under rayon thread pools on the host machine;
//! * `fig-torus-mapping` — topology-aware vs topology-oblivious
//!   collectives on the 5-D torus (the mapping ablation).

use crate::Table;
use liair_basis::Cell;
use liair_bgq::collectives::{allreduce, alltoall, broadcast, CollectiveAlgo};
use liair_bgq::{MachineConfig, NodeModel};
use liair_grid::{PoissonSolver, RealGrid};
use std::time::Instant;

/// Run the threading experiment.
pub fn fig_node_threading(fast: bool) -> Vec<Table> {
    // --- model: BG/Q node ---
    let node = NodeModel::bgq();
    let mut t1 = Table::new(
        "fig-node-threading — BG/Q node model (relative throughput)",
        &["threads", "scalar", "SIMD (QPX)", "SIMD speedup"],
    );
    for &threads in &[1usize, 2, 4, 8, 16, 32, 48, 64] {
        let scalar = node.sustained_gflops(threads, false);
        let simd = node.sustained_gflops(threads, true);
        t1.row(vec![
            format!("{threads}"),
            format!("{:.1} GF/s", scalar),
            format!("{:.1} GF/s", simd),
            format!("{:.2}x", simd / scalar),
        ]);
    }
    let smt = node.thread_scaling(64) / node.thread_scaling(16);
    // Recalibrate the SIMD factor from the host's measured kernel ratio
    // (see `bench-simd`); the literature 0.85 stays the documented fallback.
    let (ratio, lanes) = super::simd::measured_kernel_ratio();
    let cal = node.with_calibrated_simd(ratio, lanes);
    t1.note = format!(
        "16 cores scale linearly; 4-way SMT adds {:.2}x; QPX SIMD ~{:.1}x — all three trends the paper exploits. \
         Host-calibrated simd_efficiency {:.3} (measured {ratio:.2}x on {lanes} lanes) vs literature fallback {:.2}",
        smt,
        node.sustained_gflops(16, true) / node.sustained_gflops(16, false),
        cal.simd_efficiency,
        node.simd_efficiency
    );

    // --- real measurement: the pair kernel under rayon ---
    let grid_n = if fast { 32 } else { 48 };
    let pairs = if fast { 8 } else { 16 };
    let grid = RealGrid::cubic(Cell::cubic(20.0), grid_n);
    let solver = PoissonSolver::isolated(grid);
    let rho: Vec<Vec<f64>> = (0..pairs)
        .map(|k| {
            let mut rng = liair_math::rng::SplitMix64::new(k as u64);
            (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect()
        })
        .collect();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut t2 = Table::new(
        &format!("fig-node-threading — measured pair kernel ({grid_n}³ FFT solve), host machine"),
        &["rayon threads", "time/batch [ms]", "speedup"],
    );
    let mut t_base = 0.0;
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        // Warm up once, then time the batch.
        let elapsed = pool.install(|| {
            use rayon::prelude::*;
            let run = || {
                rho.par_iter()
                    .map(|r| solver.exchange_pair(r).0)
                    .sum::<f64>()
            };
            let _ = run();
            let t0 = Instant::now();
            let _ = run();
            t0.elapsed().as_secs_f64()
        });
        if threads == 1 {
            t_base = elapsed;
        }
        t2.row(vec![
            format!("{threads}"),
            format!("{:.2}", elapsed * 1e3),
            format!("{:.2}x", t_base / elapsed),
        ]);
        threads *= 2;
    }
    t2.note = "real rayon scaling of the identical kernel the node model prices".into();
    vec![t1, t2]
}

/// Run the torus-mapping ablation.
pub fn fig_torus_mapping(fast: bool) -> Vec<Table> {
    let m = MachineConfig::bgq_racks(if fast { 4 } else { 16 });
    let mut t1 = Table::new(
        &format!(
            "fig-torus-mapping — allreduce on {} nodes ({:?} torus)",
            m.nodes(),
            m.torus.dims
        ),
        &["message", "torus-pipelined", "binomial tree", "penalty"],
    );
    for &bytes in &[8.0, 8.0e3, 1.0e6, 3.36e7, 2.68e8] {
        let fastc = allreduce(&m, CollectiveAlgo::TorusPipelined, bytes);
        let slow = allreduce(&m, CollectiveAlgo::BinomialTree, bytes);
        t1.row(vec![
            human_bytes(bytes),
            format!("{:.1} us", fastc * 1e6),
            format!("{:.1} us", slow * 1e6),
            format!("{:.1}x", slow / fastc),
        ]);
    }
    t1.note = "topology-aware mapping is what makes the per-build reduction cheap".into();

    let mut t2 = Table::new(
        "fig-torus-mapping — broadcast and the all-to-all wall",
        &["nodes", "bcast 33 MB", "alltoall 33 MB/node"],
    );
    for &r in &[1usize, 8, 96] {
        let mc = MachineConfig::bgq_racks(r);
        let b = broadcast(&mc, CollectiveAlgo::TorusPipelined, 3.36e7);
        let a = alltoall(&mc, 3.36e7 / mc.nodes() as f64);
        t2.row(vec![
            format!("{}", mc.nodes()),
            format!("{:.2} ms", b * 1e3),
            format!("{:.2} ms", a * 1e3),
        ]);
    }
    t2.note = "the all-to-all's P-linear message count is the distributed-FFT killer".into();
    vec![t1, t2]
}

/// `fig-link-congestion`: static dimension-ordered routing of three
/// traffic patterns over a midplane torus — why the pair scheme's
/// locality-aware traffic keeps every link cool.
pub fn fig_link_congestion(fast: bool) -> Vec<Table> {
    use liair_bgq::routing::{patterns, route_traffic};
    let torus = if fast {
        liair_bgq::Torus5D::new([4, 4, 4, 2, 2]) // node board ×4
    } else {
        liair_bgq::Torus5D::new([4, 4, 4, 4, 2]) // midplane, 512 nodes
    };
    let mut t = Table::new(
        &format!(
            "fig-link-congestion — dimension-ordered routing on {:?} ({} nodes)",
            torus.dims,
            torus.nodes()
        ),
        &["pattern", "max link load", "mean link load", "congestion"],
    );
    let per_pair = 1.0;
    type Demands = Vec<(usize, usize, f64)>;
    let rows: Vec<(&str, Demands)> = vec![
        (
            "neighbor exchange (pair scheme)",
            patterns::neighbor_exchange(&torus, per_pair),
        ),
        (
            "random permutation",
            patterns::random_permutation(&torus, per_pair, 7),
        ),
        (
            "all-to-all (distributed FFT)",
            patterns::alltoall(&torus, per_pair),
        ),
    ];
    for (name, demands) in rows {
        let loads = route_traffic(&torus, &demands);
        t.row(vec![
            name.into(),
            format!("{:.1}", loads.max()),
            format!("{:.2}", loads.mean_over_active()),
            format!("{:.2}x", loads.congestion()),
        ]);
    }
    t.note = "equal bytes per communicating pair; congestion = max/mean link load".into();
    vec![t]
}

/// `bench-pair-kernel` — ns/pair of one full-grid pair-Poisson solve at the
/// paper-relevant grid sizes: the seed c2c reference path vs the planned
/// r2c energy-only path (single and two-pair batched). Also writes the
/// machine-readable `BENCH_pair_kernel.json` into the working directory.
pub fn bench_pair_kernel(fast: bool) -> Vec<Table> {
    use liair_grid::PoissonWorkspace;
    let sizes: &[usize] = if fast { &[32, 48] } else { &[48, 64, 96] };
    let mut t = Table::new(
        "bench-pair-kernel — single full-grid pair-Poisson solve",
        &[
            "grid",
            "reference c2c",
            "r2c energy",
            "r2c batched",
            "speedup",
        ],
    );
    let mut entries: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &n in sizes {
        let grid = RealGrid::cubic(Cell::cubic(20.0), n);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = liair_math::rng::SplitMix64::new(0x5eed ^ n as u64);
        let rho_a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let rho_b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
        let mut ws = PoissonWorkspace::new();
        // Warm-up: FFT plans, kernel tables, grow-once workspaces.
        let _ = solver.exchange_pair_reference(&rho_a);
        let _ = solver.exchange_pair_energy(&rho_a, &mut ws);
        let _ = solver.exchange_pair_energy_batched(&rho_a, &rho_b, &mut ws);
        let reps = if n >= 96 {
            3
        } else if n >= 64 {
            6
        } else {
            12
        };
        // Best-of-2 over `reps`-call batches: robust to one-off scheduler
        // noise without criterion's full sampling machinery.
        let time_ns = |f: &mut dyn FnMut() -> f64| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let t0 = Instant::now();
                let mut acc = 0.0;
                for _ in 0..reps {
                    acc += f();
                }
                let dt = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
                std::hint::black_box(acc);
                best = best.min(dt);
            }
            best
        };
        let t_ref = time_ns(&mut || solver.exchange_pair_reference(&rho_a));
        let t_r2c = time_ns(&mut || solver.exchange_pair_energy(&rho_a, &mut ws));
        let t_bat = time_ns(&mut || {
            let (ea, eb) = solver.exchange_pair_energy_batched(&rho_a, &rho_b, &mut ws);
            ea + eb
        }) / 2.0;
        t.row(vec![
            format!("{n}^3"),
            format!("{:.0} ns", t_ref),
            format!("{:.0} ns", t_r2c),
            format!("{:.0} ns/pair", t_bat),
            format!("{:.2}x", t_ref / t_r2c),
        ]);
        entries.push((n, t_ref, t_r2c, t_bat));
    }
    // Hand-rolled JSON (the tree keeps no serde dependency): one object per
    // grid size, times in ns per pair.
    let mut json = String::from("{\n  \"experiment\": \"bench-pair-kernel\",\n  \"unit\": \"ns_per_pair\",\n  \"grids\": [\n");
    for (i, (n, t_ref, t_r2c, t_bat)) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"n\": {n}, \"reference_c2c\": {t_ref:.1}, \"r2c_energy\": {t_r2c:.1}, \"r2c_batched\": {t_bat:.1}, \"speedup\": {:.3}}}{}\n",
            t_ref / t_r2c,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_pair_kernel.json", &json) {
        Ok(()) => {
            t.note = "speedup = reference / r2c energy; BENCH_pair_kernel.json written".into()
        }
        Err(e) => t.note = format!("speedup = reference / r2c energy; JSON not written: {e}"),
    }
    vec![t]
}

fn human_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.0} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0} kB", b / 1e3)
    } else {
        format!("{:.0} B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_model_table_simd_column() {
        let t = &fig_node_threading(true)[0];
        // The SIMD speedup column is > 3x everywhere for the BG/Q model.
        for row in &t.rows {
            let x: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(x > 3.0, "{row:?}");
        }
    }

    #[test]
    fn torus_beats_tree_at_large_messages() {
        let t = &fig_torus_mapping(true)[0];
        let last = t.rows.last().unwrap();
        let penalty: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(penalty > 3.0, "penalty {penalty}");
    }
}
