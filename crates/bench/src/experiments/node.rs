//! Node-level and interconnect experiments.
//!
//! * `fig-node-threading` — the extreme-threading/SIMD claim: the modelled
//!   BG/Q thread/SMT/SIMD scaling curves next to a *real* measurement of
//!   the pair kernel under rayon thread pools on the host machine;
//! * `fig-torus-mapping` — topology-aware vs topology-oblivious
//!   collectives on the 5-D torus (the mapping ablation).

use crate::Table;
use liair_basis::Cell;
use liair_bgq::collectives::{allreduce, alltoall, broadcast, CollectiveAlgo};
use liair_bgq::{MachineConfig, NodeModel};
use liair_grid::{PoissonSolver, RealGrid};
use std::time::Instant;

/// Run the threading experiment.
pub fn fig_node_threading(fast: bool) -> Vec<Table> {
    // --- model: BG/Q node ---
    let node = NodeModel::bgq();
    let mut t1 = Table::new(
        "fig-node-threading — BG/Q node model (relative throughput)",
        &["threads", "scalar", "SIMD (QPX)", "SIMD speedup"],
    );
    for &threads in &[1usize, 2, 4, 8, 16, 32, 48, 64] {
        let scalar = node.sustained_gflops(threads, false);
        let simd = node.sustained_gflops(threads, true);
        t1.row(vec![
            format!("{threads}"),
            format!("{:.1} GF/s", scalar),
            format!("{:.1} GF/s", simd),
            format!("{:.2}x", simd / scalar),
        ]);
    }
    let smt = node.thread_scaling(64) / node.thread_scaling(16);
    t1.note = format!(
        "16 cores scale linearly; 4-way SMT adds {:.2}x; QPX SIMD ~{:.1}x — all three trends the paper exploits",
        smt,
        node.sustained_gflops(16, true) / node.sustained_gflops(16, false)
    );

    // --- real measurement: the pair kernel under rayon ---
    let grid_n = if fast { 32 } else { 48 };
    let pairs = if fast { 8 } else { 16 };
    let grid = RealGrid::cubic(Cell::cubic(20.0), grid_n);
    let solver = PoissonSolver::isolated(grid);
    let rho: Vec<Vec<f64>> = (0..pairs)
        .map(|k| {
            let mut rng = liair_math::rng::SplitMix64::new(k as u64);
            (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect()
        })
        .collect();
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut t2 = Table::new(
        &format!("fig-node-threading — measured pair kernel ({grid_n}³ FFT solve), host machine"),
        &["rayon threads", "time/batch [ms]", "speedup"],
    );
    let mut t_base = 0.0;
    let mut threads = 1usize;
    while threads <= max_threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        // Warm up once, then time the batch.
        let elapsed = pool.install(|| {
            use rayon::prelude::*;
            let run = || {
                rho.par_iter()
                    .map(|r| solver.exchange_pair(r).0)
                    .sum::<f64>()
            };
            let _ = run();
            let t0 = Instant::now();
            let _ = run();
            t0.elapsed().as_secs_f64()
        });
        if threads == 1 {
            t_base = elapsed;
        }
        t2.row(vec![
            format!("{threads}"),
            format!("{:.2}", elapsed * 1e3),
            format!("{:.2}x", t_base / elapsed),
        ]);
        threads *= 2;
    }
    t2.note = "real rayon scaling of the identical kernel the node model prices".into();
    vec![t1, t2]
}

/// Run the torus-mapping ablation.
pub fn fig_torus_mapping(fast: bool) -> Vec<Table> {
    let m = MachineConfig::bgq_racks(if fast { 4 } else { 16 });
    let mut t1 = Table::new(
        &format!(
            "fig-torus-mapping — allreduce on {} nodes ({:?} torus)",
            m.nodes(),
            m.torus.dims
        ),
        &["message", "torus-pipelined", "binomial tree", "penalty"],
    );
    for &bytes in &[8.0, 8.0e3, 1.0e6, 3.36e7, 2.68e8] {
        let fastc = allreduce(&m, CollectiveAlgo::TorusPipelined, bytes);
        let slow = allreduce(&m, CollectiveAlgo::BinomialTree, bytes);
        t1.row(vec![
            human_bytes(bytes),
            format!("{:.1} us", fastc * 1e6),
            format!("{:.1} us", slow * 1e6),
            format!("{:.1}x", slow / fastc),
        ]);
    }
    t1.note = "topology-aware mapping is what makes the per-build reduction cheap".into();

    let mut t2 = Table::new(
        "fig-torus-mapping — broadcast and the all-to-all wall",
        &["nodes", "bcast 33 MB", "alltoall 33 MB/node"],
    );
    for &r in &[1usize, 8, 96] {
        let mc = MachineConfig::bgq_racks(r);
        let b = broadcast(&mc, CollectiveAlgo::TorusPipelined, 3.36e7);
        let a = alltoall(&mc, 3.36e7 / mc.nodes() as f64);
        t2.row(vec![
            format!("{}", mc.nodes()),
            format!("{:.2} ms", b * 1e3),
            format!("{:.2} ms", a * 1e3),
        ]);
    }
    t2.note = "the all-to-all's P-linear message count is the distributed-FFT killer".into();
    vec![t1, t2]
}

/// `fig-link-congestion`: static dimension-ordered routing of three
/// traffic patterns over a midplane torus — why the pair scheme's
/// locality-aware traffic keeps every link cool.
pub fn fig_link_congestion(fast: bool) -> Vec<Table> {
    use liair_bgq::routing::{patterns, route_traffic};
    let torus = if fast {
        liair_bgq::Torus5D::new([4, 4, 4, 2, 2]) // node board ×4
    } else {
        liair_bgq::Torus5D::new([4, 4, 4, 4, 2]) // midplane, 512 nodes
    };
    let mut t = Table::new(
        &format!(
            "fig-link-congestion — dimension-ordered routing on {:?} ({} nodes)",
            torus.dims,
            torus.nodes()
        ),
        &["pattern", "max link load", "mean link load", "congestion"],
    );
    let per_pair = 1.0;
    type Demands = Vec<(usize, usize, f64)>;
    let rows: Vec<(&str, Demands)> = vec![
        ("neighbor exchange (pair scheme)", patterns::neighbor_exchange(&torus, per_pair)),
        ("random permutation", patterns::random_permutation(&torus, per_pair, 7)),
        ("all-to-all (distributed FFT)", patterns::alltoall(&torus, per_pair)),
    ];
    for (name, demands) in rows {
        let loads = route_traffic(&torus, &demands);
        t.row(vec![
            name.into(),
            format!("{:.1}", loads.max()),
            format!("{:.2}", loads.mean_over_active()),
            format!("{:.2}x", loads.congestion()),
        ]);
    }
    t.note = "equal bytes per communicating pair; congestion = max/mean link load".into();
    vec![t]
}

fn human_bytes(b: f64) -> String {
    if b >= 1e6 {
        format!("{:.0} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.0} kB", b / 1e3)
    } else {
        format!("{:.0} B", b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_model_table_simd_column() {
        let t = &fig_node_threading(true)[0];
        // The SIMD speedup column is > 3x everywhere for the BG/Q model.
        for row in &t.rows {
            let x: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(x > 3.0, "{row:?}");
        }
    }

    #[test]
    fn torus_beats_tree_at_large_messages() {
        let t = &fig_torus_mapping(true)[0];
        let last = t.rows.last().unwrap();
        let penalty: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(penalty > 3.0, "penalty {penalty}");
    }
}
