//! `screen-solvents` — the solvent-screening campaign (PR 10): the
//! full-stack experiment the campaign layer exists for. One
//! [`CampaignSpec`] fans a solvents × concentrations × seeds ×
//! functionals grid across the batch service — reaction jobs converge
//! the solvent·Li₂O₂ contact complex and its fragments, solvation jobs
//! run MTS electrolyte-box trajectories — and the aggregate is a ranked
//! stability report.
//!
//! Acceptance criteria (the paper's qualitative result, plus the
//! stack's determinism contract):
//!
//! * **physics** — propylene carbonate, the degrading incumbent, ranks
//!   below at least two of EC / DMSO / DME;
//! * **determinism** — rerunning the identical campaign (same spec,
//!   same seeds, fresh service) reproduces the canonical report
//!   byte-for-byte. This is asserted, not just reported: a drift here
//!   is a regression in the bit-reproducibility contract.
//!
//! Writes `BENCH_screening.json`: the canonical report verbatim plus a
//! provenance section (per-member latency / attempts / resume
//! accounting, cache counters — everything the canonical report
//! deliberately excludes). `fast` (the CI `--smoke` grid) trims to
//! 2 solvents × 1 functional × 1 seed.

use crate::Table;
use liair_basis::systems::Solvent;
use liair_serve::campaign::{run_campaign, CampaignReport, CampaignSpec};
use liair_serve::{ServiceConfig, TenantQuota};
use liair_xc::Functional;

/// The campaign grid. `fast` is the smoke grid CI runs on every push;
/// the full grid screens all four candidate solvents with a two-seed
/// trajectory ensemble and a two-functional reaction ensemble.
fn campaign_spec(fast: bool) -> CampaignSpec {
    if fast {
        CampaignSpec {
            solvents: vec![Solvent::EthyleneCarbonate, Solvent::PropyleneCarbonate],
            functionals: vec![Functional::Hf],
            concentrations: vec![2],
            seeds: vec![2014],
            n_outer: 5,
            n_inner: 2,
            temperature: 400.0,
            tenant: "screening".to_string(),
            priority: 0,
            disruptions: Vec::new(),
        }
    } else {
        CampaignSpec {
            solvents: Solvent::all().to_vec(),
            functionals: vec![Functional::Hf, Functional::Pbe0],
            concentrations: vec![2],
            seeds: vec![2014, 2015],
            n_outer: 8,
            n_inner: 2,
            temperature: 400.0,
            tenant: "screening".to_string(),
            priority: 0,
            disruptions: Vec::new(),
        }
    }
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        max_workers: 4,
        pool_ranks: 8,
        cache_capacity: 8,
        quota: TenantQuota::default(),
        aging_rate: 1,
    }
}

/// Does PC rank below at least two of EC / DMSO / DME? (Only the
/// solvents present in the grid count — the smoke grid carries one
/// competitor, the full grid all three.)
fn pc_below(report: &CampaignReport) -> (usize, usize) {
    let Some(pc_rank) = report.rank_of(Solvent::PropyleneCarbonate) else {
        return (0, 0);
    };
    let competitors = [Solvent::EthyleneCarbonate, Solvent::Dmso, Solvent::Dme];
    let present: Vec<usize> = competitors
        .iter()
        .filter_map(|&s| report.rank_of(s))
        .collect();
    let below = present.iter().filter(|&&r| r < pc_rank).count();
    (below, present.len())
}

fn opt(x: Option<f64>) -> String {
    x.map_or_else(|| "—".to_string(), |v| format!("{v:.3}"))
}

/// Run the screening campaign; `fast` selects the smoke grid.
pub fn screen_solvents(fast: bool) -> Vec<Table> {
    let spec = campaign_spec(fast);
    let report = run_campaign(service_cfg(), &spec).expect("campaign grid is valid");
    let canon = report.canonical_json();

    // Determinism acceptance: an identical campaign through a fresh
    // service (cold caches, new workers) must reproduce the canonical
    // report byte-for-byte.
    let rerun = run_campaign(service_cfg(), &spec).expect("campaign grid is valid");
    let rerun_stable = rerun.canonical_json() == canon;
    assert!(
        rerun_stable,
        "canonical report drifted between identical campaign runs"
    );

    // --- Ranked stability table ---------------------------------------
    let mut ranking = Table::new(
        "screen-solvents — ranked solvent stability",
        &[
            "rank",
            "solvent",
            "score",
            "E_int [mHa]",
            "gap(complex) [mHa]",
            "bonds broken",
            "Li–O coord",
            "RDF peak [Bohr]",
        ],
    );
    for (rank, v) in report.ranking.iter().enumerate() {
        ranking.row(vec![
            format!("{}", rank + 1),
            v.solvent.name().into(),
            format!("{:.3}", v.stability_score),
            opt(v.e_int_mha),
            opt(v.gap_complex_mha),
            format!("{}", v.bonds_broken),
            opt(v.li_o_coordination),
            opt(v.rdf_peak_r),
        ]);
    }
    let (below, present) = pc_below(&report);
    let physics_ok = below >= 2.min(present);
    ranking.note = format!(
        "score = E_int[mHa] + 0.01·gap[mHa] − 10·bonds_broken (higher = more stable); \
         acceptance: PC below ≥2 of EC/DMSO/DME — below {below}/{present} competitors ({}); \
         rerun byte-identical ({})",
        if physics_ok { "met" } else { "MISSED" },
        if rerun_stable { "met" } else { "MISSED" },
    );

    // --- Provenance table ---------------------------------------------
    let mut prov = Table::new(
        "screen-solvents — campaign provenance",
        &["member", "latency [ms]", "attempts", "resumed", "ckpt [B]"],
    );
    for m in &report.members {
        prov.row(vec![
            m.label.clone(),
            format!("{:.1}", m.latency_s * 1e3),
            format!("{}", m.disruption.attempts),
            format!("{}", m.disruption.resumed),
            format!("{}", m.disruption.checkpoint_bytes),
        ]);
    }
    prov.note = format!(
        "{} members ({} missing), elapsed {:.2} s, cache {}h/{}m, bit-identical fraction {:.2}",
        report.members.len(),
        report.missing.len(),
        report.elapsed_s,
        report.cache.hits,
        report.cache.misses,
        report.bit_identical_fraction,
    );

    // --- JSON artifact ------------------------------------------------
    // The canonical report is embedded verbatim (it is already JSON);
    // everything scheduling-dependent lives in the provenance section.
    let member_rows: Vec<String> = report
        .members
        .iter()
        .map(|m| {
            format!(
                "      {{\"label\": \"{}\", \"latency_ms\": {:.3}, \"attempts\": {}, \
                 \"resumed\": {}, \"checkpoint_bytes\": {}}}",
                m.label,
                m.latency_s * 1e3,
                m.disruption.attempts,
                m.disruption.resumed,
                m.disruption.checkpoint_bytes,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"screen-solvents\",\n  \"grid\": {{\"solvents\": {}, \
         \"functionals\": {}, \"concentrations\": {}, \"seeds\": {}, \"n_outer\": {}, \
         \"n_inner\": {}, \"temperature\": {}}},\n  \
         \"acceptance\": {{\"pc_below_competitors\": \"{below}/{present}\", \
         \"physics_met\": {physics_ok}, \"rerun_byte_identical\": {rerun_stable}}},\n  \
         \"canonical_report\": {canon},\n  \"provenance\": {{\n    \"elapsed_s\": {:.4},\n    \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n    \
         \"bit_identical_fraction\": {:.4},\n    \"members\": [\n{}\n    ]\n  }}\n}}\n",
        spec.solvents.len(),
        spec.functionals.len(),
        spec.concentrations.len(),
        spec.seeds.len(),
        spec.n_outer,
        spec.n_inner,
        spec.temperature,
        report.elapsed_s,
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions,
        report.bit_identical_fraction,
        member_rows.join(",\n"),
    );
    match std::fs::write("BENCH_screening.json", &json) {
        Ok(()) => prov.note.push_str("; BENCH_screening.json written"),
        Err(e) => prov.note.push_str(&format!("; JSON not written: {e}")),
    }

    vec![ranking, prov]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_expand_and_cover_the_acceptance_solvents() {
        let smoke = campaign_spec(true);
        assert_eq!(smoke.n_members(), 4, "2 solvents × (1 functional + 1 traj)");
        assert!(smoke.solvents.contains(&Solvent::PropyleneCarbonate));
        smoke.expand().expect("smoke grid is valid");

        let full = campaign_spec(false);
        assert_eq!(
            full.n_members(),
            16,
            "4 solvents × (2 functionals + 2 traj)"
        );
        for s in Solvent::all() {
            assert!(full.solvents.contains(s));
        }
        full.expand().expect("full grid is valid");
    }

    #[test]
    fn pc_below_counts_only_present_competitors() {
        use liair_serve::campaign::SolventVerdict;
        let verdict = |solvent, stability_score| SolventVerdict {
            solvent,
            e_int_by_functional: Vec::new(),
            e_int_mha: None,
            gap_complex_mha: None,
            gap_solvent_mha: None,
            bonds_broken: 0,
            li_o_coordination: None,
            rdf_peak_r: None,
            stability_score,
        };
        let report = CampaignReport {
            ranking: vec![
                verdict(Solvent::EthyleneCarbonate, 1.0),
                verdict(Solvent::PropyleneCarbonate, -1.0),
            ],
            members: Vec::new(),
            missing: Vec::new(),
            cache: liair_core::CachePoolStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                checkins: 0,
                entries: 0,
                capacity: 0,
            },
            elapsed_s: 0.0,
            bit_identical_fraction: 1.0,
        };
        assert_eq!(pc_below(&report), (1, 1));
    }
}
