//! `bench-simd` — the runtime-dispatched vector kernel layer measured head
//! to head.
//!
//! Every primitive of [`liair_math::simd`] runs at every level the host
//! supports (`off` = the pre-SIMD sequential loops, `scalar` = the chunked
//! auto-vectorizable path, `avx2` = the intrinsics path where available),
//! plus the end-to-end pair-energy kernel those primitives feed. Speedups
//! are against the `off` baseline — the exact loops the tree ran before the
//! SIMD layer existed. Also writes the machine-readable `BENCH_simd.json`
//! and feeds the measured kernel ratio into the BG/Q node-model
//! calibration ([`liair_bgq::NodeModel::with_calibrated_simd`]).

use crate::Table;
use liair_basis::Cell;
use liair_grid::{PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::rfft::{half_len, rfft3_into_with};
use liair_math::simd::{self, SimdLevel};
use liair_math::Complex64;
use std::time::Instant;

/// Best-of-2 over `reps`-call batches, ns per call — the same scheme as
/// `bench-pair-kernel`: robust to one-off scheduler noise without
/// criterion's full sampling machinery.
fn time_ns(reps: usize, f: &mut dyn FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t0 = Instant::now();
        let mut acc = 0.0;
        for _ in 0..reps {
            acc += f();
        }
        let dt = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
        std::hint::black_box(acc);
        best = best.min(dt);
    }
    best
}

/// Per-kernel timings at one grid size: `ns[i]` matches `levels[i]`.
struct KernelRow {
    name: &'static str,
    ns: Vec<f64>,
}

/// Measure all primitives and the end-to-end pair kernel on an `n`³ grid.
fn measure_grid(n: usize, levels: &[SimdLevel], reps: usize) -> Vec<KernelRow> {
    let dims = (n, n, n);
    let len = n * n * n;
    let h = half_len(dims);
    let mut rng = liair_math::rng::SplitMix64::new(0x51_4d_d0 ^ n as u64);
    let a: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..len).map(|_| rng.next_f64() - 0.5).collect();
    let mut out = vec![0.0f64; len];
    let mut half = vec![Complex64::ZERO; h];
    rfft3_into_with(SimdLevel::Off, &a, dims, &mut half);
    // Kernel table in [0.5, 2) paired with its reciprocal: alternating the
    // two keeps the spectrum magnitudes stable across thousands of reps
    // (no drift into denormals), so the multiply kernel can be timed
    // in-place without a restoring memcpy polluting the measurement.
    let table: Vec<f64> = (0..h).map(|_| 0.5 + 1.5 * rng.next_f64()).collect();
    let table_inv: Vec<f64> = table.iter().map(|&v| 1.0 / v).collect();
    let wk: Vec<f64> = table.clone();

    let grid = RealGrid::cubic(Cell::cubic(20.0), n);
    let solver = PoissonSolver::isolated(grid);
    let mut ws = PoissonWorkspace::new();

    let mut rows = vec![
        KernelRow {
            name: "pair density  phi_i*phi_j",
            ns: Vec::new(),
        },
        KernelRow {
            name: "axpy accumulate",
            ns: Vec::new(),
        },
        KernelRow {
            name: "kernel multiply  v(G)*rho",
            ns: Vec::new(),
        },
        KernelRow {
            name: "energy contraction",
            ns: Vec::new(),
        },
        KernelRow {
            name: "rfft3 forward",
            ns: Vec::new(),
        },
        KernelRow {
            name: "pair energy end-to-end",
            ns: Vec::new(),
        },
    ];
    for &level in levels {
        // Warm up every path once (plans, tables, scratch).
        simd::mul_into_with(level, &mut out, &a, &b);
        let _ = solver.exchange_pair_energy_with(level, &a, &mut ws);

        rows[0].ns.push(time_ns(reps, &mut || {
            simd::mul_into_with(level, &mut out, &a, &b);
            out[0]
        }));
        rows[1].ns.push(time_ns(reps, &mut || {
            simd::axpy_with(level, &mut out, 1e-6, &a);
            out[0]
        }));
        // One rep = multiply by the table and back by its reciprocal;
        // halve to get ns per single kernel application.
        rows[2].ns.push(
            time_ns(reps, &mut || {
                simd::scale_by_table_with(level, &mut half, &table);
                simd::scale_by_table_with(level, &mut half, &table_inv);
                half[0].re
            }) / 2.0,
        );
        rows[3].ns.push(time_ns(reps, &mut || {
            simd::weighted_energy_with(level, &half, &wk)
        }));
        let mut tmp = vec![Complex64::ZERO; h];
        rows[4].ns.push(time_ns(reps, &mut || {
            rfft3_into_with(level, &a, dims, &mut tmp);
            tmp[0].re
        }));
        rows[5].ns.push(time_ns(reps.div_ceil(2), &mut || {
            solver.exchange_pair_energy_with(level, &a, &mut ws)
        }));
    }
    rows
}

/// Measured vector/baseline speedup of the half-spectrum energy
/// contraction — the kernel the autotuner and the BG/Q node-model
/// calibration care about. Returns `(ratio, lanes)` where `ratio` is the
/// best available level's speedup over the `off` sequential loop and
/// `lanes` that level's vector width. Cheap: one 16³ half-spectrum —
/// in-cache, so the ratio reflects the compute-bound kernel the node
/// model prices rather than the host's memory bandwidth.
pub fn measured_kernel_ratio() -> (f64, usize) {
    let n = 16usize;
    let h = half_len((n, n, n));
    let mut rng = liair_math::rng::SplitMix64::new(0xca11b);
    let z: Vec<Complex64> = (0..h)
        .map(|_| Complex64::new(rng.next_f64() - 0.5, rng.next_f64() - 0.5))
        .collect();
    let wk: Vec<f64> = (0..h).map(|_| 0.5 + rng.next_f64()).collect();
    let best = simd::detect();
    let reps = 4000;
    let t_off = time_ns(reps, &mut || {
        simd::weighted_energy_with(SimdLevel::Off, &z, &wk)
    });
    let t_best = time_ns(reps, &mut || simd::weighted_energy_with(best, &z, &wk));
    ((t_off / t_best).max(1.0), best.lanes().max(1))
}

/// Run the `bench-simd` experiment.
pub fn bench_simd(fast: bool) -> Vec<Table> {
    let levels = simd::available_levels();
    // 16³ keeps every buffer inside L2 — the latency-vs-throughput regime
    // where vectorization pays; 32³+ slides into memory-bandwidth-bound
    // territory where all levels converge on the same stream rate.
    let sizes: &[usize] = if fast {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 48, 64]
    };
    let mut tables = Vec::new();
    let mut json = String::from(
        "{\n  \"experiment\": \"bench-simd\",\n  \"unit\": \"ns_per_call\",\n  \"grids\": [\n",
    );
    for (gi, &n) in sizes.iter().enumerate() {
        let reps = if n >= 64 {
            20
        } else if n >= 48 {
            50
        } else if n >= 32 {
            200
        } else {
            1000
        };
        let rows = measure_grid(n, &levels, reps);
        let mut headers: Vec<String> = vec!["kernel".into()];
        for l in &levels {
            headers.push(format!("{} [ns]", l.name()));
        }
        headers.push("best speedup".into());
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            &format!("bench-simd — {n}^3 grid, speedup vs the pre-SIMD `off` loops"),
            &header_refs,
        );
        json.push_str(&format!("    {{\"n\": {n}, \"kernels\": [\n"));
        for (ki, row) in rows.iter().enumerate() {
            let t_off = row.ns[0];
            let best = row.ns.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut cells = vec![row.name.to_string()];
            for &ns in &row.ns {
                cells.push(format!("{ns:.0}"));
            }
            cells.push(format!("{:.2}x", t_off / best));
            t.row(cells);
            let mut levels_json = String::new();
            for (li, l) in levels.iter().enumerate() {
                levels_json.push_str(&format!(
                    "{}\"{}\": {:.1}",
                    if li == 0 { "" } else { ", " },
                    l.name(),
                    row.ns[li]
                ));
            }
            json.push_str(&format!(
                "      {{\"kernel\": \"{}\", {}, \"best_speedup\": {:.3}}}{}\n",
                row.name,
                levels_json,
                t_off / best,
                if ki + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if gi + 1 < sizes.len() { "," } else { "" }
        ));
        t.note = format!(
            "levels available here: {}; LIAIR_SIMD=off|scalar|avx2 forces one",
            levels
                .iter()
                .map(|l| l.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        tables.push(t);
    }
    // Node-model calibration from the measured contraction ratio.
    let (ratio, lanes) = measured_kernel_ratio();
    let fallback = liair_bgq::NodeModel::bgq();
    let calibrated = fallback.with_calibrated_simd(ratio, lanes);
    let mut tc = Table::new(
        "bench-simd — BG/Q node-model SIMD calibration",
        &["model", "simd efficiency", "model vector speedup"],
    );
    for (name, m) in [
        ("literature fallback", &fallback),
        ("calibrated (host)", &calibrated),
    ] {
        tc.row(vec![
            name.into(),
            format!("{:.3}", m.simd_efficiency),
            format!(
                "{:.2}x",
                1.0 + (m.simd_width as f64 - 1.0) * m.simd_efficiency
            ),
        ]);
    }
    tc.note = format!(
        "host contraction ratio {ratio:.2}x on {lanes} lanes -> efficiency {:.3}",
        calibrated.simd_efficiency
    );
    tables.push(tc);
    json.push_str(&format!(
        "  ],\n  \"calibration\": {{\"kernel_ratio\": {ratio:.3}, \"lanes\": {lanes}, \"simd_efficiency\": {:.4}}}\n}}\n",
        calibrated.simd_efficiency
    ));
    match std::fs::write("BENCH_simd.json", &json) {
        Ok(()) => tables
            .last_mut()
            .unwrap()
            .note
            .push_str("; BENCH_simd.json written"),
        Err(e) => tables
            .last_mut()
            .unwrap()
            .note
            .push_str(&format!("; JSON not written: {e}")),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratio_is_sane() {
        let (ratio, lanes) = measured_kernel_ratio();
        assert!(ratio >= 1.0 && ratio.is_finite(), "{ratio}");
        assert!((1..=8).contains(&lanes), "{lanes}");
    }
}
