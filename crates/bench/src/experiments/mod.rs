//! The experiment implementations, one per table/figure (see crate docs
//! and DESIGN.md for the index).

pub mod accuracy;
pub mod battery;
pub mod collectives;
pub mod incremental;
pub mod locality;
pub mod mts;
pub mod node;
pub mod overlap;
pub mod scaling;
pub mod screening;
pub mod serve;
pub mod simd;
pub mod validation;

use crate::Table;

/// All experiment ids in the DESIGN.md order.
pub const ALL_IDS: [&str; 25] = [
    "fig-strong-scaling",
    "fig-weak-scaling",
    "fig-baseline-scaling",
    "tab-time-to-solution",
    "fig-screening-accuracy",
    "fig-node-threading",
    "fig-load-balance",
    "fig-torus-mapping",
    "fig-link-congestion",
    "fig-group-size",
    "fig-accuracy-cost",
    "tab-step-breakdown",
    "tab-memory",
    "tab-hfx-validation",
    "tab-battery",
    "fig-md-water",
    "bench-pair-kernel",
    "bench-incremental",
    "bench-mts",
    "bench-simd",
    "bench-collectives",
    "bench-overlap",
    "bench-scaling",
    "bench-serve",
    "screen-solvents",
];

/// Run one experiment by id. `fast` trims the heaviest sweeps to keep the
/// full suite runnable in minutes.
pub fn run(id: &str, fast: bool) -> Vec<Table> {
    match id {
        "fig-strong-scaling" => scaling::fig_strong_scaling(fast),
        "fig-weak-scaling" => scaling::fig_weak_scaling(fast),
        "fig-baseline-scaling" => scaling::fig_baseline_scaling(fast),
        "tab-time-to-solution" => scaling::tab_time_to_solution(fast),
        "fig-screening-accuracy" => accuracy::fig_screening_accuracy(fast),
        "fig-node-threading" => node::fig_node_threading(fast),
        "fig-load-balance" => scaling::fig_load_balance(fast),
        "fig-group-size" => scaling::fig_group_size(fast),
        "fig-accuracy-cost" => scaling::fig_accuracy_cost(fast),
        "fig-torus-mapping" => node::fig_torus_mapping(fast),
        "fig-link-congestion" => node::fig_link_congestion(fast),
        "tab-step-breakdown" => scaling::tab_step_breakdown(fast),
        "tab-memory" => scaling::tab_memory(fast),
        "tab-hfx-validation" => validation::tab_hfx_validation(fast),
        "tab-battery" => battery::tab_battery(fast),
        "fig-md-water" => battery::fig_md_water(fast),
        "bench-pair-kernel" => node::bench_pair_kernel(fast),
        "bench-incremental" => incremental::bench_incremental(fast),
        "bench-mts" => mts::bench_mts(fast),
        "bench-simd" => simd::bench_simd(fast),
        "bench-collectives" => collectives::bench_collectives(fast),
        "bench-overlap" => overlap::bench_overlap(fast),
        "bench-scaling" => locality::bench_scaling(fast),
        "bench-serve" => serve::bench_serve(fast),
        "screen-solvents" => screening::screen_solvents(fast),
        other => panic!("unknown experiment id '{other}' (see ALL_IDS)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_dispatches() {
        // Smoke-run the cheap model-only experiments end to end.
        for id in [
            "fig-load-balance",
            "fig-torus-mapping",
            "tab-step-breakdown",
            "tab-memory",
            "fig-group-size",
        ] {
            let tables = run(id, true);
            assert!(!tables.is_empty(), "{id} produced no tables");
            for t in tables {
                assert!(!t.rows.is_empty(), "{id}: empty table {}", t.title);
            }
        }
    }

    #[test]
    #[should_panic]
    fn unknown_id_panics() {
        run("fig-nonsense", true);
    }
}
