//! `bench-scaling` — O(N) locality-first pair sourcing and hierarchical
//! domain sharding, from one laptop node to the modeled full machine.
//!
//! Three sections:
//!
//! 1. **sourcing** — the cell-list pair source against the O(N²) scan on
//!    growing paper-density water boxes (ε = 10⁻⁶, σ = 1.5 Bohr): the
//!    candidates *inspected* per orbital stay constant while the brute
//!    scan's grow linearly — the observable O(N) evidence;
//! 2. **weak scaling** — the sharded source at a fixed 3375 orbitals per
//!    domain over `g³` subdomains, `g ∈ {2, 4, 8, 16, 32}` (up to
//!    1.1 × 10⁸ orbitals at g = 32). Only domain 0 and its neighbor shell
//!    are ever materialized — per-domain deterministic RNG streams make
//!    every rank's orbitals reproducible without a global table — so the
//!    per-rank resident count, pair share, inspection count, build time
//!    and memory are measured directly and must stay flat (±10%) while
//!    the *global* problem grows 4096×. Bit-identity of the sharded and
//!    SPMD halo-exchange lists against the global builders is checked at
//!    laptop scale;
//! 3. **torus** — the halo demand set of the 3-D domain grid folded onto
//!    each partition of the paper's scaling series
//!    ([`liair_bgq::domainmap`]), routed link by link, against the
//!    replicated-orbital baseline it replaces.
//!
//! Writes the machine-readable `BENCH_scaling.json`.

use crate::Table;
use liair_basis::Cell;
use liair_bgq::domainmap::{halo_cost, DomainMap};
use liair_bgq::machine::scaling_series;
use liair_core::domain::DomainGeometry;
use liair_core::screening::{
    build_pair_list, build_pair_list_celllist, cutoff_radius, OrbitalInfo, Pair,
};
use liair_core::{build_pair_list_sharded, sharded_pair_list_spmd};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use liair_runtime::CollectiveMode;

/// Screening threshold of the paper's production runs.
const EPS: f64 = 1e-6;
/// Localized-orbital spread (Bohr) of the water workloads.
const SPREAD: f64 = 1.5;
/// Orbitals per domain in the weak-scaling series (15³).
const M_PER_DOMAIN: usize = 3375;
/// Bytes per orbital record on the halo wire (id + center + spread).
const WIRE_BYTES: f64 = 40.0;

/// Cubic cell edge at the paper's water density for `n` orbitals
/// (4096 orbitals ↔ 59.2 Bohr).
fn edge_for(n: usize) -> f64 {
    59.2 * (n as f64 / 4096.0).cbrt()
}

fn layout(seed: u64, n: usize, edge: f64) -> Vec<OrbitalInfo> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| OrbitalInfo {
            center: Vec3::new(
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
            ),
            spread: SPREAD,
        })
        .collect()
}

// ── section 1: the O(N) sourcing sweep ──

struct SweepRow {
    n: usize,
    celllist_ms: f64,
    brute_ms: Option<f64>,
    pairs: usize,
    considered: usize,
    candidates: usize,
}

fn sourcing_sweep(fast: bool) -> Vec<SweepRow> {
    let sizes: &[usize] = if fast {
        &[512, 1024, 2048, 4096]
    } else {
        &[512, 1024, 2048, 4096, 8192, 16384, 32768]
    };
    let brute_cap = if fast { 2048 } else { 8192 };
    sizes
        .iter()
        .map(|&n| {
            let edge = edge_for(n);
            let cell = Cell::cubic(edge);
            let orbs = layout(2014 + n as u64, n, edge);
            let t0 = std::time::Instant::now();
            let cl = build_pair_list_celllist(&orbs, EPS, &cell).expect("finite eps");
            let celllist_ms = t0.elapsed().as_secs_f64() * 1e3;
            let brute_ms = (n <= brute_cap).then(|| {
                let t0 = std::time::Instant::now();
                let brute = build_pair_list(&orbs, EPS, Some(&cell));
                assert_eq!(brute.pairs, cl.pairs, "cell list must equal brute at n={n}");
                t0.elapsed().as_secs_f64() * 1e3
            });
            SweepRow {
                n,
                celllist_ms,
                brute_ms,
                pairs: cl.len(),
                considered: cl.considered,
                candidates: cl.n_candidates,
            }
        })
        .collect()
}

/// O(N) evidence: inspected candidates per orbital stay bounded as N
/// grows (the brute scan's grow like N/2). Scored over the sizes whose
/// cell spans at least four cutoff radii per axis — below that the bins
/// legitimately cover the whole box and locality cannot engage.
fn sourcing_is_linear(rows: &[SweepRow]) -> bool {
    let min_edge = 4.0 * cutoff_radius(SPREAD, SPREAD, EPS);
    let per_orb: Vec<f64> = rows
        .iter()
        .filter(|r| edge_for(r.n) >= min_edge)
        .map(|r| r.considered as f64 / r.n as f64)
        .collect();
    let lo = per_orb.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = per_orb.iter().copied().fold(0.0, f64::max);
    per_orb.len() >= 2 && hi / lo <= 1.5
}

// ── section 2: weak scaling over sharded domains ──

/// Domain `d`'s owned orbitals from its private deterministic RNG stream:
/// global id `d·m + k`, centers uniform in the domain's box. No global
/// table is ever built — any rank can re-derive any neighbor's orbitals.
fn domain_orbitals(geom: &DomainGeometry, d: usize, m: usize) -> Vec<(u32, OrbitalInfo)> {
    let c = geom.coords_of(d);
    let w = geom.box_widths();
    let mut rng = SplitMix64::new(0xD05EED ^ (d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..m)
        .map(|k| {
            (
                (d * m + k) as u32,
                OrbitalInfo {
                    center: Vec3::new(
                        rng.range_f64(c[0] as f64 * w[0], (c[0] + 1) as f64 * w[0]),
                        rng.range_f64(c[1] as f64 * w[1], (c[1] + 1) as f64 * w[1]),
                        rng.range_f64(c[2] as f64 * w[2], (c[2] + 1) as f64 * w[2]),
                    ),
                    spread: SPREAD,
                },
            )
        })
        .collect()
}

struct WeakRow {
    g: usize,
    ranks: usize,
    orbitals_total: u64,
    residents: usize,
    halo: usize,
    pairs: usize,
    considered: usize,
    build_ms: f64,
    mem_mb: f64,
    windowed: bool,
}

/// Measure domain 0 of a `g³` grid at fixed per-domain occupancy:
/// materialize it and its neighbor shell, import the halo by predicate,
/// and build its local pair share (`reps` timing repetitions, min kept).
fn weak_point(g: usize, reps: usize) -> WeakRow {
    let box_edge = edge_for(M_PER_DOMAIN);
    let cell = Cell::cubic(box_edge * g as f64);
    let geom = DomainGeometry::new(cell, [g, g, g], EPS, SPREAD).expect("finite eps");
    let mut residents = domain_orbitals(&geom, 0, M_PER_DOMAIN);
    let mut halo = 0usize;
    for e in geom.neighbor_domains(0) {
        for (id, o) in domain_orbitals(&geom, e, M_PER_DOMAIN) {
            if geom.in_halo(0, &o) {
                residents.push((id, o));
                halo += 1;
            }
        }
    }
    residents.sort_unstable_by_key(|&(id, _)| id);
    let mut best = f64::INFINITY;
    let mut result: Option<(Vec<Pair>, usize)> = None;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        let out = geom.local_pairs(0, &residents);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        result = Some(out);
    }
    let (pairs, considered) = result.expect("at least one rep");
    let mem_mb = (residents.len() * std::mem::size_of::<(u32, OrbitalInfo)>()
        + pairs.len() * std::mem::size_of::<Pair>()) as f64
        / 1e6;
    WeakRow {
        g,
        ranks: g * g * g,
        orbitals_total: (M_PER_DOMAIN * g * g * g) as u64,
        residents: residents.len(),
        halo,
        pairs: pairs.len(),
        considered,
        build_ms: best,
        mem_mb,
        windowed: geom.windowed(),
    }
}

fn weak_scaling_rows(reps: usize) -> Vec<WeakRow> {
    [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&g| weak_point(g, reps))
        .collect()
}

/// Flatness of the per-rank load across the windowed weak-scaling points
/// (g = 2 runs the exact fallback and is reported but not scored): every
/// per-rank quantity within ±10% of its mean.
fn weak_scaling_is_flat(rows: &[WeakRow]) -> bool {
    let flat = |vals: Vec<f64>| -> bool {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        vals.iter().all(|v| (v - mean).abs() <= 0.10 * mean)
    };
    let win: Vec<&WeakRow> = rows.iter().filter(|r| r.windowed).collect();
    win.len() >= 2
        && flat(win.iter().map(|r| r.residents as f64).collect())
        && flat(win.iter().map(|r| r.pairs as f64).collect())
        && flat(win.iter().map(|r| r.considered as f64).collect())
}

/// Laptop-scale bit-identity of every sourcing route: sharded and SPMD
/// (real halo messages) lists against the global O(N²) and cell-list
/// builders, compared field by field in bits.
struct Identity {
    sharded: bool,
    spmd: bool,
    windowed: bool,
}

fn bit_identity() -> Identity {
    let same = |a: &[Pair], b: &[Pair]| -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                (x.i, x.j) == (y.i, y.j)
                    && x.weight.to_bits() == y.weight.to_bits()
                    && x.bound.to_bits() == y.bound.to_bits()
            })
    };
    let edge = 26.0;
    let cell = Cell::cubic(edge);
    let orbs = layout(77, 400, edge);
    let eps = 1e-5;
    let brute = build_pair_list(&orbs, eps, Some(&cell));
    let cl = build_pair_list_celllist(&orbs, eps, &cell).expect("finite eps");
    let sharded = [[2, 2, 2], [3, 2, 1]].iter().all(|&dims| {
        let sh = build_pair_list_sharded(&orbs, eps, &cell, dims).expect("finite eps");
        same(&brute.pairs, &sh.pairs) && same(&cl.pairs, &sh.pairs)
    });
    let spmd = {
        let sh = sharded_pair_list_spmd(&orbs, eps, &cell, [2, 2, 1], CollectiveMode::Flat)
            .expect("spmd build");
        same(&brute.pairs, &sh.pairs)
    };
    // A fine grid with a short cutoff engages the windowed O(residents)
    // local build; it must stay exact too.
    let windowed = {
        let edge = 80.0;
        let cell = Cell::cubic(edge);
        let orbs = layout(78, 600, edge);
        let eps = 1e-4;
        let geom = DomainGeometry::new(cell, [4, 4, 4], eps, SPREAD).expect("finite eps");
        let sh = build_pair_list_sharded(&orbs, eps, &cell, [4, 4, 4]).expect("finite eps");
        geom.windowed() && same(&build_pair_list(&orbs, eps, Some(&cell)).pairs, &sh.pairs)
    };
    Identity {
        sharded,
        spmd,
        windowed,
    }
}

// ── section 3: modeled torus halo traffic ──

struct TorusRow {
    racks: usize,
    nodes: usize,
    grid: [usize; 3],
    max_link_kb: f64,
    congestion: f64,
    mean_hops: f64,
    halo_us: f64,
    replication_us: f64,
}

fn torus_rows() -> Vec<TorusRow> {
    let owned_bytes = M_PER_DOMAIN as f64 * WIRE_BYTES;
    let box_edge = edge_for(M_PER_DOMAIN);
    let halo = cutoff_radius(SPREAD, SPREAD, EPS);
    // One face exports the slab of owned orbitals within the halo depth
    // of that face.
    let face_bytes = owned_bytes * (halo / box_edge).min(1.0);
    scaling_series()
        .iter()
        .map(|m| {
            let map = DomainMap::fold(m.torus);
            let cost = halo_cost(m, &map, face_bytes, owned_bytes);
            TorusRow {
                racks: m.nodes() / 1024,
                nodes: m.nodes(),
                grid: map.grid,
                max_link_kb: cost.max_link_bytes / 1e3,
                congestion: cost.congestion,
                mean_hops: cost.mean_hops,
                halo_us: cost.time * 1e6,
                replication_us: cost.replication_time * 1e6,
            }
        })
        .collect()
}

/// Run the `bench-scaling` experiment.
pub fn bench_scaling(fast: bool) -> Vec<Table> {
    let mut tables = Vec::new();
    let mut json = String::from("{\n  \"experiment\": \"bench-scaling\",\n");
    json.push_str(&format!(
        "  \"eps\": {EPS:e}, \"spread\": {SPREAD}, \"orbitals_per_rank\": {M_PER_DOMAIN},\n"
    ));

    // ── sourcing ──
    let rows = sourcing_sweep(fast);
    let linear = sourcing_is_linear(&rows);
    let mut ts = Table::new(
        "bench-scaling — cell-list pair source vs O(N^2) scan, paper water density",
        &[
            "orbitals",
            "cell list [ms]",
            "brute [ms]",
            "pairs",
            "inspected",
            "inspected/N",
            "candidates",
        ],
    );
    json.push_str("  \"sourcing\": [\n");
    for (i, r) in rows.iter().enumerate() {
        ts.row(vec![
            r.n.to_string(),
            format!("{:.1}", r.celllist_ms),
            r.brute_ms.map_or("-".into(), |t| format!("{t:.1}")),
            r.pairs.to_string(),
            r.considered.to_string(),
            format!("{:.1}", r.considered as f64 / r.n as f64),
            r.candidates.to_string(),
        ]);
        json.push_str(&format!(
            "    {{\"orbitals\": {}, \"celllist_ms\": {:.3}, \"brute_ms\": {}, \"pairs\": {}, \
             \"inspected\": {}, \"candidates\": {}}}{}\n",
            r.n,
            r.celllist_ms,
            r.brute_ms.map_or("null".into(), |t| format!("{t:.3}")),
            r.pairs,
            r.considered,
            r.candidates,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!("  ],\n  \"sourcing_linear\": {linear},\n"));
    ts.note = format!(
        "inspected candidates per orbital stay bounded as N grows (linear sourcing: {linear}); \
         every brute-checked size matches the cell list pair for pair"
    );
    tables.push(ts);

    // ── weak scaling ──
    let reps = if fast { 1 } else { 3 };
    let wrows = weak_scaling_rows(reps);
    let flat = weak_scaling_is_flat(&wrows);
    let ident = bit_identity();
    let mut tw = Table::new(
        "bench-scaling — weak scaling, 3375 orbitals/rank over g^3 torus subdomains (domain 0 measured)",
        &[
            "g",
            "ranks",
            "orbitals total",
            "residents",
            "halo",
            "pairs/rank",
            "inspected/rank",
            "build [ms]",
            "mem [MB]",
            "path",
        ],
    );
    json.push_str("  \"weak_scaling\": [\n");
    for (i, r) in wrows.iter().enumerate() {
        tw.row(vec![
            r.g.to_string(),
            r.ranks.to_string(),
            r.orbitals_total.to_string(),
            r.residents.to_string(),
            r.halo.to_string(),
            r.pairs.to_string(),
            r.considered.to_string(),
            format!("{:.1}", r.build_ms),
            format!("{:.2}", r.mem_mb),
            if r.windowed {
                "window"
            } else {
                "exact-fallback"
            }
            .into(),
        ]);
        json.push_str(&format!(
            "    {{\"domains_per_axis\": {}, \"ranks\": {}, \"orbitals_total\": {}, \
             \"residents\": {}, \"halo\": {}, \"pairs_per_rank\": {}, \
             \"inspected_per_rank\": {}, \"build_ms\": {:.3}, \"rank_mem_mb\": {:.3}, \
             \"windowed\": {}}}{}\n",
            r.g,
            r.ranks,
            r.orbitals_total,
            r.residents,
            r.halo,
            r.pairs,
            r.considered,
            r.build_ms,
            r.mem_mb,
            r.windowed,
            if i + 1 < wrows.len() { "," } else { "" }
        ));
    }
    let max_total = wrows.iter().map(|r| r.orbitals_total).max().unwrap_or(0);
    json.push_str(&format!(
        "  ],\n  \"weak_scaling_flat\": {flat},\n  \"max_orbitals_total\": {max_total},\n  \
         \"bit_identity\": {{\"sharded\": {}, \"spmd\": {}, \"windowed\": {}}},\n",
        ident.sharded, ident.spmd, ident.windowed
    ));
    tw.note = format!(
        "per-rank load flat within 10% across the windowed series up to {max_total} total \
         orbitals ({flat}); sharded/SPMD lists bit-identical to the global builders \
         (sharded: {}, spmd: {}, windowed: {})",
        ident.sharded, ident.spmd, ident.windowed
    );
    tables.push(tw);

    // ── torus halo traffic ──
    let trows = torus_rows();
    let halo_wins = trows.iter().all(|r| r.halo_us < r.replication_us);
    let mut tt = Table::new(
        "bench-scaling — modeled halo exchange on the folded torus vs replicated orbitals",
        &[
            "racks",
            "nodes",
            "domain grid",
            "max link [kB]",
            "congestion",
            "mean hops",
            "halo [us]",
            "replication [us]",
        ],
    );
    json.push_str("  \"torus_halo\": [\n");
    for (i, r) in trows.iter().enumerate() {
        tt.row(vec![
            r.racks.to_string(),
            r.nodes.to_string(),
            format!("{}x{}x{}", r.grid[0], r.grid[1], r.grid[2]),
            format!("{:.1}", r.max_link_kb),
            format!("{:.2}", r.congestion),
            format!("{:.2}", r.mean_hops),
            format!("{:.1}", r.halo_us),
            format!("{:.1}", r.replication_us),
        ]);
        json.push_str(&format!(
            "    {{\"racks\": {}, \"nodes\": {}, \"grid\": [{}, {}, {}], \
             \"max_link_kb\": {:.3}, \"congestion\": {:.3}, \"mean_hops\": {:.3}, \
             \"halo_us\": {:.3}, \"replication_us\": {:.3}}}{}\n",
            r.racks,
            r.nodes,
            r.grid[0],
            r.grid[1],
            r.grid[2],
            r.max_link_kb,
            r.congestion,
            r.mean_hops,
            r.halo_us,
            r.replication_us,
            if i + 1 < trows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"halo_beats_replication\": {halo_wins}\n}}\n"
    ));
    tt.note = format!(
        "halo stays O(1)/rank while replication grows O(P); halo cheaper at every scale: \
         {halo_wins}"
    );
    tables.push(tt);

    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str("; BENCH_scaling.json written"),
        Err(e) => tables
            .last_mut()
            .expect("tables is non-empty")
            .note
            .push_str(&format!("; JSON not written: {e}")),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_per_rank_load_is_flat_to_1e8_orbitals() {
        // The acceptance claim: growing the system 4096× at fixed
        // per-rank occupancy leaves every per-rank quantity flat, and the
        // largest point simulates more than 10^8 orbitals.
        let rows = weak_scaling_rows(1);
        assert!(weak_scaling_is_flat(&rows), "per-rank load not flat");
        let max = rows.iter().map(|r| r.orbitals_total).max().unwrap();
        assert!(max >= 100_000_000, "largest point only {max} orbitals");
        // The windowed path engages everywhere it is declared exact, and
        // the inspection count stays O(m): far below the O(m²) fallback.
        for r in rows.iter().filter(|r| r.windowed) {
            assert!(r.g >= 4);
            assert!(
                r.considered < M_PER_DOMAIN * M_PER_DOMAIN / 4,
                "g={}: {} inspections is not sub-quadratic",
                r.g,
                r.considered
            );
        }
    }

    #[test]
    fn every_sourcing_route_is_bit_identical() {
        let ident = bit_identity();
        assert!(ident.sharded, "sharded list diverged from global");
        assert!(ident.spmd, "SPMD halo-exchange list diverged from global");
        assert!(ident.windowed, "windowed local build diverged from global");
    }

    #[test]
    fn cell_list_sourcing_is_linear_at_paper_density() {
        let rows = sourcing_sweep(true);
        assert!(sourcing_is_linear(&rows), "inspected/N not flat");
        // And inspection stays far below the quadratic candidate count
        // once the box spans several cutoff radii (the margin keeps
        // growing with N — per-orbital inspection is constant).
        for r in rows.iter().filter(|r| r.n >= 4096) {
            assert!(
                r.considered * 4 < r.candidates,
                "n={}: {} of {} inspected",
                r.n,
                r.considered,
                r.candidates
            );
        }
    }

    #[test]
    fn modeled_halo_beats_replication_on_the_whole_series() {
        let rows = torus_rows();
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(
                r.halo_us < r.replication_us,
                "{} racks: halo {} >= replication {}",
                r.racks,
                r.halo_us,
                r.replication_us
            );
        }
        // The advantage widens with machine size (replication is O(P)).
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.replication_us / last.halo_us > first.replication_us / first.halo_us,
            "gap must widen with scale"
        );
    }
}
