//! The application experiments.
//!
//! * `tab-battery` — the lithium/air chemistry result: interaction
//!   energies of each candidate solvent with the Li₂O₂ discharge product
//!   (RHF + PBE0, real SCF) and degradation events in hot reactive-MD
//!   trajectories. Propylene carbonate (the incumbent) should bind
//!   strongest and break bonds; the replacement candidates survive.
//! * `fig-md-water` — the MD substrate check: NVE conservation and the
//!   liquid structure of a periodic water box.

use crate::Table;
use liair_basis::{systems, Basis, Element};
use liair_md::analysis::{drift_per_step, BondEvents, RdfAccumulator};
use liair_md::{ForceField, MdOptions, MdState, Thermostat};
use liair_scf::{functional_energy, rhf, ScfOptions};
use liair_xc::Functional;

fn scf_opts() -> ScfOptions {
    ScfOptions {
        energy_tol: 1e-7,
        max_iter: 150,
        ..Default::default()
    }
}

/// Hot-trajectory degradation count for one solvent's Li₂O₂ complex:
/// distinct solvent-internal bonds broken (stretch > 1.5·r₀, where the
/// Morse bonds are > 95 % dissociated) in `steps` Berendsen-thermostatted
/// steps at `t_target` K, summed over three independent seeds
/// (accelerated-aging protocol — see DESIGN.md on the activation-energy
/// calibration of the labile carbonate linkages).
pub fn degradation_events(solvent: systems::Solvent, t_target: f64, steps: usize) -> usize {
    let mut total = 0;
    for seed in 0..3u64 {
        let complex = systems::li2o2_complex(solvent, 3.6);
        let n_solvent = solvent.molecule().natoms();
        let ff = ForceField::from_molecule(&complex, None);
        let mut state = MdState::new(complex, None, &ff);
        state.thermalize_seeded(t_target, Some(2014 + seed));
        let opts = MdOptions {
            dt: 15.0,
            thermostat: Thermostat::Berendsen {
                t_target,
                tau: 500.0,
            },
            ..Default::default()
        };
        let mut events = BondEvents::default();
        for _ in 0..steps {
            state.step(&ff, &opts);
            let broken: Vec<usize> = ff
                .broken_bonds(&state.mol, None, 1.5)
                .into_iter()
                .filter(|&b| ff.bonds[b].i < n_solvent && ff.bonds[b].j < n_solvent)
                .collect();
            events.record(&broken);
        }
        total += events.count();
    }
    total
}

/// Run the battery table.
pub fn tab_battery(fast: bool) -> Vec<Table> {
    let solvents: Vec<systems::Solvent> = if fast {
        vec![systems::Solvent::PropyleneCarbonate, systems::Solvent::Dme]
    } else {
        systems::Solvent::all().to_vec()
    };
    let opts = scf_opts();

    let cluster = systems::li2o2();
    let basis_cl = Basis::sto3g(&cluster);
    let scf_cl = rhf(&cluster, &basis_cl, &opts);
    assert!(scf_cl.converged, "Li2O2 SCF failed");
    let pbe0_cl = functional_energy(&cluster, &basis_cl, &scf_cl, Functional::Pbe0, &opts);

    let mut t = Table::new(
        "tab-battery — solvent stability against Li2O2 (STO-3G)",
        &[
            "solvent",
            "E_int RHF [mHa]",
            "E_int PBE0 [mHa]",
            "bonds broken (1200K MD)",
            "verdict",
        ],
    );
    for s in solvents {
        let solvent = s.molecule();
        let complex = systems::li2o2_complex(s, 3.6);
        let basis_s = Basis::sto3g(&solvent);
        let scf_s = rhf(&solvent, &basis_s, &opts);
        let basis_c = Basis::sto3g(&complex);
        let scf_c = rhf(&complex, &basis_c, &opts);
        assert!(
            scf_s.converged && scf_c.converged,
            "{} SCF failed",
            s.name()
        );
        let e_int_rhf = scf_c.energy - scf_s.energy - scf_cl.energy;
        let pbe0_s = functional_energy(&solvent, &basis_s, &scf_s, Functional::Pbe0, &opts);
        let pbe0_c = functional_energy(&complex, &basis_c, &scf_c, Functional::Pbe0, &opts);
        let e_int_pbe0 = pbe0_c - pbe0_s - pbe0_cl;
        let broken = degradation_events(s, 1200.0, if fast { 4000 } else { 6000 });
        let verdict = if broken > 0 { "DEGRADES" } else { "stable" };
        t.row(vec![
            s.name().into(),
            format!("{:.1}", e_int_rhf * 1e3),
            format!("{:.1}", e_int_pbe0 * 1e3),
            format!("{broken}"),
            verdict.into(),
        ]);
    }
    t.note = "paper conclusion: PC degrades at the peroxide; alternative solvents show enhanced stability".into();
    vec![t]
}

/// Run the water-MD figure.
pub fn fig_md_water(fast: bool) -> Vec<Table> {
    let n_side = if fast { 2 } else { 3 };
    let (mol, cell) = systems::water_box(n_side, 42);
    let ff = ForceField::from_molecule(&mol, Some(&cell));
    let mut state = MdState::new(mol, Some(cell), &ff);
    state.thermalize_seeded(300.0, Some(7));
    let eq = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::Berendsen {
            t_target: 300.0,
            tau: 300.0,
        },
        ..Default::default()
    };
    state.run(&ff, &eq, if fast { 500 } else { 1500 });
    let nve = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::None,
        ..Default::default()
    };
    let mut rdf = RdfAccumulator::new(Element::O, Element::O, 12.0, 48);
    let mut energies = Vec::new();
    let prod = if fast { 800 } else { 2000 };
    for step in 0..prod {
        state.step(&ff, &nve);
        energies.push(state.total_energy());
        if step % 20 == 0 {
            rdf.add_frame(&state.mol, &state.cell.unwrap());
        }
    }
    let drift = drift_per_step(&energies);
    let g = rdf.finish(&state.mol, &state.cell.unwrap());
    let (r_peak, g_peak) = g
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();

    let mut t = Table::new(
        &format!(
            "fig-md-water — {} H2O periodic box",
            n_side * n_side * n_side
        ),
        &["quantity", "value"],
    );
    t.row(vec!["NVE steps".into(), format!("{prod}")]);
    t.row(vec![
        "energy drift / step".into(),
        format!("{:.2e} Ha", drift),
    ]);
    t.row(vec![
        "final T".into(),
        format!("{:.0} K", state.temperature()),
    ]);
    t.row(vec![
        "g_OO first peak".into(),
        format!("{:.2} at r = {:.2} Bohr", g_peak, r_peak),
    ]);
    t.note = "the condensed-phase substrate the exchange workload samples from".into();
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_degrades_and_dme_survives() {
        // The core chemistry claim at reduced step count.
        let pc = degradation_events(systems::Solvent::PropyleneCarbonate, 1200.0, 4000);
        let dme = degradation_events(systems::Solvent::Dme, 1200.0, 4000);
        assert!(pc > dme, "PC broke {pc} bonds vs DME {dme}");
        assert!(pc >= 1, "PC should degrade in the hot trajectory");
    }

    #[test]
    fn md_water_figure_is_stable() {
        let t = &fig_md_water(true)[0];
        let drift_row = &t.rows[1];
        let drift: f64 = drift_row[1]
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(drift.abs() < 1e-5, "NVE drift {drift}");
    }
}
