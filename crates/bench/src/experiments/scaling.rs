//! Machine-scale experiments: strong scaling, baseline comparison,
//! time-to-solution, load balance and phase breakdown.

use crate::Table;
use liair_bgq::collectives::CollectiveAlgo;
use liair_bgq::machine::scaling_series;
use liair_bgq::MachineConfig;
use liair_core::balance::assign_pairs;
use liair_core::simulate::parallel_efficiency;
use liair_core::{simulate_hfx_build, BalanceStrategy, Scheme, Workload};

fn workload(_fast: bool) -> Workload {
    // The paper workload is cheap to *model* (the expensive part at scale
    // is real FFT work, which the simulator prices analytically), so even
    // fast mode uses it — a smaller workload would hit its legitimate
    // strong-scaling limit and muddy the claim tables.
    Workload::paper_water_box()
}

fn series(fast: bool) -> Vec<MachineConfig> {
    if fast {
        [1usize, 4, 16, 96]
            .iter()
            .map(|&r| MachineConfig::bgq_racks(r))
            .collect()
    } else {
        scaling_series()
    }
}

/// `fig-strong-scaling`: the headline figure — time per exchange build and
/// parallel efficiency of this work's scheme up to 6,291,456 threads.
pub fn fig_strong_scaling(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let algo = CollectiveAlgo::TorusPipelined;
    let outcomes: Vec<_> = series(fast)
        .iter()
        .map(|m| simulate_hfx_build(&w, m, Scheme::ours(), algo))
        .collect();
    let eff = parallel_efficiency(&outcomes);
    let mut t = Table::new(
        &format!(
            "fig-strong-scaling — {} ({} pairs after eps={:.0e} screening)",
            w.name,
            w.pairs.len(),
            w.pairs.eps
        ),
        &[
            "racks",
            "nodes",
            "threads",
            "time/build [ms]",
            "speedup",
            "efficiency",
            "group",
            "t_fft/t_reduce [ms]",
        ],
    );
    let t0 = outcomes[0].time;
    for (o, e) in outcomes.iter().zip(&eff) {
        t.row(vec![
            format!("{}", o.nodes / 1024),
            format!("{}", o.nodes),
            format!("{}", o.threads),
            format!("{:.3}", o.time * 1e3),
            format!("{:.1}x", t0 / o.time),
            format!("{:.1}%", e * 100.0),
            format!("{}", o.group_size),
            format!(
                "{:.3}/{:.3}",
                o.profile.t_fft_s * 1e3,
                o.profile.t_reduce_s * 1e3
            ),
        ]);
    }
    t.note = "paper claim: near-perfect parallel efficiency at 6,291,456 threads (96 racks)".into();
    vec![t]
}

/// `fig-baseline-scaling`: efficiency of every scheme across the series —
/// the >20× scalability-gap figure.
pub fn fig_baseline_scaling(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let algo = CollectiveAlgo::TorusPipelined;
    let machines = series(fast);
    let mut t = Table::new(
        "fig-baseline-scaling — parallel efficiency by scheme",
        &["threads", "this work", "full-grid pairs", "PW-distributed"],
    );
    let mut per_scheme: Vec<Vec<f64>> = Vec::new();
    for scheme in [Scheme::ours(), Scheme::FullGridPairs, Scheme::PwDistributed] {
        let outcomes: Vec<_> = machines
            .iter()
            .map(|m| simulate_hfx_build(&w, m, scheme, algo))
            .collect();
        per_scheme.push(parallel_efficiency(&outcomes));
    }
    for (k, m) in machines.iter().enumerate() {
        t.row(vec![
            format!("{}", m.threads()),
            format!("{:.1}%", per_scheme[0][k] * 100.0),
            format!("{:.1}%", per_scheme[1][k] * 100.0),
            format!("{:.1}%", per_scheme[2][k] * 100.0),
        ]);
    }
    // Scalability metric: largest thread count still above 50 % efficiency.
    let useful = |effs: &[f64]| -> usize {
        machines
            .iter()
            .zip(effs)
            .filter(|(_, &e)| e > 0.5)
            .map(|(m, _)| m.threads())
            .max()
            .unwrap_or(0)
    };
    let ours = useful(&per_scheme[0]);
    let pw = useful(&per_scheme[2]).max(1);
    t.note = format!(
        "useful scaling (>50% eff): this work {} threads vs PW baseline {} — {:.0}x (paper: >20x)",
        ours,
        pw,
        ours as f64 / pw as f64
    );
    vec![t]
}

/// `tab-time-to-solution`: wall time of one build per scheme at fixed
/// machine sizes — the >10× claim.
pub fn tab_time_to_solution(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let algo = CollectiveAlgo::TorusPipelined;
    let racks: &[usize] = if fast { &[4] } else { &[1, 4, 16] };
    let mut t = Table::new(
        "tab-time-to-solution — one HFX build (ms)",
        &[
            "racks",
            "this work",
            "full-grid pairs",
            "speedup",
            "replicated direct",
            "speedup",
        ],
    );
    for &r in racks {
        let m = MachineConfig::bgq_racks(r);
        let ours = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
        let full = simulate_hfx_build(&w, &m, Scheme::FullGridPairs, algo);
        let rep = simulate_hfx_build(&w, &m, Scheme::ReplicatedDirect, algo);
        t.row(vec![
            format!("{r}"),
            format!("{:.2}", ours.time * 1e3),
            format!("{:.2}", full.time * 1e3),
            format!("{:.1}x", full.time / ours.time),
            format!("{:.2}", rep.time * 1e3),
            format!("{:.1}x", rep.time / ours.time),
        ]);
    }
    t.note = "paper claim: improvement that can surpass a 10-fold decrease in runtime".into();

    // Second view: the same mechanism *measured* on this host — one real
    // exchange pair on the full cell grid vs on its pair-local patch.
    let mut t2 = Table::new(
        "tab-time-to-solution — the compact representation, measured on this host",
        &["kernel", "grid", "time/pair [ms]", "speedup"],
    );
    {
        use liair_grid::patch::patch_pair_energy;
        use liair_grid::{PoissonSolver, RealGrid};
        use liair_math::Vec3;
        let l = 24.0;
        // Keep the full grid a power of two so both paths use the radix-2
        // FFT — the comparison isolates the representation, not the
        // transform algorithm.
        let n_full = 64;
        let parent = RealGrid::cubic(liair_basis::Cell::cubic(l), n_full);
        let mk = |center: Vec3| -> Vec<f64> {
            let alpha: f64 = 1.1;
            let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
            (0..parent.len())
                .map(|i| {
                    let d = parent.cell.min_image(center, parent.point_flat(i));
                    norm * (-alpha * d.norm_sqr()).exp()
                })
                .collect()
        };
        let c1 = Vec3::new(l / 2.0 - 1.0, l / 2.0, l / 2.0);
        let c2 = Vec3::new(l / 2.0 + 1.0, l / 2.0, l / 2.0);
        let (phi_i, phi_j) = (mk(c1), mk(c2));
        let solver = PoissonSolver::isolated(parent);
        let reps = if fast { 2 } else { 5 };
        let time_it = |f: &dyn Fn() -> f64| -> f64 {
            let _ = f(); // warm up
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let t_full = time_it(&|| {
            let rho: Vec<f64> = phi_i.iter().zip(&phi_j).map(|(a, b)| a * b).collect();
            solver.exchange_pair(&rho).0
        });
        let t_patch = time_it(&|| {
            patch_pair_energy(&parent, &phi_i, &phi_j, (c1 + c2) * 0.5, n_full * 3 / 8)
        });
        t2.row(vec![
            "full-cell transform".into(),
            format!("{n_full}^3"),
            format!("{:.2}", t_full * 1e3),
            "1.0x".into(),
        ]);
        t2.row(vec![
            "pair-local patch".into(),
            format!("{}^3", (n_full * 3 / 8).next_power_of_two()),
            format!("{:.2}", t_patch * 1e3),
            format!("{:.1}x", t_full / t_patch),
        ]);
    }
    t2.note = "identical pair, identical spacing — the representation alone buys the factor".into();
    vec![t, t2]
}

/// `fig-load-balance`: max/mean load by strategy and machine size, on the
/// real screened pair list, under the adaptive-pair-box cost model (pair
/// cost grows with orbital separation — the heterogeneous-cost regime
/// where balancing strategy matters; fixed boxes cost uniformly and any
/// striping balances).
pub fn fig_load_balance(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let costs = w.adaptive_pair_costs();
    let racks: &[usize] = if fast { &[1, 16] } else { &[1, 4, 16, 96] };
    let mut t = Table::new(
        "fig-load-balance — max/mean load, adaptive pair-box costs",
        &["racks", "round-robin", "block", "greedy LPT"],
    );
    for &r in racks {
        let nodes = r * 1024;
        let mut cells = vec![format!("{r}")];
        for strat in [
            BalanceStrategy::RoundRobin,
            BalanceStrategy::Block,
            BalanceStrategy::GreedyLpt,
        ] {
            let a = liair_core::balance::assign(&costs, nodes, strat);
            cells.push(format!("{:.3}", a.imbalance()));
        }
        t.row(cells);
    }
    let _ = assign_pairs; // unit-cost path exercised elsewhere
    t.note = "1.000 = perfect balance; block striping concentrates the expensive long pairs".into();
    vec![t]
}

/// `tab-step-breakdown`: per-phase share of one build across machine sizes.
pub fn tab_step_breakdown(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let algo = CollectiveAlgo::TorusPipelined;
    let mut t = Table::new(
        "tab-step-breakdown — phase share of one build (this work)",
        &[
            "racks",
            "total [ms]",
            "pair FFTs",
            "exposed traffic",
            "allreduce",
            "utilization",
        ],
    );
    for m in series(fast) {
        let o = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
        let total = o.time.max(1e-30);
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / total);
        let phase = |name: &str| -> f64 {
            o.report
                .phases
                .iter()
                .find(|p| p.name.contains(name))
                .map(|p| p.compute + p.comm)
                .unwrap_or(0.0)
        };
        t.row(vec![
            format!("{}", o.nodes / 1024),
            format!("{:.3}", o.time * 1e3),
            pct(phase("pair FFTs")),
            pct(phase("traffic")),
            pct(phase("allreduce")),
            format!("{:.1}%", o.report.compute_utilization * 100.0),
        ]);
    }
    t.note = "compute-dominated at every scale — the communication-avoiding design".into();
    vec![t]
}

/// `fig-weak-scaling`: grow the system with the machine (constant orbitals
/// per rack) — the production AIMD regime; time per build should stay
/// flat if the scheme is communication-avoiding.
pub fn fig_weak_scaling(fast: bool) -> Vec<Table> {
    let algo = CollectiveAlgo::TorusPipelined;
    let racks: &[usize] = if fast {
        &[1, 16, 96]
    } else {
        &[1, 4, 16, 48, 96]
    };
    let mut t = Table::new(
        "fig-weak-scaling — constant work per rack (1024 orbitals/rack-eqv)",
        &[
            "racks",
            "orbitals",
            "pairs",
            "time/build [ms]",
            "weak efficiency",
        ],
    );
    let mut t_ref = None;
    for &r in racks {
        // System volume grows with the machine at fixed density: orbital
        // count ∝ racks, cell edge ∝ racks^{1/3}.
        let norb = 1024 * r;
        let edge = 37.2 * (r as f64).cbrt();
        let w = Workload::condensed("weak", norb, edge, 1.5, 1e-6, 48, 128, 2014);
        let m = MachineConfig::bgq_racks(r);
        let o = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
        let t0 = *t_ref.get_or_insert(o.time);
        t.row(vec![
            format!("{r}"),
            format!("{norb}"),
            format!("{}", w.pairs.len()),
            format!("{:.2}", o.time * 1e3),
            format!("{:.1}%", t0 / o.time * 100.0),
        ]);
    }
    t.note = "flat time per build = perfect weak scaling (linear-scaling pair counts make the work per rack constant)".into();
    vec![t]
}

/// `fig-group-size`: ablation of the hierarchical second level — forcing
/// the node-group size at the full machine shows why grouping is needed
/// once pairs/node drops below a handful.
pub fn fig_group_size(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let m = MachineConfig::bgq_racks(96);
    let algo = CollectiveAlgo::TorusPipelined;
    let mut t = Table::new(
        "fig-group-size — forced node-group size at 96 racks (6.29M threads)",
        &["group", "pairs/group", "time [ms]", "vs auto"],
    );
    let auto = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
    for g in [1usize, 2, 4, 8, 16, 32, 64] {
        let o = simulate_hfx_build(
            &w,
            &m,
            Scheme::PairDistributed {
                strategy: BalanceStrategy::GreedyLpt,
                group_size: Some(g),
                threads: 64,
                simd: true,
            },
            algo,
        );
        t.row(vec![
            format!("{g}"),
            format!("{:.1}", w.pairs.len() as f64 / (m.nodes() / g) as f64),
            format!("{:.3}", o.time * 1e3),
            format!("{:+.1}%", (o.time / auto.time - 1.0) * 100.0),
        ]);
    }
    t.note = format!(
        "auto-selected group size {} → {:.3} ms; too-small groups lose to integer \
         pair quantization, too-large ones to intra-group FFT overhead",
        auto.group_size,
        auto.time * 1e3
    );
    vec![t]
}

/// `fig-accuracy-cost`: the controllable-accuracy Pareto — the same ε knob
/// simultaneously sets the (bound-estimated) exchange error and the
/// modelled build time at scale.
pub fn fig_accuracy_cost(fast: bool) -> Vec<Table> {
    let m = MachineConfig::bgq_racks(16);
    let algo = CollectiveAlgo::TorusPipelined;
    let mut t = Table::new(
        "fig-accuracy-cost — screening eps vs build time at 16 racks",
        &[
            "eps",
            "pairs",
            "dropped-bound^2 sum",
            "time [ms]",
            "speedup vs eps=1e-10",
        ],
    );
    let (norb, edge) = if fast { (1024, 37.2) } else { (4096, 59.2) };
    let mut t_ref = None;
    for &eps in &[1e-10, 1e-8, 1e-6, 1e-4, 1e-2] {
        let w = Workload::condensed("pareto", norb, edge, 1.5, eps, 48, 128, 2014);
        // Error proxy: Σ over dropped pairs of (screening bound)² — the
        // quadratic dependence of (ij|ij) on the pair magnitude.
        let kept: std::collections::HashSet<(u32, u32)> =
            w.pairs.pairs.iter().map(|p| (p.i, p.j)).collect();
        let all = Workload::condensed("pareto", norb, edge, 1.5, 0.0, 48, 128, 2014);
        let dropped_bound_sq: f64 = all
            .pairs
            .pairs
            .iter()
            .filter(|p| !kept.contains(&(p.i, p.j)))
            .map(|p| p.weight * p.bound * p.bound)
            .sum();
        let o = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
        let t0 = *t_ref.get_or_insert(o.time);
        t.row(vec![
            format!("{eps:.0e}"),
            format!("{}", w.pairs.len()),
            format!("{dropped_bound_sq:.2e}"),
            format!("{:.3}", o.time * 1e3),
            format!("{:.1}x", t0 / o.time),
        ]);
    }
    t.note = "one knob controls both axes — the paper's 'highly controllable manner'".into();
    vec![t]
}

/// `tab-memory`: per-node orbital-storage footprint by representation —
/// the 16 GB BG/Q node is why full-cell replication is impossible and why
/// the compact pair-local representation matters beyond speed.
pub fn tab_memory(fast: bool) -> Vec<Table> {
    let w = workload(fast);
    let mut t = Table::new(
        "tab-memory — orbital storage per node (16 GB BG/Q nodes)",
        &[
            "representation",
            "per-orbital",
            "1 rack/node",
            "96 racks/node",
            "feasible?",
        ],
    );
    let gb = |b: f64| format!("{:.2} GB", b / 1e9);
    let nodes_1 = 1024f64;
    let nodes_96 = 98304f64;
    // This work: compact patches, only the locality neighbourhood resident.
    let patch = w.patch_bytes();
    let neighborhood = |nodes: f64| {
        let pairs_per = w.pairs.len() as f64 / nodes;
        (2.0 * (2.0 * pairs_per).sqrt()).min(w.norb as f64).max(1.0)
    };
    t.row(vec![
        "pair-local patches (this work)".into(),
        format!("{:.2} MB", patch / 1e6),
        gb(neighborhood(nodes_1) * patch),
        gb(neighborhood(nodes_96) * patch),
        "yes".into(),
    ]);
    // Comparable approach: full-cell fields, full replication.
    let full = w.full_grid_bytes() / 2.0; // real field
    let total_full = w.norb as f64 * full;
    t.row(vec![
        "full-cell fields, replicated".into(),
        format!("{:.2} MB", full / 1e6),
        gb(total_full),
        gb(total_full),
        if total_full < 16e9 {
            "yes"
        } else {
            "NO (>16 GB)"
        }
        .into(),
    ]);
    // PW-distributed: full fields sharded across the partition.
    t.row(vec![
        "full-cell fields, distributed".into(),
        format!("{:.2} MB", full / 1e6),
        gb(total_full / nodes_1),
        gb(total_full / nodes_96),
        "yes (but all-to-alls)".into(),
    ]);
    t.note = format!(
        "{} orbitals; replication of full-cell fields needs {:.0} GB/node — \
         the memory wall that forces either the compact representation or \
         communication-heavy distribution",
        w.norb,
        total_full / 1e9
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_fast_has_expected_shape() {
        let tables = fig_strong_scaling(true);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4);
        // Last row is the full machine.
        assert_eq!(t.rows.last().unwrap()[2], "6291456");
    }

    #[test]
    fn baseline_scaling_reports_gap() {
        let tables = fig_baseline_scaling(true);
        assert!(tables[0].note.contains("x (paper: >20x)"));
    }

    #[test]
    fn time_to_solution_speedup_over_10x_on_paper_workload() {
        // Run the real (non-fast) workload at one machine size.
        let w = Workload::paper_water_box();
        let m = MachineConfig::bgq_racks(4);
        let algo = CollectiveAlgo::TorusPipelined;
        let ours = simulate_hfx_build(&w, &m, Scheme::ours(), algo);
        let full = simulate_hfx_build(&w, &m, Scheme::FullGridPairs, algo);
        assert!(full.time / ours.time > 10.0);
    }

    #[test]
    fn load_balance_lpt_is_best() {
        let t = &fig_load_balance(true)[0];
        for row in &t.rows {
            let rr: f64 = row[1].parse().unwrap();
            let lpt: f64 = row[3].parse().unwrap();
            assert!(lpt <= rr + 1e-9, "LPT {lpt} worse than RR {rr}");
        }
    }
}
