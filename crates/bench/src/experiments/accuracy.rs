//! `fig-screening-accuracy`: the "highly controllable manner" claim —
//! exchange-energy error and surviving pair count as functions of the
//! screening threshold ε.
//!
//! Two views:
//! * a *real* measurement on a hydrogen-molecule cluster: converge RHF,
//!   localize, evaluate the grid exchange at each ε and compare with the
//!   unscreened value;
//! * the surviving-pair statistics of the paper-scale condensed workload.

use crate::Table;
use liair_basis::{systems, Basis, Molecule};
use liair_core::hfx::grid_exchange_for_molecule;
use liair_core::Workload;
use liair_math::Vec3;
use liair_scf::{rhf, ScfOptions};

/// A row of `n` H₂ molecules spaced `gap` Bohr apart — localized orbitals
/// with a clean distance hierarchy of pair magnitudes.
pub fn h2_chain(n: usize, gap: f64) -> Molecule {
    let mut all = Molecule::new();
    for k in 0..n {
        let mut m = systems::h2();
        m.translate(Vec3::new(0.0, k as f64 * gap, 0.0));
        all.merge(&m);
    }
    all
}

/// Run the experiment.
pub fn fig_screening_accuracy(fast: bool) -> Vec<Table> {
    // --- real measurement ---
    let nmol = if fast { 3 } else { 5 };
    let grid_n = if fast { 48 } else { 72 };
    let mol = h2_chain(nmol, 4.5);
    let basis = Basis::sto3g(&mol);
    let scf = rhf(&mol, &basis, &ScfOptions::default());
    assert!(scf.converged);
    let reference = grid_exchange_for_molecule(&mol, &basis, &scf, grid_n, 6.0, 0.0, 0.0);
    let mut t1 = Table::new(
        &format!("fig-screening-accuracy — (H2)x{nmol} chain, real grid exchange"),
        &["eps", "pairs kept", "of", "E_x [Ha]", "|dE_x| [Ha]"],
    );
    t1.row(vec![
        "0 (exact)".into(),
        format!("{}", reference.pairs.len()),
        format!("{}", reference.pairs.n_candidates),
        format!("{:.6}", reference.result.energy),
        "0".into(),
    ]);
    let eps_list: &[f64] = if fast {
        &[1e-4, 1e-2]
    } else {
        &[1e-8, 1e-6, 1e-4, 1e-2, 1e-1]
    };
    for &eps in eps_list {
        let out = grid_exchange_for_molecule(&mol, &basis, &scf, grid_n, 6.0, eps, 0.0);
        t1.row(vec![
            format!("{eps:.0e}"),
            format!("{}", out.pairs.len()),
            format!("{}", out.pairs.n_candidates),
            format!("{:.6}", out.result.energy),
            format!(
                "{:.2e}",
                (out.result.energy - reference.result.energy).abs()
            ),
        ]);
    }
    t1.note = "error grows monotonically and controllably with eps — the accuracy knob".into();

    // --- workload statistics ---
    let mut t2 = Table::new(
        "fig-screening-accuracy — surviving pairs, condensed workload",
        &["eps", "pairs kept", "survival", "partners/orbital"],
    );
    let (norb, edge) = if fast { (256, 23.5) } else { (4096, 59.2) };
    for &eps in &[1e-10, 1e-8, 1e-6, 1e-4, 1e-2] {
        let w = Workload::condensed("sweep", norb, edge, 1.5, eps, 48, 128, 2014);
        t2.row(vec![
            format!("{eps:.0e}"),
            format!("{}", w.pairs.len()),
            format!("{:.2}%", w.pairs.survival() * 100.0),
            format!("{:.1}", w.partners_per_orbital()),
        ]);
    }
    t2.note = "linear-scaling pair counts in the condensed phase once eps > 0".into();
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_builder_is_closed_shell() {
        let m = h2_chain(4, 5.0);
        assert_eq!(m.natoms(), 8);
        assert_eq!(m.nocc(), 4);
    }

    #[test]
    fn screening_error_is_monotone_in_eps() {
        let tables = fig_screening_accuracy(true);
        let t = &tables[0];
        // Rows after the reference: |dE| non-decreasing with eps, pairs
        // non-increasing.
        let errs: Vec<f64> = t.rows[1..]
            .iter()
            .map(|r| r[4].parse::<f64>().unwrap())
            .collect();
        let kept: Vec<usize> = t.rows[1..]
            .iter()
            .map(|r| r[1].parse::<usize>().unwrap())
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "errors not monotone: {errs:?}");
        }
        for w in kept.windows(2) {
            assert!(w[1] <= w[0], "pair counts not monotone: {kept:?}");
        }
        // And the loosest screening has a visible but bounded error.
        assert!(errs.last().unwrap() < &1.0);
    }
}
