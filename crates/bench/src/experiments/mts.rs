//! `bench-mts` — trajectory-level throughput from r-RESPA multiple time
//! stepping: MD time-to-solution and energy-conservation drift at
//! `n_inner ∈ {1, 2, 4, 8}`, with per-outer-step incremental-exchange
//! reuse counters. Two tiers (see EXPERIMENTS.md):
//!
//! * `h2-bomd` — genuinely ab initio r-RESPA BOMD: the LDA surrogate SCF
//!   as the fast force ([`XcForces`]), the grid-exchange SCF with
//!   per-FD-slot incremental caches as the outer full force
//!   ([`IncrementalGridForces`] via [`HfxDeltaForces`]). All-electron
//!   grid SCF converges only for hydrogenic systems (DESIGN.md), so this
//!   tier runs the smallest real molecule end to end.
//! * `box-li2o2` / `complex-pc` — the `liair-basis::systems` electrolyte
//!   boxes under the PBE0-flavoured *model* split Hamiltonian
//!   `E = E_FF + E_xc[n_model] + a_x·E_x^model`: one Gaussian valence
//!   proxy orbital per heavy atom (the bench-incremental convention),
//!   the LDA term on the box grid as the fast part, and the exact-
//!   exchange term through the real engine's incremental energy path
//!   with one warm cache per finite-difference slot as the slow part.
//!
//! Writes `BENCH_mts.json`. Acceptance: ≥3× time-to-solution vs
//! `n_inner = 1` on an electrolyte box at matched (within-bound) drift.

use crate::Table;
use liair_basis::{systems, Cell, Element, Molecule};
use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{IncSchedule, IncStats, IncrementalExchange};
use liair_grid::{density_on_grid, PoissonSolver, RealGrid};
use liair_math::Vec3;
use liair_md::mts::{MtsOptions, MtsOuterRecord, SplitForceProvider};
use liair_md::{
    ForceField, ForceProvider, HfxDeltaForces, IncrementalGridForces, MdOptions, MdState,
    Thermostat, XcForces,
};
use liair_xc::Functional;
use std::sync::Mutex;
use std::time::Instant;

/// L²-normalized Gaussian valence-proxy orbital (unit mass ⇒ pair
/// energies on the sub-Hartree scale of real localized orbitals, so the
/// model exchange term is a perturbation, not the dominant attraction).
fn gaussian_field(grid: &RealGrid, center: Vec3, sigma: f64) -> Vec<f64> {
    let norm = (std::f64::consts::PI * sigma * sigma).powf(-0.75);
    (0..grid.len())
        .map(|p| {
            let d2 = grid.point_flat(p).distance(center).powi(2);
            norm * (-d2 / (2.0 * sigma * sigma)).exp()
        })
        .collect()
}

/// The model split Hamiltonian for the electrolyte boxes: classical force
/// field + grid-LDA of the Gaussian valence-proxy density as the fast
/// part, `a_x · E_x` of the proxy orbitals through the incremental
/// exchange engine as the slow part. Energy-conserving by construction
/// (every term is a function of the positions; model forces are central
/// differences), so NVE drift is a fair integrator diagnostic.
struct ModelElectrolyteSplit {
    ff: ForceField,
    grid: RealGrid,
    solver: PoissonSolver,
    /// Valence-proxy orbital width (Bohr).
    sigma: f64,
    /// Exact-exchange admixture (PBE0's 0.25).
    hfx_fraction: f64,
    /// Exchange-free surrogate for the fast DFT term.
    xc: Functional,
    /// Coupling of the grid-xc term. Bare LDA of the proxy density is
    /// collapse-prone — merging blobs lower `∫ρ^{4/3}` by ~1 Ha with no
    /// kinetic/Hartree counterweight, which overwhelms the Morse bonds —
    /// so the model keeps it as a weak perturbation.
    xc_scale: f64,
    /// FD displacement for the model terms (Bohr).
    h: f64,
    /// Heavy atoms (the FD slots move atoms; the model exchange has no H
    /// dependence, so H slow forces are exactly zero).
    heavy: Vec<usize>,
    /// Proxy orbitals as (heavy-atom index, rigid local offset): O gets 3
    /// lone-pair-like proxies, C 2, Li 1 — the multiple-valence-orbital-
    /// per-atom structure of the real Wannier-localized systems, and the
    /// thing that gives the exchange term its pair-quadratic workload.
    orbs: Vec<(usize, Vec3)>,
    /// Pair list frozen at the initial geometry (orbitals move little
    /// over the short benchmark trajectories).
    pairs: PairList,
    /// One warm incremental cache per FD slot (slot 0 = undisplaced), so
    /// slot `k` of outer step `t + 1` diffs against slot `k` of step `t`.
    slots: Mutex<Vec<IncrementalExchange>>,
}

impl ModelElectrolyteSplit {
    fn new(mol: &Molecule, cell: Cell, n_grid: usize, eps_inc: f64) -> Self {
        // Narrow enough that cross-pair exchange attraction is a
        // perturbation on the force field (wider proxies overwhelm the
        // Morse bonds and the cluster collapses into the model's
        // exchange well).
        let sigma = 1.0;
        let grid = RealGrid::cubic(cell, n_grid);
        let solver = PoissonSolver::isolated(grid);
        let heavy: Vec<usize> = mol
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.element != Element::H)
            .map(|(i, _)| i)
            .collect();
        // Rigid per-element valence-proxy offsets (axes-aligned, 0.7 Bohr
        // — lone-pair scale; rigid ⇒ orbital centers remain a function of
        // atom positions and the model stays conservative).
        let d = 0.7;
        let mut orbs: Vec<(usize, Vec3)> = Vec::new();
        for &i in &heavy {
            let n_val = match mol.atoms[i].element {
                Element::Li | Element::Na => 1,
                Element::O | Element::S | Element::N => 3,
                _ => 2,
            };
            let offsets = [
                Vec3::new(d, 0.0, 0.0),
                Vec3::new(-d * 0.5, d * 0.75, 0.0),
                Vec3::new(-d * 0.5, -d * 0.75, 0.0),
            ];
            for off in offsets.iter().take(n_val) {
                orbs.push((i, *off));
            }
        }
        let infos: Vec<OrbitalInfo> = orbs
            .iter()
            .map(|&(i, off)| OrbitalInfo {
                center: mol.atoms[i].pos + off,
                spread: sigma,
            })
            .collect();
        let pairs = build_pair_list(&infos, 1e-4, None);
        let nslots = 1 + 6 * heavy.len();
        Self {
            ff: ForceField::from_molecule(mol, Some(&cell)),
            grid,
            solver,
            sigma,
            hfx_fraction: Functional::Pbe0.hfx_fraction(),
            // LDA rather than `Pbe0.mts_fast()` (= PBE): the surrogate's
            // job is to be cheap and exchange-free, and PBE's FFT
            // gradient would dominate the inner-step cost at this grid.
            xc: Functional::Lda,
            xc_scale: 0.1,
            // Large enough that an eps_inc-level stale-value mismatch
            // between a slot pair's +h and −h caches is not amplified
            // into an O(mismatch/h) force error; the O(h²) FD truncation
            // is negligible against the model force scale.
            h: 2e-2,
            heavy,
            orbs,
            pairs,
            slots: Mutex::new(
                (0..nslots)
                    .map(|_| IncrementalExchange::new(eps_inc, 0))
                    .collect(),
            ),
        }
    }

    fn infos(&self, mol: &Molecule) -> Vec<OrbitalInfo> {
        self.orbs
            .iter()
            .map(|&(i, off)| OrbitalInfo {
                center: mol.atoms[i].pos + off,
                spread: self.sigma,
            })
            .collect()
    }

    fn base_fields(&self, mol: &Molecule) -> Vec<Vec<f64>> {
        self.orbs
            .iter()
            .map(|&(i, off)| gaussian_field(&self.grid, mol.atoms[i].pos + off, self.sigma))
            .collect()
    }

    /// Cumulative reuse counters over every FD slot.
    fn reuse(&self) -> IncStats {
        let slots = self.slots.lock().unwrap();
        let mut t = IncStats::default();
        for s in slots.iter() {
            t.accumulate(&s.totals);
        }
        t
    }
}

impl SplitForceProvider for ModelElectrolyteSplit {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let (e_ff, mut forces) = self.ff.energy_forces(mol, cell);
        let fields = self.base_fields(mol);
        let rho = density_on_grid(&fields);
        let e_xc = self.xc_scale * self.xc.xc_energy(&self.grid, &rho);
        // Analytic grid force of the (LDA) xc term: with the grid points
        // fixed and ∂φ²/∂c = 2φ²(r − c)/σ², the exact derivative of the
        // grid sum is dE/dc = Σ_p v_xc(ρ_p) · 2φ_p² (r_p − c)/σ² · dvol —
        // one v_xc field plus a first moment per proxy orbital, instead
        // of 6 FD energy evaluations per heavy atom.
        let vxc = Functional::lda_vxc_field(&rho);
        let dvol = self.grid.dvol();
        for (k, &(atom, off)) in self.orbs.iter().enumerate() {
            let c = mol.atoms[atom].pos + off;
            let mut dedc = Vec3::ZERO;
            for p in 0..self.grid.len() {
                let w = vxc[p] * 2.0 * fields[k][p] * fields[k][p];
                dedc += (self.grid.point_flat(p) - c) * w;
            }
            forces[atom] -= dedc * (self.xc_scale * dvol / (self.sigma * self.sigma));
        }
        (e_ff + e_xc, forces)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        _cell: Option<&Cell>,
        _fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let infos0 = self.infos(mol);
        let base = self.base_fields(mol);
        let mut slots = self.slots.lock().unwrap();
        let e0 = self.hfx_fraction
            * slots[0]
                .exchange_energy(&self.grid, &self.solver, &base, &infos0, &self.pairs)
                .energy;
        // Sequential FD over the heavy atoms: each displaced slot diffs
        // against the same displacement of the previous outer step.
        let mut forces = vec![Vec3::ZERO; mol.natoms()];
        let mut work = base.clone();
        let mut infos = infos0.clone();
        for (a, &atom) in self.heavy.iter().enumerate() {
            // Every orbital riding on this atom moves with the FD
            // displacement (rigid offsets).
            let mine: Vec<usize> = (0..self.orbs.len())
                .filter(|&k| self.orbs[k].0 == atom)
                .collect();
            for axis in 0..3 {
                let mut e_pm = [0.0; 2];
                for (sign, e) in e_pm.iter_mut().enumerate() {
                    let mut shift = Vec3::ZERO;
                    shift[axis] = if sign == 0 { self.h } else { -self.h };
                    for &k in &mine {
                        let c = mol.atoms[atom].pos + self.orbs[k].1 + shift;
                        work[k] = gaussian_field(&self.grid, c, self.sigma);
                        infos[k] = OrbitalInfo {
                            center: c,
                            spread: self.sigma,
                        };
                    }
                    let slot = 1 + a * 6 + axis * 2 + sign;
                    *e = self.hfx_fraction
                        * slots[slot]
                            .exchange_energy(&self.grid, &self.solver, &work, &infos, &self.pairs)
                            .energy;
                }
                for &k in &mine {
                    work[k] = base[k].clone();
                    infos[k] = infos0[k];
                }
                forces[atom][axis] = -(e_pm[0] - e_pm[1]) / (2.0 * self.h);
            }
        }
        (e0, forces)
    }

    fn reuse_totals(&self) -> Option<IncStats> {
        Some(self.reuse())
    }
}

/// Classical pre-equilibration: the `systems` builders place molecules at
/// idealized lattice/complex geometries that sit ~Ha-scale strained on
/// the force field; an unthermostatted 4-atom cluster would convert that
/// strain into tens-of-thousands-K chaos. A short seeded Berendsen run on
/// the bare force field relaxes the strain, deterministically, so every
/// `n_inner` production run starts from the same gentle configuration.
fn relax_classical(mol: &Molecule, cell: Option<&Cell>, steps: usize) -> Molecule {
    let ff = ForceField::from_molecule(mol, cell);
    let mut state = MdState::new(mol.clone(), cell.copied(), &ff);
    state.thermalize_seeded(150.0, Some(11));
    let opts = MdOptions {
        dt: 15.0,
        thermostat: Thermostat::Berendsen {
            t_target: 150.0,
            tau: 200.0,
        },
        ..Default::default()
    };
    state.run(&ff, &opts, steps);
    state.mol
}

/// Relaxation surface for the *model* split Hamiltonian: the analytic
/// fast forces plus a closed-form stand-in for the slow exchange term.
/// For two equal-width L²-normalized Gaussians the exchange integral has
/// the exact free-space value `(ij|ij) = S² √(2/π)/σ` with overlap
/// `S = exp(−d²/4σ²)`, so the full model surface can be relaxed at
/// force-field cost. Without this stage the exchange term (repulsive,
/// `+a_x·E_x`) sits ~0.1 Ha off its balance point against the Morse
/// bonds, and the NVE production run slides downhill into multi-1000-K
/// chaos no integrator can conserve.
struct ModelRelax<'a>(&'a ModelElectrolyteSplit);

impl ForceProvider for ModelRelax<'_> {
    fn compute(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let m = self.0;
        let (mut e, mut forces) = m.fast_forces(mol, cell);
        let coef = m.hfx_fraction * (2.0 / std::f64::consts::PI).sqrt() / m.sigma;
        let inv_s2 = 1.0 / (m.sigma * m.sigma);
        for p in &m.pairs.pairs {
            let (ai, oi) = m.orbs[p.i as usize];
            let (aj, oj) = m.orbs[p.j as usize];
            let dvec = (mol.atoms[ai].pos + oi) - (mol.atoms[aj].pos + oj);
            let d2 = dvec.dot(dvec);
            let s2 = (-0.5 * d2 * inv_s2).exp();
            e += coef * p.weight * s2;
            // F_i = −∂E/∂c_i = +coef·w·S²·(c_i − c_j)/σ²; same-atom pairs
            // (rigid offsets) cancel identically.
            let g = coef * p.weight * s2 * inv_s2;
            forces[ai] += dvec * g;
            forces[aj] -= dvec * g;
        }
        (e, forces)
    }
}

/// Second pre-equilibration stage, on the model surface (fast term +
/// closed-form exchange), so production NVE starts near a *model*
/// equilibrium rather than a force-field one. The residual mismatch —
/// grid-quadrature Poisson exchange vs the free-space closed form — is a
/// few mHa, a perturbation the integrator can carry.
fn relax_model(
    split: &ModelElectrolyteSplit,
    mol: &Molecule,
    cell: Option<&Cell>,
    steps: usize,
) -> Molecule {
    let prov = ModelRelax(split);
    let mut state = MdState::new(mol.clone(), cell.copied(), &prov);
    state.thermalize_seeded(150.0, Some(12));
    let opts = MdOptions {
        dt: 10.0,
        thermostat: Thermostat::Berendsen {
            t_target: 150.0,
            tau: 150.0,
        },
        ..Default::default()
    };
    state.run(&prov, &opts, steps);
    state.mol
}

/// One benchmark trajectory: `n_total / n_inner` outer steps, NVE.
struct RunResult {
    t_total_s: f64,
    drift: f64,
    log: Vec<MtsOuterRecord>,
}

fn run_one<S: SplitForceProvider>(
    mol: &Molecule,
    cell: Option<Cell>,
    provider: &S,
    dt: f64,
    n_inner: usize,
    n_total: usize,
    seed: u64,
) -> RunResult {
    let mut state = MdState::new_split(mol.clone(), cell, provider);
    state.thermalize_seeded(300.0, Some(seed));
    let e0 = state.total_energy();
    let opts = MdOptions {
        dt,
        thermostat: Thermostat::None,
        mts: MtsOptions { n_inner },
    };
    let n_outer = n_total / n_inner;
    let t0 = Instant::now();
    let log = state.run_mts_logged(provider, &opts, n_outer);
    let t_total_s = t0.elapsed().as_secs_f64();
    let drift = log
        .iter()
        .map(|r| (r.conserved - e0).abs())
        .fold(0.0, f64::max);
    RunResult {
        t_total_s,
        drift,
        log,
    }
}

struct SweepRow {
    n_inner: usize,
    r: RunResult,
}

fn json_rows(system: &str, dt: f64, n_total: usize, rows: &[SweepRow]) -> Vec<String> {
    let t1 = rows[0].r.t_total_s;
    rows.iter()
        .map(|row| {
            let outer: Vec<String> = row
                .r
                .log
                .iter()
                .map(|rec| {
                    let (reused, recomputed, invalidated) = rec
                        .inc
                        .map(|s| (s.pairs_reused, s.pairs_recomputed, s.pairs_invalidated))
                        .unwrap_or((0, 0, 0));
                    format!(
                        "{{\"step\": {}, \"t_fast_s\": {:.4}, \"t_slow_s\": {:.4}, \"pairs_reused\": {}, \"pairs_recomputed\": {}, \"pairs_invalidated\": {}}}",
                        rec.step_count, rec.times.t_fast_s, rec.times.t_slow_s, reused, recomputed, invalidated
                    )
                })
                .collect();
            format!(
                "    {{\"system\": \"{}\", \"n_inner\": {}, \"dt_au\": {}, \"inner_steps\": {}, \"t_total_s\": {:.4}, \"speedup\": {:.2}, \"drift_ha\": {:.3e}, \"outer_steps\": [{}]}}",
                system,
                row.n_inner,
                dt,
                n_total,
                row.r.t_total_s,
                t1 / row.r.t_total_s.max(1e-12),
                row.r.drift,
                outer.join(", ")
            )
        })
        .collect()
}

/// Run the experiment; `fast` shrinks grids, trajectory lengths, and the
/// system list.
pub fn bench_mts(fast: bool) -> Vec<Table> {
    let n_inners = [1usize, 2, 4, 8];
    let mut table = Table::new(
        "bench-mts — r-RESPA MD time-to-solution vs n_inner",
        &[
            "system",
            "n_inner",
            "steps",
            "t_total [s]",
            "per inner step [ms]",
            "speedup",
            "drift [Ha]",
            "matched",
            "reused/recomputed",
        ],
    );
    let mut json_blocks: Vec<String> = Vec::new();
    let mut electrolyte_best = 0.0f64;

    // --- Tier 1: real r-RESPA BOMD on H2 (grid SCF scale) ---
    let (h2_grid, h2_edge, h2_total) = if fast { (16, 10.0, 8) } else { (24, 12.0, 16) };
    let mut h2 = systems::h2();
    h2.atoms[1].pos.x = 1.5;
    let h2_rows: Vec<SweepRow> = n_inners
        .iter()
        .map(|&n_inner| {
            let split = HfxDeltaForces {
                fast: XcForces::new(Functional::Lda),
                full: IncrementalGridForces::new(h2_grid, h2_edge, IncSchedule::fixed(1e-4, 0)),
            };
            let r = run_one(&h2, None, &split, 10.0, n_inner, h2_total, 7);
            SweepRow { n_inner, r }
        })
        .collect();
    push_rows(&mut table, "h2-bomd", h2_total, 10.0, &h2_rows, &mut 0.0);
    json_blocks.extend(json_rows("h2-bomd", 10.0, h2_total, &h2_rows));

    // --- Tier 2: electrolyte boxes under the model split Hamiltonian ---
    let (box_grid, n_total) = if fast { (20, 32) } else { (24, 64) };
    let mut boxes: Vec<(&str, Molecule, Cell, usize)> = Vec::new();
    let (mol_box, cell_box) = systems::electrolyte_box(systems::Solvent::PropyleneCarbonate, 1, 7);
    boxes.push(("box-li2o2", mol_box, cell_box, n_total));
    if !fast {
        // The solvent·Li2O2 contact complex in a padded box.
        let mut complex = systems::li2o2_complex(systems::Solvent::PropyleneCarbonate, 3.8);
        let span = complex
            .atoms
            .iter()
            .flat_map(|a| (0..3).map(move |ax| a.pos[ax]))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(v), hi.max(v))
            });
        let edge = (span.1 - span.0) + 12.0;
        let cell = Cell::cubic(edge);
        complex.translate(Vec3::splat(edge / 2.0) - complex.centroid());
        // ~25 proxy orbitals → 67 FD slots; a short trajectory keeps the
        // n_inner = 1 baseline of this system to minutes, not hours.
        boxes.push(("complex-pc", complex, cell, 16));
    }
    for (name, mol, cell, n_total) in &boxes {
        let n_total = *n_total;
        let mol = relax_classical(mol, Some(cell), 600);
        // Re-relax on the model surface (closed-form exchange stand-in);
        // the throwaway split only supplies geometry/pair structure.
        let relax_split = ModelElectrolyteSplit::new(&mol, *cell, box_grid, 1e-2);
        let mol = relax_model(&relax_split, &mol, Some(cell), 400);
        let rows: Vec<SweepRow> = n_inners
            .iter()
            .map(|&n_inner| {
                let split = ModelElectrolyteSplit::new(&mol, *cell, box_grid, 1e-2);
                let r = run_one(&mol, Some(*cell), &split, 10.0, n_inner, n_total, 7);
                SweepRow { n_inner, r }
            })
            .collect();
        push_rows(
            &mut table,
            name,
            n_total,
            20.0,
            &rows,
            &mut electrolyte_best,
        );
        json_blocks.extend(json_rows(name, 20.0, n_total, &rows));
    }

    table.note = format!(
        "matched = drift <= max(3x drift(n_inner=1), 1e-3 Ha); best matched electrolyte speedup {electrolyte_best:.1}x (target >= 3x)"
    );

    let mut json = String::from("{\n  \"experiment\": \"bench-mts\",\n  \"runs\": [\n");
    json.push_str(&json_blocks.join(",\n"));
    json.push_str(&format!(
        "\n  ],\n  \"best_electrolyte_speedup_at_matched_drift\": {electrolyte_best:.2}\n}}\n"
    ));
    match std::fs::write("BENCH_mts.json", &json) {
        Ok(()) => table.note.push_str("; BENCH_mts.json written"),
        Err(e) => table.note.push_str(&format!("; JSON not written: {e}")),
    }
    vec![table]
}

/// Append one system's sweep to the table and fold its best matched-drift
/// speedup into `best` (used for the electrolyte acceptance line).
fn push_rows(
    table: &mut Table,
    system: &str,
    n_total: usize,
    _dt: f64,
    rows: &[SweepRow],
    best: &mut f64,
) {
    let t1 = rows[0].r.t_total_s;
    let drift1 = rows[0].r.drift;
    let bound = (3.0 * drift1).max(1e-3);
    for row in rows {
        let speedup = t1 / row.r.t_total_s.max(1e-12);
        let matched = row.r.drift <= bound;
        if matched {
            *best = best.max(speedup);
        }
        let totals = row.r.log.iter().fold(IncStats::default(), |mut acc, rec| {
            if let Some(s) = rec.inc {
                acc.accumulate(&s);
            }
            acc
        });
        table.row(vec![
            system.into(),
            format!("{}", row.n_inner),
            format!("{}x{}", n_total / row.n_inner, row.n_inner),
            format!("{:.3}", row.r.t_total_s),
            format!("{:.1}", row.r.t_total_s * 1e3 / n_total as f64),
            format!("{speedup:.2}x"),
            format!("{:.2e}", row.r.drift),
            if matched { "yes".into() } else { "no".into() },
            format!("{}/{}", totals.pairs_reused, totals.pairs_recomputed),
        ]);
    }
}
