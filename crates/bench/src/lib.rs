//! # liair-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (as reconstructed in DESIGN.md — only the abstract of the
//! original text was available). The `repro` binary drives them; the
//! Criterion benches measure the real kernels the cost models are
//! calibrated against.
//!
//! Experiment ids:
//!
//! | id | claim reproduced |
//! |----|------------------|
//! | `fig-strong-scaling` | near-perfect efficiency to 6,291,456 threads |
//! | `fig-weak-scaling` | flat time per build at constant work per rack |
//! | `fig-baseline-scaling` | >20× scalability vs prior state of the art |
//! | `tab-time-to-solution` | >10× time-to-solution vs comparable approach |
//! | `fig-screening-accuracy` | controllable accuracy via ε |
//! | `fig-node-threading` | extreme threading + SIMD exploitation |
//! | `fig-load-balance` | LPT balance under screening inhomogeneity |
//! | `fig-torus-mapping` | topology-aware collectives on the 5-D torus |
//! | `fig-link-congestion` | locality-aware traffic rides the torus at congestion ≈ 1 |
//! | `fig-group-size` | the hierarchical node-group ablation |
//! | `fig-accuracy-cost` | the ε cost/accuracy Pareto |
//! | `tab-step-breakdown` | compute-dominated phase profile |
//! | `tab-memory` | the 16 GB memory wall and why patches fit |
//! | `tab-hfx-validation` | grid pair-Poisson exchange = analytic exchange |
//! | `tab-battery` | PC degrades at Li₂O₂; candidate solvents survive |
//! | `fig-md-water` | stable condensed-phase MD substrate |
//! | `bench-pair-kernel` | measured single vs batched pair-Poisson kernel (writes `BENCH_pair_kernel.json`) |
//! | `bench-incremental` | incremental exchange vs from-scratch across an MD-like step (writes `BENCH_incremental.json`) |
//! | `bench-simd` | runtime-dispatched vector kernels vs the pre-SIMD loops (writes `BENCH_simd.json`) |
//! | `bench-collectives` | flat vs hierarchical collectives, measured and modeled to 6,291,456 threads (writes `BENCH_collectives.json`) |

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod experiments;
pub mod table;

pub use table::Table;
