//! Trajectory analysis: radial distribution functions, bond-event
//! tracking, and drift diagnostics.

use liair_basis::{Cell, Element, Molecule};

/// Accumulates a radial distribution function g(r) between two element
/// species over trajectory frames.
#[derive(Debug, Clone)]
pub struct RdfAccumulator {
    /// Species of the first atom.
    pub a: Element,
    /// Species of the second atom.
    pub b: Element,
    /// Maximum radius (Bohr).
    pub r_max: f64,
    /// Histogram bins.
    pub bins: Vec<f64>,
    frames: usize,
}

impl RdfAccumulator {
    /// New accumulator with `nbins` up to `r_max`.
    pub fn new(a: Element, b: Element, r_max: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && r_max > 0.0);
        Self {
            a,
            b,
            r_max,
            bins: vec![0.0; nbins],
            frames: 0,
        }
    }

    /// Add one frame.
    pub fn add_frame(&mut self, mol: &Molecule, cell: &Cell) {
        let dr = self.r_max / self.bins.len() as f64;
        let idx_a: Vec<usize> = (0..mol.natoms())
            .filter(|&i| mol.atoms[i].element == self.a)
            .collect();
        let idx_b: Vec<usize> = (0..mol.natoms())
            .filter(|&i| mol.atoms[i].element == self.b)
            .collect();
        for &i in &idx_a {
            for &j in &idx_b {
                if i == j {
                    continue;
                }
                let r = cell.distance(mol.atoms[i].pos, mol.atoms[j].pos);
                if r < self.r_max {
                    self.bins[(r / dr) as usize] += 1.0;
                }
            }
        }
        self.frames += 1;
    }

    /// Number of frames accumulated so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Overwrite the accumulated histogram (checkpoint restore): `bins`
    /// must match the configured bin count. Together with
    /// [`RdfAccumulator::frames`] and the public `bins`, this makes the
    /// accumulator's mutable state round-trippable, so a trajectory
    /// interrupted mid-flight resumes its RDF bit-exactly.
    pub fn set_state(&mut self, bins: Vec<f64>, frames: usize) {
        assert_eq!(bins.len(), self.bins.len(), "bin count mismatch");
        self.bins = bins;
        self.frames = frames;
    }

    /// Mean number of `b`-species neighbors of an `a` atom within
    /// `r_cut` (the running coordination number n(r_cut)), averaged over
    /// the accumulated frames. 0.0 before any frame.
    pub fn coordination_number(&self, mol: &Molecule, r_cut: f64) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        let n_a = mol.atoms.iter().filter(|at| at.element == self.a).count();
        if n_a == 0 {
            return 0.0;
        }
        let dr = self.r_max / self.bins.len() as f64;
        let counted: f64 = self
            .bins
            .iter()
            .enumerate()
            .take_while(|&(k, _)| (k as f64 + 1.0) * dr <= r_cut + 1e-12)
            .map(|(_, &c)| c)
            .sum();
        counted / (n_a as f64 * self.frames as f64)
    }

    /// Normalized g(r) samples: `(r_mid, g)` per bin. Requires a cell to
    /// define the ideal-gas normalization.
    pub fn finish(&self, mol: &Molecule, cell: &Cell) -> Vec<(f64, f64)> {
        let n_a = mol.atoms.iter().filter(|at| at.element == self.a).count() as f64;
        let n_b = mol.atoms.iter().filter(|at| at.element == self.b).count() as f64;
        let pair_count = if self.a == self.b {
            n_a * (n_a - 1.0)
        } else {
            n_a * n_b
        };
        let dr = self.r_max / self.bins.len() as f64;
        let rho_pairs = pair_count / cell.volume();
        self.bins
            .iter()
            .enumerate()
            .map(|(k, &count)| {
                let r_lo = k as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = rho_pairs * shell * self.frames.max(1) as f64;
                let g = if ideal > 0.0 { count / ideal } else { 0.0 };
                (0.5 * (r_lo + r_hi), g)
            })
            .collect()
    }
}

/// Position and height `(r, g)` of the global maximum of a finished
/// g(r) — the first-shell peak for the short-ranged RDFs of the
/// screening study. `(0.0, 0.0)` for an empty or all-zero histogram.
pub fn rdf_peak(g: &[(f64, f64)]) -> (f64, f64) {
    g.iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0.0, 0.0))
}

/// Bond scission bookkeeping over a trajectory: which of the initially
/// detected bonds ever exceeded the stretch criterion.
#[derive(Debug, Clone, Default)]
pub struct BondEvents {
    /// Bond indices that broke, in first-broken order.
    pub broken: Vec<usize>,
}

impl BondEvents {
    /// Record newly broken bonds from a frame's detector output.
    pub fn record(&mut self, broken_now: &[usize]) {
        for &b in broken_now {
            if !self.broken.contains(&b) {
                self.broken.push(b);
            }
        }
    }

    /// Number of distinct bonds broken so far.
    pub fn count(&self) -> usize {
        self.broken.len()
    }
}

/// Mean-squared displacement tracker: record frames, query MSD relative to
/// the first frame (unwrapped positions assumed — callers integrating in a
/// periodic cell should pass unwrapped coordinates, which `MdState` keeps).
#[derive(Debug, Clone, Default)]
pub struct MsdTracker {
    reference: Vec<liair_math::Vec3>,
    /// `(step, msd)` samples.
    pub samples: Vec<(usize, f64)>,
}

impl MsdTracker {
    /// Start tracking from this frame.
    pub fn start(mol: &Molecule) -> Self {
        Self {
            reference: mol.atoms.iter().map(|a| a.pos).collect(),
            samples: Vec::new(),
        }
    }

    /// Record the MSD of the current frame.
    pub fn record(&mut self, step: usize, mol: &Molecule) {
        assert_eq!(mol.natoms(), self.reference.len());
        let msd = mol
            .atoms
            .iter()
            .zip(&self.reference)
            .map(|(a, &r)| (a.pos - r).norm_sqr())
            .sum::<f64>()
            / mol.natoms() as f64;
        self.samples.push((step, msd));
    }

    /// Diffusion-style slope of MSD vs step (least squares; Bohr²/step).
    pub fn slope(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let x: Vec<f64> = self.samples.iter().map(|&(s, _)| s as f64).collect();
        let y: Vec<f64> = self.samples.iter().map(|&(_, m)| m).collect();
        liair_math::stats::linear_fit(&x, &y).1
    }
}

/// Render a geometry as an XYZ-format frame (Å), with an arbitrary comment
/// line — concatenate frames for a trajectory file.
pub fn to_xyz(mol: &Molecule, comment: &str) -> String {
    let mut out = format!("{}\n{}\n", mol.natoms(), comment);
    let bohr_to_angstrom = 1.0 / liair_basis::ANGSTROM;
    for a in &mol.atoms {
        out.push_str(&format!(
            "{:<2} {:>14.8} {:>14.8} {:>14.8}\n",
            a.element.symbol(),
            a.pos.x * bohr_to_angstrom,
            a.pos.y * bohr_to_angstrom,
            a.pos.z * bohr_to_angstrom
        ));
    }
    out
}

/// Velocity autocorrelation accumulator: record velocity frames, then
/// compute `C(t) = ⟨v(0)·v(t)⟩` (single time origin, averaged over atoms)
/// and its power spectrum — the classical vibrational density of states.
#[derive(Debug, Clone, Default)]
pub struct VacfAccumulator {
    frames: Vec<Vec<liair_math::Vec3>>,
}

impl VacfAccumulator {
    /// Record one velocity frame.
    pub fn record(&mut self, velocities: &[liair_math::Vec3]) {
        self.frames.push(velocities.to_vec());
    }

    /// Number of recorded frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The normalized autocorrelation `C(t)/C(0)`.
    pub fn correlation(&self) -> Vec<f64> {
        assert!(!self.frames.is_empty(), "no frames recorded");
        let v0 = &self.frames[0];
        let c0: f64 = v0.iter().map(|v| v.norm_sqr()).sum();
        assert!(c0 > 0.0, "zero initial velocities");
        self.frames
            .iter()
            .map(|vt| {
                let ct: f64 = v0.iter().zip(vt).map(|(a, b)| a.dot(*b)).sum();
                ct / c0
            })
            .collect()
    }

    /// Power spectrum of the VACF: `(frequency in cycles per a.t.u.,
    /// |FFT|²)` pairs up to the Nyquist frequency. `dt` is the sampling
    /// interval in atomic time units.
    pub fn power_spectrum(&self, dt: f64) -> Vec<(f64, f64)> {
        use liair_math::fft::fft;
        use liair_math::Complex64;
        let c = self.correlation();
        let n = c.len();
        let mut z: Vec<Complex64> = c.iter().map(|&x| Complex64::real(x)).collect();
        fft(&mut z);
        (0..n / 2)
            .map(|k| (k as f64 / (n as f64 * dt), z[k].norm_sqr()))
            .collect()
    }

    /// Frequency (cycles/a.t.u.) of the strongest non-DC spectral peak.
    pub fn dominant_frequency(&self, dt: f64) -> f64 {
        let spec = self.power_spectrum(dt);
        spec.iter()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|&(f, _)| f)
            .unwrap_or(0.0)
    }
}

/// Linear drift per step of a scalar series (least squares slope).
pub fn drift_per_step(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let x: Vec<f64> = (0..series.len()).map(|i| i as f64).collect();
    let (_, slope) = liair_math::stats::linear_fit(&x, series);
    slope
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::rng::SplitMix64;
    use liair_math::Vec3;

    #[test]
    fn ideal_gas_rdf_is_flat() {
        // Random uniform points: g(r) ≈ 1 away from r = 0.
        let cell = Cell::cubic(20.0);
        let mut rng = SplitMix64::new(6);
        let mut mol = Molecule::new();
        for _ in 0..400 {
            mol.push(
                Element::O,
                Vec3::new(
                    rng.range_f64(0.0, 20.0),
                    rng.range_f64(0.0, 20.0),
                    rng.range_f64(0.0, 20.0),
                ),
            );
        }
        let mut rdf = RdfAccumulator::new(Element::O, Element::O, 8.0, 16);
        for _ in 0..5 {
            rdf.add_frame(&mol, &cell);
        }
        let g = rdf.finish(&mol, &cell);
        for &(r, gv) in g.iter().skip(2) {
            assert!((gv - 1.0).abs() < 0.35, "g({r}) = {gv}");
        }
    }

    #[test]
    fn water_box_oo_rdf_has_structure() {
        // The lattice-constructed water box has a sharp first O–O shell
        // near its lattice constant — structure, unlike an ideal gas.
        let (mol, cell) = systems::water_box(3, 2);
        let mut rdf = RdfAccumulator::new(Element::O, Element::O, 10.0, 40);
        rdf.add_frame(&mol, &cell);
        let g = rdf.finish(&mol, &cell);
        let peak = g.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        assert!(peak > 2.0, "max g(r) = {peak}");
        // Core exclusion: no O–O contacts below 3 Bohr.
        assert!(g
            .iter()
            .take_while(|&&(r, _)| r < 3.0)
            .all(|&(_, v)| v < 0.2));
    }

    #[test]
    fn rdf_state_roundtrip_and_peak() {
        let (mol, cell) = systems::water_box(2, 4);
        let mut rdf = RdfAccumulator::new(Element::O, Element::O, 10.0, 32);
        rdf.add_frame(&mol, &cell);
        rdf.add_frame(&mol, &cell);
        let g = rdf.finish(&mol, &cell);
        let (r_peak, g_peak) = rdf_peak(&g);
        assert!(g_peak > 1.0 && r_peak > 0.0);
        // State round-trips bit-exactly into a fresh accumulator.
        let mut restored = RdfAccumulator::new(Element::O, Element::O, 10.0, 32);
        restored.set_state(rdf.bins.clone(), rdf.frames());
        assert_eq!(restored.frames(), 2);
        let g2 = restored.finish(&mol, &cell);
        for (a, b) in g.iter().zip(&g2) {
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        // Empty histogram: benign peak.
        assert_eq!(rdf_peak(&[]), (0.0, 0.0));
    }

    #[test]
    fn coordination_counts_neighbors() {
        // Two O atoms 2 Bohr apart, one H far away: O–O coordination
        // within 3 Bohr is exactly 1 neighbor per O.
        let cell = Cell::cubic(30.0);
        let mut mol = Molecule::new();
        mol.push(Element::O, Vec3::new(5.0, 5.0, 5.0));
        mol.push(Element::O, Vec3::new(7.0, 5.0, 5.0));
        mol.push(Element::H, Vec3::new(20.0, 20.0, 20.0));
        let mut rdf = RdfAccumulator::new(Element::O, Element::O, 10.0, 40);
        rdf.add_frame(&mol, &cell);
        assert_eq!(rdf.frames(), 1);
        let n = rdf.coordination_number(&mol, 3.0);
        assert!((n - 1.0).abs() < 1e-12, "n(3.0) = {n}");
        assert_eq!(rdf.coordination_number(&mol, 1.0), 0.0);
    }

    #[test]
    fn bond_events_deduplicate() {
        let mut ev = BondEvents::default();
        ev.record(&[3, 5]);
        ev.record(&[5, 7]);
        ev.record(&[]);
        assert_eq!(ev.count(), 3);
        assert_eq!(ev.broken, vec![3, 5, 7]);
    }

    #[test]
    fn msd_tracks_uniform_translation() {
        let mut mol = systems::water();
        let mut tracker = MsdTracker::start(&mol);
        tracker.record(0, &mol);
        // Translate everything by (1,0,0) per "step": MSD = step².
        for step in 1..=5 {
            mol.translate(Vec3::new(1.0, 0.0, 0.0));
            tracker.record(step, &mol);
        }
        for &(s, m) in &tracker.samples {
            assert!((m - (s * s) as f64).abs() < 1e-10, "step {s}: {m}");
        }
        assert!(tracker.slope() > 0.0);
    }

    #[test]
    fn xyz_format_roundtrips_atom_count() {
        let mol = systems::propylene_carbonate();
        let xyz = to_xyz(&mol, "frame 0");
        let mut lines = xyz.lines();
        assert_eq!(lines.next().unwrap(), "13");
        assert_eq!(lines.next().unwrap(), "frame 0");
        assert_eq!(xyz.lines().count(), 2 + mol.natoms());
        // First atom line starts with the element symbol.
        assert!(xyz.lines().nth(2).unwrap().starts_with('C'));
    }

    #[test]
    fn vacf_of_pure_cosine_motion() {
        // Synthetic oscillation v(t) = cos(ωt)·x̂: the VACF is cos(ωt) and
        // the spectrum peaks at ω/2π.
        let omega = 0.02; // rad / a.t.u.
        let dt = 5.0;
        let mut acc = VacfAccumulator::default();
        for step in 0..1024 {
            let t = step as f64 * dt;
            acc.record(&[Vec3::new((omega * t).cos(), 0.0, 0.0)]);
        }
        let c = acc.correlation();
        assert!((c[0] - 1.0).abs() < 1e-12);
        let peak = acc.dominant_frequency(dt);
        let want = omega / (2.0 * std::f64::consts::PI);
        assert!(
            (peak - want).abs() < 0.1 * want + 2.0 / (1024.0 * dt),
            "peak {peak} vs {want}"
        );
    }

    #[test]
    fn md_vibration_shows_up_in_spectrum() {
        // A vibrating water monomer: the OH-stretch band appears at the
        // force field's harmonic frequency ω = √(k/μ).
        use crate::forcefield::ForceField;
        use crate::integrator::{MdOptions, MdState, Thermostat};
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let mut state = MdState::new(mol, None, &ff);
        // Kick the stretch directly: displace one H along the bond.
        let bond_dir = (state.mol.atoms[1].pos - state.mol.atoms[0].pos).normalized();
        state.mol.atoms[1].pos += bond_dir * 0.05;
        let dt = 5.0;
        let opts = MdOptions {
            dt,
            thermostat: Thermostat::None,
            ..Default::default()
        };
        let mut acc = VacfAccumulator::default();
        // One step first so velocities are nonzero at the recording origin.
        state.step(&ff, &opts);
        for _ in 0..2048 {
            state.step(&ff, &opts);
            acc.record(&state.velocities);
        }
        let peak = acc.dominant_frequency(dt);
        // Expected OH stretch: k = 0.35 Ha/Bohr², μ(OH) reduced mass.
        let m_o = liair_basis::Element::O.mass_au();
        let m_h = liair_basis::Element::H.mass_au();
        let mu = m_o * m_h / (m_o + m_h);
        let want = (0.35f64 / mu).sqrt() / (2.0 * std::f64::consts::PI);
        assert!(
            (peak - want).abs() < 0.25 * want,
            "peak {peak} vs harmonic estimate {want}"
        );
    }

    #[test]
    fn drift_of_constant_is_zero() {
        assert_eq!(drift_per_step(&[2.0; 50]), 0.0);
        let rising: Vec<f64> = (0..50).map(|i| 0.5 * i as f64).collect();
        assert!((drift_per_step(&rising) - 0.5).abs() < 1e-12);
    }
}
