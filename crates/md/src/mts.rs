//! r-RESPA multiple time stepping: amortize the expensive exact-exchange
//! (HFX) force over several cheap GGA/LDA steps.
//!
//! Hybrid-functional BOMD pays the full HFX price every step even though
//! the *difference* between the hybrid and its exchange-free surrogate
//! varies slowly along the trajectory (Mandal et al., PAPERS.md). The
//! reversible reference-system propagator (r-RESPA, Tuckerman–Berne–
//! Martyna) splits the force accordingly:
//!
//! * **fast** — the surrogate-functional force (`Functional::mts_fast()`
//!   of the target hybrid), evaluated every inner step of size `dt`;
//! * **slow** — the correction `F_full − F_fast`, applied as an impulse
//!   `n_inner · F_slow` folded into the opening and closing half-kicks of
//!   each outer step of size `n_inner · dt`.
//!
//! With `n_inner = 1` the propagator reduces *bitwise* to the plain
//! velocity-Verlet step driving the summed provider ([`CombinedForces`]):
//! the impulse weight is exactly `1.0`, multiplication by `1.0` is exact
//! in IEEE-754, and the closing thermostat application is shared code
//! (`MdState::end_of_step_thermostat`). That identity is property-tested
//! (`tests/mts_equivalence.rs` and the root `tests/properties.rs`).
//!
//! Thermostats act on the outer timestep: Nosé–Hoover half-steps bracket
//! the whole outer step (so its conserved quantity
//! [`MdState::nose_hoover_conserved`] remains the drift diagnostic), and
//! Berendsen rescales once per outer step.
//!
//! The total energy on the MTS trajectory is `E_fast + E_slow` with the
//! slow part re-evaluated only at outer boundaries; between boundaries
//! [`MdState::potential`] carries the fast potential plus the *last*
//! slow correction (the r-RESPA approximation). Judge drift at outer
//! boundaries, where both parts are fresh — [`MdState::run_mts_logged`]
//! records exactly those, along with per-outer-step incremental-exchange
//! reuse counters when the slow path carries the PR 2 cache
//! ([`SplitForceProvider::reuse_totals`]).

use crate::integrator::{ForceProvider, MdOptions, MdState, Thermostat};
use liair_basis::{Cell, Molecule};
use liair_core::IncStats;
use liair_math::Vec3;
use std::time::Instant;

/// Multiple-time-stepping controls (carried on
/// [`MdOptions`](crate::MdOptions)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtsOptions {
    /// Inner (fast-force) steps per outer (slow-correction) step. `1`
    /// recovers plain velocity-Verlet bitwise.
    pub n_inner: usize,
}

impl Default for MtsOptions {
    fn default() -> Self {
        Self { n_inner: 1 }
    }
}

/// A force model split into a cheap fast part and an expensive slow
/// correction, for r-RESPA propagation.
pub trait SplitForceProvider {
    /// The fast (inner-step) part: `(E_fast, F_fast)` at the current
    /// geometry. Must never touch the exchange engine — this is what the
    /// inner loop pays per step.
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>);

    /// The slow correction `(E_slow, F_slow)` at the current geometry,
    /// evaluated once per outer step. `fast` is the *just-computed* fast
    /// result at the same geometry, so delta providers
    /// (`F_full − F_fast`) need not re-evaluate the fast part.
    fn slow_correction(
        &self,
        mol: &Molecule,
        cell: Option<&Cell>,
        fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>);

    /// Cumulative incremental-exchange reuse counters, when the slow path
    /// warm-starts an incremental cache (`IncrementalGridForces`, or any
    /// other `IncrementalExchange` user). The logged runner differences
    /// consecutive reads into per-outer-step deltas.
    fn reuse_totals(&self) -> Option<IncStats> {
        None
    }
}

/// View a split provider as a plain [`ForceProvider`] summing fast and
/// slow parts — the single-time-step reference the MTS path must match
/// bitwise at `n_inner = 1`.
pub struct CombinedForces<'a, S: SplitForceProvider>(pub &'a S);

impl<S: SplitForceProvider> ForceProvider for CombinedForces<'_, S> {
    fn compute(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let (e_fast, f_fast) = self.0.fast_forces(mol, cell);
        let (e_slow, f_slow) = self.0.slow_correction(mol, cell, (e_fast, &f_fast));
        let forces = f_fast.iter().zip(&f_slow).map(|(a, b)| *a + *b).collect();
        (e_fast + e_slow, forces)
    }
}

/// Wall-clock split of one outer step.
#[derive(Debug, Clone, Copy, Default)]
pub struct MtsStepTimes {
    /// Total time in `fast_forces` over the `n_inner` inner steps.
    pub t_fast_s: f64,
    /// Time in the single `slow_correction` evaluation.
    pub t_slow_s: f64,
}

/// One outer step of the trajectory log (see
/// [`MdState::run_mts_logged`]).
#[derive(Debug, Clone)]
pub struct MtsOuterRecord {
    /// Inner steps completed after this outer step.
    pub step_count: usize,
    /// Total potential (fast + fresh slow) at the outer boundary.
    pub potential: f64,
    /// The conserved quantity at the outer boundary: total energy for
    /// NVE/Berendsen, the Nosé–Hoover extended energy under NH.
    pub conserved: f64,
    /// Instantaneous temperature (K).
    pub temperature: f64,
    /// Wall-clock split of this outer step.
    pub times: MtsStepTimes,
    /// Incremental-exchange counters attributable to this outer step
    /// (delta of [`SplitForceProvider::reuse_totals`] across the step).
    pub inc: Option<IncStats>,
}

impl MdState {
    /// Initialize at rest from a split provider (the MTS analogue of
    /// [`MdState::new`]): caches fast forces in [`MdState::forces`] and
    /// the slow correction in [`MdState::forces_slow`].
    pub fn new_split<S: SplitForceProvider>(
        mol: Molecule,
        cell: Option<Cell>,
        provider: &S,
    ) -> MdState {
        let mut state = MdState::new(mol, cell, &InitFast(provider));
        let (e_slow, f_slow) = provider.slow_correction(
            &state.mol,
            state.cell.as_ref(),
            (state.potential, &state.forces),
        );
        state.potential += e_slow;
        state.forces_slow = f_slow;
        state.potential_slow = e_slow;
        state
    }

    /// One r-RESPA **outer** step: `opts.mts.n_inner` velocity-Verlet
    /// inner steps of size `opts.dt` under the fast force, with the slow
    /// impulse `n_inner · F_slow` folded into the opening and closing
    /// half-kicks, and the thermostat applied on the outer timestep.
    /// Advances [`MdState::step_count`] by `n_inner`. Returns the
    /// wall-clock split between fast and slow evaluations.
    pub fn step_mts<S: SplitForceProvider>(
        &mut self,
        provider: &S,
        opts: &MdOptions,
    ) -> MtsStepTimes {
        let n = opts.mts.n_inner;
        assert!(n >= 1, "MtsOptions::n_inner must be >= 1");
        let dt = opts.dt;
        let kick = n as f64; // slow impulse weight (1.0 ⇒ bitwise plain VV)
        let dt_outer = kick * dt;
        let mut times = MtsStepTimes::default();
        if let Thermostat::NoseHoover { t_target, tau } = opts.thermostat {
            self.nose_hoover_half(dt_outer, t_target, tau);
        }
        for k in 0..n {
            // Half kick + drift; the outer step's opening kick carries
            // the slow impulse.
            for i in 0..self.mol.natoms() {
                let f = if k == 0 {
                    self.forces[i] + self.forces_slow[i] * kick
                } else {
                    self.forces[i]
                };
                self.velocities[i] += f * (0.5 * dt / self.masses[i]);
                self.mol.atoms[i].pos += self.velocities[i] * dt;
            }
            let t0 = Instant::now();
            let (e_fast, f_fast) = provider.fast_forces(&self.mol, self.cell.as_ref());
            times.t_fast_s += t0.elapsed().as_secs_f64();
            self.forces = f_fast;
            if k == n - 1 {
                // Outer boundary: refresh the slow correction and close
                // with the impulse-carrying half kick.
                let t0 = Instant::now();
                let (e_slow, f_slow) =
                    provider.slow_correction(&self.mol, self.cell.as_ref(), (e_fast, &self.forces));
                times.t_slow_s += t0.elapsed().as_secs_f64();
                self.forces_slow = f_slow;
                self.potential_slow = e_slow;
                self.potential = e_fast + e_slow;
                for i in 0..self.mol.natoms() {
                    self.velocities[i] +=
                        (self.forces[i] + self.forces_slow[i] * kick) * (0.5 * dt / self.masses[i]);
                }
            } else {
                // Interior inner step: fast-only closing kick; the cached
                // slow potential keeps `total_energy` meaningful.
                self.potential = e_fast + self.potential_slow;
                for i in 0..self.mol.natoms() {
                    self.velocities[i] += self.forces[i] * (0.5 * dt / self.masses[i]);
                }
            }
        }
        self.end_of_step_thermostat(dt_outer, opts.thermostat);
        self.step_count += n;
        times
    }

    /// Run `n_outer` outer steps (`n_outer · n_inner` inner steps).
    pub fn run_mts<S: SplitForceProvider>(
        &mut self,
        provider: &S,
        opts: &MdOptions,
        n_outer: usize,
    ) {
        for _ in 0..n_outer {
            self.step_mts(provider, opts);
        }
    }

    /// Run `n_outer` outer steps recording one [`MtsOuterRecord`] per
    /// outer boundary — conserved quantity, wall-clock split, and the
    /// per-outer-step incremental-exchange reuse counters.
    pub fn run_mts_logged<S: SplitForceProvider>(
        &mut self,
        provider: &S,
        opts: &MdOptions,
        n_outer: usize,
    ) -> Vec<MtsOuterRecord> {
        let mut log = Vec::with_capacity(n_outer);
        let mut base = provider.reuse_totals();
        for _ in 0..n_outer {
            let times = self.step_mts(provider, opts);
            let now = provider.reuse_totals();
            let inc = match (&base, &now) {
                (Some(b), Some(n)) => Some(n.since(b)),
                _ => None,
            };
            base = now;
            let conserved = match opts.thermostat {
                Thermostat::NoseHoover { t_target, tau } => {
                    self.nose_hoover_conserved(t_target, tau)
                }
                _ => self.total_energy(),
            };
            log.push(MtsOuterRecord {
                step_count: self.step_count,
                potential: self.potential,
                conserved,
                temperature: self.temperature(),
                times,
                inc,
            });
        }
        log
    }
}

/// Adapter so `MdState::new` can initialize from the fast part alone
/// (the slow correction is grafted on immediately after).
struct InitFast<'a, S: SplitForceProvider>(&'a S);

impl<S: SplitForceProvider> ForceProvider for InitFast<'_, S> {
    fn compute(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.0.fast_forces(mol, cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use liair_basis::systems;

    /// A deterministic toy split: the classical force field as the fast
    /// part, a weak quartic tether to each atom's initial position as the
    /// slow correction (smooth, conservative, nonzero).
    pub(crate) struct TetherSplit {
        pub ff: ForceField,
        pub anchors: Vec<Vec3>,
        pub k: f64,
    }

    impl TetherSplit {
        pub fn new(mol: &Molecule, cell: Option<&Cell>, k: f64) -> Self {
            Self {
                ff: ForceField::from_molecule(mol, cell),
                anchors: mol.atoms.iter().map(|a| a.pos).collect(),
                k,
            }
        }
    }

    impl SplitForceProvider for TetherSplit {
        fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
            self.ff.energy_forces(mol, cell)
        }

        fn slow_correction(
            &self,
            mol: &Molecule,
            _cell: Option<&Cell>,
            _fast: (f64, &[Vec3]),
        ) -> (f64, Vec<Vec3>) {
            let mut e = 0.0;
            let forces = mol
                .atoms
                .iter()
                .zip(&self.anchors)
                .map(|(a, &r0)| {
                    let d = a.pos - r0;
                    let r2 = d.norm_sqr();
                    e += 0.25 * self.k * r2 * r2;
                    -d * (self.k * r2)
                })
                .collect();
            (e, forces)
        }
    }

    fn bitwise_eq(a: &MdState, b: &MdState) -> bool {
        a.potential.to_bits() == b.potential.to_bits()
            && a.nh_xi.to_bits() == b.nh_xi.to_bits()
            && a.nh_eta.to_bits() == b.nh_eta.to_bits()
            && a.step_count == b.step_count
            && a.mol
                .atoms
                .iter()
                .zip(&b.mol.atoms)
                .all(|(x, y)| (0..3).all(|ax| x.pos[ax].to_bits() == y.pos[ax].to_bits()))
            && a.velocities
                .iter()
                .zip(&b.velocities)
                .all(|(x, y)| (0..3).all(|ax| x[ax].to_bits() == y[ax].to_bits()))
    }

    #[test]
    fn n_inner_1_is_bitwise_plain_velocity_verlet() {
        for thermostat in [
            Thermostat::None,
            Thermostat::Berendsen {
                t_target: 300.0,
                tau: 200.0,
            },
            Thermostat::NoseHoover {
                t_target: 300.0,
                tau: 300.0,
            },
        ] {
            let (mol, cell) = systems::water_box(2, 13);
            let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
            let mut a = MdState::new_split(mol.clone(), Some(cell), &split);
            let mut b = MdState::new(mol, Some(cell), &CombinedForces(&split));
            a.thermalize_seeded(300.0, Some(13));
            b.thermalize_seeded(300.0, Some(13));
            let opts = MdOptions {
                dt: 12.0,
                thermostat,
                mts: MtsOptions { n_inner: 1 },
            };
            for _ in 0..7 {
                a.step_mts(&split, &opts);
                b.step(&CombinedForces(&split), &opts);
                assert!(bitwise_eq(&a, &b), "diverged under {thermostat:?}");
            }
        }
    }

    #[test]
    fn mts_nve_conserves_energy_at_n_inner_4() {
        let (mol, cell) = systems::water_box(2, 21);
        let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
        let mut state = MdState::new_split(mol, Some(cell), &split);
        state.thermalize_seeded(300.0, Some(21));
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            mts: MtsOptions { n_inner: 4 },
        };
        let log = state.run_mts_logged(&split, &opts, 100);
        assert_eq!(state.step_count, 400);
        let drift = log
            .iter()
            .map(|r| (r.conserved - e0).abs())
            .fold(0.0, f64::max);
        assert!(
            drift < 5e-4,
            "MTS NVE drift {drift} Ha over 400 inner steps"
        );
    }

    #[test]
    fn mts_nose_hoover_conserves_extended_energy() {
        let (mol, cell) = systems::water_box(2, 31);
        let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
        let mut state = MdState::new_split(mol, Some(cell), &split);
        state.thermalize_seeded(250.0, Some(31));
        let (t_target, tau) = (300.0, 400.0);
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::NoseHoover { t_target, tau },
            mts: MtsOptions { n_inner: 2 },
        };
        let h0 = state.nose_hoover_conserved(t_target, tau);
        state.run_mts(&split, &opts, 200);
        let drift = (state.nose_hoover_conserved(t_target, tau) - h0).abs();
        assert!(drift < 5e-3, "NH-MTS conserved-quantity drift {drift}");
    }

    #[test]
    fn logged_runner_reports_outer_boundaries() {
        let (mol, cell) = systems::water_box(2, 5);
        let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
        let mut state = MdState::new_split(mol, Some(cell), &split);
        state.thermalize_seeded(300.0, Some(5));
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            mts: MtsOptions { n_inner: 4 },
        };
        let log = state.run_mts_logged(&split, &opts, 3);
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.iter().map(|r| r.step_count).collect::<Vec<_>>(),
            vec![4, 8, 12]
        );
        // The toy split has no incremental cache.
        assert!(log.iter().all(|r| r.inc.is_none()));
    }
}
