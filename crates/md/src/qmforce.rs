//! Quantum-mechanical forces by central finite differences of any energy
//! function of the geometry — the Born–Oppenheimer force provider for
//! small-molecule ab initio MD (analytic Gaussian gradients are out of
//! scope; finite differences are exact enough for the validation-scale
//! trajectories run here, at 6N+1 energy evaluations per step).

use crate::integrator::ForceProvider;
use crate::mts::SplitForceProvider;
use liair_basis::{Cell, Molecule};
use liair_math::Vec3;

/// Wraps `E(molecule)` into a force provider.
pub struct FiniteDifferenceForces<F: Fn(&Molecule) -> f64 + Sync> {
    energy_fn: F,
    /// Displacement step (Bohr).
    pub h: f64,
}

impl<F: Fn(&Molecule) -> f64 + Sync> FiniteDifferenceForces<F> {
    /// Wrap an energy function with displacement `h`.
    pub fn new(energy_fn: F, h: f64) -> Self {
        assert!(h > 0.0);
        Self { energy_fn, h }
    }
}

impl<F: Fn(&Molecule) -> f64 + Sync> ForceProvider for FiniteDifferenceForces<F> {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let e0 = (self.energy_fn)(mol);
        let n = mol.natoms();
        use rayon::prelude::*;
        let forces: Vec<Vec3> = (0..n)
            .into_par_iter()
            .map(|atom| {
                let mut f = Vec3::ZERO;
                for axis in 0..3 {
                    let mut plus = mol.clone();
                    plus.atoms[atom].pos[axis] += self.h;
                    let mut minus = mol.clone();
                    minus.atoms[atom].pos[axis] -= self.h;
                    let ep = (self.energy_fn)(&plus);
                    let em = (self.energy_fn)(&minus);
                    f[axis] = -(ep - em) / (2.0 * self.h);
                }
                f
            })
            .collect();
        (e0, forces)
    }
}

/// Born–Oppenheimer RHF forces via the *analytic* nuclear gradient
/// (`liair_integrals::rhf_gradient`) — one SCF plus one gradient per step,
/// instead of the 6N+1 SCFs of the finite-difference provider.
pub struct RhfForces {
    /// SCF controls used every step.
    pub scf_options: liair_scf::ScfOptions,
}

impl Default for RhfForces {
    fn default() -> Self {
        let o = liair_scf::ScfOptions {
            energy_tol: 1e-9,
            ..Default::default()
        };
        Self { scf_options: o }
    }
}

impl ForceProvider for RhfForces {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let basis = liair_basis::Basis::sto3g(mol);
        let scf = liair_scf::rhf(mol, &basis, &self.scf_options);
        assert!(scf.converged, "BOMD step: SCF failed for {}", mol.formula());
        let grad =
            liair_integrals::rhf_gradient(mol, &basis, &scf.c, &scf.orbital_energies, &scf.density);
        let forces = grad.into_iter().map(|g| -g).collect();
        (scf.energy, forces)
    }
}

/// Born–Oppenheimer forces from the *grid-exchange* SCF with an
/// incremental-exchange cache per finite-difference slot — the MD setting
/// the incremental scheme is built for: between consecutive steps (and
/// between the `±h` displacements of one step) the localized orbitals
/// barely move, so most pair-Poisson solves are replaced by cache hits.
///
/// The box frame is **fixed at the first call** (molecule centered once,
/// never re-centered): a drifting frame would move every orbital field in
/// grid coordinates and defeat the fingerprint comparison. Each of the
/// `6N + 1` energy evaluations per step owns its own
/// [`liair_core::IncrementalExchange`] and warm-starts from its previous
/// converged orbitals, so slot `k` of step `t + 1` diffs against slot `k`
/// of step `t`.
pub struct IncrementalGridForces {
    /// Grid points per axis.
    pub n: usize,
    /// Fixed cubic box edge (Bohr); must contain the trajectory.
    pub edge: f64,
    /// Finite-difference displacement (Bohr).
    pub h: f64,
    /// SCF iteration cap and energy tolerance.
    pub max_iter: usize,
    /// SCF energy tolerance (Hartree).
    pub tol: f64,
    /// Pair-screening threshold (also turns on localization).
    pub eps: f64,
    /// Reuse tolerance schedule fed to each slot's cache every iteration.
    pub inc_schedule: liair_core::IncSchedule,
    state: std::sync::Mutex<IncGridState>,
}

struct IncGridState {
    /// `(shift, grid, solver)` frozen at the first call.
    frame: Option<(Vec3, liair_grid::RealGrid, liair_grid::PoissonSolver)>,
    /// One cache + warm-start orbitals per FD slot (slot 0 = undisplaced).
    slots: Vec<(liair_core::IncrementalExchange, Option<liair_math::Mat>)>,
}

impl IncrementalGridForces {
    /// A provider with the given grid/box and sensible SCF defaults.
    pub fn new(n: usize, edge: f64, inc_schedule: liair_core::IncSchedule) -> Self {
        Self {
            n,
            edge,
            h: 1e-2,
            max_iter: 40,
            tol: 1e-8,
            eps: 1e-4,
            inc_schedule,
            state: std::sync::Mutex::new(IncGridState {
                frame: None,
                slots: Vec::new(),
            }),
        }
    }

    /// Cumulative reuse counters over every slot since construction.
    pub fn reuse_totals(&self) -> liair_core::IncStats {
        let st = self.state.lock().unwrap();
        let mut t = liair_core::IncStats::default();
        for (inc, _) in &st.slots {
            t.accumulate(&inc.totals);
        }
        t
    }

    /// One grid SCF in the fixed frame using (and updating) slot `slot`.
    fn slot_energy(&self, st: &mut IncGridState, mol_c: &Molecule, slot: usize) -> f64 {
        let (_, grid, solver) = st.frame.as_ref().unwrap();
        let (inc, guess) = &mut st.slots[slot];
        let r = liair_core::rhf_with_grid_exchange_in_cell(
            mol_c,
            grid,
            solver,
            self.max_iter,
            self.tol,
            liair_core::EpsSchedule::fixed(self.eps),
            Some((inc, self.inc_schedule)),
            guess.as_ref(),
        );
        assert!(r.converged, "grid SCF failed for {}", mol_c.formula());
        *guess = Some(r.c_occ);
        r.energy
    }
}

impl ForceProvider for IncrementalGridForces {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let mut st = self.state.lock().unwrap();
        if st.frame.is_none() {
            let shift = Vec3::splat(self.edge / 2.0) - mol.centroid();
            let grid = liair_grid::RealGrid::cubic(Cell::cubic(self.edge), self.n);
            let solver = liair_grid::PoissonSolver::isolated(grid);
            st.frame = Some((shift, grid, solver));
        }
        let nslots = 1 + 6 * mol.natoms();
        if st.slots.len() != nslots {
            st.slots = (0..nslots)
                .map(|_| (liair_core::IncrementalExchange::new(0.0, 0), None))
                .collect();
        }
        let shift = st.frame.as_ref().unwrap().0;
        let mut mol_c = mol.clone();
        mol_c.translate(shift);

        let e0 = self.slot_energy(&mut st, &mol_c, 0);
        // Sequential FD loop: each displaced geometry diffs against the
        // *same* displacement of the previous step, where almost nothing
        // moved — the incremental caches turn most of the 6N extra SCFs
        // into cache-dominated reruns.
        let mut forces = vec![Vec3::ZERO; mol.natoms()];
        for atom in 0..mol.natoms() {
            for axis in 0..3 {
                let mut ep_em = [0.0; 2];
                for (sign, e) in ep_em.iter_mut().enumerate() {
                    let mut m = mol_c.clone();
                    m.atoms[atom].pos[axis] += if sign == 0 { self.h } else { -self.h };
                    let slot = 1 + atom * 6 + axis * 2 + sign;
                    *e = self.slot_energy(&mut st, &m, slot);
                }
                forces[atom][axis] = -(ep_em[0] - ep_em[1]) / (2.0 * self.h);
            }
        }
        (e0, forces)
    }
}

/// GGA/LDA Born–Oppenheimer forces — the *fast* half of the MTS force
/// splitting. The energy is an analytic RKS-LDA SCF on the Becke
/// molecular quadrature (`liair-grid::MolGrid`), optionally with a GGA
/// energy evaluated post-SCF on the converged LDA density (the repo's
/// GGA convention — see DESIGN.md); forces are rayon-parallel central
/// differences. This path never touches the exchange engine, which is
/// the whole point of paying it every inner step.
pub struct XcForces {
    /// The exchange-free surrogate functional (`Lda` or `Pbe`; construct
    /// from a hybrid target with `Functional::mts_fast()`).
    pub functional: liair_xc::Functional,
    /// SCF controls used for every energy evaluation.
    pub scf_options: liair_scf::ScfOptions,
    /// Finite-difference displacement (Bohr).
    pub h: f64,
}

impl XcForces {
    /// A provider for the given surrogate functional with FD-tight SCF
    /// settings. Panics if the functional carries exact exchange — pass
    /// `target.mts_fast()` for hybrids.
    pub fn new(functional: liair_xc::Functional) -> Self {
        assert!(
            functional.hfx_fraction() == 0.0,
            "fast MTS forces must be exchange-free; use Functional::mts_fast() ({} given)",
            functional.name()
        );
        let scf_options = liair_scf::ScfOptions {
            energy_tol: 1e-9,
            ..Default::default()
        };
        Self {
            functional,
            scf_options,
            h: 1e-3,
        }
    }

    /// Surrogate energy at one geometry.
    fn energy(&self, mol: &Molecule) -> f64 {
        let basis = liair_basis::Basis::sto3g(mol);
        let res = liair_scf::rks_lda(mol, &basis, &self.scf_options);
        assert!(res.converged, "fast-force SCF failed for {}", mol.formula());
        if self.functional == liair_xc::Functional::Lda {
            res.energy
        } else {
            liair_scf::functional_energy(mol, &basis, &res, self.functional, &self.scf_options)
        }
    }
}

impl ForceProvider for XcForces {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let e0 = self.energy(mol);
        use rayon::prelude::*;
        let forces: Vec<Vec3> = (0..mol.natoms())
            .into_par_iter()
            .map(|atom| {
                let mut f = Vec3::ZERO;
                for axis in 0..3 {
                    let mut plus = mol.clone();
                    plus.atoms[atom].pos[axis] += self.h;
                    let mut minus = mol.clone();
                    minus.atoms[atom].pos[axis] -= self.h;
                    f[axis] = -(self.energy(&plus) - self.energy(&minus)) / (2.0 * self.h);
                }
                f
            })
            .collect();
        (e0, forces)
    }
}

/// The r-RESPA force split for hybrid-functional MD: `fast` is the
/// exchange-free surrogate ([`XcForces`]), `full` is the grid-exchange
/// SCF with per-slot incremental caches ([`IncrementalGridForces`]), and
/// the slow correction is their difference at the outer geometry —
/// reusing the fast result the integrator just computed, so one outer
/// step pays exactly one full evaluation. Consecutive outer steps
/// warm-start the same incremental caches, and
/// [`SplitForceProvider::reuse_totals`] exposes the counters for the
/// trajectory log.
pub struct HfxDeltaForces {
    /// Inner-step surrogate provider.
    pub fast: XcForces,
    /// Outer-step full (hybrid/HFX) provider.
    pub full: IncrementalGridForces,
}

impl SplitForceProvider for HfxDeltaForces {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.fast.compute(mol, cell)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        cell: Option<&Cell>,
        fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let (e_full, f_full) = self.full.compute(mol, cell);
        let forces = f_full.iter().zip(fast.1).map(|(a, b)| *a - *b).collect();
        (e_full - fast.0, forces)
    }

    fn reuse_totals(&self) -> Option<liair_core::IncStats> {
        Some(self.full.reuse_totals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{MdOptions, MdState, Thermostat};
    use crate::mts::MtsOptions;
    use liair_basis::{systems, Basis};
    use liair_scf::{rhf, ScfOptions};

    /// RHF energy of H2 as a function of geometry.
    fn h2_energy(mol: &Molecule) -> f64 {
        let basis = Basis::sto3g(mol);
        let opts = ScfOptions {
            energy_tol: 1e-10,
            ..ScfOptions::default()
        };
        rhf(mol, &basis, &opts).energy
    }

    #[test]
    fn h2_force_signs_bracket_equilibrium() {
        // STO-3G H2 equilibrium is near R = 1.35 Bohr: compressed bond
        // pushes apart, stretched bond pulls together.
        let provider = FiniteDifferenceForces::new(h2_energy, 1e-3);
        let mut short = systems::h2();
        short.atoms[1].pos.x = 1.1;
        let (_, f_short) = provider.compute(&short, None);
        assert!(f_short[1].x > 0.0, "compressed: {}", f_short[1].x);
        let mut long = systems::h2();
        long.atoms[1].pos.x = 1.8;
        let (_, f_long) = provider.compute(&long, None);
        assert!(f_long[1].x < 0.0, "stretched: {}", f_long[1].x);
    }

    #[test]
    fn analytic_forces_match_finite_difference_provider() {
        let mol = systems::h2();
        let analytic = RhfForces::default();
        let fd = FiniteDifferenceForces::new(h2_energy, 1e-4);
        let (ea, fa) = analytic.compute(&mol, None);
        let (ef, ff) = fd.compute(&mol, None);
        assert!((ea - ef).abs() < 1e-7);
        for (a, f) in fa.iter().zip(&ff) {
            assert!((*a - *f).norm() < 1e-5, "{a:?} vs {f:?}");
        }
    }

    #[test]
    fn analytic_bomd_water_conserves_energy() {
        // A short genuinely ab initio trajectory of water with analytic
        // gradients: NVE energy stays flat.
        let provider = RhfForces::default();
        let mut mol = systems::water();
        // Stretch one OH slightly to start vibrating.
        mol.atoms[1].pos.x *= 1.05;
        let mut state = MdState::new(mol, None, &provider);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            ..Default::default()
        };
        state.run(&provider, &opts, 12);
        let drift = (state.total_energy() - e0).abs();
        assert!(drift < 1e-4, "BOMD drift {drift} Ha over 12 steps");
    }

    #[test]
    fn incremental_grid_forces_reuse_across_steps() {
        // Grid-exchange BOMD provider with per-slot incremental caches: a
        // compressed H2 pushes apart, and a repeated step (nothing moved)
        // is served almost entirely from the caches.
        let sched = liair_core::IncSchedule::fixed(1e-4, 0);
        let provider = IncrementalGridForces::new(20, 12.0, sched);
        let mut short = systems::h2();
        short.atoms[1].pos.x = 1.1;
        let (e1, f1) = provider.compute(&short, None);
        assert!(e1.is_finite());
        assert!(f1[1].x > 0.0, "compressed: {}", f1[1].x);
        let t1 = provider.reuse_totals();
        // Identical geometry: every FD slot diffs against itself.
        let (e2, f2) = provider.compute(&short, None);
        let t2 = provider.reuse_totals();
        assert!(
            (e1 - e2).abs() < 1e-8,
            "repeat step energy moved: {e1} vs {e2}"
        );
        assert!(
            (f1[1].x - f2[1].x).abs() < 1e-6,
            "repeat step force moved: {} vs {}",
            f1[1].x,
            f2[1].x
        );
        assert!(
            t2.pairs_reused > t1.pairs_reused,
            "no cross-step reuse: {t1:?} then {t2:?}"
        );
    }

    #[test]
    fn xc_forces_bracket_lda_equilibrium() {
        // The LDA surrogate is a genuine potential surface: compressed H2
        // pushes apart, stretched pulls together, and the FD forces are
        // consistent with the energy (sign test around the minimum).
        let provider = XcForces::new(liair_xc::Functional::Lda);
        let mut short = systems::h2();
        short.atoms[1].pos.x = 1.1;
        let (e_short, f_short) = provider.compute(&short, None);
        assert!(e_short.is_finite());
        assert!(f_short[1].x > 0.0, "compressed: {}", f_short[1].x);
        let mut long = systems::h2();
        long.atoms[1].pos.x = 2.2;
        let (_, f_long) = provider.compute(&long, None);
        assert!(f_long[1].x < 0.0, "stretched: {}", f_long[1].x);
    }

    #[test]
    #[should_panic(expected = "exchange-free")]
    fn xc_forces_reject_hybrids() {
        let _ = XcForces::new(liair_xc::Functional::Pbe0);
    }

    #[test]
    fn mts_bomd_h2_runs_and_reuses_cache() {
        // The real thing end to end: H2 r-RESPA BOMD with the LDA
        // surrogate inner force and the grid-exchange SCF as the outer
        // full force, per-slot incremental caches warm-started across
        // outer steps. Checks energy sanity, per-outer-step reuse
        // counters in the log, and bounded drift at outer boundaries.
        let sched = liair_core::IncSchedule::fixed(1e-4, 0);
        let split = HfxDeltaForces {
            fast: XcForces::new(liair_xc::Functional::Lda),
            full: IncrementalGridForces::new(16, 10.0, sched),
        };
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = 1.5;
        let mut state = MdState::new_split(mol, None, &split);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            mts: MtsOptions { n_inner: 2 },
        };
        let log = state.run_mts_logged(&split, &opts, 3);
        assert_eq!(state.step_count, 6);
        let drift = log
            .iter()
            .map(|r| (r.conserved - e0).abs())
            .fold(0.0, f64::max);
        assert!(drift < 5e-3, "MTS BOMD drift {drift} Ha");
        // Outer steps after the first must reuse the warm caches.
        let inc_last = log.last().unwrap().inc.expect("slow path carries a cache");
        assert!(
            inc_last.pairs_reused > 0,
            "no cross-outer-step reuse: {inc_last:?}"
        );
    }

    #[test]
    fn h2_ab_initio_md_oscillates_and_conserves() {
        // A genuinely ab initio (RHF) Born–Oppenheimer trajectory: the
        // molecule vibrates around equilibrium and NVE energy is conserved.
        let provider = FiniteDifferenceForces::new(h2_energy, 1e-3);
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = 1.6; // displaced start
        let mut state = MdState::new(mol, None, &provider);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            ..Default::default()
        };
        let mut min_r = f64::INFINITY;
        let mut max_r = 0.0f64;
        for _ in 0..60 {
            state.step(&provider, &opts);
            let r = state.mol.atoms[0].pos.distance(state.mol.atoms[1].pos);
            min_r = min_r.min(r);
            max_r = max_r.max(r);
        }
        assert!(min_r < 1.45, "min R = {min_r} (no inward swing)");
        assert!(max_r > 1.55, "max R = {max_r} (no outward swing)");
        let drift = (state.total_energy() - e0).abs();
        assert!(drift < 5e-4, "NVE drift {drift}");
    }
}
