//! Quantum-mechanical forces by central finite differences of any energy
//! function of the geometry — the Born–Oppenheimer force provider for
//! small-molecule ab initio MD (analytic Gaussian gradients are out of
//! scope; finite differences are exact enough for the validation-scale
//! trajectories run here, at 6N+1 energy evaluations per step).

use crate::integrator::ForceProvider;
use liair_basis::{Cell, Molecule};
use liair_math::Vec3;

/// Wraps `E(molecule)` into a force provider.
pub struct FiniteDifferenceForces<F: Fn(&Molecule) -> f64 + Sync> {
    energy_fn: F,
    /// Displacement step (Bohr).
    pub h: f64,
}

impl<F: Fn(&Molecule) -> f64 + Sync> FiniteDifferenceForces<F> {
    /// Wrap an energy function with displacement `h`.
    pub fn new(energy_fn: F, h: f64) -> Self {
        assert!(h > 0.0);
        Self { energy_fn, h }
    }
}

impl<F: Fn(&Molecule) -> f64 + Sync> ForceProvider for FiniteDifferenceForces<F> {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let e0 = (self.energy_fn)(mol);
        let n = mol.natoms();
        use rayon::prelude::*;
        let forces: Vec<Vec3> = (0..n)
            .into_par_iter()
            .map(|atom| {
                let mut f = Vec3::ZERO;
                for axis in 0..3 {
                    let mut plus = mol.clone();
                    plus.atoms[atom].pos[axis] += self.h;
                    let mut minus = mol.clone();
                    minus.atoms[atom].pos[axis] -= self.h;
                    let ep = (self.energy_fn)(&plus);
                    let em = (self.energy_fn)(&minus);
                    f[axis] = -(ep - em) / (2.0 * self.h);
                }
                f
            })
            .collect();
        (e0, forces)
    }
}

/// Born–Oppenheimer RHF forces via the *analytic* nuclear gradient
/// (`liair_integrals::rhf_gradient`) — one SCF plus one gradient per step,
/// instead of the 6N+1 SCFs of the finite-difference provider.
pub struct RhfForces {
    /// SCF controls used every step.
    pub scf_options: liair_scf::ScfOptions,
}

impl Default for RhfForces {
    fn default() -> Self {
        let o = liair_scf::ScfOptions {
            energy_tol: 1e-9,
            ..Default::default()
        };
        Self { scf_options: o }
    }
}

impl ForceProvider for RhfForces {
    fn compute(&self, mol: &Molecule, _cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let basis = liair_basis::Basis::sto3g(mol);
        let scf = liair_scf::rhf(mol, &basis, &self.scf_options);
        assert!(scf.converged, "BOMD step: SCF failed for {}", mol.formula());
        let grad =
            liair_integrals::rhf_gradient(mol, &basis, &scf.c, &scf.orbital_energies, &scf.density);
        let forces = grad.into_iter().map(|g| -g).collect();
        (scf.energy, forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{MdOptions, MdState, Thermostat};
    use liair_basis::{systems, Basis};
    use liair_scf::{rhf, ScfOptions};

    /// RHF energy of H2 as a function of geometry.
    fn h2_energy(mol: &Molecule) -> f64 {
        let basis = Basis::sto3g(mol);
        let opts = ScfOptions {
            energy_tol: 1e-10,
            ..ScfOptions::default()
        };
        rhf(mol, &basis, &opts).energy
    }

    #[test]
    fn h2_force_signs_bracket_equilibrium() {
        // STO-3G H2 equilibrium is near R = 1.35 Bohr: compressed bond
        // pushes apart, stretched bond pulls together.
        let provider = FiniteDifferenceForces::new(h2_energy, 1e-3);
        let mut short = systems::h2();
        short.atoms[1].pos.x = 1.1;
        let (_, f_short) = provider.compute(&short, None);
        assert!(f_short[1].x > 0.0, "compressed: {}", f_short[1].x);
        let mut long = systems::h2();
        long.atoms[1].pos.x = 1.8;
        let (_, f_long) = provider.compute(&long, None);
        assert!(f_long[1].x < 0.0, "stretched: {}", f_long[1].x);
    }

    #[test]
    fn analytic_forces_match_finite_difference_provider() {
        let mol = systems::h2();
        let analytic = RhfForces::default();
        let fd = FiniteDifferenceForces::new(h2_energy, 1e-4);
        let (ea, fa) = analytic.compute(&mol, None);
        let (ef, ff) = fd.compute(&mol, None);
        assert!((ea - ef).abs() < 1e-7);
        for (a, f) in fa.iter().zip(&ff) {
            assert!((*a - *f).norm() < 1e-5, "{a:?} vs {f:?}");
        }
    }

    #[test]
    fn analytic_bomd_water_conserves_energy() {
        // A short genuinely ab initio trajectory of water with analytic
        // gradients: NVE energy stays flat.
        let provider = RhfForces::default();
        let mut mol = systems::water();
        // Stretch one OH slightly to start vibrating.
        mol.atoms[1].pos.x *= 1.05;
        let mut state = MdState::new(mol, None, &provider);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
        };
        state.run(&provider, &opts, 12);
        let drift = (state.total_energy() - e0).abs();
        assert!(drift < 1e-4, "BOMD drift {drift} Ha over 12 steps");
    }

    #[test]
    fn h2_ab_initio_md_oscillates_and_conserves() {
        // A genuinely ab initio (RHF) Born–Oppenheimer trajectory: the
        // molecule vibrates around equilibrium and NVE energy is conserved.
        let provider = FiniteDifferenceForces::new(h2_energy, 1e-3);
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = 1.6; // displaced start
        let mut state = MdState::new(mol, None, &provider);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
        };
        let mut min_r = f64::INFINITY;
        let mut max_r = 0.0f64;
        for _ in 0..60 {
            state.step(&provider, &opts);
            let r = state.mol.atoms[0].pos.distance(state.mol.atoms[1].pos);
            min_r = min_r.min(r);
            max_r = max_r.max(r);
        }
        assert!(min_r < 1.45, "min R = {min_r} (no inward swing)");
        assert!(max_r > 1.55, "max R = {max_r} (no outward swing)");
        let drift = (state.total_energy() - e0).abs();
        assert!(drift < 5e-4, "NVE drift {drift}");
    }
}
