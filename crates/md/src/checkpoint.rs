//! Serializable MD checkpoints for preempt/resume.
//!
//! [`MdCheckpoint`] captures the *complete* propagated state of an
//! [`MdState`] — geometry, velocities, cached fast and slow forces,
//! thermostat variables, step count — as raw IEEE-754 bits
//! (`liair-math::codec`), so a job resumed from a checkpoint continues the
//! trajectory **bit-identically** to one that was never interrupted. The
//! force *provider* is not serialized: it is deterministic given the job
//! spec, so the serve runner reconstructs it from the spec on resume and
//! the cached forces in the checkpoint make the first resumed step use
//! exactly the forces the interrupted run had in hand.
//!
//! Velocity-Verlet (and its r-RESPA extension, [`crate::mts`]) only ever
//! consumes state captured here plus provider outputs that are pure
//! functions of the geometry — which is what makes this small struct a
//! *sufficient* checkpoint, property-tested in `tests/checkpoint_props.rs`
//! across `n_inner` values, thermostats, and interruption points.

use liair_basis::{Atom, Cell, Element, Molecule};
use liair_math::codec::{CodecError, Decoder, Encoder};
use liair_math::Vec3;

use crate::integrator::MdState;

/// Magic tag for MD checkpoint streams (`"LMD1"`).
const MAGIC: u32 = 0x4C4D_4431;
const VERSION: u16 = 1;

/// A frozen [`MdState`], restorable bit-identically.
#[derive(Debug, Clone)]
pub struct MdCheckpoint {
    /// The captured state (geometry, velocities, forces, thermostat).
    pub state: MdState,
}

fn put_vec3(e: &mut Encoder, v: Vec3) {
    e.put_f64(v.x);
    e.put_f64(v.y);
    e.put_f64(v.z);
}

fn get_vec3(d: &mut Decoder<'_>) -> Result<Vec3, CodecError> {
    Ok(Vec3::new(d.get_f64()?, d.get_f64()?, d.get_f64()?))
}

fn put_vec3s(e: &mut Encoder, vs: &[Vec3]) {
    e.put_usize(vs.len());
    for &v in vs {
        put_vec3(e, v);
    }
}

fn get_vec3s(d: &mut Decoder<'_>) -> Result<Vec<Vec3>, CodecError> {
    let n = d.get_usize()?;
    if n > d.remaining() / 24 {
        return Err(CodecError::BadLength(n as u64));
    }
    (0..n).map(|_| get_vec3(d)).collect()
}

impl MdCheckpoint {
    /// Snapshot `state` (cheap clone; `MdState` is a value type).
    pub fn capture(state: &MdState) -> MdCheckpoint {
        MdCheckpoint {
            state: state.clone(),
        }
    }

    /// Consume the checkpoint, yielding the state to continue stepping.
    pub fn restore(self) -> MdState {
        self.state
    }

    /// Encode to a self-describing byte stream (bit-exact floats).
    pub fn to_bytes(&self) -> Vec<u8> {
        let s = &self.state;
        let mut e = Encoder::with_magic(MAGIC, VERSION);
        e.put_usize(s.mol.atoms.len());
        for a in &s.mol.atoms {
            e.put_u32(a.element.z());
            put_vec3(&mut e, a.pos);
        }
        e.put_u64(s.mol.charge as i64 as u64);
        match &s.cell {
            Some(c) => {
                e.put_bool(true);
                put_vec3(&mut e, c.lengths);
            }
            None => e.put_bool(false),
        }
        put_vec3s(&mut e, &s.velocities);
        e.put_f64_slice(&s.masses);
        put_vec3s(&mut e, &s.forces);
        e.put_f64(s.potential);
        e.put_usize(s.step_count);
        e.put_f64(s.nh_xi);
        e.put_f64(s.nh_eta);
        put_vec3s(&mut e, &s.forces_slow);
        e.put_f64(s.potential_slow);
        e.finish()
    }

    /// Decode a stream produced by [`MdCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<MdCheckpoint, CodecError> {
        let (mut d, version) = Decoder::with_magic(bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let natoms = d.get_usize()?;
        if natoms > d.remaining() / 28 {
            return Err(CodecError::BadLength(natoms as u64));
        }
        let mut atoms = Vec::with_capacity(natoms);
        for _ in 0..natoms {
            let z = d.get_u32()?;
            let element = Element::from_z(z).ok_or(CodecError::BadLength(z as u64))?;
            let pos = get_vec3(&mut d)?;
            atoms.push(Atom { element, pos });
        }
        let charge = d.get_u64()? as i64 as i32;
        let cell = if d.get_bool()? {
            Some(Cell {
                lengths: get_vec3(&mut d)?,
            })
        } else {
            None
        };
        let velocities = get_vec3s(&mut d)?;
        let masses = d.get_f64_vec()?;
        let forces = get_vec3s(&mut d)?;
        let potential = d.get_f64()?;
        let step_count = d.get_usize()?;
        let nh_xi = d.get_f64()?;
        let nh_eta = d.get_f64()?;
        let forces_slow = get_vec3s(&mut d)?;
        let potential_slow = d.get_f64()?;
        Ok(MdCheckpoint {
            state: MdState {
                mol: Molecule { atoms, charge },
                cell,
                velocities,
                masses,
                forces,
                potential,
                step_count,
                nh_xi,
                nh_eta,
                forces_slow,
                potential_slow,
            },
        })
    }

    /// `true` when both states agree to the bit in every float field
    /// (the resume-equivalence criterion; `PartialEq` on floats would
    /// conflate `-0.0 == 0.0` and reject NaN).
    pub fn bitwise_eq(a: &MdState, b: &MdState) -> bool {
        fn v3(a: &Vec3, b: &Vec3) -> bool {
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits()
        }
        fn v3s(a: &[Vec3], b: &[Vec3]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| v3(x, y))
        }
        a.mol.atoms.len() == b.mol.atoms.len()
            && a.mol.charge == b.mol.charge
            && a.mol
                .atoms
                .iter()
                .zip(&b.mol.atoms)
                .all(|(x, y)| x.element == y.element && v3(&x.pos, &y.pos))
            && match (&a.cell, &b.cell) {
                (Some(x), Some(y)) => v3(&x.lengths, &y.lengths),
                (None, None) => true,
                _ => false,
            }
            && v3s(&a.velocities, &b.velocities)
            && a.masses.len() == b.masses.len()
            && a.masses
                .iter()
                .zip(&b.masses)
                .all(|(x, y)| x.to_bits() == y.to_bits())
            && v3s(&a.forces, &b.forces)
            && a.potential.to_bits() == b.potential.to_bits()
            && a.step_count == b.step_count
            && a.nh_xi.to_bits() == b.nh_xi.to_bits()
            && a.nh_eta.to_bits() == b.nh_eta.to_bits()
            && v3s(&a.forces_slow, &b.forces_slow)
            && a.potential_slow.to_bits() == b.potential_slow.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use crate::integrator::{MdOptions, Thermostat};
    use liair_basis::systems;

    #[test]
    fn round_trip_is_bitwise() {
        let (mol, cell) = systems::water_box(2, 11);
        let ff = ForceField::from_molecule(&mol, Some(&cell));
        let mut state = MdState::new(mol, Some(cell), &ff);
        state.thermalize_seeded(300.0, Some(7));
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::NoseHoover {
                t_target: 300.0,
                tau: 400.0,
            },
            ..Default::default()
        };
        for _ in 0..3 {
            state.step(&ff, &opts);
        }
        let ck = MdCheckpoint::capture(&state);
        let bytes = ck.to_bytes();
        let back = MdCheckpoint::from_bytes(&bytes).unwrap();
        assert!(MdCheckpoint::bitwise_eq(&state, &back.state));
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let mol = systems::h2();
        let ff = ForceField::from_molecule(&mol, None);
        let state = MdState::new(mol, None, &ff);
        let mut bytes = MdCheckpoint::capture(&state).to_bytes();
        bytes[0] ^= 0xff; // clobber magic
        assert!(MdCheckpoint::from_bytes(&bytes).is_err());
        let good = MdCheckpoint::capture(&state).to_bytes();
        assert!(MdCheckpoint::from_bytes(&good[..good.len() - 3]).is_err());
    }
}
