//! Velocity-Verlet molecular dynamics with thermostats.

use liair_basis::{Cell, Molecule, KB_HARTREE};
use liair_math::Vec3;
use rand::Rng;

/// Anything that yields `(potential energy, forces)` for a geometry.
pub trait ForceProvider {
    /// Evaluate at the molecule's current positions.
    fn compute(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>);
}

impl ForceProvider for crate::forcefield::ForceField {
    fn compute(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.energy_forces(mol, cell)
    }
}

/// Temperature-control schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Thermostat {
    /// Microcanonical (no control).
    None,
    /// Berendsen weak coupling with time constant `tau` (a.u.).
    Berendsen { t_target: f64, tau: f64 },
    /// Nosé–Hoover with relaxation time `tau` (a.u.) — canonical sampling
    /// with a conserved extended-system energy (see
    /// [`MdState::nose_hoover_conserved`]).
    NoseHoover { t_target: f64, tau: f64 },
}

/// MD controls.
#[derive(Debug, Clone, Copy)]
pub struct MdOptions {
    /// Timestep in atomic time units (≈ 0.0242 fs each). On the MTS path
    /// this is the *inner* timestep; the outer step is `mts.n_inner · dt`.
    pub dt: f64,
    /// Thermostat.
    pub thermostat: Thermostat,
    /// Multiple-time-stepping controls, honored by
    /// [`MdState::step_mts`]/[`MdState::run_mts`] (the plain
    /// [`MdState::step`] path ignores them).
    pub mts: crate::mts::MtsOptions,
}

impl Default for MdOptions {
    fn default() -> Self {
        Self {
            dt: 20.0,
            thermostat: Thermostat::None,
            mts: crate::mts::MtsOptions::default(),
        }
    }
}

/// Resolve the velocity-initialization seed under the repo-wide
/// convention (mirrors `LIAIR_FAULT_SEED`): an explicit `Some(seed)`
/// wins, else the `LIAIR_MD_SEED` environment variable, else `2014`.
/// Every thermalization site routes through this so trajectories are
/// reproducible run-to-run and overridable fleet-wide from the
/// environment. The precedence itself lives in
/// [`liair_runtime::SeedConfig`]; multi-tenant serve jobs skip the
/// environment entirely and call [`SeedConfig::resolve_md_seed`] on their
/// per-job config instead.
///
/// [`SeedConfig::resolve_md_seed`]: liair_runtime::SeedConfig::resolve_md_seed
pub fn md_seed(explicit: Option<u64>) -> u64 {
    liair_runtime::SeedConfig::from_env().resolve_md_seed(explicit)
}

/// The propagated state.
#[derive(Debug, Clone)]
pub struct MdState {
    /// Current geometry.
    pub mol: Molecule,
    /// Optional periodic cell.
    pub cell: Option<Cell>,
    /// Velocities (Bohr / a.t.u.).
    pub velocities: Vec<Vec3>,
    /// Masses (a.u.).
    pub masses: Vec<f64>,
    /// Cached forces at the current positions.
    pub forces: Vec<Vec3>,
    /// Cached potential energy.
    pub potential: f64,
    /// Steps taken.
    pub step_count: usize,
    /// Nosé–Hoover friction variable ξ.
    pub nh_xi: f64,
    /// Nosé–Hoover position variable η (∫ξ dt), for the conserved quantity.
    pub nh_eta: f64,
    /// Cached slow-correction forces (MTS path only; on the plain path
    /// this stays zero and [`MdState::forces`] holds the full force). See
    /// [`crate::mts`].
    pub forces_slow: Vec<Vec3>,
    /// Cached slow-correction potential (MTS path only).
    pub potential_slow: f64,
}

impl MdState {
    /// Initialize at rest.
    pub fn new<F: ForceProvider>(mol: Molecule, cell: Option<Cell>, provider: &F) -> MdState {
        let masses: Vec<f64> = mol.atoms.iter().map(|a| a.element.mass_au()).collect();
        let (potential, forces) = provider.compute(&mol, cell.as_ref());
        let n = mol.natoms();
        MdState {
            mol,
            cell,
            velocities: vec![Vec3::ZERO; n],
            masses,
            forces,
            potential,
            step_count: 0,
            nh_xi: 0.0,
            nh_eta: 0.0,
            forces_slow: vec![Vec3::ZERO; n],
            potential_slow: 0.0,
        }
    }

    /// Degrees of freedom used for temperature control.
    fn dof(&self) -> f64 {
        (3 * self.mol.natoms()).saturating_sub(3).max(1) as f64
    }

    /// The conserved quantity of Nosé–Hoover dynamics:
    /// `H' = E_kin + E_pot + ½Q ξ² + g·kT·η`. Constant along an NH
    /// trajectory (use it like the NVE energy to judge integration
    /// quality). `Q = g·kT·τ²`.
    pub fn nose_hoover_conserved(&self, t_target: f64, tau: f64) -> f64 {
        let g = self.dof();
        let q = g * KB_HARTREE * t_target * tau * tau;
        self.total_energy()
            + 0.5 * q * self.nh_xi * self.nh_xi
            + g * KB_HARTREE * t_target * self.nh_eta
    }

    /// Draw Maxwell–Boltzmann velocities at temperature `t` (Kelvin) and
    /// remove the center-of-mass drift.
    pub fn thermalize<R: Rng>(&mut self, t: f64, rng: &mut R) {
        for (v, &m) in self.velocities.iter_mut().zip(&self.masses) {
            let sigma = (KB_HARTREE * t / m).sqrt();
            let mut gauss = || {
                let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-300), rng.gen());
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            *v = Vec3::new(sigma * gauss(), sigma * gauss(), sigma * gauss());
        }
        self.remove_com_motion();
    }

    /// Maxwell–Boltzmann initialization under the one documented seed
    /// convention (see [`md_seed`]): `thermalize_seeded(t, None)` is
    /// deterministic run-to-run (seed 2014 unless `LIAIR_MD_SEED`
    /// overrides it), and `Some(seed)` pins a specific stream.
    pub fn thermalize_seeded(&mut self, t: f64, seed: Option<u64>) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(md_seed(seed));
        self.thermalize(t, &mut rng);
    }

    /// Subtract the center-of-mass velocity.
    pub fn remove_com_motion(&mut self) {
        let mut p = Vec3::ZERO;
        let mut m_tot = 0.0;
        for (v, &m) in self.velocities.iter().zip(&self.masses) {
            p += *v * m;
            m_tot += m;
        }
        let v_com = p / m_tot;
        for v in &mut self.velocities {
            *v -= v_com;
        }
    }

    /// Kinetic energy (Hartree).
    pub fn kinetic(&self) -> f64 {
        self.velocities
            .iter()
            .zip(&self.masses)
            .map(|(v, &m)| 0.5 * m * v.norm_sqr())
            .sum()
    }

    /// Instantaneous temperature (Kelvin), 3N−3 degrees of freedom.
    pub fn temperature(&self) -> f64 {
        let dof = (3 * self.mol.natoms()).saturating_sub(3).max(1) as f64;
        2.0 * self.kinetic() / (dof * KB_HARTREE)
    }

    /// Total (conserved, NVE) energy.
    pub fn total_energy(&self) -> f64 {
        self.kinetic() + self.potential
    }

    /// Half-step of the Nosé–Hoover thermostat operator: advance ξ from
    /// the current kinetic energy, then scale velocities. The MTS path
    /// calls this with the *outer* timestep (`crate::mts`).
    pub(crate) fn nose_hoover_half(&mut self, dt: f64, t_target: f64, tau: f64) {
        let g = self.dof();
        let kt = KB_HARTREE * t_target;
        let q = g * kt * tau * tau;
        let xi_dot = (2.0 * self.kinetic() - g * kt) / q;
        self.nh_xi += 0.5 * dt * xi_dot;
        let scale = (-self.nh_xi * 0.5 * dt).exp();
        for v in &mut self.velocities {
            *v = *v * scale;
        }
        self.nh_eta += 0.5 * dt * self.nh_xi;
    }

    /// One velocity-Verlet step.
    pub fn step<F: ForceProvider>(&mut self, provider: &F, opts: &MdOptions) {
        let dt = opts.dt;
        if let Thermostat::NoseHoover { t_target, tau } = opts.thermostat {
            self.nose_hoover_half(dt, t_target, tau);
        }
        // Half kick + drift.
        for i in 0..self.mol.natoms() {
            self.velocities[i] += self.forces[i] * (0.5 * dt / self.masses[i]);
            self.mol.atoms[i].pos += self.velocities[i] * dt;
        }
        // New forces + half kick.
        let (pot, forces) = provider.compute(&self.mol, self.cell.as_ref());
        self.potential = pot;
        self.forces = forces;
        for i in 0..self.mol.natoms() {
            self.velocities[i] += self.forces[i] * (0.5 * dt / self.masses[i]);
        }
        // Thermostat.
        self.end_of_step_thermostat(dt, opts.thermostat);
        self.step_count += 1;
    }

    /// The closing thermostat application of one (inner or outer) step —
    /// shared by the plain and MTS paths so the `n_inner = 1` equivalence
    /// is an identity of code, not of reimplementation.
    pub(crate) fn end_of_step_thermostat(&mut self, dt: f64, thermostat: Thermostat) {
        match thermostat {
            Thermostat::Berendsen { t_target, tau } => {
                let t_now = self.temperature().max(1e-10);
                let lambda = (1.0 + dt / tau * (t_target / t_now - 1.0)).max(0.0).sqrt();
                for v in &mut self.velocities {
                    *v = *v * lambda;
                }
            }
            Thermostat::NoseHoover { t_target, tau } => {
                self.nose_hoover_half(dt, t_target, tau);
            }
            Thermostat::None => {}
        }
    }

    /// Run `n` steps.
    pub fn run<F: ForceProvider>(&mut self, provider: &F, opts: &MdOptions, n: usize) {
        for _ in 0..n {
            self.step(provider, opts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forcefield::ForceField;
    use liair_basis::systems;
    use rand::SeedableRng;

    #[test]
    fn nve_conserves_energy() {
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let mut state = MdState::new(mol, None, &ff);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        state.thermalize(300.0, &mut rng);
        let e0 = state.total_energy();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            ..Default::default()
        };
        state.run(&ff, &opts, 500);
        let drift = (state.total_energy() - e0).abs();
        assert!(drift < 2e-4, "energy drift {drift} Ha over 500 steps");
    }

    #[test]
    fn thermostat_reaches_target() {
        let (mol, cell) = systems::water_box(2, 11);
        let ff = ForceField::from_molecule(&mol, Some(&cell));
        let mut state = MdState::new(mol, Some(cell), &ff);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        state.thermalize(50.0, &mut rng);
        let opts = MdOptions {
            dt: 20.0,
            thermostat: Thermostat::Berendsen {
                t_target: 300.0,
                tau: 400.0,
            },
            ..Default::default()
        };
        state.run(&ff, &opts, 400);
        // Average over a window to smooth fluctuations.
        let mut t_acc = 0.0;
        for _ in 0..100 {
            state.step(&ff, &opts);
            t_acc += state.temperature();
        }
        let t_mean = t_acc / 100.0;
        assert!((t_mean - 300.0).abs() < 90.0, "T = {t_mean}");
    }

    #[test]
    fn thermalize_sets_temperature_and_zero_momentum() {
        let (mol, cell) = systems::water_box(2, 5);
        let ff = ForceField::from_molecule(&mol, Some(&cell));
        let mut state = MdState::new(mol, Some(cell), &ff);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        state.thermalize(400.0, &mut rng);
        assert!((state.temperature() - 400.0).abs() < 120.0);
        let p: Vec3 = state
            .velocities
            .iter()
            .zip(&state.masses)
            .fold(Vec3::ZERO, |acc, (v, &m)| acc + *v * m);
        assert!(p.norm() < 1e-9, "net momentum {}", p.norm());
    }

    #[test]
    fn nose_hoover_controls_temperature_and_conserves() {
        let (mol, cell) = systems::water_box(2, 21);
        let ff = ForceField::from_molecule(&mol, Some(&cell));
        let mut state = MdState::new(mol, Some(cell), &ff);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        state.thermalize(250.0, &mut rng);
        let (t_target, tau) = (350.0, 400.0);
        let opts = MdOptions {
            dt: 15.0,
            thermostat: Thermostat::NoseHoover { t_target, tau },
            ..Default::default()
        };
        let h0 = state.nose_hoover_conserved(t_target, tau);
        let mut t_acc = 0.0;
        let mut n_acc = 0;
        for step in 0..1500 {
            state.step(&ff, &opts);
            if step >= 500 {
                t_acc += state.temperature();
                n_acc += 1;
            }
        }
        let t_mean = t_acc / n_acc as f64;
        assert!((t_mean - t_target).abs() < 120.0, "mean T = {t_mean}");
        // The extended-system energy is the NH conserved quantity.
        let drift = (state.nose_hoover_conserved(t_target, tau) - h0).abs();
        assert!(drift < 5e-3, "NH conserved-quantity drift {drift}");
    }

    #[test]
    fn seed_convention_precedence_and_reproducibility() {
        // One test covers the whole precedence chain (explicit > env >
        // default) sequentially, to avoid env races between tests.
        let old = std::env::var("LIAIR_MD_SEED").ok();
        std::env::remove_var("LIAIR_MD_SEED");
        assert_eq!(md_seed(None), 2014);
        std::env::set_var("LIAIR_MD_SEED", " 77 ");
        assert_eq!(md_seed(None), 77);
        assert_eq!(md_seed(Some(5)), 5, "explicit seed must beat the env");
        match old {
            Some(v) => std::env::set_var("LIAIR_MD_SEED", v),
            None => std::env::remove_var("LIAIR_MD_SEED"),
        }

        // Same seed, same velocities; different seed, different velocities.
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let mut a = MdState::new(mol.clone(), None, &ff);
        let mut b = MdState::new(mol.clone(), None, &ff);
        let mut c = MdState::new(mol, None, &ff);
        a.thermalize_seeded(300.0, Some(9));
        b.thermalize_seeded(300.0, Some(9));
        c.thermalize_seeded(300.0, Some(10));
        assert_eq!(a.velocities, b.velocities);
        assert_ne!(a.velocities, c.velocities);
    }

    #[test]
    fn time_reversal_retraces_trajectory() {
        // Integrate forward, flip velocities, integrate back: recover the
        // initial positions (velocity Verlet is symplectic/time-reversible).
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let mut state = MdState::new(mol.clone(), None, &ff);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        state.thermalize(200.0, &mut rng);
        let x0: Vec<Vec3> = state.mol.atoms.iter().map(|a| a.pos).collect();
        let opts = MdOptions {
            dt: 10.0,
            thermostat: Thermostat::None,
            ..Default::default()
        };
        state.run(&ff, &opts, 50);
        for v in &mut state.velocities {
            *v = -*v;
        }
        state.run(&ff, &opts, 50);
        for (a, &x) in state.mol.atoms.iter().zip(&x0) {
            assert!(
                a.pos.distance(x) < 1e-8,
                "retrace error {}",
                a.pos.distance(x)
            );
        }
    }
}
