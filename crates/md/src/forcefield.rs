//! A reactive-flavoured classical force field.
//!
//! Terms:
//! * **Morse bonds** `D_e (1 − e^{−a(r−r₀)})²` on every detected covalent
//!   bond (`a = √(k/2D_e)`) — unlike harmonic springs these dissociate, so
//!   trajectories can exhibit the chemical degradation the study is about;
//! * **harmonic angles** on every bonded triplet;
//! * **Lennard-Jones** between non-bonded atoms (1-2/1-3 excluded);
//! * **damped shifted-force Coulomb** (Fennell–Gezelter) with per-element
//!   charges neutralized per molecule — smooth at the cutoff, so NVE
//!   energy is well conserved.
//!
//! The carbonate-specific rule (ester C–O bonds adjacent to a carbonyl
//! carbon get a reduced well depth) is the documented synthetic stand-in
//! for the ring-opening chemistry the paper resolves with PBE0; Li⁺'s
//! strong electrostatics then preferentially attack exactly those bonds.

use liair_basis::{Cell, Element, Molecule};
use liair_math::special::erfc;
use liair_math::Vec3;

/// A detected covalent bond.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// Atom indices (`i < j`).
    pub i: usize,
    /// Second atom.
    pub j: usize,
    /// Equilibrium length (Bohr) — the detected initial length.
    pub r0: f64,
    /// Morse well depth (Hartree).
    pub de: f64,
    /// Morse width parameter `a` (Bohr⁻¹).
    pub a: f64,
}

/// An angle term over bonded triplet `(i, j, k)` centered at `j`.
///
/// The harmonic term is scaled by the *bond integrity* of its two
/// constituent bonds, `w(r) = min(1, e^{−a(r−r₀)})` — when a Morse bond
/// dissociates, the angle resistance fades with it (ReaxFF-style
/// bond-order coupling). Without this, ring opening would fight rigid
/// angle springs and no degradation chemistry could ever occur.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle {
    /// Outer atom.
    pub i: usize,
    /// Center atom.
    pub j: usize,
    /// Outer atom.
    pub k: usize,
    /// Equilibrium angle (radians) — the initial geometry's angle.
    pub theta0: f64,
    /// Force constant (Hartree/rad²).
    pub kf: f64,
    /// Integrity parameters `(a, r₀)` of the i–j bond.
    pub integ_ij: (f64, f64),
    /// Integrity parameters `(a, r₀)` of the k–j bond.
    pub integ_kj: (f64, f64),
}

/// Bond integrity `w(r)` and its radial derivative.
#[inline]
fn integrity(r: f64, (a, r0): (f64, f64)) -> (f64, f64) {
    if r <= r0 {
        (1.0, 0.0)
    } else {
        let w = (-a * (r - r0)).exp();
        (w, -a * w)
    }
}

/// The parametrized force field over a fixed topology.
#[derive(Debug, Clone)]
pub struct ForceField {
    /// Bond terms.
    pub bonds: Vec<Bond>,
    /// Angle terms.
    pub angles: Vec<Angle>,
    /// Partial charges (neutralized per molecule).
    pub charges: Vec<f64>,
    /// LJ σ per atom (Bohr).
    pub lj_sigma: Vec<f64>,
    /// LJ ε per atom (Hartree).
    pub lj_eps: Vec<f64>,
    /// Pairs excluded from non-bonded terms (1-2 and 1-3).
    excluded: std::collections::HashSet<(usize, usize)>,
    /// Non-bonded cutoff (Bohr).
    pub cutoff: f64,
    /// DSF damping parameter (Bohr⁻¹).
    pub alpha: f64,
}

/// Base partial charge by element (before per-molecule neutralization).
fn base_charge(e: Element) -> f64 {
    match e {
        Element::H => 0.12,
        Element::C => 0.08,
        Element::O => -0.40,
        Element::S => 0.28,
        Element::Li => 0.60,
        Element::N => -0.30,
        _ => 0.0,
    }
}

/// LJ parameters (σ Bohr, ε Hartree) by element — UFF-flavoured.
fn lj_params(e: Element) -> (f64, f64) {
    let (sigma_angstrom, eps) = match e {
        Element::H => (2.45, 7.0e-5),
        Element::C => (3.40, 1.6e-4),
        Element::O => (3.05, 1.9e-4),
        Element::S => (3.60, 4.0e-4),
        Element::Li => (2.20, 4.0e-5),
        Element::N => (3.25, 1.1e-4),
        _ => (3.0, 1.0e-4),
    };
    (sigma_angstrom * liair_basis::ANGSTROM, eps)
}

/// Generic bond stiffness (Hartree/Bohr²) by the two elements.
fn bond_stiffness(a: Element, b: Element) -> f64 {
    let has = |e: Element| a == e || b == e;
    if has(Element::H) {
        0.35
    } else if has(Element::Li) {
        0.10
    } else {
        0.45
    }
}

/// Morse well depth (Hartree) by the two elements.
fn bond_de(a: Element, b: Element) -> f64 {
    let has = |e: Element| a == e || b == e;
    if has(Element::H) {
        0.16
    } else if has(Element::Li) {
        0.08
    } else {
        0.22
    }
}

impl ForceField {
    /// Build the field over the current geometry: bonds from covalent
    /// radii (1.3× sum), angles from bonded triplets, charges neutralized
    /// per connected component.
    pub fn from_molecule(mol: &Molecule, cell: Option<&Cell>) -> ForceField {
        let n = mol.natoms();
        let dist = |i: usize, j: usize| -> f64 {
            match cell {
                Some(c) => c.distance(mol.atoms[i].pos, mol.atoms[j].pos),
                None => mol.atoms[i].pos.distance(mol.atoms[j].pos),
            }
        };
        // --- bond detection ---
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut raw_bonds = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let cutoff = 1.3
                    * (mol.atoms[i].element.covalent_radius()
                        + mol.atoms[j].element.covalent_radius());
                let r = dist(i, j);
                if r < cutoff {
                    adjacency[i].push(j);
                    adjacency[j].push(i);
                    raw_bonds.push((i, j, r));
                }
            }
        }
        // Carbonate carbons: a C bonded to ≥ 3 oxygens; its *single* C–O
        // bonds (the longer ones) are the labile ester linkages.
        let mut carbonate_c = vec![false; n];
        for i in 0..n {
            if mol.atoms[i].element == Element::C {
                let n_o = adjacency[i]
                    .iter()
                    .filter(|&&j| mol.atoms[j].element == Element::O)
                    .count();
                if n_o >= 3 {
                    carbonate_c[i] = true;
                }
            }
        }
        let bonds: Vec<Bond> = raw_bonds
            .iter()
            .map(|&(i, j, r0)| {
                let (ei, ej) = (mol.atoms[i].element, mol.atoms[j].element);
                let mut de = bond_de(ei, ej);
                let is_ester_co = (carbonate_c[i] && ej == Element::O && r0 > 2.45)
                    || (carbonate_c[j] && ei == Element::O && r0 > 2.45);
                if is_ester_co {
                    // Labile carbonate ester linkage. The well depth is
                    // calibrated to the *activation energy* of the
                    // peroxide-assisted ring-opening channel (~14 kcal/mol
                    // ≈ 0.022 Ha), not the homolytic BDE — so picosecond
                    // trajectories sample the degradation the paper
                    // resolves with long PBE0 MD (documented substitution,
                    // DESIGN.md).
                    de *= 0.10;
                }
                let k = bond_stiffness(ei, ej);
                Bond {
                    i,
                    j,
                    r0,
                    de,
                    a: (k / (2.0 * de)).sqrt(),
                }
            })
            .collect();
        // --- angles (with the integrity parameters of their bonds) ---
        let bond_params = |a: usize, b: usize| -> (f64, f64) {
            bonds
                .iter()
                .find(|bd| (bd.i, bd.j) == (a.min(b), a.max(b)))
                .map(|bd| (bd.a, bd.r0))
                .expect("angle over unbonded pair")
        };
        let mut angles = Vec::new();
        for j in 0..n {
            let nbrs = &adjacency[j];
            for (x, &i) in nbrs.iter().enumerate() {
                for &k in nbrs.iter().skip(x + 1) {
                    let rij = mol.atoms[i].pos - mol.atoms[j].pos;
                    let rkj = mol.atoms[k].pos - mol.atoms[j].pos;
                    let ct = rij.dot(rkj) / (rij.norm() * rkj.norm());
                    let theta0 = ct.clamp(-1.0, 1.0).acos();
                    angles.push(Angle {
                        i,
                        j,
                        k,
                        theta0,
                        kf: 0.10,
                        integ_ij: bond_params(i, j),
                        integ_kj: bond_params(k, j),
                    });
                }
            }
        }
        // --- charges, neutralized per connected component ---
        let mut charges: Vec<f64> = mol.atoms.iter().map(|a| base_charge(a.element)).collect();
        let components = connected_components(&adjacency);
        for comp in &components {
            let excess: f64 =
                comp.iter().map(|&i| charges[i]).sum::<f64>() - comp_charge_target(mol, comp);
            let share = excess / comp.len() as f64;
            for &i in comp {
                charges[i] -= share;
            }
        }
        // --- exclusions: 1-2 and 1-3 ---
        let mut excluded = std::collections::HashSet::new();
        for b in &bonds {
            excluded.insert((b.i.min(b.j), b.i.max(b.j)));
        }
        for a in &angles {
            excluded.insert((a.i.min(a.k), a.i.max(a.k)));
        }
        let (lj_sigma, lj_eps): (Vec<f64>, Vec<f64>) =
            mol.atoms.iter().map(|a| lj_params(a.element)).unzip();
        ForceField {
            bonds,
            angles,
            charges,
            lj_sigma,
            lj_eps,
            excluded,
            cutoff: 18.0,
            alpha: 0.12,
        }
    }

    /// Potential energy and per-atom forces for the current positions.
    pub fn energy_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        let n = mol.natoms();
        let mut energy = 0.0;
        let mut forces = vec![Vec3::ZERO; n];
        let disp = |i: usize, j: usize| -> Vec3 {
            match cell {
                Some(c) => c.min_image(mol.atoms[i].pos, mol.atoms[j].pos),
                None => mol.atoms[j].pos - mol.atoms[i].pos,
            }
        };

        // Morse bonds.
        for b in &self.bonds {
            let d = disp(b.i, b.j);
            let r = d.norm();
            let x = (-b.a * (r - b.r0)).exp();
            energy += b.de * (1.0 - x) * (1.0 - x);
            // dV/dr = 2 D a x (1−x)
            let dvdr = 2.0 * b.de * b.a * x * (1.0 - x);
            let f = d * (dvdr / r);
            forces[b.i] += f;
            forces[b.j] -= f;
        }

        // Harmonic angles, scaled by the integrity of their bonds.
        for a in &self.angles {
            let rij = -disp(a.i, a.j); // i − j
            let rkj = -disp(a.k, a.j); // k − j
            let (ni, nk) = (rij.norm(), rkj.norm());
            let ct = (rij.dot(rkj) / (ni * nk)).clamp(-1.0, 1.0);
            let theta = ct.acos();
            let dtheta = theta - a.theta0;
            let (w_ij, dw_ij) = integrity(ni, a.integ_ij);
            let (w_kj, dw_kj) = integrity(nk, a.integ_kj);
            let harm = a.kf * dtheta * dtheta;
            energy += w_ij * w_kj * harm;
            let st = (1.0 - ct * ct).sqrt().max(1e-8);
            let dvdt = 2.0 * a.kf * dtheta * w_ij * w_kj;
            // Angular part: F_i = −dV/dθ · dθ/dr_i with dθ/du = −1/sin θ
            // and du/dr_i = r_kj/(n_i n_k) − u·r_ij/n_i².
            let mut fi = (rkj / (ni * nk) - rij * (ct / (ni * ni))) * (dvdt / st);
            let mut fk = (rij / (ni * nk) - rkj * (ct / (nk * nk))) * (dvdt / st);
            // Radial (integrity-gradient) part: ∂E/∂n_i = dw_ij·w_kj·harm.
            fi -= rij * (dw_ij * w_kj * harm / ni);
            fk -= rkj * (w_ij * dw_kj * harm / nk);
            forces[a.i] += fi;
            forces[a.k] += fk;
            forces[a.j] -= fi + fk;
        }

        // Non-bonded: LJ + DSF Coulomb.
        let rc = self.cutoff;
        let alpha = self.alpha;
        let erfc_rc = erfc(alpha * rc);
        let two_a_pi = 2.0 * alpha / std::f64::consts::PI.sqrt();
        let f_shift = erfc_rc / (rc * rc) + two_a_pi * (-alpha * alpha * rc * rc).exp() / rc;
        for i in 0..n {
            for j in (i + 1)..n {
                if self.excluded.contains(&(i, j)) {
                    continue;
                }
                let d = disp(i, j);
                let r = d.norm();
                if r >= rc {
                    continue;
                }
                // Lennard-Jones (Lorentz–Berthelot combination).
                let sigma = 0.5 * (self.lj_sigma[i] + self.lj_sigma[j]);
                let eps = (self.lj_eps[i] * self.lj_eps[j]).sqrt();
                let sr6 = (sigma / r).powi(6);
                let sr12 = sr6 * sr6;
                energy += 4.0 * eps * (sr12 - sr6);
                let dvdr_lj = 4.0 * eps * (-12.0 * sr12 + 6.0 * sr6) / r;
                // DSF Coulomb.
                let qq = self.charges[i] * self.charges[j];
                let erfc_r = erfc(alpha * r);
                energy += qq * (erfc_r / r - erfc_rc / rc + f_shift * (r - rc));
                let dvdr_c = qq
                    * (-(erfc_r / (r * r) + two_a_pi * (-alpha * alpha * r * r).exp() / r)
                        + f_shift);
                let f = d * ((dvdr_lj + dvdr_c) / r);
                forces[i] += f;
                forces[j] -= f;
            }
        }
        (energy, forces)
    }

    /// Indices of bonds whose current length exceeds `stretch × r₀` — the
    /// degradation (bond-scission) detector.
    pub fn broken_bonds(&self, mol: &Molecule, cell: Option<&Cell>, stretch: f64) -> Vec<usize> {
        self.bonds
            .iter()
            .enumerate()
            .filter(|(_, b)| {
                let r = match cell {
                    Some(c) => c.distance(mol.atoms[b.i].pos, mol.atoms[b.j].pos),
                    None => mol.atoms[b.i].pos.distance(mol.atoms[b.j].pos),
                };
                r > stretch * b.r0
            })
            .map(|(k, _)| k)
            .collect()
    }
}

/// Net charge target per component: Li₂O₂-like fragments stay neutral too;
/// the molecule-level charge is spread over all components equally (our
/// systems are neutral overall).
fn comp_charge_target(_mol: &Molecule, _comp: &[usize]) -> f64 {
    0.0
}

fn connected_components(adjacency: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adjacency.len();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &w in &adjacency[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        out.push(comp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::systems;
    use liair_math::approx_eq;

    #[test]
    fn detects_chemically_sensible_topology() {
        let pc = systems::propylene_carbonate();
        let ff = ForceField::from_molecule(&pc, None);
        // PC: ring (5 bonds) + C=O + 6 C–H + 1 C–C(methyl) = 13 bonds.
        assert_eq!(ff.bonds.len(), 13, "PC bonds: {:?}", ff.bonds.len());
        assert!(!ff.angles.is_empty());
        // The two labile ester C–O bonds got the reduced well depth.
        let weak = ff.bonds.iter().filter(|b| b.de < 0.15).count();
        assert_eq!(weak, 2, "labile carbonate linkages: {weak}");
    }

    #[test]
    fn dme_has_no_weak_bonds() {
        let ff = ForceField::from_molecule(&systems::dme(), None);
        assert!(ff.bonds.iter().all(|b| b.de > 0.1));
    }

    #[test]
    fn charges_neutral_per_molecule() {
        let (boxmol, cell) = systems::electrolyte_box(systems::Solvent::PropyleneCarbonate, 2, 1);
        let ff = ForceField::from_molecule(&boxmol, Some(&cell));
        let total: f64 = ff.charges.iter().sum();
        assert!(total.abs() < 1e-10, "net charge {total}");
    }

    #[test]
    fn forces_match_finite_difference() {
        let mut mol = systems::propylene_carbonate();
        let ff = ForceField::from_molecule(&mol, None);
        // Perturb the geometry so bond/angle terms are off-equilibrium —
        // otherwise their force expressions are untested (zero at r₀/θ₀).
        let mut rng = liair_math::rng::SplitMix64::new(77);
        for a in &mut mol.atoms {
            for axis in 0..3 {
                a.pos[axis] += 0.25 * (rng.next_f64() - 0.5);
            }
        }
        let (_, forces) = ff.energy_forces(&mol, None);
        let h = 1e-6;
        for atom in [0usize, 3, 9] {
            for axis in 0..3 {
                let mut mp = mol.clone();
                mp.atoms[atom].pos[axis] += h;
                let mut mm = mol.clone();
                mm.atoms[atom].pos[axis] -= h;
                let (ep, _) = ff.energy_forces(&mp, None);
                let (em, _) = ff.energy_forces(&mm, None);
                let fd = -(ep - em) / (2.0 * h);
                assert!(
                    approx_eq(forces[atom][axis], fd, 1e-5),
                    "atom {atom} axis {axis}: {} vs {fd}",
                    forces[atom][axis]
                );
            }
        }
    }

    #[test]
    fn forces_match_finite_difference_periodic() {
        let (boxmol, cell) = systems::water_box(2, 3);
        let ff = ForceField::from_molecule(&boxmol, Some(&cell));
        let (_, forces) = ff.energy_forces(&boxmol, Some(&cell));
        let h = 1e-6;
        let atom = 5;
        for axis in 0..3 {
            let mut mp = boxmol.clone();
            mp.atoms[atom].pos[axis] += h;
            let mut mm = boxmol.clone();
            mm.atoms[atom].pos[axis] -= h;
            let (ep, _) = ff.energy_forces(&mp, Some(&cell));
            let (em, _) = ff.energy_forces(&mm, Some(&cell));
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                approx_eq(forces[atom][axis], fd, 1e-4),
                "axis {axis}: {} vs {fd}",
                forces[atom][axis]
            );
        }
    }

    #[test]
    fn equilibrium_geometry_has_small_forces_and_low_energy() {
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let (e0, f0) = ff.energy_forces(&mol, None);
        // Bonds/angles are at their detected equilibria: only non-bonded
        // residuals remain (water has none unexcluded), so E ≈ 0.
        assert!(e0.abs() < 1e-2, "E = {e0}");
        for f in &f0 {
            assert!(f.norm() < 0.05, "force {}", f.norm());
        }
    }

    #[test]
    fn morse_dissociates() {
        // Stretch one OH bond of water far: the bond energy tends to D_e
        // (finite), not +∞ like a harmonic spring would.
        let mol = systems::water();
        let ff = ForceField::from_molecule(&mol, None);
        let mut stretched = mol.clone();
        stretched.atoms[1].pos = stretched.atoms[1].pos * 8.0;
        let (e, _) = ff.energy_forces(&stretched, None);
        let de_oh = ff.bonds[0].de.max(ff.bonds[1].de);
        assert!(e < 3.0 * de_oh, "E = {e} vs D_e = {de_oh}");
        assert!(!ff.broken_bonds(&stretched, None, 1.5).is_empty());
    }

    #[test]
    fn broken_bond_detector_quiet_at_equilibrium() {
        let pc = systems::propylene_carbonate();
        let ff = ForceField::from_molecule(&pc, None);
        assert!(ff.broken_bonds(&pc, None, 1.5).is_empty());
    }
}
