//! Ewald summation for periodic point-charge electrostatics.
//!
//! The exact lattice sum, split as usual:
//!
//! * real space: `½ Σ_{i≠j} q_i q_j erfc(α r_ij)/r_ij` over minimum
//!   images within `r_cut ≤ L/2`;
//! * reciprocal space: `(2π/V) Σ_{k≠0} e^{−k²/4α²}/k² |S(k)|²` with the
//!   structure factor `S(k) = Σ_i q_i e^{i k·r_i}`;
//! * self-energy: `−α/√π Σ_i q_i²`.
//!
//! The default damped-shifted-force model in [`crate::forcefield`] is the
//! fast approximation; Ewald is the exact reference (validated against the
//! NaCl Madelung constant in the tests) and the right tool for strongly
//! ionic configurations like Li⁺-rich electrolytes.

use liair_basis::Cell;
use liair_math::special::erfc;
use liair_math::Vec3;
use std::f64::consts::PI;

/// Ewald parameters.
#[derive(Debug, Clone, Copy)]
pub struct EwaldParams {
    /// Splitting parameter α (Bohr⁻¹).
    pub alpha: f64,
    /// Real-space cutoff (Bohr, ≤ min half-edge).
    pub r_cut: f64,
    /// Reciprocal-space shell limit per axis.
    pub k_max: i64,
}

impl EwaldParams {
    /// A conservative automatic choice for a cubic-ish cell: α = 5/L_min,
    /// r_cut = L_min/2, k_max = 8.
    pub fn auto(cell: &Cell) -> Self {
        let lmin = 2.0 * cell.min_half_edge();
        Self {
            alpha: 5.0 / lmin,
            r_cut: lmin / 2.0,
            k_max: 8,
        }
    }
}

/// Total electrostatic energy and per-particle forces of a neutral
/// point-charge set in a periodic cell.
pub fn ewald_energy_forces(
    cell: &Cell,
    positions: &[Vec3],
    charges: &[f64],
    params: &EwaldParams,
) -> (f64, Vec<Vec3>) {
    assert_eq!(positions.len(), charges.len());
    let n = positions.len();
    let net: f64 = charges.iter().sum();
    assert!(
        net.abs() < 1e-8,
        "Ewald here requires a neutral cell (net charge {net})"
    );
    assert!(
        params.r_cut <= cell.min_half_edge() + 1e-9,
        "r_cut beyond the minimum-image radius"
    );
    let alpha = params.alpha;
    let mut energy = 0.0;
    let mut forces = vec![Vec3::ZERO; n];

    // --- real space ---
    let two_a_pi = 2.0 * alpha / PI.sqrt();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cell.min_image(positions[i], positions[j]);
            let r = d.norm();
            if r >= params.r_cut {
                continue;
            }
            let qq = charges[i] * charges[j];
            energy += qq * erfc(alpha * r) / r;
            let f_mag =
                qq * (erfc(alpha * r) / (r * r) + two_a_pi * (-alpha * alpha * r * r).exp() / r);
            // d points i→j: the pair force pushes like charges apart.
            let f = d * (f_mag / r);
            forces[i] -= f;
            forces[j] += f;
        }
    }

    // --- reciprocal space ---
    let volume = cell.volume();
    let km = params.k_max;
    for nx in -km..=km {
        for ny in -km..=km {
            for nz in -km..=km {
                if nx == 0 && ny == 0 && nz == 0 {
                    continue;
                }
                let k = cell.g_vector((nx, ny, nz));
                let k2 = k.norm_sqr();
                let a_k = (-k2 / (4.0 * alpha * alpha)).exp() / k2;
                // Structure factor.
                let mut s_re = 0.0;
                let mut s_im = 0.0;
                for i in 0..n {
                    let phase = k.dot(positions[i]);
                    s_re += charges[i] * phase.cos();
                    s_im += charges[i] * phase.sin();
                }
                energy += 2.0 * PI / volume * a_k * (s_re * s_re + s_im * s_im);
                for i in 0..n {
                    let phase = k.dot(positions[i]);
                    // Im[conj(S)·e^{ikr}] = S_re sin − S_im cos
                    let im = s_re * phase.sin() - s_im * phase.cos();
                    forces[i] += k * (4.0 * PI / volume * a_k * charges[i] * im);
                }
            }
        }
    }

    // --- self term ---
    let self_e: f64 = charges.iter().map(|q| q * q).sum::<f64>() * alpha / PI.sqrt();
    energy -= self_e;

    (energy, forces)
}

/// The rock-salt conventional cell: 4 cation/anion pairs on an FCC pair
/// of sublattices; `l` is the cubic lattice constant (nearest-neighbour
/// distance `l/2`). Returns `(positions, charges ±q)`.
pub fn rock_salt_cell(l: f64, q: f64) -> (Vec<Vec3>, Vec<f64>, Cell) {
    let h = l / 2.0;
    let cations = [
        Vec3::new(0.0, 0.0, 0.0),
        Vec3::new(h, h, 0.0),
        Vec3::new(h, 0.0, h),
        Vec3::new(0.0, h, h),
    ];
    let anions = [
        Vec3::new(h, 0.0, 0.0),
        Vec3::new(0.0, h, 0.0),
        Vec3::new(0.0, 0.0, h),
        Vec3::new(h, h, h),
    ];
    let mut pos = Vec::new();
    let mut chg = Vec::new();
    for &p in &cations {
        pos.push(p);
        chg.push(q);
    }
    for &p in &anions {
        pos.push(p);
        chg.push(-q);
    }
    (pos, chg, Cell::cubic(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    /// Madelung constant of the rock-salt structure.
    const MADELUNG_NACL: f64 = 1.747_564_594_633;

    #[test]
    fn nacl_madelung_constant() {
        let l = 10.0;
        let (pos, chg, cell) = rock_salt_cell(l, 1.0);
        let params = EwaldParams {
            alpha: 0.9,
            r_cut: l / 2.0,
            k_max: 10,
        };
        let (e, _) = ewald_energy_forces(&cell, &pos, &chg, &params);
        // E per ion pair = −M/(nearest-neighbour distance); 4 pairs/cell.
        let per_pair = e / 4.0;
        let want = -MADELUNG_NACL / (l / 2.0);
        assert!(
            approx_eq(per_pair, want, 1e-6),
            "{per_pair} vs {want} (Madelung {})",
            -per_pair * (l / 2.0)
        );
    }

    #[test]
    fn energy_is_alpha_independent() {
        let (pos, chg, cell) = rock_salt_cell(8.0, 0.7);
        let mut energies = Vec::new();
        // α must be large enough that erfc(α·r_cut) is negligible, and
        // k_max large enough for e^{−k²/4α²} to decay; this window is
        // converged on both sides.
        for alpha in [1.0, 1.2, 1.4] {
            let params = EwaldParams {
                alpha,
                r_cut: 4.0,
                k_max: 16,
            };
            energies.push(ewald_energy_forces(&cell, &pos, &chg, &params).0);
        }
        for w in energies.windows(2) {
            assert!(approx_eq(w[0], w[1], 1e-6), "{:?}", energies);
        }
    }

    #[test]
    fn forces_vanish_at_perfect_lattice() {
        let (pos, chg, cell) = rock_salt_cell(9.0, 1.0);
        let params = EwaldParams::auto(&cell);
        let (_, forces) = ewald_energy_forces(&cell, &pos, &chg, &params);
        for f in &forces {
            assert!(f.norm() < 1e-8, "residual force {}", f.norm());
        }
    }

    #[test]
    fn forces_match_finite_difference_off_lattice() {
        let (mut pos, chg, cell) = rock_salt_cell(9.0, 1.0);
        // Perturb one ion to create nonzero forces.
        pos[0] += Vec3::new(0.3, -0.2, 0.1);
        let params = EwaldParams {
            alpha: 0.8,
            r_cut: 4.5,
            k_max: 10,
        };
        let (_, forces) = ewald_energy_forces(&cell, &pos, &chg, &params);
        let h = 1e-5;
        for axis in 0..3 {
            let mut pp = pos.clone();
            pp[0][axis] += h;
            let mut pm = pos.clone();
            pm[0][axis] -= h;
            let ep = ewald_energy_forces(&cell, &pp, &chg, &params).0;
            let em = ewald_energy_forces(&cell, &pm, &chg, &params).0;
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                approx_eq(forces[0][axis], fd, 1e-5),
                "axis {axis}: {} vs {fd}",
                forces[0][axis]
            );
        }
    }

    #[test]
    fn scales_with_charge_squared() {
        let (pos, chg1, cell) = rock_salt_cell(8.0, 1.0);
        let chg2: Vec<f64> = chg1.iter().map(|q| 2.0 * q).collect();
        let params = EwaldParams::auto(&cell);
        let e1 = ewald_energy_forces(&cell, &pos, &chg1, &params).0;
        let e2 = ewald_energy_forces(&cell, &pos, &chg2, &params).0;
        assert!(approx_eq(e2, 4.0 * e1, 1e-9));
    }

    #[test]
    #[should_panic]
    fn rejects_charged_cell() {
        let cell = Cell::cubic(10.0);
        let _ = ewald_energy_forces(&cell, &[Vec3::ZERO], &[1.0], &EwaldParams::auto(&cell));
    }
}
