//! # liair-md
//!
//! Molecular dynamics for the lithium/air-battery application study:
//!
//! * [`forcefield`] — a reactive-flavoured classical force field (Morse
//!   bonds that *can* dissociate, harmonic angles, Lennard-Jones, damped
//!   shifted-force Coulomb). The carbonate-ester C–O weakening encodes the
//!   known ring-opening degradation channel of cyclic carbonates under
//!   peroxide attack — the synthetic substitute for the paper's 96-rack
//!   PBE0 trajectories (see DESIGN.md);
//! * [`integrator`] — velocity-Verlet with Berendsen thermostatting and
//!   Maxwell–Boltzmann initialization;
//! * [`analysis`] — radial distribution functions, bond-event tracking
//!   (the degradation metric), and energy-drift diagnostics;
//! * [`qmforce`] — finite-difference forces from any quantum energy
//!   function, for small-molecule Born–Oppenheimer trajectories with the
//!   real SCF.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod analysis;
pub mod ewald;
pub mod forcefield;
pub mod integrator;
pub mod qmforce;

pub use forcefield::ForceField;
pub use integrator::{ForceProvider, MdOptions, MdState, Thermostat};
