//! # liair-md
//!
//! Molecular dynamics for the lithium/air-battery application study:
//!
//! * [`forcefield`] — a reactive-flavoured classical force field (Morse
//!   bonds that *can* dissociate, harmonic angles, Lennard-Jones, damped
//!   shifted-force Coulomb). The carbonate-ester C–O weakening encodes the
//!   known ring-opening degradation channel of cyclic carbonates under
//!   peroxide attack — the synthetic substitute for the paper's 96-rack
//!   PBE0 trajectories (see DESIGN.md);
//! * [`integrator`] — velocity-Verlet with Berendsen/Nosé–Hoover
//!   thermostatting and Maxwell–Boltzmann initialization under one
//!   documented seed convention ([`integrator::md_seed`]);
//! * [`mts`] — r-RESPA multiple time stepping over a
//!   [`mts::SplitForceProvider`]: cheap GGA/LDA forces every inner step,
//!   the exact-exchange correction as an outer-step impulse;
//! * [`analysis`] — radial distribution functions, bond-event tracking
//!   (the degradation metric), and energy-drift diagnostics;
//! * [`qmforce`] — quantum force providers for Born–Oppenheimer
//!   trajectories with the real SCF: finite-difference and analytic RHF
//!   forces, the incremental grid-exchange provider, and the
//!   [`qmforce::HfxDeltaForces`] split used by the MTS integrator.

#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in this numeric code

pub mod analysis;
pub mod checkpoint;
pub mod ewald;
pub mod forcefield;
pub mod integrator;
pub mod mts;
pub mod qmforce;

pub use checkpoint::MdCheckpoint;
pub use forcefield::ForceField;
pub use integrator::{md_seed, ForceProvider, MdOptions, MdState, Thermostat};
pub use mts::{CombinedForces, MtsOptions, MtsOuterRecord, MtsStepTimes, SplitForceProvider};
pub use qmforce::{
    FiniteDifferenceForces, HfxDeltaForces, IncrementalGridForces, RhfForces, XcForces,
};
