//! Property test: serialize → deserialize → resume of MTS-MD state is
//! bit-identical to the uninterrupted trajectory, at every inner-step
//! count and thermostat.
//!
//! This is the safety rail under the serve layer's checkpoint/restart:
//! a preempted trajectory that resumes from [`MdCheckpoint`] bytes must
//! land on exactly the numbers the uninterrupted run produces — not
//! approximately, bitwise. The checkpoint captures cached fast and slow
//! forces, so the resumed propagator's first outer step consumes the
//! same floats the uninterrupted one would.

use liair_basis::{systems, Cell, Molecule};
use liair_math::Vec3;
use liair_md::mts::{MtsOptions, SplitForceProvider};
use liair_md::{ForceField, MdCheckpoint, MdOptions, MdState, Thermostat};
use proptest::prelude::*;

/// The deterministic split the MTS equivalence tests use: force field
/// fast part, quartic tether to the initial positions as the slow part.
struct TetherSplit {
    ff: ForceField,
    anchors: Vec<Vec3>,
    k: f64,
}

impl TetherSplit {
    fn new(mol: &Molecule, cell: Option<&Cell>, k: f64) -> Self {
        Self {
            ff: ForceField::from_molecule(mol, cell),
            anchors: mol.atoms.iter().map(|a| a.pos).collect(),
            k,
        }
    }
}

impl SplitForceProvider for TetherSplit {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.ff.energy_forces(mol, cell)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        _cell: Option<&Cell>,
        _fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let mut e = 0.0;
        let forces = mol
            .atoms
            .iter()
            .zip(&self.anchors)
            .map(|(a, &r0)| {
                let d = a.pos - r0;
                let r2 = d.norm_sqr();
                e += 0.25 * self.k * r2 * r2;
                -d * (self.k * r2)
            })
            .collect();
        (e, forces)
    }
}

fn thermostat_for(idx: usize, t_target: f64, tau: f64) -> Thermostat {
    match idx % 3 {
        0 => Thermostat::None,
        1 => Thermostat::Berendsen { t_target, tau },
        _ => Thermostat::NoseHoover { t_target, tau },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn checkpoint_resume_is_bit_identical_at_every_n_inner(
        seed in 0u64..10_000,
        dt in 5.0f64..20.0,
        n_inner_pow in 0u32..4,          // n_inner ∈ {1, 2, 4, 8}
        outer_before in 1usize..4,       // outer steps before the cut
        outer_after in 1usize..4,        // outer steps after resuming
        thermo in 0usize..3,
        t_target in 100.0f64..500.0,
        tau in 100.0f64..600.0,
    ) {
        let n_inner = 1usize << n_inner_pow;
        let (mol, cell) = systems::water_box(2, seed);
        let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
        let opts = MdOptions {
            dt,
            thermostat: thermostat_for(thermo, t_target, tau),
            mts: MtsOptions { n_inner },
        };

        // Uninterrupted reference.
        let mut reference = MdState::new_split(mol.clone(), Some(cell), &split);
        reference.thermalize_seeded(t_target, Some(seed));
        for _ in 0..(outer_before + outer_after) {
            reference.step_mts(&split, &opts);
        }

        // Interrupted twin: run, checkpoint through *bytes*, drop the
        // live state, resume, finish.
        let mut live = MdState::new_split(mol, Some(cell), &split);
        live.thermalize_seeded(t_target, Some(seed));
        for _ in 0..outer_before {
            live.step_mts(&split, &opts);
        }
        let bytes = MdCheckpoint::capture(&live).to_bytes();
        drop(live);
        let mut resumed = MdCheckpoint::from_bytes(&bytes)
            .expect("runner-written bytes round-trip")
            .restore();
        for _ in 0..outer_after {
            resumed.step_mts(&split, &opts);
        }

        prop_assert!(
            MdCheckpoint::bitwise_eq(&resumed, &reference),
            "resume diverged: n_inner={}, thermostat={:?}, split {}+{}",
            n_inner,
            opts.thermostat,
            outer_before,
            outer_after
        );
        prop_assert_eq!(
            resumed.total_energy().to_bits(),
            reference.total_energy().to_bits()
        );
    }
}
