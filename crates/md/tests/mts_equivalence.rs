//! Property test: r-RESPA MTS with `n_inner = 1` is *bit-identical* —
//! positions, velocities, thermostat variables, and conserved quantity —
//! to the plain single-time-step velocity-Verlet path driving the summed
//! ([`CombinedForces`]) provider, for arbitrary geometries, seeds,
//! timesteps, and thermostats. This is the safety rail that lets the MTS
//! path replace the plain one with zero behavioral risk at `n_inner = 1`.

use liair_basis::{systems, Cell, Molecule};
use liair_math::Vec3;
use liair_md::mts::{CombinedForces, MtsOptions, SplitForceProvider};
use liair_md::{ForceField, MdOptions, MdState, Thermostat};
use proptest::prelude::*;

/// Deterministic split: force field fast part, weak quartic tether to the
/// initial positions as the slow correction.
struct TetherSplit {
    ff: ForceField,
    anchors: Vec<Vec3>,
    k: f64,
}

impl TetherSplit {
    fn new(mol: &Molecule, cell: Option<&Cell>, k: f64) -> Self {
        Self {
            ff: ForceField::from_molecule(mol, cell),
            anchors: mol.atoms.iter().map(|a| a.pos).collect(),
            k,
        }
    }
}

impl SplitForceProvider for TetherSplit {
    fn fast_forces(&self, mol: &Molecule, cell: Option<&Cell>) -> (f64, Vec<Vec3>) {
        self.ff.energy_forces(mol, cell)
    }

    fn slow_correction(
        &self,
        mol: &Molecule,
        _cell: Option<&Cell>,
        _fast: (f64, &[Vec3]),
    ) -> (f64, Vec<Vec3>) {
        let mut e = 0.0;
        let forces = mol
            .atoms
            .iter()
            .zip(&self.anchors)
            .map(|(a, &r0)| {
                let d = a.pos - r0;
                let r2 = d.norm_sqr();
                e += 0.25 * self.k * r2 * r2;
                -d * (self.k * r2)
            })
            .collect();
        (e, forces)
    }
}

fn thermostat_for(idx: usize, t_target: f64, tau: f64) -> Thermostat {
    match idx % 3 {
        0 => Thermostat::None,
        1 => Thermostat::Berendsen { t_target, tau },
        _ => Thermostat::NoseHoover { t_target, tau },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mts_n_inner_1_bit_identical_to_plain_velocity_verlet(
        seed in 0u64..10_000,
        dt in 5.0f64..25.0,
        steps in 1usize..8,
        thermo in 0usize..3,
        t_target in 100.0f64..500.0,
        tau in 100.0f64..600.0,
    ) {
        let (mol, cell) = systems::water_box(2, seed);
        let split = TetherSplit::new(&mol, Some(&cell), 1e-4);
        let mut mts = MdState::new_split(mol.clone(), Some(cell), &split);
        let mut plain = MdState::new(mol, Some(cell), &CombinedForces(&split));
        mts.thermalize_seeded(t_target, Some(seed));
        plain.thermalize_seeded(t_target, Some(seed));
        let thermostat = thermostat_for(thermo, t_target, tau);
        let opts = MdOptions {
            dt,
            thermostat,
            mts: MtsOptions { n_inner: 1 },
        };
        for step in 0..steps {
            mts.step_mts(&split, &opts);
            plain.step(&CombinedForces(&split), &opts);
            prop_assert_eq!(mts.step_count, plain.step_count);
            prop_assert!(
                mts.potential.to_bits() == plain.potential.to_bits(),
                "potential diverged at step {} under {:?}", step, thermostat
            );
            prop_assert_eq!(mts.nh_xi.to_bits(), plain.nh_xi.to_bits());
            prop_assert_eq!(mts.nh_eta.to_bits(), plain.nh_eta.to_bits());
            for i in 0..mts.mol.natoms() {
                for axis in 0..3 {
                    prop_assert!(
                        mts.mol.atoms[i].pos[axis].to_bits()
                            == plain.mol.atoms[i].pos[axis].to_bits(),
                        "position diverged: atom {}, axis {}, step {}", i, axis, step
                    );
                    prop_assert!(
                        mts.velocities[i][axis].to_bits()
                            == plain.velocities[i][axis].to_bits(),
                        "velocity diverged: atom {}, axis {}, step {}", i, axis, step
                    );
                }
            }
            // Conserved quantities are functions of bit-identical state,
            // but assert them directly too: they are what the drift
            // comparison of bench-mts is built on.
            prop_assert_eq!(
                mts.total_energy().to_bits(),
                plain.total_energy().to_bits()
            );
            prop_assert_eq!(
                mts.nose_hoover_conserved(t_target, tau).to_bits(),
                plain.nose_hoover_conserved(t_target, tau).to_bits()
            );
        }
    }
}
