//! Programmatic builders for the benchmark systems of the paper.
//!
//! The IPDPS'14 evaluation runs condensed-phase water boxes (scalability
//! study) and lithium/air electrolyte models: propylene carbonate (the
//! standard electrolyte whose degradation by Li₂O₂ motivates the study)
//! plus candidate replacement solvents. Geometries here are idealized
//! (ring/pentagon constructions with textbook bond lengths) — adequate for
//! workload construction, classical MD, and relative-stability single
//! points; they are not experimental microwave structures.

use crate::cell::Cell;
use crate::element::Element;
use crate::molecule::Molecule;
use crate::ANGSTROM;
use liair_math::rng::SplitMix64;
use liair_math::Vec3;

/// Convenience: build a molecule from `(element, x, y, z)` rows in Å.
fn from_angstrom(rows: &[(Element, f64, f64, f64)]) -> Molecule {
    let mut m = Molecule::new();
    for &(e, x, y, z) in rows {
        m.push(e, Vec3::new(x, y, z) * ANGSTROM);
    }
    m
}

/// H₂ at the STO-3G equilibrium separation (1.4 Bohr), the classic SCF
/// validation system (Szabo & Ostlund give E = −1.1167 Ha).
pub fn h2() -> Molecule {
    let mut m = Molecule::new();
    m.push(Element::H, Vec3::ZERO);
    m.push(Element::H, Vec3::new(1.4, 0.0, 0.0));
    m
}

/// LiH at ~1.60 Å — a tiny lithium-containing validation case.
pub fn lih() -> Molecule {
    from_angstrom(&[(Element::Li, 0.0, 0.0, 0.0), (Element::H, 1.60, 0.0, 0.0)])
}

/// A water monomer (r(OH) = 0.9572 Å, ∠HOH = 104.52°).
pub fn water() -> Molecule {
    from_angstrom(&[
        (Element::O, 0.0, 0.0, 0.0),
        (Element::H, 0.9572, 0.0, 0.0),
        (Element::H, -0.239_987, 0.926_627, 0.0),
    ])
}

/// Helium atom (single-center SCF check).
pub fn helium() -> Molecule {
    let mut m = Molecule::new();
    m.push(Element::He, Vec3::ZERO);
    m
}

/// Lithium peroxide Li₂O₂ as the planar rhombus cluster (the discharge
/// product attacking the electrolyte in Li/air cells).
pub fn li2o2() -> Molecule {
    from_angstrom(&[
        (Element::O, 0.0, 0.78, 0.0),
        (Element::O, 0.0, -0.78, 0.0),
        (Element::Li, 1.55, 0.0, 0.0),
        (Element::Li, -1.55, 0.0, 0.0),
    ])
}

/// Propylene carbonate (C₄H₆O₃) — the conventional Li/air electrolyte that
/// the paper's simulations show degrading at the Li₂O₂ surface.
pub fn propylene_carbonate() -> Molecule {
    from_angstrom(&[
        // five-membered ring
        (Element::C, 0.0, 1.2, 0.0),       // carbonyl carbon
        (Element::O, -1.141, 0.371, 0.0),  // ring O
        (Element::C, -0.705, -0.971, 0.0), // CH2
        (Element::C, 0.705, -0.971, 0.0),  // CH (bears methyl)
        (Element::O, 1.141, 0.371, 0.0),   // ring O
        (Element::O, 0.0, 2.38, 0.0),      // carbonyl O
        // CH2 hydrogens
        (Element::H, -1.05, -1.45, 0.90),
        (Element::H, -1.05, -1.45, -0.90),
        // CH hydrogen
        (Element::H, 0.55, -1.35, -0.95),
        // methyl group
        (Element::C, 1.70, -2.05, 0.30),
        (Element::H, 2.70, -1.85, 0.35),
        (Element::H, 1.45, -2.85, 0.95),
        (Element::H, 1.45, -2.45, -0.70),
    ])
}

/// Ethylene carbonate (C₃H₄O₃), the smaller cyclic-carbonate cousin.
pub fn ethylene_carbonate() -> Molecule {
    from_angstrom(&[
        (Element::C, 0.0, 1.2, 0.0),
        (Element::O, -1.141, 0.371, 0.0),
        (Element::C, -0.705, -0.971, 0.0),
        (Element::C, 0.705, -0.971, 0.0),
        (Element::O, 1.141, 0.371, 0.0),
        (Element::O, 0.0, 2.38, 0.0),
        (Element::H, -1.05, -1.45, 0.90),
        (Element::H, -1.05, -1.45, -0.90),
        (Element::H, 1.05, -1.45, 0.90),
        (Element::H, 1.05, -1.45, -0.90),
    ])
}

/// Dimethyl sulfoxide (CH₃)₂SO — a candidate replacement solvent with
/// enhanced stability against peroxide attack.
pub fn dmso() -> Molecule {
    from_angstrom(&[
        (Element::S, 0.0, 0.0, 0.0),
        (Element::O, 0.0, 0.0, 1.50),
        (Element::C, 1.55, 0.0, -0.91),
        (Element::C, -1.55, 0.0, -0.91),
        (Element::H, 2.20, 0.85, -0.60),
        (Element::H, 2.20, -0.85, -0.60),
        (Element::H, 1.35, 0.0, -1.98),
        (Element::H, -2.20, 0.85, -0.60),
        (Element::H, -2.20, -0.85, -0.60),
        (Element::H, -1.35, 0.0, -1.98),
    ])
}

/// 1,2-dimethoxyethane (glyme, C₄H₁₀O₂) — the ether-class candidate
/// solvent.
pub fn dme() -> Molecule {
    from_angstrom(&[
        (Element::C, -3.55, 0.45, 0.0),
        (Element::O, -2.35, -0.30, 0.0),
        (Element::C, -1.15, 0.45, 0.0),
        (Element::C, 0.15, -0.35, 0.0),
        (Element::O, 1.35, 0.40, 0.0),
        (Element::C, 2.55, -0.35, 0.0),
        (Element::H, -4.45, -0.15, 0.0),
        (Element::H, -3.60, 1.10, 0.88),
        (Element::H, -3.60, 1.10, -0.88),
        (Element::H, -1.15, 1.10, 0.88),
        (Element::H, -1.15, 1.10, -0.88),
        (Element::H, 0.15, -1.00, 0.88),
        (Element::H, 0.15, -1.00, -0.88),
        (Element::H, 3.45, 0.25, 0.0),
        (Element::H, 2.60, -1.00, 0.88),
        (Element::H, 2.60, -1.00, -0.88),
    ])
}

/// Rotate a molecule in place about its centroid by the rotation taking the
/// z-axis to `axis` composed with a twist of `angle` — a cheap uniform-ish
/// random orientation when fed random inputs.
fn rotate_about_centroid(mol: &mut Molecule, axis: Vec3, angle: f64) {
    let c = mol.centroid();
    let k = if axis.norm() > 1e-12 {
        axis.normalized()
    } else {
        Vec3::new(0.0, 0.0, 1.0)
    };
    let (s, cth) = angle.sin_cos();
    for a in &mut mol.atoms {
        let v = a.pos - c;
        // Rodrigues rotation formula.
        let rotated = v * cth + k.cross(v) * s + k * (k.dot(v) * (1.0 - cth));
        a.pos = c + rotated;
    }
}

/// A box of `n³` copies of `template` on a simple-cubic lattice with
/// deterministic pseudo-random orientations. Returns the molecule and the
/// periodic cell. `spacing` is the lattice constant in Bohr.
pub fn molecular_lattice(
    template: &Molecule,
    n: usize,
    spacing: f64,
    seed: u64,
) -> (Molecule, Cell) {
    assert!(n > 0 && spacing > 0.0);
    let mut rng = SplitMix64::new(seed);
    let mut all = Molecule::new();
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                let mut copy = template.clone();
                let axis = Vec3::new(
                    rng.next_f64() - 0.5,
                    rng.next_f64() - 0.5,
                    rng.next_f64() - 0.5,
                );
                rotate_about_centroid(&mut copy, axis, rng.next_f64() * std::f64::consts::TAU);
                let target = Vec3::new(
                    (ix as f64 + 0.5) * spacing,
                    (iy as f64 + 0.5) * spacing,
                    (iz as f64 + 0.5) * spacing,
                );
                copy.translate(target - copy.centroid());
                all.merge(&copy);
            }
        }
    }
    (all, Cell::cubic(n as f64 * spacing))
}

/// A water box with `n³` molecules at roughly liquid density
/// (3.107 Å lattice spacing ⇒ 0.997 g/cm³).
pub fn water_box(n: usize, seed: u64) -> (Molecule, Cell) {
    molecular_lattice(&water(), n, 3.107 * ANGSTROM, seed)
}

/// The candidate solvents of the battery study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solvent {
    /// Propylene carbonate — the degrading incumbent.
    PropyleneCarbonate,
    /// Ethylene carbonate.
    EthyleneCarbonate,
    /// Dimethyl sulfoxide.
    Dmso,
    /// 1,2-dimethoxyethane.
    Dme,
}

impl Solvent {
    /// Geometry template for this solvent.
    pub fn molecule(self) -> Molecule {
        match self {
            Solvent::PropyleneCarbonate => propylene_carbonate(),
            Solvent::EthyleneCarbonate => ethylene_carbonate(),
            Solvent::Dmso => dmso(),
            Solvent::Dme => dme(),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Solvent::PropyleneCarbonate => "PC",
            Solvent::EthyleneCarbonate => "EC",
            Solvent::Dmso => "DMSO",
            Solvent::Dme => "DME",
        }
    }

    /// Short lowercase key, stable across releases — used for cache
    /// namespaces, JSON reports, and job labels.
    pub fn key(self) -> &'static str {
        match self {
            Solvent::PropyleneCarbonate => "pc",
            Solvent::EthyleneCarbonate => "ec",
            Solvent::Dmso => "dmso",
            Solvent::Dme => "dme",
        }
    }

    /// All candidates, incumbent first. A slice, not a fixed-size array:
    /// adding a solvent must not break call sites, which should iterate
    /// (or `.to_vec()`) rather than assume a count.
    pub fn all() -> &'static [Solvent] {
        &[
            Solvent::PropyleneCarbonate,
            Solvent::EthyleneCarbonate,
            Solvent::Dmso,
            Solvent::Dme,
        ]
    }
}

/// A solvent·Li₂O₂ contact complex: the peroxide cluster is placed with one
/// lithium `li_o_dist` Bohr beyond the solvent's most exposed oxygen, along
/// the outward direction — the attack geometry of the degradation study.
pub fn li2o2_complex(solvent: Solvent, li_o_dist: f64) -> Molecule {
    let mol = solvent.molecule();
    let centroid = mol.centroid();
    // Most exposed oxygen: farthest O from the centroid.
    let (o_idx, _) = mol
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.element == Element::O)
        .map(|(i, a)| (i, a.pos.distance(centroid)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("solvent has no oxygen");
    let o_pos = mol.atoms[o_idx].pos;
    let u = (o_pos - centroid).normalized();
    // Orient the cluster's Li–Li axis (x) along u, then translate so the
    // near lithium sits at o_pos + u·li_o_dist.
    let mut cluster = li2o2();
    let x_axis = Vec3::new(1.0, 0.0, 0.0);
    let axis = x_axis.cross(u);
    let angle = x_axis.dot(u).clamp(-1.0, 1.0).acos();
    if axis.norm() > 1e-9 {
        rotate_about_centroid(&mut cluster, axis, angle);
    } else if angle > 1.0 {
        // u ≈ −x: flip about z.
        rotate_about_centroid(&mut cluster, Vec3::new(0.0, 0.0, 1.0), std::f64::consts::PI);
    }
    // The lithium pointing toward −u after orientation is the "near" one.
    let near_li = cluster
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.element == Element::Li)
        .min_by(|a, b| a.1.pos.dot(u).partial_cmp(&b.1.pos.dot(u)).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    let shift = o_pos + u * li_o_dist - cluster.atoms[near_li].pos;
    cluster.translate(shift);
    // Resolve steric clashes (possible when the exposed oxygen sits in a
    // pocket, e.g. DME's ether oxygens): push the cluster outward along u
    // until every inter-fragment contact exceeds 2.4 Bohr.
    for _ in 0..40 {
        let clash = mol
            .atoms
            .iter()
            .any(|a| cluster.atoms.iter().any(|b| a.pos.distance(b.pos) < 2.4));
        if !clash {
            break;
        }
        cluster.translate(u * 0.25);
    }
    let mut complex = mol;
    complex.merge(&cluster);
    complex
}

/// An electrolyte box: `n³ − 1` solvent molecules plus one Li₂O₂ cluster at
/// the center lattice site — the model of the electrolyte in contact with
/// the discharge product.
pub fn electrolyte_box(solvent: Solvent, n: usize, seed: u64) -> (Molecule, Cell) {
    assert!(n >= 1);
    let spacing = 5.6 * ANGSTROM; // organic-solvent scale lattice constant
    let (mut all, cell) = molecular_lattice(&solvent.molecule(), n, spacing, seed);
    // Swap the molecule nearest the box center for Li₂O₂.
    let per = solvent.molecule().natoms();
    let center = Vec3::splat(0.5 * n as f64 * spacing);
    let nmol = all.atoms.len() / per;
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for m in 0..nmol {
        let c = all.atoms[m * per..(m + 1) * per]
            .iter()
            .fold(Vec3::ZERO, |acc, a| acc + a.pos)
            / per as f64;
        let d = c.distance(center);
        if d < best_d {
            best_d = d;
            best = m;
        }
    }
    let mut cluster = li2o2();
    cluster.translate(center - cluster.centroid());
    let mut rebuilt = Molecule::new();
    for m in 0..nmol {
        if m == best {
            rebuilt.merge(&cluster);
        } else {
            for a in &all.atoms[m * per..(m + 1) * per] {
                rebuilt.push(a.element, a.pos);
            }
        }
    }
    rebuilt.charge = all.charge;
    all = rebuilt;
    (all, cell)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_are_correct() {
        assert_eq!(water().formula(), "H2O");
        assert_eq!(propylene_carbonate().formula(), "C4H6O3");
        assert_eq!(ethylene_carbonate().formula(), "C3H4O3");
        assert_eq!(dmso().formula(), "C2H6OS");
        assert_eq!(dme().formula(), "C4H10O2");
        assert_eq!(li2o2().formula(), "Li2O2");
    }

    #[test]
    fn closed_shell_electron_counts() {
        for m in [
            water(),
            propylene_carbonate(),
            ethylene_carbonate(),
            dmso(),
            dme(),
            li2o2(),
            h2(),
            lih(),
        ] {
            assert_eq!(m.nelectrons() % 2, 0, "{} not closed shell", m.formula());
        }
    }

    /// Every atom should be bonded to something: nearest-neighbour distance
    /// below 1.3× the sum of covalent radii.
    #[test]
    fn geometries_are_chemically_connected() {
        for m in [
            water(),
            propylene_carbonate(),
            ethylene_carbonate(),
            dmso(),
            dme(),
            li2o2(),
        ] {
            for (i, a) in m.atoms.iter().enumerate() {
                let mut bonded = false;
                for (j, b) in m.atoms.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let cutoff = 1.3 * (a.element.covalent_radius() + b.element.covalent_radius());
                    if a.pos.distance(b.pos) < cutoff {
                        bonded = true;
                        break;
                    }
                }
                assert!(
                    bonded,
                    "{}: atom {i} ({}) is unbonded",
                    m.formula(),
                    a.element
                );
            }
        }
    }

    #[test]
    fn no_atom_overlaps() {
        for m in [propylene_carbonate(), dmso(), dme(), li2o2()] {
            for i in 0..m.natoms() {
                for j in (i + 1)..m.natoms() {
                    let d = m.atoms[i].pos.distance(m.atoms[j].pos);
                    assert!(d > 0.8 * ANGSTROM, "{}: atoms {i},{j} at {d}", m.formula());
                }
            }
        }
    }

    #[test]
    fn water_box_counts_and_cell() {
        let (mol, cell) = water_box(2, 1);
        assert_eq!(mol.natoms(), 8 * 3);
        assert!(cell.volume() > 0.0);
        // All atoms inside (or very near) the cell after wrapping.
        for a in &mol.atoms {
            let w = cell.wrap(a.pos);
            assert!(w.x >= 0.0 && w.x < cell.lengths.x);
        }
    }

    #[test]
    fn water_box_is_deterministic() {
        let (a, _) = water_box(2, 9);
        let (b, _) = water_box(2, 9);
        assert_eq!(a, b);
        let (c, _) = water_box(2, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn electrolyte_box_swaps_center_molecule() {
        let (mol, _) = electrolyte_box(Solvent::PropyleneCarbonate, 2, 3);
        // 7 PC molecules (13 atoms each) + Li2O2 (4 atoms)
        assert_eq!(mol.natoms(), 7 * 13 + 4);
        let n_li = mol
            .atoms
            .iter()
            .filter(|a| a.element == Element::Li)
            .count();
        assert_eq!(n_li, 2);
    }

    #[test]
    fn complex_geometry_is_sane() {
        for &s in Solvent::all() {
            let d = 3.6;
            let complex = li2o2_complex(s, d * crate::ANGSTROM / crate::ANGSTROM);
            let n_solvent = s.molecule().natoms();
            assert_eq!(complex.natoms(), n_solvent + 4, "{}", s.name());
            // No atoms collide.
            for (i, a) in complex.atoms.iter().enumerate() {
                for (j, b) in complex.atoms.iter().enumerate().skip(i + 1) {
                    let r = a.pos.distance(b.pos);
                    assert!(r > 1.0, "{}: atoms {i},{j} collide at {r}", s.name());
                }
            }
            // The nearest cluster-Li to solvent-O contact is close to the
            // requested distance.
            let mut min_li_o = f64::INFINITY;
            for li in complex.atoms[n_solvent..]
                .iter()
                .filter(|a| a.element == Element::Li)
            {
                for o in complex.atoms[..n_solvent]
                    .iter()
                    .filter(|a| a.element == Element::O)
                {
                    min_li_o = min_li_o.min(li.pos.distance(o.pos));
                }
            }
            assert!(min_li_o < 2.5 * d, "{}: closest Li-O {min_li_o}", s.name());
        }
    }

    #[test]
    fn rotation_preserves_internal_distances() {
        let m0 = propylene_carbonate();
        let mut m1 = m0.clone();
        rotate_about_centroid(&mut m1, Vec3::new(1.0, 2.0, 0.5), 1.1);
        for i in 0..m0.natoms() {
            for j in (i + 1)..m0.natoms() {
                let d0 = m0.atoms[i].pos.distance(m0.atoms[j].pos);
                let d1 = m1.atoms[i].pos.distance(m1.atoms[j].pos);
                assert!((d0 - d1).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solvent_enum_roundtrip() {
        assert!(Solvent::all().len() >= 4);
        for &s in Solvent::all() {
            assert!(!s.name().is_empty());
            assert!(!s.key().is_empty());
            assert!(s.key().chars().all(|c| c.is_ascii_lowercase()));
            assert!(s.molecule().natoms() >= 10);
        }
        // Keys are distinct (they namespace caches and reports).
        let keys: Vec<&str> = Solvent::all().iter().map(|s| s.key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }
}
