//! Atoms and molecules.

use crate::element::Element;
use liair_math::Vec3;

/// A point nucleus with an element identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Which element.
    pub element: Element,
    /// Position in Bohr.
    pub pos: Vec3,
}

impl Atom {
    /// Construct from element and position (Bohr).
    pub fn new(element: Element, pos: Vec3) -> Self {
        Self { element, pos }
    }
}

/// A collection of atoms with an overall charge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Molecule {
    /// The atoms.
    pub atoms: Vec<Atom>,
    /// Net charge (electrons removed); 0 for neutral systems.
    pub charge: i32,
}

impl Molecule {
    /// An empty neutral molecule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(element, position)` pairs.
    pub fn from_atoms(atoms: Vec<Atom>) -> Self {
        Self { atoms, charge: 0 }
    }

    /// Add one atom (builder style).
    pub fn push(&mut self, element: Element, pos: Vec3) {
        self.atoms.push(Atom::new(element, pos));
    }

    /// Number of atoms.
    pub fn natoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total electron count (sum of Z minus charge).
    pub fn nelectrons(&self) -> usize {
        let z: i64 = self.atoms.iter().map(|a| a.element.z() as i64).sum();
        let n = z - self.charge as i64;
        assert!(n >= 0, "negative electron count");
        n as usize
    }

    /// Closed-shell occupied-orbital count. Panics on an odd electron
    /// count — the restricted SCF in this workspace handles closed shells
    /// only (the paper's systems are all closed shell).
    pub fn nocc(&self) -> usize {
        let n = self.nelectrons();
        assert!(
            n.is_multiple_of(2),
            "odd electron count ({n}) — RHF requires closed shell"
        );
        n / 2
    }

    /// Nuclear–nuclear repulsion energy `Σ_{A<B} Z_A Z_B / R_AB` (Hartree).
    pub fn nuclear_repulsion(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.atoms.len() {
            for j in (i + 1)..self.atoms.len() {
                let r = self.atoms[i].pos.distance(self.atoms[j].pos);
                assert!(r > 1e-8, "coincident nuclei {i} and {j}");
                e += (self.atoms[i].element.z() * self.atoms[j].element.z()) as f64 / r;
            }
        }
        e
    }

    /// Center of nuclear mass.
    pub fn center_of_mass(&self) -> Vec3 {
        let mut c = Vec3::ZERO;
        let mut m = 0.0;
        for a in &self.atoms {
            let w = a.element.mass_au();
            c += a.pos * w;
            m += w;
        }
        if m > 0.0 {
            c / m
        } else {
            Vec3::ZERO
        }
    }

    /// Geometric centroid.
    pub fn centroid(&self) -> Vec3 {
        if self.atoms.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for a in &self.atoms {
            c += a.pos;
        }
        c / self.atoms.len() as f64
    }

    /// Translate every atom by `shift`.
    pub fn translate(&mut self, shift: Vec3) {
        for a in &mut self.atoms {
            a.pos += shift;
        }
    }

    /// Append another molecule's atoms (charges add).
    pub fn merge(&mut self, other: &Molecule) {
        self.atoms.extend_from_slice(&other.atoms);
        self.charge += other.charge;
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for a in &self.atoms {
            lo = lo.min(a.pos);
            hi = hi.max(a.pos);
        }
        (lo, hi)
    }

    /// Chemical formula string, elements in Hill order (C, H, then
    /// alphabetical).
    pub fn formula(&self) -> String {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for a in &self.atoms {
            *counts.entry(a.element.symbol()).or_insert(0) += 1;
        }
        let mut out = String::new();
        let emit = |sym: &str, n: usize, out: &mut String| {
            out.push_str(sym);
            if n > 1 {
                out.push_str(&n.to_string());
            }
        };
        if let Some(&n) = counts.get("C") {
            emit("C", n, &mut out);
            counts.remove("C");
        }
        if let Some(&n) = counts.get("H") {
            emit("H", n, &mut out);
            counts.remove("H");
        }
        for (sym, n) in counts {
            emit(sym, n, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ANGSTROM;
    use liair_math::approx_eq;

    fn h2() -> Molecule {
        let mut m = Molecule::new();
        m.push(Element::H, Vec3::ZERO);
        m.push(Element::H, Vec3::new(1.4, 0.0, 0.0));
        m
    }

    #[test]
    fn electron_counting() {
        let m = h2();
        assert_eq!(m.nelectrons(), 2);
        assert_eq!(m.nocc(), 1);
        let mut cation = m.clone();
        cation.charge = 2;
        assert_eq!(cation.nelectrons(), 0);
    }

    #[test]
    fn nuclear_repulsion_h2() {
        // Two protons at 1.4 bohr: E_nn = 1/1.4.
        assert!(approx_eq(h2().nuclear_repulsion(), 1.0 / 1.4, 1e-14));
    }

    #[test]
    #[should_panic]
    fn coincident_nuclei_rejected() {
        let mut m = Molecule::new();
        m.push(Element::H, Vec3::ZERO);
        m.push(Element::H, Vec3::ZERO);
        let _ = m.nuclear_repulsion();
    }

    #[test]
    fn centroid_and_translate() {
        let mut m = h2();
        assert!(approx_eq(m.centroid().x, 0.7, 1e-14));
        m.translate(Vec3::new(1.0, 2.0, 3.0));
        assert!(approx_eq(m.centroid().x, 1.7, 1e-14));
        assert!(approx_eq(m.centroid().y, 2.0, 1e-14));
    }

    #[test]
    fn formula_hill_order() {
        let mut m = Molecule::new();
        // Water: H2O
        m.push(Element::O, Vec3::ZERO);
        m.push(Element::H, Vec3::new(1.0, 0.0, 0.0));
        m.push(Element::H, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(m.formula(), "H2O");
        // Propylene carbonate: C4H6O3
        let mut pc = Molecule::new();
        for _ in 0..4 {
            pc.push(Element::C, Vec3::new(pc.natoms() as f64, 0.0, 0.0));
        }
        for _ in 0..6 {
            pc.push(Element::H, Vec3::new(pc.natoms() as f64, 1.0, 0.0));
        }
        for _ in 0..3 {
            pc.push(Element::O, Vec3::new(pc.natoms() as f64, 2.0, 0.0));
        }
        assert_eq!(pc.formula(), "C4H6O3");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = h2();
        let b = h2();
        a.merge(&b);
        assert_eq!(a.natoms(), 4);
        assert_eq!(a.nelectrons(), 4);
    }

    #[test]
    fn bounding_box() {
        let m = h2();
        let (lo, hi) = m.bounding_box();
        assert_eq!(lo, Vec3::ZERO);
        assert!(approx_eq(hi.x, 1.4, 1e-14));
    }

    #[test]
    fn com_weights_by_mass() {
        // O at origin, H far away: COM stays near O.
        let mut m = Molecule::new();
        m.push(Element::O, Vec3::ZERO);
        m.push(Element::H, Vec3::new(10.0 * ANGSTROM, 0.0, 0.0));
        let com = m.center_of_mass();
        assert!(com.x < 1.5 * ANGSTROM);
    }
}
