//! XYZ-format parsing and writing for molecular geometries.
//!
//! The XYZ format: first line = atom count, second = free-form comment,
//! then `Symbol x y z` rows in Å. Multi-frame files concatenate frames.

use crate::element::Element;
use crate::molecule::Molecule;
use crate::ANGSTROM;
use liair_math::Vec3;

/// Parse errors for XYZ input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XyzError {
    /// The header line is missing or not an integer.
    BadHeader(String),
    /// Fewer atom rows than the header promised.
    Truncated { expected: usize, got: usize },
    /// An atom row could not be parsed.
    BadAtomLine(String),
    /// An element symbol outside the supported set.
    UnknownElement(String),
}

impl std::fmt::Display for XyzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XyzError::BadHeader(l) => write!(f, "bad XYZ header line: {l:?}"),
            XyzError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated XYZ frame: expected {expected} atoms, got {got}"
                )
            }
            XyzError::BadAtomLine(l) => write!(f, "bad XYZ atom line: {l:?}"),
            XyzError::UnknownElement(s) => write!(f, "unknown element symbol {s:?}"),
        }
    }
}

impl std::error::Error for XyzError {}

/// Parse one XYZ frame (returns the molecule and its comment line).
pub fn parse_xyz(text: &str) -> Result<(Molecule, String), XyzError> {
    let frames = parse_xyz_trajectory(text)?;
    frames
        .into_iter()
        .next()
        .ok_or_else(|| XyzError::BadHeader("empty input".into()))
}

/// Parse a concatenated multi-frame XYZ trajectory.
pub fn parse_xyz_trajectory(text: &str) -> Result<Vec<(Molecule, String)>, XyzError> {
    let mut lines = text.lines().peekable();
    let mut frames = Vec::new();
    loop {
        // Skip blank separators between frames.
        while matches!(lines.peek(), Some(l) if l.trim().is_empty()) {
            lines.next();
        }
        let Some(header) = lines.next() else { break };
        let natoms: usize = header
            .trim()
            .parse()
            .map_err(|_| XyzError::BadHeader(header.to_string()))?;
        let comment = lines.next().unwrap_or("").to_string();
        let mut mol = Molecule::new();
        for k in 0..natoms {
            let Some(line) = lines.next() else {
                return Err(XyzError::Truncated {
                    expected: natoms,
                    got: k,
                });
            };
            let mut parts = line.split_whitespace();
            let sym = parts
                .next()
                .ok_or_else(|| XyzError::BadAtomLine(line.to_string()))?;
            let element = Element::from_symbol(sym)
                .ok_or_else(|| XyzError::UnknownElement(sym.to_string()))?;
            let coords: Vec<f64> = parts
                .take(3)
                .map(str::parse)
                .collect::<Result<_, _>>()
                .map_err(|_| XyzError::BadAtomLine(line.to_string()))?;
            if coords.len() != 3 {
                return Err(XyzError::BadAtomLine(line.to_string()));
            }
            mol.push(
                element,
                Vec3::new(coords[0], coords[1], coords[2]) * ANGSTROM,
            );
        }
        frames.push((mol, comment));
    }
    Ok(frames)
}

/// Render a molecule as one XYZ frame (Å).
pub fn write_xyz(mol: &Molecule, comment: &str) -> String {
    let mut out = format!("{}\n{}\n", mol.natoms(), comment);
    let to_a = 1.0 / ANGSTROM;
    for a in &mol.atoms {
        out.push_str(&format!(
            "{:<2} {:>14.8} {:>14.8} {:>14.8}\n",
            a.element.symbol(),
            a.pos.x * to_a,
            a.pos.y * to_a,
            a.pos.z * to_a
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems;

    #[test]
    fn roundtrip_preserves_geometry() {
        let mol = systems::propylene_carbonate();
        let text = write_xyz(&mol, "PC");
        let (back, comment) = parse_xyz(&text).unwrap();
        assert_eq!(comment, "PC");
        assert_eq!(back.natoms(), mol.natoms());
        for (a, b) in mol.atoms.iter().zip(&back.atoms) {
            assert_eq!(a.element, b.element);
            assert!(a.pos.distance(b.pos) < 1e-7);
        }
    }

    #[test]
    fn parses_hand_written_frame() {
        let text = "3\nwater in angstrom\nO 0.0 0.0 0.0\nH 0.9572 0 0\nH -0.24 0.9266 0.0\n";
        let (mol, _) = parse_xyz(text).unwrap();
        assert_eq!(mol.formula(), "H2O");
        // Bohr conversion applied.
        assert!((mol.atoms[1].pos.x - 0.9572 * ANGSTROM).abs() < 1e-10);
    }

    #[test]
    fn parses_multi_frame_trajectory() {
        let a = write_xyz(&systems::water(), "frame 1");
        let b = write_xyz(&systems::h2(), "frame 2");
        let frames = parse_xyz_trajectory(&format!("{a}\n{b}")).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0.formula(), "H2O");
        assert_eq!(frames[1].0.formula(), "H2");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_xyz("abc\n"), Err(XyzError::BadHeader(_))));
        assert!(matches!(
            parse_xyz("2\nc\nH 0 0 0\n"),
            Err(XyzError::Truncated {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            parse_xyz("1\nc\nXq 0 0 0\n"),
            Err(XyzError::UnknownElement(_))
        ));
        assert!(matches!(
            parse_xyz("1\nc\nH 0 zero 0\n"),
            Err(XyzError::BadAtomLine(_))
        ));
    }
}
