//! Periodic simulation cells.
//!
//! The condensed-phase exact-exchange code path works in an orthorhombic
//! periodic cell (as the paper's CPMD benchmarks do). The cell provides
//! volume, wrapping, and the minimum-image convention used by both the
//! screening pair lists and the classical MD.

use liair_math::Vec3;

/// An orthorhombic periodic cell with edge lengths in Bohr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Edge lengths `(a, b, c)` in Bohr.
    pub lengths: Vec3,
}

impl Cell {
    /// Cubic cell of edge `a` (Bohr).
    pub fn cubic(a: f64) -> Self {
        assert!(a > 0.0, "cell edge must be positive");
        Self {
            lengths: Vec3::splat(a),
        }
    }

    /// Orthorhombic cell.
    pub fn orthorhombic(a: f64, b: f64, c: f64) -> Self {
        assert!(a > 0.0 && b > 0.0 && c > 0.0, "cell edges must be positive");
        Self {
            lengths: Vec3::new(a, b, c),
        }
    }

    /// Cell volume in Bohr³.
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Wrap a point into the primary cell `[0, L)³`.
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        let mut out = p;
        for k in 0..3 {
            let l = self.lengths[k];
            out[k] = out[k].rem_euclid(l);
        }
        out
    }

    /// Minimum-image displacement from `a` to `b` (each component in
    /// `[-L/2, L/2)`).
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = b - a;
        for k in 0..3 {
            let l = self.lengths[k];
            d[k] -= l * (d[k] / l).round();
        }
        d
    }

    /// Minimum-image distance.
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }

    /// Shortest half-edge — the largest radius for which the minimum-image
    /// convention is unambiguous.
    pub fn min_half_edge(&self) -> f64 {
        0.5 * self.lengths.x.min(self.lengths.y).min(self.lengths.z)
    }

    /// Reciprocal-lattice vector `G = 2π (n_x/a, n_y/b, n_z/c)` for integer
    /// indices (used by the plane-wave Poisson solver).
    pub fn g_vector(&self, n: (i64, i64, i64)) -> Vec3 {
        let tau = 2.0 * std::f64::consts::PI;
        Vec3::new(
            tau * n.0 as f64 / self.lengths.x,
            tau * n.1 as f64 / self.lengths.y,
            tau * n.2 as f64 / self.lengths.z,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    #[test]
    fn volume_cubic() {
        assert!(approx_eq(Cell::cubic(10.0).volume(), 1000.0, 1e-12));
    }

    #[test]
    fn wrap_into_cell() {
        let c = Cell::cubic(10.0);
        let p = c.wrap(Vec3::new(12.5, -0.5, 30.0));
        assert!(approx_eq(p.x, 2.5, 1e-12));
        assert!(approx_eq(p.y, 9.5, 1e-12));
        assert!(approx_eq(p.z, 0.0, 1e-12));
    }

    #[test]
    fn min_image_prefers_near_side() {
        let c = Cell::cubic(10.0);
        let d = c.min_image(Vec3::new(1.0, 0.0, 0.0), Vec3::new(9.0, 0.0, 0.0));
        // Across the boundary: 9 − 1 = 8, but the image at −1 is 2 away.
        assert!(approx_eq(d.x, -2.0, 1e-12));
        assert!(approx_eq(
            c.distance(Vec3::ZERO, Vec3::new(9.9, 0.0, 0.0)),
            0.1,
            1e-10
        ));
    }

    #[test]
    fn min_image_distance_bounded() {
        let c = Cell::orthorhombic(8.0, 10.0, 12.0);
        // No minimum-image distance can exceed half the box diagonal.
        let max_d = 0.5 * (8.0f64.powi(2) + 10.0f64.powi(2) + 12.0f64.powi(2)).sqrt();
        for i in 0..50 {
            let p = Vec3::new(i as f64 * 1.7, i as f64 * 2.3, i as f64 * 0.9);
            let d = c.distance(Vec3::ZERO, p);
            assert!(d <= max_d + 1e-9);
        }
    }

    #[test]
    fn g_vector_scaling() {
        let c = Cell::cubic(2.0 * std::f64::consts::PI);
        let g = c.g_vector((1, 0, -2));
        assert!(approx_eq(g.x, 1.0, 1e-12));
        assert!(approx_eq(g.z, -2.0, 1e-12));
    }

    #[test]
    fn min_half_edge() {
        let c = Cell::orthorhombic(8.0, 10.0, 12.0);
        assert!(approx_eq(c.min_half_edge(), 4.0, 1e-12));
    }
}
