//! Chemical elements used by the lithium/air-battery systems.

/// Elements H–Cl (the study needs H, Li, C, O plus S for DMSO; the rest of
/// the first two rows come along for completeness of the basis tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    H,
    He,
    Li,
    Be,
    B,
    C,
    N,
    O,
    F,
    Na,
    P,
    S,
    Cl,
}

impl Element {
    /// Atomic number Z.
    pub fn z(self) -> u32 {
        match self {
            Element::H => 1,
            Element::He => 2,
            Element::Li => 3,
            Element::Be => 4,
            Element::B => 5,
            Element::C => 6,
            Element::N => 7,
            Element::O => 8,
            Element::F => 9,
            Element::Na => 11,
            Element::P => 15,
            Element::S => 16,
            Element::Cl => 17,
        }
    }

    /// Standard atomic mass in atomic mass units.
    pub fn mass_amu(self) -> f64 {
        match self {
            Element::H => 1.008,
            Element::He => 4.0026,
            Element::Li => 6.94,
            Element::Be => 9.0122,
            Element::B => 10.81,
            Element::C => 12.011,
            Element::N => 14.007,
            Element::O => 15.999,
            Element::F => 18.998,
            Element::Na => 22.990,
            Element::P => 30.974,
            Element::S => 32.06,
            Element::Cl => 35.45,
        }
    }

    /// Mass in electron masses (atomic units); 1 amu = 1822.888486 mₑ.
    pub fn mass_au(self) -> f64 {
        self.mass_amu() * 1822.888486
    }

    /// Covalent radius in Bohr (Cordero 2008 values), used for bond
    /// detection in the trajectory analysis.
    pub fn covalent_radius(self) -> f64 {
        let angstrom = match self {
            Element::H => 0.31,
            Element::He => 0.28,
            Element::Li => 1.28,
            Element::Be => 0.96,
            Element::B => 0.84,
            Element::C => 0.76,
            Element::N => 0.71,
            Element::O => 0.66,
            Element::F => 0.57,
            Element::Na => 1.66,
            Element::P => 1.07,
            Element::S => 1.05,
            Element::Cl => 1.02,
        };
        angstrom * crate::ANGSTROM
    }

    /// Element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::H => "H",
            Element::He => "He",
            Element::Li => "Li",
            Element::Be => "Be",
            Element::B => "B",
            Element::C => "C",
            Element::N => "N",
            Element::O => "O",
            Element::F => "F",
            Element::Na => "Na",
            Element::P => "P",
            Element::S => "S",
            Element::Cl => "Cl",
        }
    }

    /// Inverse of [`Element::z`], used when decoding checkpoints.
    pub fn from_z(z: u32) -> Option<Element> {
        Some(match z {
            1 => Element::H,
            2 => Element::He,
            3 => Element::Li,
            4 => Element::Be,
            5 => Element::B,
            6 => Element::C,
            7 => Element::N,
            8 => Element::O,
            9 => Element::F,
            11 => Element::Na,
            15 => Element::P,
            16 => Element::S,
            17 => Element::Cl,
            _ => return None,
        })
    }

    /// Parse a symbol (case-sensitive standard notation).
    pub fn from_symbol(s: &str) -> Option<Element> {
        Some(match s {
            "H" => Element::H,
            "He" => Element::He,
            "Li" => Element::Li,
            "Be" => Element::Be,
            "B" => Element::B,
            "C" => Element::C,
            "N" => Element::N,
            "O" => Element::O,
            "F" => Element::F,
            "Na" => Element::Na,
            "P" => Element::P,
            "S" => Element::S,
            "Cl" => Element::Cl,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_values() {
        assert_eq!(Element::H.z(), 1);
        assert_eq!(Element::Li.z(), 3);
        assert_eq!(Element::O.z(), 8);
        assert_eq!(Element::S.z(), 16);
    }

    #[test]
    fn symbol_roundtrip() {
        for e in [
            Element::H,
            Element::He,
            Element::Li,
            Element::Be,
            Element::B,
            Element::C,
            Element::N,
            Element::O,
            Element::F,
            Element::Na,
            Element::P,
            Element::S,
            Element::Cl,
        ] {
            assert_eq!(Element::from_symbol(e.symbol()), Some(e));
        }
        assert_eq!(Element::from_symbol("Xx"), None);
    }

    #[test]
    fn masses_are_physical() {
        assert!(Element::H.mass_au() > 1800.0);
        assert!(Element::O.mass_amu() > Element::C.mass_amu());
    }
}
