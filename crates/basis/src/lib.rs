//! # liair-basis
//!
//! Chemical structure layer of the `liair` workspace:
//!
//! * [`element`] — the elements needed by the lithium/air-battery study
//!   (H through Cl) with charges, masses and radii;
//! * [`molecule`] — atoms, molecules, nuclear-repulsion energies;
//! * [`cell`] — periodic simulation cells with minimum-image convention;
//! * [`shell`] — contracted Cartesian Gaussian shells and the STO-3G basis
//!   set (exponents/coefficients embedded — no data files, no network);
//! * [`systems`] — programmatic builders for every benchmark system in the
//!   paper's evaluation: water boxes, propylene/ethylene carbonate, DMSO,
//!   DME, Li₂O₂ clusters and mixed electrolyte boxes.
//!
//! All quantities are in Hartree atomic units (lengths in Bohr); the
//! [`ANGSTROM`] constant converts from Å.

pub mod cell;
pub mod element;
pub mod io;
pub mod molecule;
pub mod shell;
pub mod systems;

pub use cell::Cell;
pub use element::Element;
pub use molecule::{Atom, Molecule};
pub use shell::{Basis, Shell};

/// One Ångström in Bohr.
pub const ANGSTROM: f64 = 1.0 / 0.529_177_210_92;

/// One Hartree in electron-volts.
pub const HARTREE_EV: f64 = 27.211_386_245_988;

/// Boltzmann constant in Hartree per Kelvin.
pub const KB_HARTREE: f64 = 3.166_811_563e-6;

/// One atomic time unit in femtoseconds.
pub const AU_TIME_FS: f64 = 0.024_188_843_265_857;
