//! Contracted Cartesian Gaussian shells and the STO-3G minimal basis.
//!
//! A shell is a set of primitives `Σ_i c_i e^{-α_i r²}` sharing one center
//! and one angular momentum `l`; it expands into `(l+1)(l+2)/2` Cartesian
//! functions `x^{lx} y^{ly} z^{lz} · g(r)`. Each Cartesian component is
//! individually normalized (the convention assumed by the
//! McMurchie–Davidson integrals in `liair-integrals`).
//!
//! The STO-3G exponents/contractions for H–Cl are embedded below — the
//! reproduction environment has no basis-set files or network access.

use crate::element::Element;
use crate::molecule::Molecule;
use liair_math::special::double_factorial;
use liair_math::Vec3;
use std::f64::consts::PI;

/// One primitive Gaussian: exponent and contraction coefficient
/// (coefficient is in the "raw" tabulated convention, i.e. it multiplies a
/// *normalized* primitive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    /// Gaussian exponent α (Bohr⁻²).
    pub exp: f64,
    /// Contraction coefficient.
    pub coef: f64,
}

/// A contracted shell on one atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Shell {
    /// Angular momentum (0 = s, 1 = p, 2 = d, ...).
    pub l: usize,
    /// Index of the atom this shell sits on.
    pub atom: usize,
    /// Center (copied from the atom for fast access).
    pub center: Vec3,
    /// The primitives.
    pub prims: Vec<Primitive>,
}

/// Enumerate Cartesian powers `(lx, ly, lz)` with `lx+ly+lz = l` in the
/// canonical order `(l,0,0), (l-1,1,0), (l-1,0,1), …, (0,0,l)`.
pub fn cart_components(l: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::with_capacity((l + 1) * (l + 2) / 2);
    for lx in (0..=l).rev() {
        for ly in (0..=(l - lx)).rev() {
            out.push((lx, ly, l - lx - ly));
        }
    }
    out
}

/// Number of Cartesian components of a shell of angular momentum `l`.
pub fn ncart(l: usize) -> usize {
    (l + 1) * (l + 2) / 2
}

/// Normalization constant of a primitive Cartesian Gaussian
/// `x^{lx} y^{ly} z^{lz} e^{-α r²}`.
pub fn primitive_norm(alpha: f64, (lx, ly, lz): (usize, usize, usize)) -> f64 {
    let l = lx + ly + lz;
    let dfs = double_factorial(2 * lx as i64 - 1)
        * double_factorial(2 * ly as i64 - 1)
        * double_factorial(2 * lz as i64 - 1);
    (2.0 * alpha / PI).powf(0.75) * (4.0 * alpha).powf(l as f64 / 2.0) / dfs.sqrt()
}

impl Shell {
    /// Construct a shell; panics on an empty primitive list.
    pub fn new(l: usize, atom: usize, center: Vec3, prims: Vec<Primitive>) -> Self {
        assert!(!prims.is_empty(), "shell needs at least one primitive");
        Self {
            l,
            atom,
            center,
            prims,
        }
    }

    /// Fully-normalized contraction coefficients for the Cartesian
    /// component `(lx, ly, lz)`: each returned value already includes the
    /// primitive normalization *and* the overall rescaling that makes the
    /// contracted function unit-normalized.
    pub fn normalized_coefs(&self, powers: (usize, usize, usize)) -> Vec<f64> {
        let (lx, ly, lz) = powers;
        debug_assert_eq!(lx + ly + lz, self.l);
        let with_norm: Vec<f64> = self
            .prims
            .iter()
            .map(|p| p.coef * primitive_norm(p.exp, powers))
            .collect();
        // Self-overlap of the contracted function:
        // S = Σ_ij c_i c_j (π/γ)^{3/2} Π_a (2l_a−1)!! / (2γ)^{l_a},  γ = α_i+α_j.
        let dfs = double_factorial(2 * lx as i64 - 1)
            * double_factorial(2 * ly as i64 - 1)
            * double_factorial(2 * lz as i64 - 1);
        let mut s = 0.0;
        for (i, &ci) in with_norm.iter().enumerate() {
            for (j, &cj) in with_norm.iter().enumerate() {
                let gamma = self.prims[i].exp + self.prims[j].exp;
                s += ci * cj * (PI / gamma).powf(1.5) * dfs / (2.0 * gamma).powi(self.l as i32);
            }
        }
        let rescale = 1.0 / s.sqrt();
        with_norm.into_iter().map(|c| c * rescale).collect()
    }
}

/// Identifies one atomic orbital (a single Cartesian basis function).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AoInfo {
    /// Owning shell index.
    pub shell: usize,
    /// Cartesian powers.
    pub powers: (usize, usize, usize),
}

/// A basis set over a molecule: shells plus the derived AO bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// All shells.
    pub shells: Vec<Shell>,
    /// AO offset of each shell (parallel to `shells`).
    pub shell_offsets: Vec<usize>,
    /// Flattened AO descriptors.
    pub aos: Vec<AoInfo>,
}

impl Basis {
    /// Assemble from a shell list.
    pub fn from_shells(shells: Vec<Shell>) -> Self {
        let mut shell_offsets = Vec::with_capacity(shells.len());
        let mut aos = Vec::new();
        for (si, sh) in shells.iter().enumerate() {
            shell_offsets.push(aos.len());
            for powers in cart_components(sh.l) {
                aos.push(AoInfo { shell: si, powers });
            }
        }
        Self {
            shells,
            shell_offsets,
            aos,
        }
    }

    /// Total number of atomic orbitals.
    pub fn nao(&self) -> usize {
        self.aos.len()
    }

    /// Build the STO-3G basis for a molecule. Panics on elements outside
    /// the embedded table (H–Cl as listed in [`Element`]).
    pub fn sto3g(mol: &Molecule) -> Basis {
        let mut shells = Vec::new();
        for (ai, atom) in mol.atoms.iter().enumerate() {
            for (l, exps, coefs) in sto3g_shells(atom.element) {
                let prims = exps
                    .iter()
                    .zip(coefs.iter())
                    .map(|(&exp, &coef)| Primitive { exp, coef })
                    .collect();
                shells.push(Shell::new(l, ai, atom.pos, prims));
            }
        }
        Basis::from_shells(shells)
    }

    /// Update shell centers after the molecule moved (MD steps); shell→atom
    /// assignment is unchanged.
    pub fn update_centers(&mut self, mol: &Molecule) {
        for sh in &mut self.shells {
            sh.center = mol.atoms[sh.atom].pos;
        }
    }

    /// Build the 6-31G split-valence basis. Supported elements: H, C, N, O
    /// (the organic-electrolyte set); panics for others.
    pub fn b631g(mol: &Molecule) -> Basis {
        let mut shells = Vec::new();
        for (ai, atom) in mol.atoms.iter().enumerate() {
            for (l, prims) in b631g_shells(atom.element) {
                shells.push(Shell::new(l, ai, atom.pos, prims));
            }
        }
        Basis::from_shells(shells)
    }
}

/// 6-31G shell data: `(angular momentum, primitives)` per shell.
#[allow(clippy::inconsistent_digit_grouping)] // grouped to mirror the published tables
fn b631g_shells(e: Element) -> Vec<(usize, Vec<Primitive>)> {
    let prim = |exp: f64, coef: f64| Primitive { exp, coef };
    match e {
        Element::H => vec![
            (
                0,
                vec![
                    prim(18.731_136_96, 0.033_494_604_34),
                    prim(2.825_394_365, 0.234_726_953_5),
                    prim(0.640_121_692_3, 0.813_757_326_1),
                ],
            ),
            (0, vec![prim(0.161_277_758_8, 1.0)]),
        ],
        Element::C => {
            let core = vec![
                prim(3047.524_880, 0.001_834_737_132),
                prim(457.369_518_0, 0.014_037_322_81),
                prim(103.948_685_0, 0.068_842_622_26),
                prim(29.210_155_30, 0.232_184_443_2),
                prim(9.286_662_960, 0.467_941_348_4),
                prim(3.163_926_960, 0.362_311_985_3),
            ];
            let inner = [7.868_272_350, 1.881_288_540, 0.544_249_258_0];
            let s2 = [-0.119_332_419_8, -0.160_854_151_7, 1.143_456_438];
            let p2 = [0.068_999_066_59, 0.316_423_961_0, 0.744_308_290_9];
            split_valence(core, &inner, &s2, &p2, 0.168_714_478_2)
        }
        Element::N => {
            let core = vec![
                prim(4173.511_460, 0.001_834_772_160),
                prim(627.457_911_0, 0.013_994_627_00),
                prim(142.902_093_0, 0.068_586_551_81),
                prim(40.234_329_30, 0.232_240_873_0),
                prim(12.820_212_90, 0.469_069_948_1),
                prim(4.390_437_010, 0.360_455_199_1),
            ];
            let inner = [11.626_361_86, 2.716_279_807, 0.772_218_396_6];
            let s2 = [-0.114_961_181_7, -0.169_117_478_6, 1.145_851_947];
            let p2 = [0.067_579_743_88, 0.323_907_295_9, 0.740_895_139_8];
            split_valence(core, &inner, &s2, &p2, 0.212_031_497_5)
        }
        Element::O => {
            let core = vec![
                prim(5484.671_660, 0.001_831_074_430),
                prim(825.234_946_0, 0.013_950_172_20),
                prim(188.046_958_0, 0.068_445_078_10),
                prim(52.964_500_00, 0.232_714_336_0),
                prim(16.897_570_40, 0.470_192_898_0),
                prim(5.799_635_340, 0.358_520_853_0),
            ];
            let inner = [15.539_616_25, 3.599_933_586, 1.013_761_750];
            let s2 = [-0.110_777_549_5, -0.148_026_262_7, 1.130_767_015];
            let p2 = [0.070_874_268_23, 0.339_752_839_1, 0.727_158_577_3];
            split_valence(core, &inner, &s2, &p2, 0.270_005_822_6)
        }
        other => panic!("6-31G data embedded only for H/C/N/O (got {other})"),
    }
}

/// Assemble the standard 6-31G pattern: 6-prim core s, 3-prim inner
/// valence sp, and a single-prim outer valence sp.
fn split_valence(
    core: Vec<Primitive>,
    inner_exps: &[f64; 3],
    s2: &[f64; 3],
    p2: &[f64; 3],
    outer: f64,
) -> Vec<(usize, Vec<Primitive>)> {
    let mk = |coefs: &[f64; 3]| {
        inner_exps
            .iter()
            .zip(coefs)
            .map(|(&exp, &coef)| Primitive { exp, coef })
            .collect::<Vec<_>>()
    };
    vec![
        (0, core),
        (0, mk(s2)),
        (1, mk(p2)),
        (
            0,
            vec![Primitive {
                exp: outer,
                coef: 1.0,
            }],
        ),
        (
            1,
            vec![Primitive {
                exp: outer,
                coef: 1.0,
            }],
        ),
    ]
}

// STO-3G universal contraction coefficients per shell slot.
const S1: [f64; 3] = [0.1543289673, 0.5353281423, 0.4446345422];
const S2: [f64; 3] = [-0.09996722919, 0.3995128261, 0.7001154689];
const P2: [f64; 3] = [0.1559162750, 0.6076837186, 0.3919573931];
const S3: [f64; 3] = [-0.2196203690, 0.2255954336, 0.9003984260];
const P3: [f64; 3] = [0.01058760429, 0.5951670053, 0.4620010120];

/// STO-3G shell descriptions for one element:
/// `(angular momentum, exponents, contraction coefficients)`.
fn sto3g_shells(e: Element) -> Vec<(usize, [f64; 3], [f64; 3])> {
    // Exponent sets per principal shell.
    let (e1, e2, e3): ([f64; 3], Option<[f64; 3]>, Option<[f64; 3]>) = match e {
        Element::H => ([3.425250914, 0.6239137298, 0.1688554040], None, None),
        Element::He => ([6.362421394, 1.158922999, 0.3136497915], None, None),
        Element::Li => (
            [16.11957475, 2.936200663, 0.7946504870],
            Some([0.6362897469, 0.1478600533, 0.0480886784]),
            None,
        ),
        Element::Be => (
            [30.16787069, 5.495115306, 1.487192653],
            Some([1.314833110, 0.3055389383, 0.0993707456]),
            None,
        ),
        Element::B => (
            [48.79111318, 8.887362172, 2.405267040],
            Some([2.236956142, 0.5198204999, 0.1690617600]),
            None,
        ),
        Element::C => (
            [71.61683735, 13.04509632, 3.530512160],
            Some([2.941249355, 0.6834830964, 0.2222899159]),
            None,
        ),
        Element::N => (
            [99.10616896, 18.05231239, 4.885660238],
            Some([3.780455879, 0.8784966449, 0.2857143744]),
            None,
        ),
        Element::O => (
            [130.7093214, 23.80886605, 6.443608313],
            Some([5.033151319, 1.169596125, 0.3803889600]),
            None,
        ),
        Element::F => (
            [166.6791340, 30.36081233, 8.216820672],
            Some([6.464803249, 1.502281245, 0.4885884864]),
            None,
        ),
        Element::Na => (
            [250.7724300, 45.67851117, 12.36238776],
            Some([12.04019274, 2.797881859, 0.9099580170]),
            Some([1.478740622, 0.4125648801, 0.1614750979]),
        ),
        Element::P => (
            [468.3656378, 85.31338559, 23.09131340],
            Some([28.03263958, 6.514182577, 1.697905188]),
            Some([1.743103231, 0.4863213771, 0.1903428909]),
        ),
        Element::S => (
            [533.1257359, 97.10951830, 26.28162542],
            Some([33.32975173, 7.745117521, 2.018815846]),
            Some([2.029194274, 0.5661400518, 0.2215833792]),
        ),
        Element::Cl => (
            [601.3456136, 109.5358542, 29.64467686],
            Some([38.96041889, 9.053563477, 2.359972309]),
            Some([2.129386495, 0.5940934274, 0.2325241410]),
        ),
    };
    let mut shells = vec![(0, e1, S1)];
    if let Some(exp2) = e2 {
        shells.push((0, exp2, S2));
        shells.push((1, exp2, P2));
    }
    if let Some(exp3) = e3 {
        shells.push((0, exp3, S3));
        shells.push((1, exp3, P3));
    }
    shells
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_math::approx_eq;

    #[test]
    fn cartesian_component_counts() {
        assert_eq!(cart_components(0), vec![(0, 0, 0)]);
        assert_eq!(cart_components(1), vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)]);
        assert_eq!(cart_components(2).len(), 6);
        assert_eq!(ncart(3), 10);
        assert_eq!(cart_components(2)[0], (2, 0, 0));
    }

    #[test]
    fn primitive_norm_s_gaussian() {
        // ∫ N² e^{-2αr²} = N² (π/2α)^{3/2} = 1
        let alpha = 0.7;
        let n = primitive_norm(alpha, (0, 0, 0));
        let self_overlap = n * n * (PI / (2.0 * alpha)).powf(1.5);
        assert!(approx_eq(self_overlap, 1.0, 1e-13));
    }

    #[test]
    fn primitive_norm_p_gaussian() {
        // ∫ N² x² e^{-2αr²} = N² (1/(4α)) (π/2α)^{3/2} = 1
        let alpha = 1.3;
        let n = primitive_norm(alpha, (1, 0, 0));
        let self_overlap = n * n / (4.0 * alpha) * (PI / (2.0 * alpha)).powf(1.5);
        assert!(approx_eq(self_overlap, 1.0, 1e-13));
    }

    #[test]
    fn contracted_function_is_unit_normalized() {
        // Numerically integrate the contracted STO-3G H 1s on a radial grid.
        let mol = {
            let mut m = Molecule::new();
            m.push(Element::H, Vec3::ZERO);
            m
        };
        let basis = Basis::sto3g(&mol);
        assert_eq!(basis.nao(), 1);
        let sh = &basis.shells[0];
        let coefs = sh.normalized_coefs((0, 0, 0));
        // ⟨φ|φ⟩ = Σ_ij c_i c_j (π/(α_i+α_j))^{3/2}
        let mut s = 0.0;
        for (i, &ci) in coefs.iter().enumerate() {
            for (j, &cj) in coefs.iter().enumerate() {
                let g = sh.prims[i].exp + sh.prims[j].exp;
                s += ci * cj * (PI / g).powf(1.5);
            }
        }
        assert!(approx_eq(s, 1.0, 1e-12), "self overlap {s}");
    }

    #[test]
    fn sto3g_shell_counts() {
        let mut m = Molecule::new();
        m.push(Element::O, Vec3::ZERO);
        m.push(Element::H, Vec3::new(1.8, 0.0, 0.0));
        m.push(Element::H, Vec3::new(-0.5, 1.7, 0.0));
        let b = Basis::sto3g(&m);
        // O: 1s + 2s + 2p = 2 s-shells + 1 p-shell = 5 AOs; H: 1 each.
        assert_eq!(b.nao(), 7);
        assert_eq!(b.shells.len(), 5);
        // Li has 2s2p too.
        let mut li = Molecule::new();
        li.push(Element::Li, Vec3::ZERO);
        assert_eq!(Basis::sto3g(&li).nao(), 5);
        // S is a third-row atom: 1s 2s 2p 3s 3p = 9 AOs.
        let mut s = Molecule::new();
        s.push(Element::S, Vec3::ZERO);
        assert_eq!(Basis::sto3g(&s).nao(), 9);
    }

    #[test]
    fn ao_offsets_consistent() {
        let mut m = Molecule::new();
        m.push(Element::C, Vec3::ZERO);
        let b = Basis::sto3g(&m);
        // shells: 1s (1 AO), 2s (1), 2p (3) → offsets 0,1,2
        assert_eq!(b.shell_offsets, vec![0, 1, 2]);
        assert_eq!(b.aos[2].powers, (1, 0, 0));
        assert_eq!(b.aos[4].powers, (0, 0, 1));
    }

    #[test]
    fn b631g_shell_counts() {
        let mut m = Molecule::new();
        m.push(Element::H, Vec3::ZERO);
        // H: 2 s shells → 2 AOs.
        assert_eq!(Basis::b631g(&m).nao(), 2);
        let mut o = Molecule::new();
        o.push(Element::O, Vec3::ZERO);
        // O: 1s + 2×(s) + 2×(p) = 3 s-AOs + 6 p-AOs = 9.
        assert_eq!(Basis::b631g(&o).nao(), 9);
    }

    #[test]
    fn b631g_is_normalized() {
        let mut m = Molecule::new();
        m.push(Element::O, Vec3::ZERO);
        let b = Basis::b631g(&m);
        for sh in &b.shells {
            for powers in cart_components(sh.l) {
                let coefs = sh.normalized_coefs(powers);
                assert!(coefs.iter().all(|c| c.is_finite()));
            }
        }
    }

    #[test]
    #[should_panic]
    fn b631g_rejects_unsupported_elements() {
        let mut m = Molecule::new();
        m.push(Element::S, Vec3::ZERO);
        let _ = Basis::b631g(&m);
    }

    #[test]
    fn update_centers_follows_molecule() {
        let mut m = Molecule::new();
        m.push(Element::H, Vec3::ZERO);
        let mut b = Basis::sto3g(&m);
        m.atoms[0].pos = Vec3::new(1.0, 2.0, 3.0);
        b.update_centers(&m);
        assert_eq!(b.shells[0].center, Vec3::new(1.0, 2.0, 3.0));
    }
}
