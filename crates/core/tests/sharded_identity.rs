//! Sharded-vs-global engine identity: a pair list built by the
//! domain-sharded source (per-domain halo import + local windowed build +
//! canonical merge — [`build_pair_list_sharded`]) and one built by the
//! real SPMD halo-exchange protocol ([`sharded_pair_list_spmd`]) must
//! drive the [`ExchangeEngine`] to **bit-identical** energies and K
//! matrices against the global O(N²) list, on every execution backend and
//! kernel choice — and under injected message faults. The sharded source
//! reassembles the canonical (i, j) pair order exactly, so the engine
//! cannot tell the lists apart; these tests pin that guarantee at the
//! energy level, not just the list level.

use liair_basis::{Basis, Cell};
use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{
    build_pair_list_sharded, sharded_pair_list_spmd, BalanceStrategy, CollectiveMode,
    ExchangeEngine, ExecBackend, FaultPlan, KernelChoice, PairPath,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::simd::available_levels;
use liair_math::Vec3;
use liair_scf::ScfOptions;

/// A finite screening threshold loose enough to keep most pairs: the
/// sharded builders need `0 < ε ≤ 1`, and the point here is engine
/// identity, not survivor counts.
const EPS: f64 = 1e-9;

/// Smooth synthetic orbitals in a periodic cell, plus the three pair
/// lists under test (global reference, sharded, SPMD halo-exchange).
#[allow(clippy::type_complexity)]
fn setup(
    norb: usize,
    n: usize,
    dims: [usize; 3],
) -> (
    RealGrid,
    PoissonSolver,
    Vec<Vec<f64>>,
    PairList,
    PairList,
    PairList,
) {
    let l = 14.0;
    let grid = RealGrid::cubic(Cell::cubic(l), n);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(424242);
    let centers: Vec<Vec3> = (0..norb)
        .map(|_| {
            Vec3::new(
                rng.range_f64(2.0, 12.0),
                rng.range_f64(2.0, 12.0),
                rng.range_f64(2.0, 12.0),
            )
        })
        .collect();
    let fields: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            let alpha: f64 = 1.1;
            let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    norm * (-alpha * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let global = build_pair_list(&infos, EPS, Some(&grid.cell));
    let sharded = build_pair_list_sharded(&infos, EPS, &grid.cell, dims).unwrap();
    let spmd = sharded_pair_list_spmd(&infos, EPS, &grid.cell, dims, CollectiveMode::Flat).unwrap();
    (grid, solver, fields, global, sharded, spmd)
}

fn assert_same_list(a: &PairList, b: &PairList, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pair count");
    for (pa, pb) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((pa.i, pa.j), (pb.i, pb.j), "{what}: order");
        assert_eq!(pa.weight.to_bits(), pb.weight.to_bits(), "{what}: weight");
        assert_eq!(pa.bound.to_bits(), pb.bound.to_bits(), "{what}: bound");
    }
}

#[test]
fn sharded_energy_bit_identical_across_backends() {
    let (grid, solver, fields, global, sharded, spmd) = setup(4, 20, [2, 2, 2]);
    assert_same_list(&global, &sharded, "sharded");
    assert_same_list(&global, &spmd, "spmd");
    for simd in available_levels() {
        for path in [PairPath::Single, PairPath::Batched] {
            let choice = KernelChoice { path, simd };
            let base = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(choice)
                .no_faults();
            let reference = base
                .backend(ExecBackend::Serial)
                .build()
                .unwrap()
                .energy(&fields, &global);
            assert!(reference.energy < 0.0);
            for (list, what) in [(&sharded, "sharded"), (&spmd, "spmd")] {
                let serial = base
                    .backend(ExecBackend::Serial)
                    .build()
                    .unwrap()
                    .energy(&fields, list);
                assert_eq!(
                    reference.energy.to_bits(),
                    serial.energy.to_bits(),
                    "{what} serial differs for {choice:?}"
                );
                let rayon = base
                    .backend(ExecBackend::Rayon)
                    .build()
                    .unwrap()
                    .energy(&fields, list);
                assert_eq!(
                    reference.energy.to_bits(),
                    rayon.energy.to_bits(),
                    "{what} rayon differs for {choice:?}"
                );
                for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
                    let comm = base
                        .backend(ExecBackend::Comm {
                            nranks: 3,
                            strategy: BalanceStrategy::GreedyLpt,
                        })
                        .collectives(mode)
                        .build()
                        .unwrap()
                        .energy(&fields, list);
                    assert_eq!(
                        reference.energy.to_bits(),
                        comm.energy.to_bits(),
                        "{what} comm({mode:?}) differs for {choice:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_energy_bit_identical_under_injected_faults() {
    // The sharded list must survive the fault-tolerant distributed path
    // too: retransmission and chunk re-issue replay identical kernels on
    // an identical task list, so not one bit may move.
    let (grid, solver, fields, global, sharded, _spmd) = setup(4, 16, [3, 2, 1]);
    assert_same_list(&global, &sharded, "sharded");
    let choice = KernelChoice {
        path: PairPath::Single,
        simd: available_levels()[0],
    };
    let clean = ExchangeEngine::builder(&grid, &solver)
        .kernel_choice(choice)
        .no_faults()
        .backend(ExecBackend::Serial)
        .build()
        .unwrap()
        .energy(&fields, &global);
    for seed in [7u64, 42] {
        for plan in [FaultPlan::messages_only(seed), FaultPlan::with_stalls(seed)] {
            let faulty = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(choice)
                .backend(ExecBackend::Comm {
                    nranks: 4,
                    strategy: BalanceStrategy::GreedyLpt,
                })
                .fault_plan(plan)
                .build()
                .unwrap()
                .energy(&fields, &sharded);
            assert_eq!(
                clean.energy.to_bits(),
                faulty.energy.to_bits(),
                "seed {seed}: sharded list drifted under faults"
            );
        }
    }
}

#[test]
fn sharded_list_drives_k_operator_identically() {
    // K build sourcing goes through the engine's own cross-pair screening,
    // but the occupied-side orbital lists feeding it are the sharded
    // residents; pin the simplest end-to-end surface — an H2 K operator is
    // identical whether the engine's helpers saw global or sharded lists.
    let edge = 14.0;
    let mut mol = liair_basis::systems::h2();
    mol.translate(Vec3::splat(edge / 2.0) - mol.centroid());
    let basis = Basis::sto3g(&mol);
    let scf = liair_scf::rhf(&mol, &basis, &ScfOptions::default());
    let grid = RealGrid::cubic(Cell::cubic(edge), 24);
    let solver = PoissonSolver::isolated(grid);
    let reference = ExchangeEngine::builder(&grid, &solver)
        .no_faults()
        .backend(ExecBackend::Serial)
        .build()
        .unwrap()
        .k_operator(&basis, &scf.c, scf.nocc, 0.0);
    for nranks in [1, 3] {
        let comm = ExchangeEngine::builder(&grid, &solver)
            .no_faults()
            .backend(ExecBackend::Comm {
                nranks,
                strategy: BalanceStrategy::RoundRobin,
            })
            .build()
            .unwrap()
            .k_operator(&basis, &scf.c, scf.nocc, 0.0);
        assert_eq!(
            comm.k.sub(&reference.k).fro_norm(),
            0.0,
            "K differs at nranks={nranks}"
        );
    }
}
