//! Cross-driver equivalence suite for the staged [`ExchangeEngine`]: every
//! execution backend (serial, rayon, message-passing `Comm`) must produce
//! **bit-identical** energies and K matrices for every runnable SIMD level
//! and both pair-kernel paths, and the incremental driver with
//! `eps_inc = 0` must reproduce the from-scratch build exactly.
//!
//! The kernel choice is pinned through [`ExchangeEngine::with_kernel_choice`]
//! / [`IncrementalExchange::force_kernel_choice`] rather than `LIAIR_SIMD`
//! (the env override is latched once per process), so one test binary can
//! sweep all levels. CI additionally runs the whole binary under a
//! `LIAIR_SIMD` matrix to exercise the env-driven defaults.

use liair_basis::{systems, Basis, Cell};
use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{
    BalanceStrategy, ExchangeEngine, ExecBackend, IncrementalExchange, KernelChoice, PairPath,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::simd::available_levels;
use liair_math::Vec3;

/// Smooth synthetic "orbitals": normalized Gaussians at random centers.
fn synthetic_setup(
    norb: usize,
    n: usize,
) -> (
    RealGrid,
    PoissonSolver,
    Vec<Vec<f64>>,
    Vec<OrbitalInfo>,
    PairList,
) {
    let l = 14.0;
    let grid = RealGrid::cubic(Cell::cubic(l), n);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(171);
    let centers: Vec<Vec3> = (0..norb)
        .map(|_| {
            Vec3::new(
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
            )
        })
        .collect();
    let fields: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            let alpha: f64 = 1.1;
            let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    norm * (-alpha * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
    (grid, solver, fields, infos, pairs)
}

/// Every (SIMD level, pair path) combination runnable on this machine.
fn kernel_choices() -> Vec<KernelChoice> {
    let mut out = Vec::new();
    for simd in available_levels() {
        for path in [PairPath::Single, PairPath::Batched] {
            out.push(KernelChoice { path, simd });
        }
    }
    out
}

#[test]
fn energy_bit_identical_across_backends() {
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 20);
    for choice in kernel_choices() {
        let base = ExchangeEngine::new(&grid, &solver).with_kernel_choice(choice);
        let serial = base
            .with_backend(ExecBackend::Serial)
            .energy(&fields, &pairs);
        assert!(serial.energy < 0.0);
        assert!(serial.profile.is_populated());

        let rayon = base
            .with_backend(ExecBackend::Rayon)
            .energy(&fields, &pairs);
        assert_eq!(
            serial.energy.to_bits(),
            rayon.energy.to_bits(),
            "serial vs rayon differ for {choice:?}: {} vs {}",
            serial.energy,
            rayon.energy
        );

        for nranks in [1, 3, 4] {
            for strategy in [
                BalanceStrategy::RoundRobin,
                BalanceStrategy::Block,
                BalanceStrategy::GreedyLpt,
            ] {
                let comm = base
                    .with_backend(ExecBackend::Comm { nranks, strategy })
                    .energy(&fields, &pairs);
                assert_eq!(
                    serial.energy.to_bits(),
                    comm.energy.to_bits(),
                    "serial vs comm(nranks={nranks}, {strategy:?}) differ for {choice:?}: \
                     {} vs {}",
                    serial.energy,
                    comm.energy
                );
            }
        }
    }
}

#[test]
fn incremental_eps0_energy_bit_identical_per_kernel() {
    let (grid, solver, fields, infos, pairs) = synthetic_setup(4, 20);
    for choice in kernel_choices() {
        // The incremental driver executes dirty work on the default Rayon
        // backend, so that is the reference.
        let reference = ExchangeEngine::new(&grid, &solver)
            .with_kernel_choice(choice)
            .energy(&fields, &pairs);

        let mut inc = IncrementalExchange::new(0.0, 0);
        inc.force_kernel_choice(choice);
        // Cold build: everything dirty.
        let cold = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(
            reference.energy.to_bits(),
            cold.energy.to_bits(),
            "cold incremental differs for {choice:?}"
        );
        // Rebuild on identical fields: eps_inc = 0 must recompute, not reuse.
        let rebuilt = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(rebuilt.inc.pairs_reused, 0);
        assert_eq!(
            reference.energy.to_bits(),
            rebuilt.energy.to_bits(),
            "eps_inc=0 rebuild differs for {choice:?}"
        );
    }
}

/// SCF-quality H2 setup for the K-operator paths.
fn h2_setup() -> (Basis, liair_math::Mat, usize, RealGrid, PoissonSolver) {
    let edge = 14.0;
    let mut mol = systems::h2();
    mol.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
    let basis = Basis::sto3g(&mol);
    let scf = liair_scf::rhf(&mol, &basis, &liair_scf::ScfOptions::default());
    let grid = RealGrid::cubic(Cell::cubic(edge), 24);
    let solver = PoissonSolver::isolated(grid);
    (basis, scf.c, scf.nocc, grid, solver)
}

#[test]
fn k_operator_bit_identical_across_backends() {
    let (basis, c_occ, nocc, grid, solver) = h2_setup();
    for simd in available_levels() {
        let choice = KernelChoice {
            path: PairPath::Single,
            simd,
        };
        let base = ExchangeEngine::new(&grid, &solver).with_kernel_choice(choice);
        let serial = base
            .with_backend(ExecBackend::Serial)
            .k_operator(&basis, &c_occ, nocc, 0.0);
        assert!(serial.profile.is_populated());
        assert_eq!(serial.evaluated, nocc * basis.nao());

        let rayon = base
            .with_backend(ExecBackend::Rayon)
            .k_operator(&basis, &c_occ, nocc, 0.0);
        let d = rayon.k.sub(&serial.k).fro_norm();
        assert_eq!(d, 0.0, "serial vs rayon K differ at level {simd:?}: {d:e}");

        for nranks in [1, 3] {
            let comm = base
                .with_backend(ExecBackend::Comm {
                    nranks,
                    strategy: BalanceStrategy::RoundRobin,
                })
                .k_operator(&basis, &c_occ, nocc, 0.0);
            let d = comm.k.sub(&serial.k).fro_norm();
            assert_eq!(
                d, 0.0,
                "serial vs comm(nranks={nranks}) K differ at level {simd:?}: {d:e}"
            );
        }
    }
}

#[test]
fn public_wrappers_match_pinned_default_engine() {
    // The thin public entry points must equal an engine configured the way
    // the wrappers configure it — same autotuned/default kernel choice,
    // same backend — down to the last bit.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(3, 20);
    let wrapper = liair_core::exchange_energy(&grid, &solver, &fields, &pairs);
    let engine = ExchangeEngine::new(&grid, &solver).energy(&fields, &pairs);
    assert_eq!(wrapper.energy.to_bits(), engine.energy.to_bits());

    let dist = liair_core::distributed::distributed_exchange(
        &grid,
        &solver,
        &fields,
        &pairs,
        3,
        BalanceStrategy::GreedyLpt,
    );
    assert_eq!(wrapper.energy.to_bits(), dist.energy.to_bits());

    let (basis, c_occ, nocc, kgrid, ksolver) = h2_setup();
    let (k_ref, ev, sk) = liair_core::operator::exchange_operator_grid_screened(
        &basis, &c_occ, nocc, &kgrid, &ksolver, 0.0,
    );
    let out = ExchangeEngine::new(&kgrid, &ksolver).k_operator(&basis, &c_occ, nocc, 0.0);
    assert_eq!(out.evaluated, ev);
    assert_eq!(out.skipped, sk);
    assert_eq!(out.k.sub(&k_ref).fro_norm(), 0.0);

    let k_dist = liair_core::distributed::distributed_exchange_operator(
        &basis, &c_occ, nocc, &kgrid, &ksolver, 3,
    );
    assert_eq!(k_dist.sub(&k_ref).fro_norm(), 0.0);
}

#[test]
fn incremental_eps0_k_bit_identical_per_level() {
    let (basis, c_occ, nocc, grid, solver) = h2_setup();
    for simd in available_levels() {
        let choice = KernelChoice {
            path: PairPath::Single,
            simd,
        };
        let reference = ExchangeEngine::new(&grid, &solver)
            .with_kernel_choice(choice)
            .k_operator(&basis, &c_occ, nocc, 0.0);
        let mut inc = IncrementalExchange::new(0.0, 0);
        inc.force_kernel_choice(choice);
        let (k_inc, ev, sk, stats) =
            inc.exchange_operator(&basis, &c_occ, nocc, &grid, &solver, 0.0);
        assert_eq!(ev, reference.evaluated);
        assert_eq!(sk, reference.skipped);
        assert_eq!(stats.pairs_reused, 0);
        assert_eq!(
            k_inc.sub(&reference.k).fro_norm(),
            0.0,
            "incremental eps_inc=0 K differs at level {simd:?}"
        );
    }
}

#[test]
fn simd_level_never_changes_physics() {
    // Different SIMD levels are *not* expected to be bitwise equal to each
    // other (different summation orders), but they must agree to numerical
    // round-off — the levels change instruction schedules, not physics.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 20);
    let energies: Vec<f64> = kernel_choices()
        .iter()
        .map(|&c| {
            ExchangeEngine::new(&grid, &solver)
                .with_kernel_choice(c)
                .energy(&fields, &pairs)
                .energy
        })
        .collect();
    for (i, e) in energies.iter().enumerate() {
        let rel = (e - energies[0]).abs() / energies[0].abs();
        assert!(
            rel < 1e-12,
            "choice #{i} drifted: {e} vs {} ({rel:e})",
            energies[0]
        );
    }
}

#[test]
fn comm_backend_reports_gather_volume() {
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(3, 16);
    let out = ExchangeEngine::new(&grid, &solver)
        .with_backend(ExecBackend::Comm {
            nranks: 2,
            strategy: BalanceStrategy::Block,
        })
        .energy(&fields, &pairs);
    assert!(out.profile.bytes_reduced > 0);
    assert_eq!(out.profile.pairs_computed, pairs.len());

    let (basis, c_occ, nocc, kgrid, ksolver) = h2_setup();
    let k = ExchangeEngine::new(&kgrid, &ksolver)
        .with_backend(ExecBackend::Comm {
            nranks: 2,
            strategy: BalanceStrategy::RoundRobin,
        })
        .k_operator(&basis, &c_occ, nocc, 0.0);
    assert!(k.profile.bytes_reduced > 0);
    assert!(k.profile.t_ao_eval_s >= 0.0);
}
