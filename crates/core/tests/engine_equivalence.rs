//! Cross-driver equivalence suite for the staged [`ExchangeEngine`]: every
//! execution backend (serial, rayon, message-passing `Comm` under both
//! collective families) must produce **bit-identical** energies and K
//! matrices for every runnable SIMD level and both pair-kernel paths, and
//! the incremental driver with `eps_inc = 0` must reproduce the
//! from-scratch build exactly. The distributed backend must additionally
//! hold the guarantee *under injected faults* — dropped, delayed,
//! duplicated messages and stalled ranks — because retransmission and
//! chunk re-issue replay the identical kernel.
//!
//! The kernel choice is pinned through [`EngineBuilder::kernel_choice`] /
//! [`IncrementalExchange::force_kernel_choice`] rather than `LIAIR_SIMD`
//! (the env override is latched once per process), so one test binary can
//! sweep all levels. CI additionally runs the whole binary under a
//! `LIAIR_SIMD` matrix and a `LIAIR_FAULT_SEED` matrix to exercise the
//! env-driven defaults.

use liair_basis::{systems, Basis, Cell};
use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{
    BalanceStrategy, CollectiveMode, ExchangeEngine, ExecBackend, FaultPlan, IncrementalExchange,
    KernelChoice, PairPath, PipelineMode,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::simd::available_levels;
use liair_math::Vec3;

/// Smooth synthetic "orbitals": normalized Gaussians at random centers.
fn synthetic_setup(
    norb: usize,
    n: usize,
) -> (
    RealGrid,
    PoissonSolver,
    Vec<Vec<f64>>,
    Vec<OrbitalInfo>,
    PairList,
) {
    let l = 14.0;
    let grid = RealGrid::cubic(Cell::cubic(l), n);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(171);
    let centers: Vec<Vec3> = (0..norb)
        .map(|_| {
            Vec3::new(
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
                rng.range_f64(4.0, 10.0),
            )
        })
        .collect();
    let fields: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            let alpha: f64 = 1.1;
            let norm = (2.0 * alpha / std::f64::consts::PI).powf(0.75);
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    norm * (-alpha * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
    (grid, solver, fields, infos, pairs)
}

/// Every (SIMD level, pair path) combination runnable on this machine.
fn kernel_choices() -> Vec<KernelChoice> {
    let mut out = Vec::new();
    for simd in available_levels() {
        for path in [PairPath::Single, PairPath::Batched] {
            out.push(KernelChoice { path, simd });
        }
    }
    out
}

const MODES: [CollectiveMode; 2] = [CollectiveMode::Flat, CollectiveMode::Hierarchical];

#[test]
fn energy_bit_identical_across_backends() {
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 20);
    for choice in kernel_choices() {
        let base = ExchangeEngine::builder(&grid, &solver)
            .kernel_choice(choice)
            .no_faults();
        let serial = base
            .backend(ExecBackend::Serial)
            .build()
            .unwrap()
            .energy(&fields, &pairs);
        assert!(serial.energy < 0.0);
        assert!(serial.profile.is_populated());

        let rayon = base
            .backend(ExecBackend::Rayon)
            .build()
            .unwrap()
            .energy(&fields, &pairs);
        assert_eq!(
            serial.energy.to_bits(),
            rayon.energy.to_bits(),
            "serial vs rayon differ for {choice:?}: {} vs {}",
            serial.energy,
            rayon.energy
        );

        for nranks in [1, 3, 4] {
            for strategy in [
                BalanceStrategy::RoundRobin,
                BalanceStrategy::Block,
                BalanceStrategy::GreedyLpt,
            ] {
                for mode in MODES {
                    let comm = base
                        .backend(ExecBackend::Comm { nranks, strategy })
                        .collectives(mode)
                        .build()
                        .unwrap()
                        .energy(&fields, &pairs);
                    assert_eq!(
                        serial.energy.to_bits(),
                        comm.energy.to_bits(),
                        "serial vs comm(nranks={nranks}, {strategy:?}, {mode:?}) differ \
                         for {choice:?}: {} vs {}",
                        serial.energy,
                        comm.energy
                    );
                }
            }
        }
    }
}

#[test]
fn energy_bit_identical_under_injected_faults() {
    // Retransmission (drops/delays/dups) and root-side chunk re-issue
    // (stalls) must not change a single bit of the result: recovered
    // messages carry the same payloads, and re-issued chunks replay the
    // identical kernel.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 16);
    let choice = kernel_choices()[0];
    let clean = ExchangeEngine::builder(&grid, &solver)
        .kernel_choice(choice)
        .no_faults()
        .backend(ExecBackend::Serial)
        .build()
        .unwrap()
        .energy(&fields, &pairs);
    for seed in [7u64, 1234] {
        for plan in [FaultPlan::messages_only(seed), FaultPlan::with_stalls(seed)] {
            for mode in MODES {
                let faulty = ExchangeEngine::builder(&grid, &solver)
                    .kernel_choice(choice)
                    .backend(ExecBackend::Comm {
                        nranks: 4,
                        strategy: BalanceStrategy::GreedyLpt,
                    })
                    .collectives(mode)
                    .fault_plan(plan)
                    .build()
                    .unwrap()
                    .energy(&fields, &pairs);
                assert_eq!(
                    clean.energy.to_bits(),
                    faulty.energy.to_bits(),
                    "seed {seed} {mode:?}: faulty build drifted: {} vs {}",
                    clean.energy,
                    faulty.energy
                );
                // A stalled rank shows up in the profile as re-issued work.
                if faulty.profile.ranks_stalled > 0 {
                    assert!(
                        faulty.profile.chunks_reissued > 0,
                        "stalled ranks must re-issue their chunks"
                    );
                }
            }
        }
    }
}

#[test]
fn pipelined_overlap_bit_identical_under_fault_matrix() {
    // The CI fault matrix seeds (LIAIR_FAULT_SEED = 7, 13, 42), run
    // explicitly against both schedules: the pipelined backend's streamed
    // out-of-order reassembly, steal queue, and mid-build straggler
    // re-issue must leave every bit where the staged gather and the
    // serial reference put it.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 16);
    let nchunks = pairs.len().div_ceil(2);
    let choice = kernel_choices()[0];
    let serial = ExchangeEngine::builder(&grid, &solver)
        .kernel_choice(choice)
        .no_faults()
        .backend(ExecBackend::Serial)
        .build()
        .unwrap()
        .energy(&fields, &pairs);
    for seed in [7u64, 13, 42] {
        for mode in [PipelineMode::Staged, PipelineMode::Pipelined] {
            let out = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(choice)
                .backend(ExecBackend::Comm {
                    nranks: 4,
                    strategy: BalanceStrategy::GreedyLpt,
                })
                .pipeline(mode)
                .fault_plan(FaultPlan::with_stalls(seed))
                .build()
                .unwrap()
                .energy(&fields, &pairs);
            assert_eq!(
                serial.energy.to_bits(),
                out.energy.to_bits(),
                "seed {seed} {mode:?}: schedule changed the energy: {} vs {}",
                serial.energy,
                out.energy
            );
            if mode == PipelineMode::Pipelined {
                // A straggler's share is re-issued through the steal
                // queue as soon as its timeout fires, so every re-issued
                // chunk is also a stolen one.
                if out.profile.ranks_stalled > 0 {
                    assert!(out.profile.chunks_reissued > 0);
                }
                assert_eq!(
                    out.profile.chunks_stolen,
                    nchunks / 4 + out.profile.chunks_reissued,
                    "seed {seed}: tail + re-issues must each be granted exactly once"
                );
            } else {
                assert_eq!(out.profile.chunks_stolen, 0);
                assert_eq!(out.profile.steal_requests, 0);
            }
        }
    }
}

#[test]
fn pipelined_overlap_matches_staged_for_k_operator() {
    let (basis, c_occ, nocc, kgrid, ksolver) = h2_setup();
    let comm = ExecBackend::Comm {
        nranks: 3,
        strategy: BalanceStrategy::GreedyLpt,
    };
    let run = |mode| {
        ExchangeEngine::builder(&kgrid, &ksolver)
            .backend(comm)
            .pipeline(mode)
            .no_faults()
            .build()
            .unwrap()
            .k_operator(&basis, &c_occ, nocc, 0.0)
    };
    let staged = run(PipelineMode::Staged);
    let pipelined = run(PipelineMode::Pipelined);
    assert_eq!(staged.evaluated, pipelined.evaluated);
    assert_eq!(staged.skipped, pipelined.skipped);
    assert_eq!(
        pipelined.k.sub(&staged.k).fro_norm(),
        0.0,
        "K columns must reassemble identically under streamed arrival"
    );
}

/// SCF-quality H2 setup for the K-operator paths.
fn h2_setup() -> (Basis, liair_math::Mat, usize, RealGrid, PoissonSolver) {
    let edge = 14.0;
    let mut mol = systems::h2();
    mol.translate(liair_math::Vec3::splat(edge / 2.0) - mol.centroid());
    let basis = Basis::sto3g(&mol);
    let scf = liair_scf::rhf(&mol, &basis, &liair_scf::ScfOptions::default());
    let grid = RealGrid::cubic(Cell::cubic(edge), 24);
    let solver = PoissonSolver::isolated(grid);
    (basis, scf.c, scf.nocc, grid, solver)
}

#[test]
fn k_operator_bit_identical_across_backends() {
    let (basis, c_occ, nocc, grid, solver) = h2_setup();
    for simd in available_levels() {
        let choice = KernelChoice {
            path: PairPath::Single,
            simd,
        };
        let base = ExchangeEngine::builder(&grid, &solver)
            .kernel_choice(choice)
            .no_faults();
        let serial = base
            .backend(ExecBackend::Serial)
            .build()
            .unwrap()
            .k_operator(&basis, &c_occ, nocc, 0.0);
        assert!(serial.profile.is_populated());
        assert_eq!(serial.evaluated, nocc * basis.nao());

        let rayon = base
            .backend(ExecBackend::Rayon)
            .build()
            .unwrap()
            .k_operator(&basis, &c_occ, nocc, 0.0);
        let d = rayon.k.sub(&serial.k).fro_norm();
        assert_eq!(d, 0.0, "serial vs rayon K differ at level {simd:?}: {d:e}");

        for nranks in [1, 3] {
            for mode in MODES {
                let comm = base
                    .backend(ExecBackend::Comm {
                        nranks,
                        strategy: BalanceStrategy::RoundRobin,
                    })
                    .collectives(mode)
                    .build()
                    .unwrap()
                    .k_operator(&basis, &c_occ, nocc, 0.0);
                let d = comm.k.sub(&serial.k).fro_norm();
                assert_eq!(
                    d, 0.0,
                    "serial vs comm(nranks={nranks}, {mode:?}) K differ at level {simd:?}: {d:e}"
                );
            }
        }
    }
}

#[test]
fn k_operator_bit_identical_under_injected_faults() {
    let (basis, c_occ, nocc, grid, solver) = h2_setup();
    let choice = KernelChoice {
        path: PairPath::Single,
        simd: available_levels()[0],
    };
    let clean = ExchangeEngine::builder(&grid, &solver)
        .kernel_choice(choice)
        .no_faults()
        .backend(ExecBackend::Serial)
        .build()
        .unwrap()
        .k_operator(&basis, &c_occ, nocc, 0.0);
    for plan in [FaultPlan::messages_only(42), FaultPlan::with_stalls(42)] {
        for mode in MODES {
            let faulty = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(choice)
                .backend(ExecBackend::Comm {
                    nranks: 3,
                    strategy: BalanceStrategy::RoundRobin,
                })
                .collectives(mode)
                .fault_plan(plan)
                .build()
                .unwrap()
                .k_operator(&basis, &c_occ, nocc, 0.0);
            assert_eq!(
                faulty.k.sub(&clean.k).fro_norm(),
                0.0,
                "{mode:?}: K drifted under faults"
            );
        }
    }
}

#[test]
fn incremental_eps0_energy_bit_identical_per_kernel() {
    let (grid, solver, fields, infos, pairs) = synthetic_setup(4, 20);
    for choice in kernel_choices() {
        // The incremental driver executes dirty work on the default Rayon
        // backend, so that is the reference.
        let reference = ExchangeEngine::builder(&grid, &solver)
            .kernel_choice(choice)
            .build()
            .unwrap()
            .energy(&fields, &pairs);

        let mut inc = IncrementalExchange::new(0.0, 0);
        inc.force_kernel_choice(choice);
        // Cold build: everything dirty.
        let cold = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(
            reference.energy.to_bits(),
            cold.energy.to_bits(),
            "cold incremental differs for {choice:?}"
        );
        // Rebuild on identical fields: eps_inc = 0 must recompute, not reuse.
        let rebuilt = inc.exchange_energy(&grid, &solver, &fields, &infos, &pairs);
        assert_eq!(rebuilt.inc.pairs_reused, 0);
        assert_eq!(
            reference.energy.to_bits(),
            rebuilt.energy.to_bits(),
            "eps_inc=0 rebuild differs for {choice:?}"
        );
    }
}

#[test]
fn public_wrappers_match_pinned_default_engine() {
    // The thin public entry points must equal an engine configured the way
    // the wrappers configure it — same autotuned/default kernel choice,
    // same backend — down to the last bit.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(3, 20);
    let wrapper = liair_core::exchange_energy(&grid, &solver, &fields, &pairs);
    let engine = ExchangeEngine::new(&grid, &solver).energy(&fields, &pairs);
    assert_eq!(wrapper.energy.to_bits(), engine.energy.to_bits());

    let dist = liair_core::distributed::distributed_exchange(
        &grid,
        &solver,
        &fields,
        &pairs,
        3,
        BalanceStrategy::GreedyLpt,
    );
    assert_eq!(wrapper.energy.to_bits(), dist.energy.to_bits());

    let (basis, c_occ, nocc, kgrid, ksolver) = h2_setup();
    let (k_ref, ev, sk) = liair_core::operator::exchange_operator_grid_screened(
        &basis, &c_occ, nocc, &kgrid, &ksolver, 0.0,
    );
    let out = ExchangeEngine::new(&kgrid, &ksolver).k_operator(&basis, &c_occ, nocc, 0.0);
    assert_eq!(out.evaluated, ev);
    assert_eq!(out.skipped, sk);
    assert_eq!(out.k.sub(&k_ref).fro_norm(), 0.0);

    let k_dist = liair_core::distributed::distributed_exchange_operator(
        &basis, &c_occ, nocc, &kgrid, &ksolver, 3,
    );
    assert_eq!(k_dist.sub(&k_ref).fro_norm(), 0.0);
}

#[test]
fn incremental_eps0_k_bit_identical_per_level() {
    let (basis, c_occ, nocc, grid, solver) = h2_setup();
    for simd in available_levels() {
        let choice = KernelChoice {
            path: PairPath::Single,
            simd,
        };
        let reference = ExchangeEngine::builder(&grid, &solver)
            .kernel_choice(choice)
            .build()
            .unwrap()
            .k_operator(&basis, &c_occ, nocc, 0.0);
        let mut inc = IncrementalExchange::new(0.0, 0);
        inc.force_kernel_choice(choice);
        let (k_inc, ev, sk, stats) =
            inc.exchange_operator(&basis, &c_occ, nocc, &grid, &solver, 0.0);
        assert_eq!(ev, reference.evaluated);
        assert_eq!(sk, reference.skipped);
        assert_eq!(stats.pairs_reused, 0);
        assert_eq!(
            k_inc.sub(&reference.k).fro_norm(),
            0.0,
            "incremental eps_inc=0 K differs at level {simd:?}"
        );
    }
}

#[test]
fn simd_level_never_changes_physics() {
    // Different SIMD levels are *not* expected to be bitwise equal to each
    // other (different summation orders), but they must agree to numerical
    // round-off — the levels change instruction schedules, not physics.
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(4, 20);
    let energies: Vec<f64> = kernel_choices()
        .iter()
        .map(|&c| {
            ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(c)
                .build()
                .unwrap()
                .energy(&fields, &pairs)
                .energy
        })
        .collect();
    for (i, e) in energies.iter().enumerate() {
        let rel = (e - energies[0]).abs() / energies[0].abs();
        assert!(
            rel < 1e-12,
            "choice #{i} drifted: {e} vs {} ({rel:e})",
            energies[0]
        );
    }
}

#[test]
fn comm_backend_reports_gather_volume() {
    let (grid, solver, fields, _infos, pairs) = synthetic_setup(3, 16);
    let out = ExchangeEngine::builder(&grid, &solver)
        .backend(ExecBackend::Comm {
            nranks: 2,
            strategy: BalanceStrategy::Block,
        })
        .build()
        .unwrap()
        .energy(&fields, &pairs);
    assert!(out.profile.bytes_reduced > 0);
    assert_eq!(out.profile.pairs_computed, pairs.len());

    let (basis, c_occ, nocc, kgrid, ksolver) = h2_setup();
    let k = ExchangeEngine::builder(&kgrid, &ksolver)
        .backend(ExecBackend::Comm {
            nranks: 2,
            strategy: BalanceStrategy::RoundRobin,
        })
        .build()
        .unwrap()
        .k_operator(&basis, &c_occ, nocc, 0.0);
    assert!(k.profile.bytes_reduced > 0);
    assert!(k.profile.t_ao_eval_s >= 0.0);
}

#[test]
fn builder_rejects_inconsistent_configuration() {
    let (grid, solver, _fields, _infos, _pairs) = synthetic_setup(2, 12);
    let choice = kernel_choices()[0];
    // kernel_choice + pair_path double-pins the path.
    let err = ExchangeEngine::builder(&grid, &solver)
        .kernel_choice(choice)
        .pair_path(PairPath::Single)
        .build();
    assert!(err.is_err());
    // Zero ranks is meaningless.
    let err = ExchangeEngine::builder(&grid, &solver)
        .backend(ExecBackend::Comm {
            nranks: 0,
            strategy: BalanceStrategy::Block,
        })
        .build();
    assert!(err.is_err());
}
