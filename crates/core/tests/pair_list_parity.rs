//! Property test: the O(N·partners) cell-list pair builder
//! ([`build_pair_list_celllist`]) must produce exactly the same screened
//! pair set as the reference O(N²) builder ([`build_pair_list`]) — same
//! (i, j) pairs, same weights, same bounds — for random orbital layouts,
//! spreads, box sizes and screening thresholds.

use liair_basis::Cell;
use liair_core::screening::{build_pair_list, build_pair_list_celllist, OrbitalInfo};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use proptest::prelude::*;

fn random_layout(seed: u64, norb: usize, edge: f64, spread_max: f64) -> Vec<OrbitalInfo> {
    let mut rng = SplitMix64::new(seed);
    (0..norb)
        .map(|_| OrbitalInfo {
            center: Vec3::new(
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
            ),
            spread: rng.range_f64(0.3, spread_max),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn celllist_matches_reference_builder(
        seed in 0u64..1_000_000,
        norb in 2usize..40,
        edge in 8.0f64..30.0,
        spread_max in 0.5f64..2.0,
        eps_exp in 1i32..8,
    ) {
        let eps = 10f64.powi(-eps_exp);
        let cell = Cell::cubic(edge);
        let infos = random_layout(seed, norb, edge, spread_max);

        let reference = build_pair_list(&infos, eps, Some(&cell));
        let celllist = build_pair_list_celllist(&infos, eps, &cell);

        prop_assert_eq!(reference.n_candidates, celllist.n_candidates);
        prop_assert_eq!(reference.len(), celllist.len());
        // Both builders emit (i, j) with i <= j; sort to one canonical
        // order and compare every field.
        let mut a = reference.pairs.clone();
        let mut b = celllist.pairs.clone();
        a.sort_by_key(|p| (p.i, p.j));
        b.sort_by_key(|p| (p.i, p.j));
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert_eq!((pa.i, pa.j), (pb.i, pb.j));
            prop_assert_eq!(pa.weight.to_bits(), pb.weight.to_bits());
            prop_assert_eq!(pa.bound.to_bits(), pb.bound.to_bits());
        }
    }

    /// Tightening eps on the same layout can only shrink the survivor set,
    /// and the cell-list builder tracks it exactly.
    #[test]
    fn celllist_is_monotone_in_eps(
        seed in 0u64..1_000_000,
        norb in 2usize..24,
    ) {
        let edge = 16.0;
        let cell = Cell::cubic(edge);
        let infos = random_layout(seed, norb, edge, 1.2);
        let mut prev = 0usize;
        for eps_exp in 1..7 {
            // eps shrinks as the loop runs: 1e-1 first, 1e-6 last.
            let eps = 10f64.powi(-eps_exp);
            let n2 = build_pair_list(&infos, eps, Some(&cell)).len();
            let cl = build_pair_list_celllist(&infos, eps, &cell).len();
            prop_assert_eq!(n2, cl);
            // Tighter screening keeps at least as many pairs.
            prop_assert!(cl >= prev, "survivors shrank: {} -> {} at eps {}", prev, cl, eps);
            prev = cl;
        }
    }
}
