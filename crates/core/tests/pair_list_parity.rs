//! Property tests: every locality-exploiting pair builder — the
//! O(N·partners) cell list ([`build_pair_list_celllist`]) and the
//! domain-sharded source ([`build_pair_list_sharded`]) — must produce
//! exactly the same screened pair set as the reference O(N²) builder
//! ([`build_pair_list`]): same (i, j) pairs, same weights, same bounds,
//! to the bit, for random orbital layouts, spreads, box shapes
//! (including anisotropic cells and boundary-straddling clusters),
//! domain grids and screening thresholds.

use liair_basis::Cell;
use liair_core::screening::{build_pair_list, build_pair_list_celllist, OrbitalInfo, Pair};
use liair_core::{build_pair_list_sharded, DomainGeometry, Error};
use liair_math::rng::SplitMix64;
use liair_math::Vec3;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn random_layout(seed: u64, norb: usize, edge: f64, spread_max: f64) -> Vec<OrbitalInfo> {
    let mut rng = SplitMix64::new(seed);
    (0..norb)
        .map(|_| OrbitalInfo {
            center: Vec3::new(
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
                rng.range_f64(0.0, edge),
            ),
            spread: rng.range_f64(0.3, spread_max),
        })
        .collect()
}

/// Centers clustered within `band` of the cell faces and corners — the
/// min-image stress case where every pair wraps at least one axis.
fn straddling_layout(seed: u64, norb: usize, lengths: [f64; 3], band: f64) -> Vec<OrbitalInfo> {
    let mut rng = SplitMix64::new(seed);
    (0..norb)
        .map(|_| {
            let mut c = [0.0f64; 3];
            for k in 0..3 {
                let off = rng.range_f64(-band, band);
                // Half the samples hug the origin face (wrapping negative
                // offsets to the far edge), half an interior face.
                c[k] = if rng.range_f64(0.0, 1.0) < 0.5 {
                    off.rem_euclid(lengths[k])
                } else {
                    (lengths[k] / 2.0 + off).rem_euclid(lengths[k])
                };
            }
            OrbitalInfo {
                center: Vec3::new(c[0], c[1], c[2]),
                spread: rng.range_f64(0.4, 1.3),
            }
        })
        .collect()
}

fn assert_bit_identical(a: &[Pair], b: &[Pair]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(b) {
        prop_assert_eq!((pa.i, pa.j), (pb.i, pb.j));
        prop_assert_eq!(pa.weight.to_bits(), pb.weight.to_bits());
        prop_assert_eq!(pa.bound.to_bits(), pb.bound.to_bits());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn celllist_matches_reference_builder(
        seed in 0u64..1_000_000,
        norb in 2usize..40,
        edge in 8.0f64..30.0,
        spread_max in 0.5f64..2.0,
        eps_exp in 1i32..8,
    ) {
        let eps = 10f64.powi(-eps_exp);
        let cell = Cell::cubic(edge);
        let infos = random_layout(seed, norb, edge, spread_max);

        let reference = build_pair_list(&infos, eps, Some(&cell));
        let celllist = build_pair_list_celllist(&infos, eps, &cell).unwrap();

        prop_assert_eq!(reference.n_candidates, celllist.n_candidates);
        prop_assert_eq!(reference.len(), celllist.len());
        // Both builders emit (i, j) with i <= j; sort to one canonical
        // order and compare every field.
        let mut a = reference.pairs.clone();
        let mut b = celllist.pairs.clone();
        a.sort_by_key(|p| (p.i, p.j));
        b.sort_by_key(|p| (p.i, p.j));
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert_eq!((pa.i, pa.j), (pb.i, pb.j));
            prop_assert_eq!(pa.weight.to_bits(), pb.weight.to_bits());
            prop_assert_eq!(pa.bound.to_bits(), pb.bound.to_bits());
        }
    }

    /// Tightening eps on the same layout can only shrink the survivor set,
    /// and the cell-list builder tracks it exactly.
    #[test]
    fn celllist_is_monotone_in_eps(
        seed in 0u64..1_000_000,
        norb in 2usize..24,
    ) {
        let edge = 16.0;
        let cell = Cell::cubic(edge);
        let infos = random_layout(seed, norb, edge, 1.2);
        let mut prev = 0usize;
        for eps_exp in 1..7 {
            // eps shrinks as the loop runs: 1e-1 first, 1e-6 last.
            let eps = 10f64.powi(-eps_exp);
            let n2 = build_pair_list(&infos, eps, Some(&cell)).len();
            let cl = build_pair_list_celllist(&infos, eps, &cell).unwrap().len();
            prop_assert_eq!(n2, cl);
            // Tighter screening keeps at least as many pairs.
            prop_assert!(cl >= prev, "survivors shrank: {} -> {} at eps {}", prev, cl, eps);
            prev = cl;
        }
    }

    /// Anisotropic cells: the per-axis binning and min-image wrap must
    /// agree with the reference even when the edges differ by 3×.
    #[test]
    fn celllist_matches_reference_in_anisotropic_cells(
        seed in 0u64..1_000_000,
        norb in 2usize..32,
        a in 8.0f64..24.0,
        b in 8.0f64..24.0,
        c in 8.0f64..24.0,
        eps_exp in 1i32..12,
    ) {
        let eps = 10f64.powi(-eps_exp);
        let cell = Cell::orthorhombic(a, b, c);
        let mut rng = SplitMix64::new(seed);
        let infos: Vec<OrbitalInfo> = (0..norb)
            .map(|_| OrbitalInfo {
                center: Vec3::new(
                    rng.range_f64(0.0, a),
                    rng.range_f64(0.0, b),
                    rng.range_f64(0.0, c),
                ),
                spread: rng.range_f64(0.3, 1.6),
            })
            .collect();
        let reference = build_pair_list(&infos, eps, Some(&cell));
        let celllist = build_pair_list_celllist(&infos, eps, &cell).unwrap();
        prop_assert_eq!(reference.n_candidates, celllist.n_candidates);
        assert_bit_identical(&reference.pairs, &celllist.pairs)?;
    }

    /// Clusters hugging the cell faces: every surviving pair crosses a
    /// periodic boundary, so a single lost wrap shows up immediately.
    #[test]
    fn boundary_straddling_layouts_survive_every_builder(
        seed in 0u64..1_000_000,
        norb in 4usize..36,
        edge in 10.0f64..26.0,
        eps_exp in 1i32..10,
    ) {
        let eps = 10f64.powi(-eps_exp);
        let lengths = [edge, edge * 1.4, edge * 0.8];
        let cell = Cell::orthorhombic(lengths[0], lengths[1], lengths[2]);
        let infos = straddling_layout(seed, norb, lengths, 1.5);
        let reference = build_pair_list(&infos, eps, Some(&cell));
        let celllist = build_pair_list_celllist(&infos, eps, &cell).unwrap();
        assert_bit_identical(&reference.pairs, &celllist.pairs)?;
        let sharded = build_pair_list_sharded(&infos, eps, &cell, [2, 2, 2]).unwrap();
        assert_bit_identical(&reference.pairs, &sharded.pairs)?;
    }

    /// The domain-sharded builder (halo import + per-domain local build +
    /// canonical merge) equals both global builders bitwise for random
    /// domain grids — including degenerate 1-axis and deep ε thresholds.
    #[test]
    fn sharded_matches_global_builders(
        seed in 0u64..1_000_000,
        norb in 2usize..36,
        edge in 8.0f64..30.0,
        spread_max in 0.5f64..2.0,
        eps_exp in 1i32..12,
        gx in 1usize..4,
        gy in 1usize..4,
        gz in 1usize..4,
    ) {
        let eps = 10f64.powi(-eps_exp);
        let cell = Cell::cubic(edge);
        let infos = random_layout(seed, norb, edge, spread_max);
        let reference = build_pair_list(&infos, eps, Some(&cell));
        let celllist = build_pair_list_celllist(&infos, eps, &cell).unwrap();
        let sharded = build_pair_list_sharded(&infos, eps, &cell, [gx, gy, gz]).unwrap();
        prop_assert_eq!(reference.n_candidates, sharded.n_candidates);
        assert_bit_identical(&reference.pairs, &sharded.pairs)?;
        assert_bit_identical(&celllist.pairs, &sharded.pairs)?;
    }

    /// Out-of-range ε is a typed error from every fallible builder, never
    /// a panic or a silently empty list.
    #[test]
    fn invalid_eps_is_rejected_with_a_typed_error(which in 0usize..4) {
        let bad_eps = [0.0f64, -1e-6, 1.5, f64::NAN][which];
        let cell = Cell::cubic(12.0);
        let infos = random_layout(9, 6, 12.0, 1.0);
        for result in [
            build_pair_list_celllist(&infos, bad_eps, &cell).map(|_| ()),
            build_pair_list_sharded(&infos, bad_eps, &cell, [2, 2, 2]).map(|_| ()),
            DomainGeometry::new(cell, [2, 2, 2], bad_eps, 1.0).map(|_| ()),
        ] {
            match result {
                Err(Error::InvalidEps { eps }) => {
                    prop_assert!(eps.is_nan() || eps == bad_eps)
                }
                other => prop_assert!(false, "expected InvalidEps, got {:?}", other),
            }
        }
    }
}
