//! Counting-allocator proof that the `exchange_energy` pair loop is
//! allocation-free **per pair** in steady state: with the thread count
//! pinned, the total number of heap allocations per call is a constant
//! (per-worker scratch, thread spawn bookkeeping) that does not grow with
//! the number of pairs evaluated — and that the all-clean incremental
//! rebuild performs *zero* heap allocations outright.

use liair_basis::Cell;
use liair_core::screening::{OrbitalInfo, Pair, PairList};
use liair_core::{
    exchange_energy, EngineScratch, ExchangeEngine, ExecBackend, HfxResult, IncrementalExchange,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, so the tests in this binary
/// must not overlap: one test's warm-up would land in the other's
/// measured window.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::SeqCst)
}

fn pair_list(n_orb: usize, n_pairs: usize) -> PairList {
    let mut pairs = Vec::with_capacity(n_pairs);
    for k in 0..n_pairs {
        let i = (k % n_orb) as u32;
        let j = ((k / n_orb + k) % n_orb) as u32;
        let (i, j) = if i <= j { (i, j) } else { (j, i) };
        let weight = if i == j { 1.0 } else { 2.0 };
        pairs.push(Pair {
            i,
            j,
            weight,
            bound: 1.0,
        });
    }
    PairList {
        pairs,
        n_candidates: n_pairs,
        considered: n_pairs,
        eps: 0.0,
    }
}

#[test]
fn exchange_energy_allocations_do_not_scale_with_pair_count() {
    let _guard = SERIAL.lock().unwrap();
    let grid = RealGrid::cubic(Cell::cubic(10.0), 24);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(5);
    let orbitals: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let few = pair_list(4, 6);
    let many = pair_list(4, 30);

    // Single worker so the per-call constant (scratch init, thread spawn)
    // is identical between runs regardless of machine core count.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let run = |pairs: &PairList| -> (HfxResult, u64) {
        let before = alloc_count();
        let result = pool.install(|| exchange_energy(&grid, &solver, &orbitals, pairs));
        (result, alloc_count() - before)
    };

    // Warm-up: FFT plans, autotune timing, kernel tables all primed.
    let (warm, _) = run(&few);
    assert!(warm.energy.is_finite());

    let (r_few, d_few) = run(&few);
    let (r_many, d_many) = run(&many);
    assert_eq!(r_few.pairs_evaluated, 6);
    assert_eq!(r_many.pairs_evaluated, 30);
    assert!(r_few.energy.is_finite() && r_many.energy.is_finite());
    // 5× the pairs, same allocation count: the steady-state loop itself
    // performs zero per-pair heap allocations.
    assert_eq!(
        d_few, d_many,
        "allocations scale with pair count ({d_few} for 6 pairs vs {d_many} for 30)"
    );
}

#[test]
fn all_clean_incremental_rebuild_is_allocation_free() {
    // Steady state of the incremental path: nothing moved since the last
    // build, every pair is clean, the energy comes straight out of the
    // cache — and not a single heap allocation happens. (No rayon pool is
    // involved: with an empty dirty list the parallel recompute is never
    // entered, so this runs entirely on the calling thread.)
    let _guard = SERIAL.lock().unwrap();
    let grid = RealGrid::cubic(Cell::cubic(10.0), 24);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(7);
    let orbitals: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let infos = vec![
        OrbitalInfo {
            center: liair_math::Vec3::ZERO,
            spread: 1.0,
        };
        4
    ];
    let pairs = liair_core::build_pair_list(&infos, 0.0, None);

    let mut inc = IncrementalExchange::new(1e-6, 0);
    // Prime (everything dirty) and then one warm all-clean rebuild so any
    // lazily grown scratch has reached its final size.
    let primed = inc.exchange_energy(&grid, &solver, &orbitals, &infos, &pairs);
    assert_eq!(primed.inc.pairs_recomputed, pairs.len());
    let warm = inc.exchange_energy(&grid, &solver, &orbitals, &infos, &pairs);
    assert_eq!(warm.inc.pairs_reused, pairs.len());

    let before = alloc_count();
    let r = inc.exchange_energy(&grid, &solver, &orbitals, &infos, &pairs);
    let delta = alloc_count() - before;
    assert_eq!(r.inc.pairs_reused, pairs.len());
    assert_eq!(r.inc.pairs_recomputed, 0);
    assert_eq!(r.energy, warm.energy);
    assert_eq!(
        delta, 0,
        "all-clean incremental rebuild performed {delta} heap allocations"
    );
}

#[test]
fn warm_serial_engine_build_is_allocation_free() {
    // The strongest steady-state claim: with a caller-owned
    // [`EngineScratch`] already grown to the working size, a full serial
    // exchange build through the engine performs *zero* heap allocations —
    // no per-pair, no per-build.
    let _guard = SERIAL.lock().unwrap();
    let grid = RealGrid::cubic(Cell::cubic(10.0), 24);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(11);
    let orbitals: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect())
        .collect();
    let pairs = pair_list(4, 10);
    let engine = ExchangeEngine::builder(&grid, &solver)
        .backend(ExecBackend::Serial)
        .build()
        .expect("serial engine configuration is always valid");
    let mut scratch = EngineScratch::new();

    // Warm-up: grows the scratch, primes FFT plans, autotune, kernel tables.
    let warm = engine.energy_into(&orbitals, &pairs, &mut scratch);
    assert!(warm.energy.is_finite());
    assert!(warm.profile.is_populated());

    let before = alloc_count();
    let r = engine.energy_into(&orbitals, &pairs, &mut scratch);
    let delta = alloc_count() - before;
    assert_eq!(
        r.energy, warm.energy,
        "steady-state rebuild changed the energy"
    );
    assert_eq!(r.profile.steady_allocs, 0, "engine reported scratch growth");
    assert_eq!(
        delta, 0,
        "warm serial engine build performed {delta} heap allocations"
    );
}
