//! Property tests of the incremental-exchange contract:
//!
//! * `eps_inc = 0` disables reuse, and the resulting K build is
//!   **bit-identical** to the from-scratch
//!   `exchange_operator_grid_screened` (same per-task kernel, same
//!   ascending-j assembly order);
//! * the energy error of a stale-cache rebuild is **monotone** in
//!   `eps_inc`: loosening the tolerance can only enlarge the reused set,
//!   and every reused pair contributes an error of the same sign here by
//!   construction.

use liair_basis::{systems, Basis, Cell};
use liair_core::screening::{build_pair_list, OrbitalInfo};
use liair_core::IncrementalExchange;
use liair_grid::{PoissonSolver, RealGrid};
use proptest::prelude::*;

fn gaussian_field(grid: &RealGrid, center: liair_math::Vec3, sigma: f64) -> Vec<f64> {
    (0..grid.len())
        .map(|p| {
            let r = grid.point_flat(p);
            let d2 = r.distance(center).powi(2);
            (-d2 / (2.0 * sigma * sigma)).exp()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// With `eps_inc = 0` every orbital is dirty and the incremental K is
    /// the from-scratch K down to the last bit, for any bond length and
    /// with or without screening — even when the cache was primed with a
    /// different geometry first.
    #[test]
    fn eps_inc_zero_k_build_is_bit_identical(
        bond in 1.1f64..1.9,
        eps_idx in 0usize..2,
        prime_idx in 0usize..2,
    ) {
        let eps = [0.0, 1e-3][eps_idx];
        let mut mol = systems::h2();
        mol.atoms[1].pos.x = bond;
        let edge = 12.0;
        let shift = liair_math::Vec3::splat(edge / 2.0) - mol.centroid();
        mol.translate(shift);
        let basis = Basis::sto3g(&mol);
        let scf = liair_scf::rhf(&mol, &basis, &liair_scf::ScfOptions::default());
        let grid = RealGrid::cubic(Cell::cubic(edge), 16);
        let solver = PoissonSolver::isolated(grid);

        let (k_ref, ev_ref, sk_ref) = liair_core::operator::exchange_operator_grid_screened(
            &basis, &scf.c, scf.nocc, &grid, &solver, eps,
        );
        let mut inc = IncrementalExchange::new(0.0, 0);
        if prime_idx == 1 {
            // A warm cache from another geometry must not leak through.
            let mut other = systems::h2();
            other.translate(liair_math::Vec3::splat(edge / 2.0) - other.centroid());
            let b2 = Basis::sto3g(&other);
            let s2 = liair_scf::rhf(&other, &b2, &liair_scf::ScfOptions::default());
            inc.exchange_operator(&b2, &s2.c, s2.nocc, &grid, &solver, eps);
        }
        let (k_inc, ev, sk, stats) =
            inc.exchange_operator(&basis, &scf.c, scf.nocc, &grid, &solver, eps);
        prop_assert_eq!(ev, ev_ref);
        prop_assert_eq!(sk, sk_ref);
        prop_assert_eq!(stats.pairs_reused, 0);
        for mu in 0..basis.nao() {
            for nu in 0..basis.nao() {
                let (a, b) = (k_inc[(mu, nu)], k_ref[(mu, nu)]);
                prop_assert!(
                    a == b,
                    "K[{},{}] differs: {:e} vs {:e} (bond {}, eps {})",
                    mu, nu, a, b, bond, eps
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Monotonicity: prime a cache, scale every orbital by its own
    /// `1 + γ_j > 1`, and rebuild at increasing `eps_inc`. Every reused
    /// (stale) pair then under-binds by `w_ij ((1+γ_i)²(1+γ_j)² − 1)
    /// (ij|ij) > 0`, so the signed energy error can only grow as the
    /// tolerance loosens and more pairs stay clean. `eps_inc = 0` is the
    /// exact floor.
    #[test]
    fn energy_error_is_monotone_in_eps_inc(gamma0 in 1e-3f64..5e-3, seed in 0u64..100) {
        let grid = RealGrid::cubic(Cell::cubic(12.0), 16);
        let solver = PoissonSolver::isolated(grid);
        let mut rng = liair_math::rng::SplitMix64::new(seed);
        let centers: Vec<liair_math::Vec3> = (0..4)
            .map(|_| {
                liair_math::Vec3::new(
                    rng.range_f64(4.0, 8.0),
                    rng.range_f64(4.0, 8.0),
                    rng.range_f64(4.0, 8.0),
                )
            })
            .collect();
        let base: Vec<Vec<f64>> = centers.iter().map(|&c| gaussian_field(&grid, c, 1.0)).collect();
        let infos: Vec<OrbitalInfo> = centers
            .iter()
            .map(|&c| OrbitalInfo { center: c, spread: 1.0 })
            .collect();
        let pairs = build_pair_list(&infos, 0.0, None);
        // Per-orbital uniform scaling: fingerprint distance grows with j,
        // so the eps_inc sweep peels orbitals from clean to dirty one by
        // one.
        let scaled: Vec<Vec<f64>> = base
            .iter()
            .enumerate()
            .map(|(j, f)| {
                let g = 1.0 + gamma0 * (j + 1) as f64;
                f.iter().map(|v| g * v).collect()
            })
            .collect();
        let exact = liair_core::exchange_energy(&grid, &solver, &scaled, &pairs).energy;

        let mut prev_err = -1e-12;
        let mut prev_reused = 0;
        for (step, eps_inc) in [0.0, 1.0, 2.0, 4.0, 16.0]
            .iter()
            .map(|m| m * gamma0)
            .enumerate()
        {
            // Fresh state per tolerance, primed with the same stale fields.
            let mut inc = IncrementalExchange::new(eps_inc, 0);
            inc.exchange_energy(&grid, &solver, &base, &infos, &pairs);
            let r = inc.exchange_energy(&grid, &solver, &scaled, &infos, &pairs);
            // Stale reuse under-binds: signed error ≥ 0 (up to FP noise).
            let err = r.energy - exact;
            prop_assert!(
                err >= -1e-10,
                "step {}: negative error {:e} at eps_inc {:e}",
                step, err, eps_inc
            );
            prop_assert!(
                err >= prev_err - 1e-10,
                "step {}: error fell from {:e} to {:e} as eps_inc grew to {:e}",
                step, prev_err, err, eps_inc
            );
            prop_assert!(
                r.inc.pairs_reused >= prev_reused,
                "step {}: reuse fell from {} to {}",
                step, prev_reused, r.inc.pairs_reused
            );
            prev_err = err;
            prev_reused = r.inc.pairs_reused;
        }
        // The loosest tolerance must actually have reused something, or
        // the property is vacuous.
        prop_assert!(prev_reused > 0, "sweep never reused a pair");
    }
}
