//! Property tests of the collective runtime's bitwise contract:
//!
//! * the hierarchical (binomial-tree) gather and the flat root gather are
//!   pure data movement, so for **any** kernel choice (SIMD level × pair
//!   path), rank count, and workload the two collective families produce
//!   bit-identical energies;
//! * **any** seeded fault schedule — drops, delays, duplicates, stalled
//!   ranks — still yields the bit-identical result, run after run:
//!   retransmission recovers payloads verbatim, and chunks re-issued for
//!   lost ranks replay the identical kernel.

use liair_core::screening::{build_pair_list, OrbitalInfo, PairList};
use liair_core::{
    BalanceStrategy, CollectiveMode, ExchangeEngine, ExecBackend, FaultPlan, KernelChoice,
    PairPath, PipelineMode,
};
use liair_grid::{PoissonSolver, RealGrid};
use liair_math::rng::SplitMix64;
use liair_math::simd::available_levels;
use liair_math::Vec3;
use proptest::prelude::*;

fn setup(seed: u64, norb: usize) -> (RealGrid, PoissonSolver, Vec<Vec<f64>>, PairList) {
    let l = 12.0;
    let grid = RealGrid::cubic(liair_basis::Cell::cubic(l), 16);
    let solver = PoissonSolver::isolated(grid);
    let mut rng = SplitMix64::new(seed);
    let centers: Vec<Vec3> = (0..norb)
        .map(|_| {
            Vec3::new(
                rng.range_f64(3.0, 9.0),
                rng.range_f64(3.0, 9.0),
                rng.range_f64(3.0, 9.0),
            )
        })
        .collect();
    let fields: Vec<Vec<f64>> = centers
        .iter()
        .map(|&c| {
            (0..grid.len())
                .map(|i| {
                    let d = grid.cell.min_image(c, grid.point_flat(i));
                    (-1.2 * d.norm_sqr()).exp()
                })
                .collect()
        })
        .collect();
    let infos: Vec<OrbitalInfo> = centers
        .iter()
        .map(|&c| OrbitalInfo {
            center: c,
            spread: 0.7,
        })
        .collect();
    let pairs = build_pair_list(&infos, 0.0, Some(&grid.cell));
    (grid, solver, fields, pairs)
}

/// Pick a runnable kernel choice from two free indices.
fn choice(level_idx: usize, path_idx: usize) -> KernelChoice {
    let levels = available_levels();
    KernelChoice {
        path: [PairPath::Single, PairPath::Batched][path_idx % 2],
        simd: levels[level_idx % levels.len()],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Flat and hierarchical collectives agree to the last bit with the
    /// serial reference for every kernel choice, rank count, and
    /// workload — the gathers move bits, they never combine them.
    #[test]
    fn flat_and_hierarchical_are_bitwise_equal(
        wseed in 0u64..1000,
        level_idx in 0usize..4,
        path_idx in 0usize..2,
        nranks in 1usize..6,
    ) {
        let (grid, solver, fields, pairs) = setup(wseed, 3);
        let c = choice(level_idx, path_idx);
        let serial = ExchangeEngine::builder(&grid, &solver)
            .kernel_choice(c)
            .no_faults()
            .backend(ExecBackend::Serial)
            .build()
            .unwrap()
            .energy(&fields, &pairs);
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            let comm = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(c)
                .no_faults()
                .backend(ExecBackend::Comm { nranks, strategy: BalanceStrategy::GreedyLpt })
                .collectives(mode)
                .build()
                .unwrap()
                .energy(&fields, &pairs);
            prop_assert_eq!(serial.energy.to_bits(), comm.energy.to_bits());
        }
    }

    /// Any seeded fault schedule yields the bit-identical energy, run
    /// after run. The degradation *counters* may differ between replays
    /// (a delayed retransmission racing the recv timeout can demote a
    /// slow rank to "lost", and a timed-out intermediate tree node loses
    /// its whole subtree) — but every lost rank's chunks are re-issued
    /// through the identical kernel, so the energy never moves.
    #[test]
    fn seeded_fault_schedules_are_bitwise_and_deterministic(
        fseed in 0u64..10_000,
        stall_idx in 0usize..2,
        mode_idx in 0usize..2,
    ) {
        let (grid, solver, fields, pairs) = setup(17, 3);
        let mode = [CollectiveMode::Flat, CollectiveMode::Hierarchical][mode_idx];
        let plan = if stall_idx == 1 {
            FaultPlan::with_stalls(fseed)
        } else {
            FaultPlan::messages_only(fseed)
        };
        let clean = ExchangeEngine::builder(&grid, &solver)
            .no_faults()
            .backend(ExecBackend::Serial)
            .build()
            .unwrap()
            .energy(&fields, &pairs);
        let build = || {
            ExchangeEngine::builder(&grid, &solver)
                .backend(ExecBackend::Comm { nranks: 4, strategy: BalanceStrategy::RoundRobin })
                .collectives(mode)
                .fault_plan(plan)
                .build()
                .unwrap()
                .energy(&fields, &pairs)
        };
        let a = build();
        let b = build();
        prop_assert_eq!(clean.energy.to_bits(), a.energy.to_bits());
        prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        // Re-issue only ever happens in response to a lost rank.
        for out in [&a, &b] {
            if out.profile.ranks_stalled == 0 {
                prop_assert_eq!(out.profile.chunks_reissued, 0);
            }
        }
    }

    /// The pipelined overlap backend is bit-identical to the staged
    /// gather and the serial reference for every workload, rank count,
    /// kernel choice, and (optional) fault seed: dynamic stealing and
    /// out-of-order streamed arrival never change the canonical
    /// reassembly, only who computed each chunk and when it landed.
    #[test]
    fn pipelined_staged_serial_are_bitwise_equal(
        wseed in 0u64..1000,
        fseed in 0u64..10_000,
        faulty in 0usize..2,
        level_idx in 0usize..4,
        path_idx in 0usize..2,
        nranks in 1usize..6,
        norb in 2usize..5,
    ) {
        let (grid, solver, fields, pairs) = setup(wseed, norb);
        let c = choice(level_idx, path_idx);
        let build = |backend, mode| {
            let mut b = ExchangeEngine::builder(&grid, &solver)
                .kernel_choice(c)
                .backend(backend)
                .pipeline(mode)
                .no_faults();
            if faulty == 1 {
                b = b.fault_plan(FaultPlan::with_stalls(fseed));
            }
            b.build().unwrap().energy(&fields, &pairs)
        };
        let comm = ExecBackend::Comm { nranks, strategy: BalanceStrategy::GreedyLpt };
        let serial = build(ExecBackend::Serial, PipelineMode::Staged);
        let staged = build(comm, PipelineMode::Staged);
        let pipelined = build(comm, PipelineMode::Pipelined);
        prop_assert_eq!(serial.energy.to_bits(), staged.energy.to_bits());
        prop_assert_eq!(serial.energy.to_bits(), pipelined.energy.to_bits());
        // The steal queue only ever exists on the pipelined backend.
        prop_assert_eq!(staged.profile.chunks_stolen, 0);
        prop_assert_eq!(staged.profile.steal_requests, 0);
        if nranks == 1 {
            // A single rank has nobody to steal from: all-static schedule.
            prop_assert_eq!(pipelined.profile.chunks_stolen, 0);
        }
    }

    /// For a fixed fault seed the steal protocol is replayable: the stall
    /// set is a pure function of the seed, every queued chunk moves
    /// through exactly one grant, and the root serves the queue itself
    /// only when no live worker remains — so the steal counters (not just
    /// the energy) are identical run after run, even though which *rank*
    /// wins each chunk races.
    #[test]
    fn steal_counters_are_deterministic_for_fixed_seed(
        fseed in 0u64..10_000,
        nranks in 2usize..6,
    ) {
        let (grid, solver, fields, pairs) = setup(23, 4);
        let nchunks = pairs.len().div_ceil(2);
        let ntail = nchunks / 4;
        let build = || {
            ExchangeEngine::builder(&grid, &solver)
                .backend(ExecBackend::Comm { nranks, strategy: BalanceStrategy::Block })
                .pipeline(PipelineMode::Pipelined)
                .fault_plan(FaultPlan::with_stalls(fseed))
                .build()
                .unwrap()
                .energy(&fields, &pairs)
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.profile.chunks_stolen, b.profile.chunks_stolen);
        prop_assert_eq!(a.profile.steal_requests, b.profile.steal_requests);
        prop_assert_eq!(a.profile.ranks_stalled, b.profile.ranks_stalled);
        prop_assert_eq!(a.profile.chunks_reissued, b.profile.chunks_reissued);
        // Every queue entry — the dynamic tail plus each re-issued chunk —
        // is dispatched exactly once.
        prop_assert_eq!(a.profile.chunks_stolen, ntail + a.profile.chunks_reissued);
        // One grant per stolen chunk plus one final `done` per live
        // worker — unless every worker stalled, where the root serves the
        // whole queue itself and no grant is ever issued.
        if a.profile.ranks_stalled == nranks - 1 {
            prop_assert_eq!(a.profile.steal_requests, 0);
        } else {
            prop_assert_eq!(
                a.profile.steal_requests,
                a.profile.chunks_stolen + (nranks - 1 - a.profile.ranks_stalled)
            );
        }
    }
}
