//! The K-operator stage of the engine: `K_{μν} = Σ_j (μj|jν)` built as
//! one Poisson solve per `(occupied j, AO ν)` task, on any
//! [`ExecBackend`](super::ExecBackend).
//!
//! The task list is canonical (j-major, ν-ascending, ε-screened), per-task
//! output columns are reassembled in that order on every backend, each
//! orbital's `ΔK_j` accumulates its columns in task order, and `K = Σ_j
//! ΔK_j` sums ascending-j before the final symmetrization — the fixed
//! floating-point sequence that makes the rayon build, the message-passing
//! build, and the incremental build with `eps_inc = 0` bit-identical.

use super::{pipeline, BuildProfile, ExchangeEngine, ExecBackend, PipelineMode};
use crate::balance::assign;
use crate::error::{Error, Result};
use liair_basis::Basis;
use liair_grid::{ao_values, orbitals_on_grid, KernelTimings, PoissonWorkspace, RealGrid};
use liair_math::Mat;
use liair_runtime::{run_spmd_cfg, CommConfig};
use rayon::prelude::*;
use std::time::Instant;

/// One orbital's unsymmetrized `ΔK_j` contribution tagged with its slot,
/// plus that orbital's `(evaluated, skipped)` task counts.
pub(crate) type OrbitalContrib = ((usize, Mat), (usize, usize));

/// Everything the per-orbital K tasks need that does not depend on which
/// orbitals are dirty: AO and orbital fields on the grid plus the
/// screening metadata. Shared by the from-scratch and incremental builds.
pub(crate) struct KBuildSetup {
    pub(crate) nao: usize,
    pub(crate) nocc: usize,
    /// Localization centers/spreads of the (localized) occupied orbitals;
    /// empty when `eps = 0` (no localization, nothing to screen).
    pub(crate) orb_info: Vec<crate::screening::OrbitalInfo>,
    /// Screening metadata of the AOs (empty when `eps = 0`).
    pub(crate) ao_info: Vec<crate::screening::OrbitalInfo>,
    /// Occupied orbital fields on the grid (localized when `eps > 0`).
    pub(crate) orbitals: Vec<Vec<f64>>,
    /// AO fields on the grid.
    pub(crate) aos: Vec<Vec<f64>>,
}

/// Evaluate the orbital fields and screening metadata for a K build.
///
/// Canonical orbitals are delocalized and unscreenable; K is invariant
/// under rotations within the occupied space, so when screening is on we
/// localize first (exactly what the paper's scheme does each step).
pub(crate) fn k_build_setup(
    basis: &Basis,
    c_occ: &Mat,
    nocc: usize,
    grid: &RealGrid,
    eps: f64,
) -> KBuildSetup {
    let nao = basis.nao();
    assert_eq!(c_occ.nrows(), nao);
    assert!(nocc <= c_occ.ncols());
    let aos = ao_values(basis, grid);
    let (c_work, orb_info, ao_info) = if eps > 0.0 {
        let loc = liair_grid::foster_boys(basis, c_occ, nocc, 60);
        let orbs: Vec<crate::screening::OrbitalInfo> = loc
            .centers
            .iter()
            .zip(&loc.spreads)
            .map(|(&center, &s)| crate::screening::OrbitalInfo {
                center,
                spread: s.max(0.3),
            })
            .collect();
        let aos_s: Vec<crate::screening::OrbitalInfo> = basis
            .aos
            .iter()
            .map(|ao| {
                let sh = &basis.shells[ao.shell];
                let alpha_min = sh.prims.iter().map(|p| p.exp).fold(f64::INFINITY, f64::min);
                crate::screening::OrbitalInfo {
                    center: sh.center,
                    spread: (1.0 / (2.0 * alpha_min)).sqrt().max(0.3),
                }
            })
            .collect();
        (loc.c_loc, orbs, aos_s)
    } else {
        (c_occ.clone(), Vec::new(), Vec::new())
    };
    let orbitals = orbitals_on_grid(basis, &c_work, nocc, grid);
    KBuildSetup {
        nao,
        nocc,
        orb_info,
        ao_info,
        orbitals,
        aos,
    }
}

/// Average away the 1e-6-level asymmetry grid quadrature leaves in K.
pub(crate) fn symmetrize(k: &mut Mat) {
    let nao = k.nrows();
    for mu in 0..nao {
        for nu in (mu + 1)..nao {
            let s = 0.5 * (k[(mu, nu)] + k[(nu, mu)]);
            k[(mu, nu)] = s;
            k[(nu, mu)] = s;
        }
    }
}

/// Per-worker scratch of the K task loop: one pair-density buffer and one
/// Poisson workspace, grow-once (only the nao-length output column is
/// allocated per task).
#[derive(Default)]
struct KTaskScratch {
    rho: Vec<f64>,
    ws: PoissonWorkspace,
}

impl KTaskScratch {
    fn ensure(&mut self, n: usize) -> bool {
        if self.rho.len() != n {
            self.rho.resize(n, 0.0);
            true
        } else {
            false
        }
    }
}

/// Output of [`ExchangeEngine::k_operator`].
#[derive(Debug, Clone)]
pub struct KBuildOutcome {
    /// The symmetrized exchange operator `Σ_j (μj|jν)`.
    pub k: Mat,
    /// `(j, ν)` tasks evaluated through a Poisson solve.
    pub evaluated: usize,
    /// Tasks dropped by the ε screen.
    pub skipped: usize,
    /// Per-phase instrumentation of this build.
    pub profile: BuildProfile,
}

impl ExchangeEngine<'_> {
    /// Build the AO-basis exchange operator on the configured backend.
    ///
    /// `c_occ` holds the occupied MO coefficients (`nao × nocc`) in the
    /// same (box-centered) basis the grid discretizes; `eps` drops `(j, ν)`
    /// tasks whose Gaussian-overlap bound falls below it (localizing
    /// first when `eps > 0`).
    pub fn k_operator(&self, basis: &Basis, c_occ: &Mat, nocc: usize, eps: f64) -> KBuildOutcome {
        self.try_k_operator(basis, c_occ, nocc, eps)
            .unwrap_or_else(|e| panic!("K-operator build failed: {e}"))
    }

    /// Fallible twin of [`ExchangeEngine::k_operator`].
    pub fn try_k_operator(
        &self,
        basis: &Basis,
        c_occ: &Mat,
        nocc: usize,
        eps: f64,
    ) -> Result<KBuildOutcome> {
        let mut profile = BuildProfile::default();
        let t_ao = Instant::now();
        let setup = k_build_setup(basis, c_occ, nocc, self.grid, eps);
        profile.t_ao_eval_s += t_ao.elapsed().as_secs_f64();
        let slots: Vec<usize> = (0..nocc).collect();
        let results = self.k_orbital_contribs(&setup, eps, &slots, &mut profile)?;
        let tr = Instant::now();
        let mut k = Mat::zeros(setup.nao, setup.nao);
        let mut evaluated = 0;
        let mut skipped = 0;
        for ((_, dk), (ev, sk)) in &results {
            k.axpy(1.0, dk);
            evaluated += ev;
            skipped += sk;
        }
        symmetrize(&mut k);
        profile.t_reduce_s += tr.elapsed().as_secs_f64();
        profile.bytes_reduced += results.len() * setup.nao * setup.nao * std::mem::size_of::<f64>();
        profile.pairs_computed = evaluated;
        profile.pairs_screened = skipped;
        Ok(KBuildOutcome {
            k,
            evaluated,
            skipped,
            profile,
        })
    }

    /// Run the surviving `(j, ν)` Poisson tasks of the orbitals in `slots`
    /// on the configured backend and return, per requested orbital, its
    /// unsymmetrized contribution `ΔK_j` plus `(evaluated, skipped)` task
    /// counts. `K = Σ_j ΔK_j` over all occupied orbitals. Execute-phase
    /// profile fields are accumulated into `profile`.
    pub(crate) fn k_orbital_contribs(
        &self,
        setup: &KBuildSetup,
        eps: f64,
        slots: &[usize],
        profile: &mut BuildProfile,
    ) -> Result<Vec<OrbitalContrib>> {
        let nao = setup.nao;
        let plan_window = super::profile::PlanCacheWindow::open();
        // For each (j, ν): v_jν = Poisson[φ_j χ_ν]; then
        // K_μν += ∫ χ_μ φ_j v_jν — the pair-task structure of the energy
        // path. The task list is canonical: j-major, ν-ascending. With a
        // finite ε the AOs are binned once and each dirty orbital inspects
        // only AOs within its cutoff radius (the locality-first source of
        // the incremental dirty set); the partner sets — and therefore the
        // canonical order — are exactly the brute filter's.
        let tasks: Vec<(usize, usize)> = if eps <= 0.0 {
            profile.pairs_considered += slots.len() * nao;
            slots
                .iter()
                .flat_map(|&j| (0..nao).map(move |nu| (j, nu)))
                .collect()
        } else if eps > 1.0 {
            // Every bound is ≤ 1: nothing survives, nothing to inspect.
            Vec::new()
        } else {
            let bins = crate::screening::CrossBins::new(&setup.ao_info, eps)?;
            let mut tasks = Vec::new();
            let mut partners = Vec::new();
            for &j in slots {
                profile.pairs_considered +=
                    bins.partners(&setup.orb_info[j], &setup.ao_info, &mut partners);
                tasks.extend(partners.iter().map(|&nu| (j, nu)));
            }
            tasks
        };
        let t0 = Instant::now();
        let cols = self.run_k_tasks(setup, &tasks, profile)?;
        profile.t_exec_s += t0.elapsed().as_secs_f64();
        plan_window.record(profile);
        let mut slot_of = vec![usize::MAX; setup.nocc];
        for (s, &j) in slots.iter().enumerate() {
            slot_of[j] = s;
        }
        let mut out: Vec<((usize, Mat), (usize, usize))> = slots
            .iter()
            .map(|&j| ((j, Mat::zeros(nao, nao)), (0, nao)))
            .collect();
        // Accumulate columns in canonical task order — the fixed sequence
        // shared by every backend and the incremental rebuild.
        for (t, col) in cols.iter().enumerate() {
            let (j, nu) = tasks[t];
            let ((_, dk), (ev, sk)) = &mut out[slot_of[j]];
            for mu in 0..nao {
                dk[(mu, nu)] += col[mu];
            }
            *ev += 1;
            *sk -= 1;
        }
        Ok(out)
    }

    /// Execute the task list on the configured backend, returning the
    /// nao-length output columns in canonical task order.
    fn run_k_tasks(
        &self,
        setup: &KBuildSetup,
        tasks: &[(usize, usize)],
        profile: &mut BuildProfile,
    ) -> Result<Vec<Vec<f64>>> {
        let nao = setup.nao;
        let npts = self.grid.len();
        let dvol = self.grid.dvol();
        let level = self.simd_choice();
        let solver = self.full_solver();
        let eval = |sc: &mut KTaskScratch, t: usize| -> (Vec<f64>, KernelTimings, usize) {
            let (j, nu) = tasks[t];
            let grew = sc.ensure(npts) as usize;
            let KTaskScratch { rho, ws } = sc;
            for ((r, &a), &b) in rho.iter_mut().zip(&setup.orbitals[j]).zip(&setup.aos[nu]) {
                *r = a * b;
            }
            let v = solver.solve_into_with(level, rho, ws);
            // column ν of ΔK_j gets ⟨χ_μ φ_j | v_jν⟩ for every μ.
            let col: Vec<f64> = (0..nao)
                .map(|mu| {
                    let mut acc = 0.0;
                    for p in 0..npts {
                        acc += setup.aos[mu][p] * setup.orbitals[j][p] * v[p];
                    }
                    acc * dvol
                })
                .collect();
            (col, sc.ws.take_timings(), grew)
        };
        match self.backend() {
            ExecBackend::Serial => {
                let mut sc = KTaskScratch::default();
                let mut cols = Vec::with_capacity(tasks.len());
                for t in 0..tasks.len() {
                    let (col, tim, grew) = eval(&mut sc, t);
                    profile.t_fft_s += tim.fft_s;
                    profile.t_kernel_s += tim.kernel_s;
                    profile.steady_allocs += grew;
                    cols.push(col);
                }
                Ok(cols)
            }
            ExecBackend::Rayon => {
                let results: Vec<(Vec<f64>, KernelTimings, usize)> = (0..tasks.len())
                    .into_par_iter()
                    .map_init(KTaskScratch::default, |sc, t| eval(sc, t))
                    .collect();
                let mut cols = Vec::with_capacity(tasks.len());
                for (col, tim, grew) in results {
                    profile.t_fft_s += tim.fft_s;
                    profile.t_kernel_s += tim.kernel_s;
                    profile.steady_allocs += grew;
                    cols.push(col);
                }
                Ok(cols)
            }
            ExecBackend::Comm { nranks, strategy } => {
                if nranks == 0 {
                    return Err(Error::InvalidConfig("need at least one rank".into()));
                }
                let tuning = self.comm_tuning();
                if tuning.pipeline == PipelineMode::Pipelined {
                    // Pipelined overlap: tasks stream to the root as
                    // `(task id, column)` entries while ranks compute, and
                    // the steal queue rebalances the tail — reassembled in
                    // canonical task order, so identical to staged/serial.
                    let job = pipeline::PipelineJob {
                        nitems: tasks.len(),
                        width: nao,
                        nranks,
                        strategy,
                    };
                    let wrap = |sc: &mut KTaskScratch, t: usize, buf: &mut Vec<f64>| {
                        let (col, tim, grew) = eval(sc, t);
                        buf.extend_from_slice(&col);
                        (tim, grew)
                    };
                    let flat = pipeline::run_pipelined(
                        &job,
                        &KTaskScratch::default,
                        &wrap,
                        &tuning,
                        profile,
                    )?;
                    return Ok(flat.chunks_exact(nao).map(<[f64]>::to_vec).collect());
                }
                let costs = vec![1.0; tasks.len()];
                let assignment = assign(&costs, nranks, strategy);
                let cfg = CommConfig {
                    mode: tuning.collectives,
                    fault: tuning.fault,
                    torus: None,
                };
                let run = run_spmd_cfg(nranks, cfg, |comm| {
                    if comm.stalled() {
                        return Ok(None);
                    }
                    let mine = &assignment.per_rank[comm.rank()];
                    let mut sc = KTaskScratch::default();
                    let mut tim = KernelTimings::default();
                    let mut grew = 0usize;
                    let mut flat = Vec::with_capacity(nao * mine.len() + 3);
                    for &t in mine {
                        let (col, dt, g) = eval(&mut sc, t);
                        flat.extend_from_slice(&col);
                        tim.merge(dt);
                        grew += g;
                    }
                    flat.push(tim.fft_s);
                    flat.push(tim.kernel_s);
                    flat.push(grew as f64);
                    // The single collective of the build, timed at the
                    // root (pure exposed reduce latency).
                    let tg = Instant::now();
                    let parts = comm.gather_partial(0, flat)?;
                    Ok(parts.map(|p| (p, tg.elapsed().as_secs_f64())))
                })
                .map_err(Error::Comm)?;
                if let Some((_, _, _, _, retries)) = run.fault_stats {
                    profile.comm_retries += retries;
                }
                let (parts, t_gather) = run
                    .results
                    .into_iter()
                    .next()
                    .expect("nranks >= 1")
                    .map_err(Error::Comm)?
                    .expect("rank 0 never stalls and is the gather root");
                profile.t_reduce_s += t_gather;
                let mut cols = vec![Vec::new(); tasks.len()];
                let mut reissue_sc: Option<KTaskScratch> = None;
                for (r, part) in parts.iter().enumerate() {
                    let mine = &assignment.per_rank[r];
                    match part {
                        Some(part) => {
                            for (slot, &t) in mine.iter().enumerate() {
                                cols[t] = part[slot * nao..(slot + 1) * nao].to_vec();
                            }
                            let base = nao * mine.len();
                            profile.t_fft_s += part[base];
                            profile.t_kernel_s += part[base + 1];
                            profile.steady_allocs += part[base + 2] as usize;
                            profile.bytes_reduced += part.len() * std::mem::size_of::<f64>();
                        }
                        None => {
                            // Graceful degradation: re-run the stalled
                            // rank's tasks through the identical kernel —
                            // same columns, bit for bit.
                            profile.ranks_stalled += 1;
                            let sc = reissue_sc.get_or_insert_with(KTaskScratch::default);
                            for &t in mine {
                                let (col, tim, grew) = eval(sc, t);
                                profile.t_fft_s += tim.fft_s;
                                profile.t_kernel_s += tim.kernel_s;
                                profile.steady_allocs += grew;
                                profile.chunks_reissued += 1;
                                cols[t] = col;
                            }
                        }
                    }
                }
                Ok(cols)
            }
        }
    }
}
