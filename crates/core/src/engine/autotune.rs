//! The shared pair-path × SIMD-level autotuner.
//!
//! Every engine backend (rayon, serial, message-passing) runs the same
//! node-level pair kernel, so the decision of *how* to run it — one r2c
//! transform per pair vs two pairs packed into one c2c transform, and at
//! which SIMD level — is made in exactly one place and cached per grid
//! shape for the process lifetime. `LIAIR_PAIR_PATH` and `LIAIR_SIMD` pin
//! their axis; `LIAIR_AUTOTUNE_REPS` controls the best-of-N measurement.

use liair_grid::{PoissonSolver, PoissonWorkspace, RealGrid};
use liair_math::simd::{self, SimdLevel};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// How a worker evaluates its pairs: one r2c transform per pair, or two
/// pairs packed into one c2c transform. Which wins depends on the grid
/// size (the r2c path does ~half the flops; the batched path does one
/// full transform for two pairs but pays an untangle sweep), so the
/// choice is measured once per grid shape and cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPath {
    /// `exchange_pair_energy` per pair (r2c half-spectrum).
    Single,
    /// `exchange_pair_energy_batched` per pair of pairs (packed c2c).
    Batched,
}

/// The full per-grid-shape kernel decision: which pair path to run *and*
/// at which SIMD level. Both axes interact — the batched c2c path moves
/// twice the data of the r2c path, so vectorization shifts the crossover —
/// which is why the autotuner measures the (path, level) combinations
/// jointly instead of picking each independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelChoice {
    /// Pair evaluation path.
    pub path: PairPath,
    /// SIMD dispatch level for every kernel under this choice.
    pub simd: SimdLevel,
}

type ChoiceCache = Mutex<HashMap<(usize, usize, usize), KernelChoice>>;

static KERNEL_CHOICE_CACHE: OnceLock<ChoiceCache> = OnceLock::new();

/// SIMD levels the autotuner may choose from: the `LIAIR_SIMD` override
/// alone when set (measurement skipped for that axis), otherwise the
/// chunked scalar fallback vs the best detected vector level.
fn simd_candidates() -> Vec<SimdLevel> {
    if let Some(forced) = simd::env_override() {
        return vec![forced];
    }
    let detected = simd::detect();
    if detected == SimdLevel::Scalar {
        vec![SimdLevel::Scalar]
    } else {
        vec![SimdLevel::Scalar, detected]
    }
}

/// Parse a `LIAIR_PAIR_PATH` value: a forced path (`single`/`batched`)
/// that bypasses the measurement entirely, for fully deterministic runs.
fn parse_path_override(raw: Option<&str>) -> Option<PairPath> {
    match raw.map(|s| s.trim().to_ascii_lowercase()).as_deref() {
        Some("single") => Some(PairPath::Single),
        Some("batched") => Some(PairPath::Batched),
        _ => None,
    }
}

/// Best-of-N repetitions per path (N ≥ 1, default 2), resolved through
/// the shared [`liair_runtime::SeedConfig`] convention rather than a
/// private `LIAIR_AUTOTUNE_REPS` parse of its own.
fn autotune_reps() -> usize {
    static REPS: OnceLock<usize> = OnceLock::new();
    *REPS.get_or_init(|| liair_runtime::SeedConfig::from_env().resolve_autotune_reps())
}

fn path_override() -> Option<PairPath> {
    static OVERRIDE: OnceLock<Option<PairPath>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| parse_path_override(std::env::var("LIAIR_PAIR_PATH").ok().as_deref()))
}

/// The `LIAIR_PAIR_PATH` override, if any — shared with the engine
/// builder's partial kernel pinning.
pub(crate) fn env_pair_path() -> Option<PairPath> {
    path_override()
}

/// Time every (pair path, SIMD level) combination on seeded synthetic
/// data and pick the winner. Deterministic inputs (fixed SplitMix64 seed)
/// and best-of-`reps` timing keep the measurement reproducible under
/// test; the chosen combination is then frozen in [`KERNEL_CHOICE_CACHE`]
/// for the process lifetime.
fn measure_kernel_choice(solver: &PoissonSolver, grid: &RealGrid, reps: usize) -> KernelChoice {
    let mut rng = liair_math::rng::SplitMix64::new(0x9a1c);
    let a: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..grid.len()).map(|_| rng.next_f64() - 0.5).collect();
    let mut ws = PoissonWorkspace::new();
    let mut best = KernelChoice {
        path: PairPath::Single,
        simd: SimdLevel::Scalar,
    };
    let mut t_best = f64::INFINITY;
    for level in simd_candidates() {
        // Warm both paths (plan build, scratch growth), then time the
        // best of `reps` repetitions each.
        solver.exchange_pair_energy_with(level, &a, &mut ws);
        solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);
        let mut t_single = f64::INFINITY;
        let mut t_batched = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            solver.exchange_pair_energy_with(level, &a, &mut ws);
            solver.exchange_pair_energy_with(level, &b, &mut ws);
            t_single = t_single.min(t0.elapsed().as_secs_f64());
            let t0 = std::time::Instant::now();
            solver.exchange_pair_energy_batched_with(level, &a, &b, &mut ws);
            t_batched = t_batched.min(t0.elapsed().as_secs_f64());
        }
        if t_single < t_best {
            t_best = t_single;
            best = KernelChoice {
                path: PairPath::Single,
                simd: level,
            };
        }
        if t_batched < t_best {
            t_best = t_batched;
            best = KernelChoice {
                path: PairPath::Batched,
                simd: level,
            };
        }
    }
    best
}

/// Measure the kernel combinations once for this grid shape and remember
/// the winner (a few transforms — noise next to one SCF step). Later
/// calls for the same shape always return the cached choice, so the path
/// is stable for the process lifetime even if a re-measurement would
/// flip. `LIAIR_PAIR_PATH` and `LIAIR_SIMD` each pin their axis.
pub fn kernel_choice_for(solver: &PoissonSolver, grid: &RealGrid) -> KernelChoice {
    // Both axes pinned → fully deterministic, no measurement at all.
    if let (Some(path), Some(level)) = (path_override(), simd::env_override()) {
        return KernelChoice { path, simd: level };
    }
    let key = grid.dims;
    let cache = KERNEL_CHOICE_CACHE.get_or_init(Default::default);
    // A panic elsewhere must not wedge the autotuner: the cache only ever
    // holds complete entries, so a poisoned lock is still safe to read.
    if let Some(&c) = cache.lock().unwrap_or_else(|p| p.into_inner()).get(&key) {
        return c;
    }
    let mut chosen = measure_kernel_choice(solver, grid, autotune_reps());
    if let Some(forced) = path_override() {
        chosen.path = forced;
    }
    *cache
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(key)
        .or_insert(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liair_basis::Cell;

    #[test]
    fn autotune_env_parsing() {
        assert_eq!(parse_path_override(None), None);
        assert_eq!(parse_path_override(Some("single")), Some(PairPath::Single));
        assert_eq!(
            parse_path_override(Some(" Batched ")),
            Some(PairPath::Batched)
        );
        assert_eq!(parse_path_override(Some("auto")), None);
    }

    #[test]
    fn kernel_choice_is_stable_for_repeated_grid_shape() {
        // The cache must freeze the first measurement: repeated queries for
        // the same grid shape return the same (path, SIMD level) even if a
        // fresh timing run would flip the decision.
        let grid = RealGrid::cubic(Cell::cubic(8.0), 18);
        let solver = PoissonSolver::isolated(grid);
        let first = kernel_choice_for(&solver, &grid);
        for _ in 0..5 {
            assert_eq!(kernel_choice_for(&solver, &grid), first);
        }
        // Same shape, fresh solver: still the cached decision.
        let solver2 = PoissonSolver::isolated(grid);
        assert_eq!(kernel_choice_for(&solver2, &grid), first);
    }

    #[test]
    fn measure_kernel_choice_runs_with_any_reps() {
        // The measurement itself must work for N = 1 and larger N (the
        // LIAIR_AUTOTUNE_REPS knob); inputs are seeded so this is
        // reproducible, and the chosen SIMD level must be runnable here.
        let grid = RealGrid::cubic(Cell::cubic(6.0), 16);
        let solver = PoissonSolver::isolated(grid);
        let c1 = measure_kernel_choice(&solver, &grid, 1);
        let c3 = measure_kernel_choice(&solver, &grid, 3);
        for c in [c1, c3] {
            assert!(simd::available_levels().contains(&c.simd), "{c:?}");
        }
    }

    #[test]
    fn simd_candidates_are_runnable() {
        let cands = simd_candidates();
        assert!(!cands.is_empty());
        for c in cands {
            assert!(simd::available_levels().contains(&c), "{c:?}");
        }
    }
}
